//! Shared helpers for the dcqx example binaries.

use std::time::{Duration, Instant};

/// Run a closure and return its result together with the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Render a duration in seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Print a section header.
pub fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}
