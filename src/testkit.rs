//! Shared fixtures for the dcqx cross-crate integration tests.

use dcq_storage::{Database, Relation};

/// Build a small deterministic database with the `Graph` / `Triple` / `Edge` / `Node`
/// relations used across the integration tests.
pub fn small_graph_db() -> Database {
    let mut db = Database::new();
    db.add(Relation::from_int_rows(
        "Graph",
        &["src", "dst"],
        vec![
            vec![1, 2],
            vec![2, 3],
            vec![3, 1],
            vec![3, 4],
            vec![4, 5],
            vec![5, 3],
            vec![2, 4],
            vec![4, 1],
            vec![5, 6],
            vec![6, 4],
        ],
    ))
    .unwrap();
    db.add(Relation::from_int_rows(
        "Triple",
        &["node1", "node2", "node3"],
        vec![
            vec![1, 2, 3],
            vec![2, 3, 1],
            vec![3, 4, 5],
            vec![1, 2, 4],
            vec![4, 5, 6],
            vec![9, 9, 9],
        ],
    ))
    .unwrap();
    db.add(Relation::from_int_rows(
        "Edge",
        &["src", "dst"],
        vec![vec![1, 3], vec![2, 4], vec![3, 5], vec![9, 9]],
    ))
    .unwrap();
    db.add(Relation::from_int_rows(
        "Node",
        &["id"],
        (1..=6).map(|i| vec![i]).collect::<Vec<_>>(),
    ))
    .unwrap();
    db
}
