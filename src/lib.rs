//! # dcqx
//!
//! Umbrella crate for the **dcqx** workspace — a Rust reproduction and extension of
//! *Computing the Difference of Conjunctive Queries Efficiently* (Hu & Wang, SIGMOD
//! 2023).  It re-exports the commonly used types from every layer so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`dcq_storage`] — relations, rows, schemas, databases, signed tuple deltas,
//! * [`dcq_hypergraph`] — acyclicity / free-connex / linear-reducible structure,
//! * [`dcq_exec`] — joins, `Reduce`, Yannakakis, generic join,
//! * [`dcq_core`] — the DCQ dichotomy, `EasyDCQ`, heuristics, the planner and the
//!   prepared-plan cache,
//! * [`dcq_incremental`] — incremental DCQ view maintenance under batched updates,
//! * [`dcq_engine`] — the [`DcqEngine`] facade: one shared, epoch-versioned store,
//!   prepared DCQs, and multi-view update fan-out,
//! * [`dcq_server`] — the concurrent view service: length-prefixed JSON over TCP,
//!   one ingestion thread behind a bounded queue, durable WAL + checkpoints,
//!   snapshot-served reads and a load harness,
//! * [`dcq_datagen`] — synthetic graph / benchmark / update workloads.
//!
//! The `examples/` directory demonstrates each subsystem; the `tests/` directory
//! holds the cross-crate integration suite.

#![warn(missing_docs)]

pub use dcq_core;
pub use dcq_datagen;
pub use dcq_engine;
pub use dcq_exec;
pub use dcq_hypergraph;
pub use dcq_incremental;
pub use dcq_server;
pub use dcq_storage;

pub use dcq_core::{
    classify, parse_cq, parse_dcq, Atom, BatchStats, ConjunctiveQuery, CrossoverSample, Dcq,
    DcqPlanner, MaintenanceCostModel, PlanCache,
};
pub use dcq_engine::{ApplyReport, DcqEngine, PreparedDcq, ViewHandle};
pub use dcq_incremental::DcqView;
pub use dcq_server::{DcqClient, DcqServer, DurabilityConfig, ServerConfig};
pub use dcq_storage::{
    Database, DeltaBatch, Relation, Row, Schema, SharedDatabase, UpdateLog, Value,
};

pub mod testkit;
pub mod util;
