//! Incremental maintenance ≡ full recomputation (single-view engines).
//!
//! Two complementary suites:
//!
//! * a **property test** applying proptest-generated insert/delete batches to
//!   engine-hosted single views of easy and hard DCQs under *both* maintenance
//!   strategies, asserting after every batch that the maintained result is
//!   byte-identical to the vanilla baseline recomputation;
//! * a **deterministic long-run test** streaming 120 generator-produced batches
//!   (`dcq_datagen::update_workload`) through easy and hard views over a synthetic
//!   graph, checking the same invariant — this is the ≥100-batch acceptance gate.
//!
//! Each view runs in its own `DcqEngine` — the post-shim shape of the
//! single-client deployment (the `MaintainedDcq` shim these suites used to
//! exercise has been removed).  The multi-view fan-out suite lives in
//! `engine_multi_view.rs`; shared-index-specific coverage (self-joins, repeated
//! variables) in `shared_index_correctness.rs`.

use dcq_core::baseline::{baseline_dcq, CqStrategy};
use dcq_core::parse::parse_dcq;
use dcq_core::planner::IncrementalStrategy;
use dcq_datagen::datasets::build_dataset;
use dcq_datagen::{graph_query, update_workload, Graph, GraphQueryId, TripleRuleMix, UpdateSpec};
use dcq_engine::DcqEngine;
use dcq_storage::row::int_row;
use dcq_storage::{Database, DeltaBatch, Relation};
use proptest::prelude::*;

/// The maintained queries: a mix of difference-linear and hard DCQs so both
/// maintenance engines are exercised on every generated update sequence.
const QUERIES: &[(&str, &str)] = &[
    // Difference-linear: ternary minus triangle (Q_G3 shape).
    (
        "easy_triangle",
        "Q(x, y, z) :- W(x, y, z) EXCEPT R(x, y), S(y, z), T(z, x)",
    ),
    // Difference-linear: same-schema path join (Example 3.3).
    (
        "easy_paths",
        "Q(x, y, z) :- R(x, y), S(y, z) EXCEPT T(x, y), U(y, z)",
    ),
    // Hard case (2): non-linear-reducible negative side.
    (
        "hard_projection",
        "Q(x, z) :- R(x, z) EXCEPT S(x, y), T(y, z)",
    ),
    // Hard case (3): cycle-closing edge (Q_G5 shape).
    (
        "hard_cycle",
        "Q(x, y, z) :- R(x, y), S(y, z) EXCEPT T(x, z), U(y, z)",
    ),
];

const RELATIONS: [&str; 5] = ["R", "S", "T", "U", "W"];

fn initial_db(rows: &[(u8, i64, i64, i64)]) -> Database {
    let mut db = Database::new();
    for name in ["R", "S", "T", "U"] {
        db.add(Relation::from_int_rows(name, &["p", "q"], vec![]))
            .unwrap();
    }
    db.add(Relation::from_int_rows("W", &["p", "q", "r"], vec![]))
        .unwrap();
    let batch = ops_to_batch(rows, true);
    db.apply_batch(&batch).unwrap();
    db
}

/// Turn generated `(relation, a, b, c)` tuples into a delta batch; `c` doubles as
/// the insert/delete selector when `all_inserts` is false.
fn ops_to_batch(ops: &[(u8, i64, i64, i64)], all_inserts: bool) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    for (rel, a, b, c) in ops {
        let name = RELATIONS[(*rel as usize) % RELATIONS.len()];
        let row = if name == "W" {
            int_row([*a, *b, *c])
        } else {
            int_row([*a, *b])
        };
        if all_inserts || *c % 3 != 0 {
            batch.insert(name, row);
        } else {
            batch.delete(name, row);
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Maintained views stay byte-identical to full recomputation over randomized
    /// insert/delete batch sequences, for easy and hard DCQs under both strategies.
    #[test]
    fn maintenance_equals_recomputation(
        initial in proptest::collection::vec((0u8..5, 0i64..6, 0i64..6, 0i64..6), 0..60),
        batches in proptest::collection::vec(
            proptest::collection::vec((0u8..5, 0i64..6, 0i64..6, 0i64..6), 1..8),
            10..11
        ),
    ) {
        for (label, src) in QUERIES {
            for strategy in [IncrementalStrategy::EasyRerun, IncrementalStrategy::Counting] {
                let mut engine = DcqEngine::with_database(initial_db(&initial));
                let dcq = parse_dcq(src).unwrap();
                let handle = engine.register_with(dcq, strategy).unwrap();
                for (step, ops) in batches.iter().enumerate() {
                    let batch = ops_to_batch(ops, false);
                    engine.apply(&batch).unwrap();
                    let view = engine.view(handle).unwrap();
                    let expected =
                        baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
                    prop_assert_eq!(
                        engine.result(handle).unwrap().sorted_rows(),
                        expected.sorted_rows(),
                        "{} diverged under {:?} at batch {}",
                        label, strategy, step
                    );
                }
            }
        }
    }
}

/// The ≥100-batch acceptance run: 120 generated batches against graph-shaped data,
/// easy (Q_G3) and hard (Q_G5) queries, both strategies, checked after every batch.
#[test]
fn long_workload_stays_exact_over_120_batches() {
    let data = build_dataset(
        "incremental-test",
        Graph::uniform(120, 500, 5),
        0.5,
        TripleRuleMix::balanced(),
        9,
    );
    for (id, strategy) in [
        (GraphQueryId::QG3, IncrementalStrategy::EasyRerun),
        (GraphQueryId::QG3, IncrementalStrategy::Counting),
        (GraphQueryId::QG5, IncrementalStrategy::Counting),
        (GraphQueryId::QG5, IncrementalStrategy::EasyRerun),
    ] {
        let mut engine = DcqEngine::with_database(data.db.clone());
        let handle = engine.register_with(graph_query(id), strategy).unwrap();
        let spec = UpdateSpec::new(120, 6, &["Graph", "Triple"]);
        let batches = update_workload(engine.database(), &spec, 2026);
        assert_eq!(batches.len(), 120);
        for (step, batch) in batches.iter().enumerate() {
            engine.apply(batch).unwrap();
            let view = engine.view(handle).unwrap();
            let expected =
                baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.result(handle).unwrap().sorted_rows(),
                expected.sorted_rows(),
                "{} under {strategy:?} diverged at batch {step}",
                id.name()
            );
        }
        let stats = engine.view(handle).unwrap().stats();
        assert_eq!(stats.batches_applied + stats.batches_skipped, 120);
        assert!(stats.tuples_inserted + stats.tuples_deleted > 0);
        assert_eq!(engine.epoch(), 120);
    }
}

/// The planner's automatic registration (strategy from the dichotomy) survives a
/// mixed workload that also touches unreferenced relations.
#[test]
fn auto_registered_views_skip_unreferenced_relations() {
    let mut db = Database::new();
    db.add(Relation::from_int_rows(
        "Graph",
        &["src", "dst"],
        vec![vec![1, 2], vec![2, 3], vec![3, 1], vec![2, 4]],
    ))
    .unwrap();
    db.add(Relation::from_int_rows(
        "Triple",
        &["a", "b", "c"],
        vec![vec![1, 2, 3], vec![2, 4, 4]],
    ))
    .unwrap();
    db.add(Relation::from_int_rows("Unrelated", &["k"], vec![vec![7]]))
        .unwrap();

    let mut engine = DcqEngine::with_database(db);
    let handle = engine.register_dcq(graph_query(GraphQueryId::QG3)).unwrap();
    assert_eq!(
        engine.view(handle).unwrap().strategy(),
        IncrementalStrategy::EasyRerun
    );

    let mut batch = DeltaBatch::new();
    batch.insert("Unrelated", int_row([8]));
    let report = engine.apply(&batch).unwrap();
    assert_eq!(report.views_skipped, 1);
    assert_eq!(engine.view(handle).unwrap().stats().batches_skipped, 1);

    let mut batch = DeltaBatch::new();
    batch.insert("Unrelated", int_row([9]));
    batch.delete("Graph", int_row([2, 3]));
    let report = engine.apply(&batch).unwrap();
    assert_eq!(report.views_applied, 1);
    let view = engine.view(handle).unwrap();
    let expected = baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
    assert_eq!(
        engine.result(handle).unwrap().sorted_rows(),
        expected.sorted_rows()
    );
}
