//! Property-based tests: on randomly generated databases, every DCQ evaluation
//! strategy must agree with the naive reference semantics, under both set and bag
//! semantics, and the structural classifiers must be internally consistent.

use dcq_core::bag::{bag_dcq_naive, bag_dcq_rewritten, BagDatabase};
use dcq_core::baseline::{baseline_dcq, evaluate_cq, CqStrategy};
use dcq_core::classify::{classify, DcqClass};
use dcq_core::heuristics::{intersection_heuristic, probe_heuristic};
use dcq_core::parse::parse_dcq;
use dcq_core::planner::{DcqPlanner, Strategy as PlanStrategy};
use dcq_hypergraph::classify::acyclicity_oracles_agree;
use dcq_hypergraph::AttrSet;
use dcq_storage::{BagRelation, Database, Relation};
use proptest::prelude::*;

/// Strategy: a random binary relation over a small domain.
fn binary_relation(
    name: &'static str,
    attrs: [&'static str; 2],
) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0i64..8, 0i64..8), 0..40).prop_map(move |pairs| {
        Relation::from_int_rows(
            name,
            &attrs,
            pairs
                .into_iter()
                .map(|(a, b)| vec![a, b])
                .collect::<Vec<_>>(),
        )
        .distinct()
    })
}

/// Strategy: a random ternary relation over a small domain.
fn ternary_relation(name: &'static str) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0i64..8, 0i64..8, 0i64..8), 0..40).prop_map(move |rows| {
        Relation::from_int_rows(
            name,
            &["a", "b", "c"],
            rows.into_iter()
                .map(|(a, b, c)| vec![a, b, c])
                .collect::<Vec<_>>(),
        )
        .distinct()
    })
}

fn db_from(relations: Vec<Relation>) -> Database {
    let mut db = Database::new();
    for r in relations {
        db.add_or_replace(r);
    }
    db
}

/// The queries exercised by the random-database properties: a mix of easy and hard
/// DCQs covering every strategy the planner can pick.
const QUERIES: &[&str] = &[
    // Difference-linear, same schema (Example 3.3).
    "Q(x, y, z) :- R(x, y), S(y, z) EXCEPT T(x, y), U(y, z)",
    // Difference-linear, ternary minus triangle (Q_G3).
    "Q(x, y, z) :- W(x, y, z) EXCEPT R(x, y), S(y, z), T(z, x)",
    // Difference-linear, projected path on the negative side (Q_G4).
    "Q(x, y, z) :- W(x, y, z) EXCEPT R(x, y), S(y, z), T(z, w)",
    // Hard case (3): cycle-closing edge (Lemma 4.6 / Q_G5 shape).
    "Q(x, y, z) :- R(x, y), S(y, z) EXCEPT T(x, z), U(y, z)",
    // Hard case (2): non-linear-reducible negative side (Lemma 4.3).
    "Q(x, z) :- R(x, z) EXCEPT S(x, y), T(y, z)",
    // Hard case (1): non-free-connex positive side.
    "Q(x, z) :- R(x, y), S(y, z) EXCEPT T(x, z)",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All applicable strategies agree with the vanilla baseline on random data.
    #[test]
    fn strategies_agree_with_baseline(
        r in binary_relation("R", ["x", "y"]),
        s in binary_relation("S", ["y", "z"]),
        t in binary_relation("T", ["x", "z"]),
        u in binary_relation("U", ["y", "z"]),
        w in ternary_relation("W"),
    ) {
        // Re-label the stored schemas: atoms bind positionally, so the stored
        // attribute names are irrelevant; registering them under the expected names
        // keeps the intent clear.
        let db = db_from(vec![r, s, t, u, {
            let mut w = w;
            w.set_name("W");
            w
        }]);
        let planner = DcqPlanner::smart();
        for src in QUERIES {
            let dcq = parse_dcq(src).unwrap();
            let reference = baseline_dcq(&dcq, &db, CqStrategy::Vanilla).unwrap().sorted_rows();
            // Planner's automatic choice.
            prop_assert_eq!(
                planner.execute(&dcq, &db).unwrap().sorted_rows(),
                reference.clone(),
                "auto plan differs on {}", src
            );
            // Smart baseline (structure-aware single-CQ evaluation).
            prop_assert_eq!(
                baseline_dcq(&dcq, &db, CqStrategy::Smart).unwrap().sorted_rows(),
                reference.clone(),
                "smart baseline differs on {}", src
            );
            // Both heuristics are always applicable.
            prop_assert_eq!(
                probe_heuristic(&dcq, &db, CqStrategy::Smart).unwrap().result.sorted_rows(),
                reference.clone(),
                "probe heuristic differs on {}", src
            );
            prop_assert_eq!(
                intersection_heuristic(&dcq, &db, CqStrategy::Smart).unwrap().result.sorted_rows(),
                reference.clone(),
                "intersection heuristic differs on {}", src
            );
            // EasyDCQ whenever the dichotomy says the query is easy.
            if classify(&dcq).is_difference_linear() {
                prop_assert_eq!(
                    planner.execute_with(PlanStrategy::EasyLinear, &dcq, &db).unwrap().sorted_rows(),
                    reference.clone(),
                    "EasyDCQ differs on {}", src
                );
            }
        }
    }

    /// The two single-CQ evaluators agree on random data (Yannakakis / acyclic /
    /// generic join vs binary plans).
    #[test]
    fn cq_evaluators_agree(
        r in binary_relation("R", ["x", "y"]),
        s in binary_relation("S", ["y", "z"]),
        t in binary_relation("T", ["x", "z"]),
    ) {
        let db = db_from(vec![r, s, t]);
        for src in [
            "P(x, y, z) :- R(x, y), S(y, z)",
            "P(x, z) :- R(x, y), S(y, z)",
            "P(x, y, z) :- R(x, y), S(y, z), T(x, z)",
            "P(y) :- R(x, y), S(y, z)",
        ] {
            let cq = dcq_core::parse::parse_cq(src).unwrap();
            let vanilla = evaluate_cq(&cq, &db, CqStrategy::Vanilla).unwrap();
            let smart = evaluate_cq(&cq, &db, CqStrategy::Smart).unwrap();
            prop_assert_eq!(vanilla.sorted_rows(), smart.sorted_rows(), "{}", src);
        }
    }

    /// Bag semantics: the partition rewrite agrees with the naive bag difference.
    #[test]
    fn bag_rewrite_agrees_with_naive(
        r1 in proptest::collection::vec(((0i64..5, 0i64..5), 1u64..4), 0..25),
        r2 in proptest::collection::vec(((0i64..5, 0i64..5), 1u64..4), 0..25),
        s1 in proptest::collection::vec(((0i64..5, 0i64..5), 1u64..4), 0..25),
        s2 in proptest::collection::vec(((0i64..5, 0i64..5), 1u64..4), 0..25),
    ) {
        let mut bdb = BagDatabase::new();
        let mk = |name: &str, rows: Vec<((i64, i64), u64)>| {
            BagRelation::from_int_rows_with_counts(
                name,
                &["p", "q"],
                rows.into_iter().map(|((a, b), c)| (vec![a, b], c)).collect::<Vec<_>>(),
            )
        };
        bdb.add(mk("R1", r1));
        bdb.add(mk("R2", r2));
        bdb.add(mk("S1", s1));
        bdb.add(mk("S2", s2));
        let dcq = parse_dcq("Q(x, y, z) :- R1(x, y), R2(y, z) EXCEPT S1(x, y), S2(y, z)").unwrap();
        let naive = bag_dcq_naive(&dcq, &bdb).unwrap();
        let rewritten = bag_dcq_rewritten(&dcq, &bdb).unwrap();
        prop_assert_eq!(naive.sorted_entries(), rewritten.sorted_entries());

        // Also check the non-full projection onto (x, y).
        let dcq = parse_dcq("Q(x, y) :- R1(x, y), R2(y, z) EXCEPT S1(x, y), S2(y, z)").unwrap();
        let naive = bag_dcq_naive(&dcq, &bdb).unwrap();
        let rewritten = bag_dcq_rewritten(&dcq, &bdb).unwrap();
        prop_assert_eq!(naive.sorted_entries(), rewritten.sorted_entries());
    }

    /// The two acyclicity oracles (GYO reduction and ear decomposition) always agree
    /// on random hypergraphs, and the classifier's class implications hold.
    #[test]
    fn structural_classifiers_are_consistent(
        edges in proptest::collection::vec(
            proptest::collection::btree_set(0u32..6, 1..4),
            1..6
        ),
        head in proptest::collection::btree_set(0u32..6, 0..4),
    ) {
        let to_set = |vs: &std::collections::BTreeSet<u32>| {
            AttrSet::from_names(vs.iter().map(|v| format!("x{v}")))
        };
        let edge_sets: Vec<AttrSet> = edges.iter().map(to_set).collect();
        prop_assert!(acyclicity_oracles_agree(&edge_sets));
        // Restrict the head to attributes that actually occur.
        let vertices = edge_sets.iter().fold(AttrSet::empty(), |acc, e| acc.union(e));
        let head_set = to_set(&head).intersect(&vertices);
        let shape = dcq_hypergraph::CqShape::of(&head_set, &edge_sets);
        prop_assert!(shape.invariants_hold());
    }

    /// A DCQ whose negative side never produces anything behaves like its positive
    /// side alone (the reduction used in the Lemma 4.1 hardness argument).
    #[test]
    fn empty_negative_side_is_identity(
        r in binary_relation("R", ["x", "y"]),
        s in binary_relation("S", ["y", "z"]),
    ) {
        let mut db = db_from(vec![r, s]);
        db.add_or_replace(Relation::from_int_rows("Empty", &["x", "y", "z"], vec![]));
        let dcq = parse_dcq("Q(x, y, z) :- R(x, y), S(y, z) EXCEPT Empty(x, y, z)").unwrap();
        let planner = DcqPlanner::smart();
        let result = planner.execute(&dcq, &db).unwrap();
        let q1 = evaluate_cq(&dcq.q1, &db, CqStrategy::Smart).unwrap();
        prop_assert_eq!(result.sorted_rows(), q1.sorted_rows());
        prop_assert_eq!(classify(&dcq).class, DcqClass::DifferenceLinear);
    }
}
