//! Multi-view engine fan-out ≡ full recomputation.
//!
//! The `DcqEngine` acceptance suite:
//!
//! * a **property test** registering four views (easy and hard, overlapping
//!   relations) on one engine and applying proptest-generated insert/delete
//!   batches, asserting after every batch that *every* view is byte-identical to
//!   the vanilla baseline recomputation over the engine's database of record;
//! * a **deterministic long-run test** streaming 120 generator-produced batches
//!   through an engine with five views — the ≥100-batch acceptance gate;
//! * regression tests for the prepared-plan cache (re-registering an identical
//!   shape performs zero re-classifications) and for epoch bookkeeping across
//!   skipped batches (skipped then relevant replays correctly).

use dcq_core::baseline::{baseline_dcq, CqStrategy};
use dcq_core::parse::parse_dcq;
use dcq_core::planner::IncrementalStrategy;
use dcq_datagen::datasets::build_dataset;
use dcq_datagen::{graph_query, update_workload, Graph, GraphQueryId, TripleRuleMix, UpdateSpec};
use dcq_engine::DcqEngine;
use dcq_storage::row::int_row;
use dcq_storage::{Database, DeltaBatch, Relation};
use proptest::prelude::*;

/// The registered views: a mix of difference-linear and hard DCQs over
/// overlapping relations, so one batch fans out to several maintenance engines.
const QUERIES: &[(&str, &str)] = &[
    // Difference-linear: ternary minus triangle (Q_G3 shape).
    (
        "easy_triangle",
        "Q(x, y, z) :- W(x, y, z) EXCEPT R(x, y), S(y, z), T(z, x)",
    ),
    // Difference-linear: same-schema path join (Example 3.3).
    (
        "easy_paths",
        "Q(x, y, z) :- R(x, y), S(y, z) EXCEPT T(x, y), U(y, z)",
    ),
    // Hard case (2): non-linear-reducible negative side.
    (
        "hard_projection",
        "Q(x, z) :- R(x, z) EXCEPT S(x, y), T(y, z)",
    ),
    // Hard case (3): cycle-closing edge (Q_G5 shape).
    (
        "hard_cycle",
        "Q(x, y, z) :- R(x, y), S(y, z) EXCEPT T(x, z), U(y, z)",
    ),
];

const RELATIONS: [&str; 5] = ["R", "S", "T", "U", "W"];

fn initial_db(rows: &[(u8, i64, i64, i64)]) -> Database {
    let mut db = Database::new();
    for name in ["R", "S", "T", "U"] {
        db.add(Relation::from_int_rows(name, &["p", "q"], vec![]))
            .unwrap();
    }
    db.add(Relation::from_int_rows("W", &["p", "q", "r"], vec![]))
        .unwrap();
    let batch = ops_to_batch(rows, true);
    db.apply_batch(&batch).unwrap();
    db
}

/// Turn generated `(relation, a, b, c)` tuples into a delta batch; `c` doubles as
/// the insert/delete selector when `all_inserts` is false.
fn ops_to_batch(ops: &[(u8, i64, i64, i64)], all_inserts: bool) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    for (rel, a, b, c) in ops {
        let name = RELATIONS[(*rel as usize) % RELATIONS.len()];
        let row = if name == "W" {
            int_row([*a, *b, *c])
        } else {
            int_row([*a, *b])
        };
        if all_inserts || *c % 3 != 0 {
            batch.insert(name, row);
        } else {
            batch.delete(name, row);
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every registered view stays byte-identical to full recomputation over
    /// randomized insert/delete batch sequences fanned out by one engine.
    #[test]
    fn multi_view_fanout_equals_recomputation(
        initial in proptest::collection::vec((0u8..5, 0i64..6, 0i64..6, 0i64..6), 0..60),
        batches in proptest::collection::vec(
            proptest::collection::vec((0u8..5, 0i64..6, 0i64..6, 0i64..6), 1..8),
            10..11
        ),
    ) {
        let mut engine = DcqEngine::with_database(initial_db(&initial));
        let mut handles = Vec::new();
        for (label, src) in QUERIES {
            let prepared = engine.prepare(parse_dcq(src).unwrap()).unwrap();
            handles.push((*label, engine.register(&prepared).unwrap()));
        }
        prop_assert_eq!(engine.view_count(), QUERIES.len());
        for (step, ops) in batches.iter().enumerate() {
            let batch = ops_to_batch(ops, false);
            let report = engine.apply(&batch).unwrap();
            prop_assert_eq!(report.epoch, (step + 1) as u64);
            for (label, handle) in &handles {
                let view = engine.view(*handle).unwrap();
                prop_assert_eq!(view.epoch(), report.epoch);
                let expected =
                    baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
                prop_assert_eq!(
                    engine.result(*handle).unwrap().sorted_rows(),
                    expected.sorted_rows(),
                    "{} diverged at batch {}",
                    label, step
                );
            }
        }
    }
}

/// The ≥100-batch acceptance run: 120 generated batches against graph-shaped
/// data, five views (easy and hard, auto- and force-registered) on one engine,
/// every view checked after every batch.
#[test]
fn long_workload_keeps_every_view_exact_over_120_batches() {
    let data = build_dataset(
        "engine-multi-view",
        Graph::uniform(120, 500, 5),
        0.5,
        TripleRuleMix::balanced(),
        9,
    );
    let mut engine = DcqEngine::with_database(data.db.clone());
    let mut handles = vec![
        engine.register_dcq(graph_query(GraphQueryId::QG3)).unwrap(),
        engine.register_dcq(graph_query(GraphQueryId::QG5)).unwrap(),
        engine.register_dcq(graph_query(GraphQueryId::QG1)).unwrap(),
    ];
    // Force the off-dichotomy strategies too: both engines must stay exact.
    handles.push(
        engine
            .register_with(
                graph_query(GraphQueryId::QG3),
                IncrementalStrategy::Counting,
            )
            .unwrap(),
    );
    handles.push(
        engine
            .register_with(
                graph_query(GraphQueryId::QG5),
                IncrementalStrategy::EasyRerun,
            )
            .unwrap(),
    );

    let spec = UpdateSpec::new(120, 6, &["Graph", "Triple"]);
    let batches = update_workload(engine.database(), &spec, 2026);
    assert_eq!(batches.len(), 120);
    for (step, batch) in batches.iter().enumerate() {
        engine.apply(batch).unwrap();
        for handle in &handles {
            let view = engine.view(*handle).unwrap();
            let expected =
                baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.result(*handle).unwrap().sorted_rows(),
                expected.sorted_rows(),
                "{} under {:?} diverged at batch {step}",
                view.dcq().q1.name,
                view.strategy()
            );
        }
    }
    assert_eq!(engine.epoch(), 120);
    assert_eq!(engine.stats().batches_applied, 120);
    for handle in &handles {
        let view = engine.view(*handle).unwrap();
        let stats = view.stats();
        assert_eq!(stats.batches_applied + stats.batches_skipped, 120);
        assert_eq!(view.epoch(), 120);
    }
}

/// Re-registering an identical query shape must hit the plan cache: exactly one
/// classification no matter how many clients prepare the query.
#[test]
fn identical_shape_registration_hits_the_plan_cache() {
    let data = build_dataset(
        "engine-plan-cache",
        Graph::uniform(50, 150, 3),
        0.5,
        TripleRuleMix::balanced(),
        1,
    );
    let mut engine = DcqEngine::with_database(data.db.clone());
    let mut handles = Vec::new();
    for i in 0..8 {
        let prepared = engine.prepare(graph_query(GraphQueryId::QG5)).unwrap();
        assert_eq!(
            prepared.cache_hit(),
            i > 0,
            "only the first prepare classifies"
        );
        handles.push(engine.register(&prepared).unwrap());
    }
    let stats = engine.plan_cache_stats();
    assert_eq!(
        stats.misses, 1,
        "0 re-classifications after the first prepare"
    );
    assert_eq!(stats.hits, 7);
    assert_eq!(stats.entries, 1);
    // All eight views answer identically.
    let reference = engine.result(handles[0]).unwrap().sorted_rows();
    for handle in &handles[1..] {
        assert_eq!(engine.result(*handle).unwrap().sorted_rows(), reference);
    }
}

/// Regression (epoch/log position): a batch touching only unreferenced relations
/// advances every view's epoch, and a following relevant batch lands exactly —
/// replaying the engine log over the registration snapshot reproduces the state.
#[test]
fn skipped_batch_then_relevant_batch_replays_correctly() {
    let mut db = Database::new();
    db.add(Relation::from_int_rows(
        "Graph",
        &["src", "dst"],
        vec![vec![1, 2], vec![2, 3], vec![3, 1], vec![2, 4]],
    ))
    .unwrap();
    db.add(Relation::from_int_rows(
        "Triple",
        &["a", "b", "c"],
        vec![vec![1, 2, 3], vec![2, 4, 4]],
    ))
    .unwrap();
    db.add(Relation::from_int_rows("Unrelated", &["k"], vec![vec![7]]))
        .unwrap();
    let snapshot = db.clone();

    let mut engine = DcqEngine::with_database(db);
    let handle = engine.register_dcq(graph_query(GraphQueryId::QG3)).unwrap();

    let mut skipped = DeltaBatch::new();
    skipped.insert("Unrelated", int_row([8]));
    let report = engine.apply(&skipped).unwrap();
    assert_eq!(report.views_skipped, 1);
    assert_eq!(
        engine.view(handle).unwrap().epoch(),
        1,
        "skip records the epoch"
    );

    let mut relevant = DeltaBatch::new();
    relevant.insert("Unrelated", int_row([9]));
    relevant.delete("Graph", int_row([2, 3]));
    let report = engine.apply(&relevant).unwrap();
    assert_eq!(report.views_applied, 1);
    assert_eq!(engine.view(handle).unwrap().epoch(), 2);

    // The maintained result matches recomputation over the store…
    let view = engine.view(handle).unwrap();
    let expected = baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
    assert_eq!(
        engine.result(handle).unwrap().sorted_rows(),
        expected.sorted_rows()
    );
    // …and replaying the engine's log over the registration snapshot reproduces
    // the database of record exactly (both batches, in order).
    let mut replayed = snapshot;
    engine.log().replay(&mut replayed).unwrap();
    assert_eq!(
        replayed.get("Graph").unwrap().sorted_rows(),
        engine.database().get("Graph").unwrap().sorted_rows()
    );
    assert_eq!(
        replayed.get("Unrelated").unwrap().sorted_rows(),
        engine.database().get("Unrelated").unwrap().sorted_rows()
    );
    let re_expected = baseline_dcq(view.dcq(), &replayed, CqStrategy::Vanilla).unwrap();
    assert_eq!(
        engine.result(handle).unwrap().sorted_rows(),
        re_expected.sorted_rows()
    );
}

/// Distinct `Q_G5`-family registrations share their α-equivalent positive
/// side through the counting pool: eight views, one pooled side, folded once
/// per batch — and every view still matches recomputation.
#[test]
fn distinct_family_shares_counting_sides() {
    let data = build_dataset(
        "engine-side-pool",
        Graph::uniform(60, 240, 3),
        0.5,
        TripleRuleMix::balanced(),
        5,
    );
    const CLOSERS: [&str; 8] = [
        "Graph(n4, n1)",
        "Graph(n1, n4)",
        "Graph(n1, n3)",
        "Graph(n3, n1)",
        "Graph(n2, n1)",
        "Graph(n1, n2)",
        "Graph(n4, n1), Graph(n1, n3)",
        "Graph(n1, n4), Graph(n2, n1)",
    ];
    let mut engine = DcqEngine::with_database(data.db.clone());
    let mut handles = Vec::new();
    for (i, closer) in CLOSERS.iter().enumerate() {
        let dcq = parse_dcq(&format!(
            "V{i}(n1, n2, n3, n4) :- Graph(n1, n2), Graph(n2, n3), Graph(n3, n4) \
             EXCEPT Graph(n2, n3), Graph(n3, n4), {closer}"
        ))
        .unwrap();
        handles.push(
            engine
                .register_with(dcq, IncrementalStrategy::Counting)
                .unwrap(),
        );
    }
    assert_eq!(engine.distinct_view_count(), 8, "all shapes are distinct");
    let pool = engine.counting_pool_stats();
    assert_eq!(
        pool.hits, 7,
        "seven registrations reuse the family's shared positive side"
    );
    // 8 q1 sides collapse to 1; the 8 q2 sides are distinct: 9 live shapes.
    assert_eq!(pool.live, 9);

    let spec = UpdateSpec::new(20, 8, &["Graph"]);
    let batches = update_workload(engine.database(), &spec, 77);
    for batch in &batches {
        engine.apply(batch).unwrap();
        for handle in &handles {
            let view = engine.view(*handle).unwrap();
            let expected =
                baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.result(*handle).unwrap().sorted_rows(),
                expected.sorted_rows(),
                "pooled-side view diverged"
            );
        }
    }
    // Deregistering every view drains the pool and the registry.
    for handle in handles {
        engine.deregister(handle).unwrap();
    }
    assert_eq!(engine.counting_pool_stats().live, 0);
    assert_eq!(engine.index_count(), 0);
}

/// The engine's store is the single copy of the base data, and the index
/// registry is the single copy of the delta-join access structures: the first
/// counting registration acquires its shared indexes, every further
/// registration of the shape adds **zero** bytes.
#[test]
fn store_memory_does_not_scale_with_view_count() {
    let data = build_dataset(
        "engine-memory",
        Graph::uniform(200, 800, 7),
        0.5,
        TripleRuleMix::balanced(),
        3,
    );
    let mut engine = DcqEngine::with_database(data.db.clone());
    let data_only = engine.store_bytes();
    assert_eq!(engine.index_count(), 0);
    let first = engine.register_dcq(graph_query(GraphQueryId::QG5)).unwrap();
    let after_first = engine.store_bytes();
    assert_eq!(
        after_first,
        data_only + engine.index_bytes(),
        "the first registration adds exactly its shared indexes"
    );
    let indexes_after_first = engine.index_count();
    assert!(indexes_after_first > 0);
    for _ in 1..8 {
        engine.register_dcq(graph_query(GraphQueryId::QG5)).unwrap();
    }
    assert_eq!(
        engine.store_bytes(),
        after_first,
        "further registrations must not copy the store or build new indexes"
    );
    assert_eq!(engine.index_count(), indexes_after_first);
    // Dropping the last registration of the shape frees its indexes too.
    engine.deregister(first).unwrap();
    assert_eq!(engine.store_bytes(), after_first, "7 registrations remain");
}
