//! Parallel fan-out ≡ sequential fan-out, bit for bit.
//!
//! The tentpole claim of the threading refactor is that the worker count of
//! `DcqEngine::apply` is *pure scheduling*: at any width, the engine produces
//! identical results, identical `EngineStats`, identical per-view maintenance
//! counters, and identical registry/pool accounting.  Two mechanisms make that
//! true and both are exercised here at their adversarial points:
//!
//! * pooled counting sides are folded **once per epoch** by whichever worker
//!   locks them first, and the fold is a pure function of `(state, batch)` —
//!   so the `Q_G5` family (eight distinct views, one shared positive side) is
//!   registered to maximize cross-worker sharing;
//! * the adaptive policy runs in the sequential tail on delta-fraction EWMAs
//!   only (cost EWMAs are measured but never drive decisions), so
//!   policy-triggered migrations fire on the same batch at every width — the
//!   suite drives views across the crossover in both directions *and* forces
//!   manual mid-stream migrations right after touching batches.
//!
//! The property test runs 13 schedules × 8 batches = 104 generated batches
//! (≥ the 100-batch acceptance gate), over both the `Q_G3` (Triple-based,
//! rerun-leaning) and `Q_G5` (Graph-based, counting) families, and checks the
//! parallel engine against the sequential engine *and* against fresh
//! re-evaluation after every batch.

use dcq_core::baseline::{baseline_dcq, CqStrategy};
use dcq_core::heuristics::MaintenanceCostModel;
use dcq_core::parse::parse_dcq;
use dcq_core::planner::IncrementalStrategy;
use dcq_core::Dcq;
use dcq_datagen::{graph_query, GraphQueryId};
use dcq_engine::{DcqEngine, EngineStats, ViewHandle};
use dcq_storage::row::int_row;
use dcq_storage::{Database, DeltaBatch, Relation};
use proptest::prelude::*;

/// The standing queries: the `Q_G3` family (Triple minus Graph patterns) and
/// the `Q_G5` family (three-step Graph walks with rotated negative closers —
/// all eight positive sides α-collapse into ONE pooled counting side, so every
/// batch races the fan-out workers on the shared fold).
fn standing_queries() -> Vec<Dcq> {
    const QG5_CLOSERS: [&str; 4] = [
        "Graph(n4, n1)",
        "Graph(n1, n4)",
        "Graph(n1, n3)",
        "Graph(n2, n1)",
    ];
    let mut queries = vec![
        graph_query(GraphQueryId::QG3),
        graph_query(GraphQueryId::QG5),
    ];
    queries.push(
        parse_dcq(
            "G3b(n1, n2, n3) :- Triple(n1, n2, n3) \
             EXCEPT Graph(n1, n2), Graph(n2, n3), Graph(n3, n4)",
        )
        .unwrap(),
    );
    for (i, closer) in QG5_CLOSERS.iter().enumerate() {
        queries.push(
            parse_dcq(&format!(
                "V{i}(n1, n2, n3, n4) :- Graph(n1, n2), Graph(n2, n3), Graph(n3, n4) \
                 EXCEPT Graph(n2, n3), Graph(n3, n4), {closer}"
            ))
            .unwrap(),
        );
    }
    queries
}

fn initial_db(graph_rows: &[(i64, i64)], triple_rows: &[(i64, i64, i64)]) -> Database {
    let mut db = Database::new();
    db.add(Relation::from_int_rows(
        "Graph",
        &["src", "dst"],
        graph_rows
            .iter()
            .map(|(a, b)| vec![*a, *b])
            .collect::<Vec<Vec<i64>>>(),
    ))
    .unwrap();
    db.add(Relation::from_int_rows(
        "Triple",
        &["a", "b", "c"],
        triple_rows
            .iter()
            .map(|(a, b, c)| vec![*a, *b, *c])
            .collect::<Vec<Vec<i64>>>(),
    ))
    .unwrap();
    db
}

/// Turn generated ops into a batch over both relations; `a + b` doubles as the
/// insert/delete selector so schedules mix both freely.
fn ops_to_batch(ops: &[(u8, i64, i64, i64)]) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    for (kind, a, b, c) in ops {
        if *kind % 3 == 2 {
            let row = int_row([*a, *b, *c]);
            if (*a + *b) % 4 == 0 {
                batch.delete("Triple", row);
            } else {
                batch.insert("Triple", row);
            }
        } else {
            let row = int_row([*a, *b]);
            if (*a + *b) % 4 == 0 {
                batch.delete("Graph", row);
            } else {
                batch.insert("Graph", row);
            }
        }
    }
    batch
}

/// Register the whole panel on one engine: fixed-strategy views for every
/// standing query plus adaptive twins for the two family heads.
fn register_panel(engine: &mut DcqEngine) -> Vec<ViewHandle> {
    let mut handles = Vec::new();
    for dcq in standing_queries() {
        handles.push(engine.register_dcq(dcq).unwrap());
    }
    handles.push(
        engine
            .register_adaptive(graph_query(GraphQueryId::QG3))
            .unwrap(),
    );
    handles.push(
        engine
            .register_adaptive(graph_query(GraphQueryId::QG5))
            .unwrap(),
    );
    handles
}

/// A cost model aggressive enough that the generated schedules cross it in
/// both directions.  Decisions depend only on observed delta fractions — never
/// on measured time — so they are identical at every worker width.
fn jumpy_model() -> MaintenanceCostModel {
    MaintenanceCostModel {
        crossover_fraction: 0.15,
        hysteresis: 0.1,
        min_observations: 2,
        ..MaintenanceCostModel::default()
    }
}

fn opposite(active: IncrementalStrategy) -> IncrementalStrategy {
    match active {
        IncrementalStrategy::EasyRerun => IncrementalStrategy::Counting,
        IncrementalStrategy::Counting => IncrementalStrategy::EasyRerun,
        IncrementalStrategy::Adaptive => unreachable!("active kinds are concrete"),
    }
}

/// Every observable the two engines must agree on, batch by batch.
fn assert_engines_identical(
    sequential: &DcqEngine,
    parallel: &DcqEngine,
    handles_seq: &[ViewHandle],
    handles_par: &[ViewHandle],
    context: &str,
) {
    // `workers` is configuration, not work — the one stats field the two
    // engines legitimately disagree on.
    assert_eq!(
        EngineStats {
            workers: 0,
            ..sequential.stats()
        },
        EngineStats {
            workers: 0,
            ..parallel.stats()
        },
        "{context}: EngineStats diverged"
    );
    assert_eq!(
        sequential.counting_pool_stats(),
        parallel.counting_pool_stats(),
        "{context}: pool counters diverged"
    );
    // The schedule-independent work counters: index probes, compensated
    // masks/restores, fold ownership and COW accounting depend only on the
    // batch sequence, never on which worker performed the work.
    assert_eq!(
        sequential.counting_telemetry(),
        parallel.counting_telemetry(),
        "{context}: counting work counters diverged"
    );
    assert_eq!(
        sequential.index_telemetry(),
        parallel.index_telemetry(),
        "{context}: index registry telemetry diverged"
    );
    assert_eq!(
        sequential.plan_cache_stats(),
        parallel.plan_cache_stats(),
        "{context}: plan cache diverged"
    );
    assert_eq!(sequential.index_count(), parallel.index_count());
    assert_eq!(sequential.index_bytes(), parallel.index_bytes());
    assert_eq!(sequential.epoch(), parallel.epoch());
    for (s, p) in handles_seq.iter().zip(handles_par) {
        let sv = sequential.view(*s).unwrap();
        let pv = parallel.view(*p).unwrap();
        assert_eq!(
            sequential.result(*s).unwrap().sorted_rows(),
            parallel.result(*p).unwrap().sorted_rows(),
            "{context}: results diverged for {}",
            sv.dcq()
        );
        assert_eq!(sv.stats(), pv.stats(), "{context}: view stats diverged");
        assert_eq!(sv.epoch(), pv.epoch());
        assert_eq!(sv.active_strategy(), pv.active_strategy());
        // BatchStats carry timing EWMAs (not comparable across runs); the
        // decision-driving fields must match exactly.
        let (ss, ps) = (
            sequential.batch_stats(*s).unwrap(),
            parallel.batch_stats(*p).unwrap(),
        );
        assert_eq!(ss.is_some(), ps.is_some());
        if let (Some(ss), Some(ps)) = (ss, ps) {
            assert_eq!(
                ss.ewma_delta_fraction.to_bits(),
                ps.ewma_delta_fraction.to_bits()
            );
            assert_eq!(ss.observed, ps.observed);
            assert_eq!(ss.since_migration, ps.since_migration);
            assert_eq!(ss.cost_samples, ps.cost_samples);
        }
    }
}

proptest! {
    // 13 schedules × 8 batches = 104 generated batches ≥ the 100-batch gate.
    #![proptest_config(ProptestConfig::with_cases(13))]

    /// One generated schedule, two engines: workers = 1 vs workers = 4.  After
    /// every batch (and after every forced mid-stream migration) the engines
    /// must agree on every observable, and the parallel engine must agree with
    /// fresh re-evaluation over its database of record.
    #[test]
    fn parallel_apply_is_bit_identical_to_sequential(
        graph in proptest::collection::vec((0i64..6, 0i64..6), 10..30),
        triples in proptest::collection::vec((0i64..6, 0i64..6, 0i64..6), 5..15),
        batches in proptest::collection::vec(
            proptest::collection::vec((0u8..3, 0i64..6, 0i64..6, 0i64..6), 1..10),
            8..9
        ),
        picks in proptest::collection::vec(0u64..12, 8..9),
    ) {
        let db = initial_db(&graph, &triples);
        let mut sequential = DcqEngine::with_database(db.clone());
        let mut parallel = DcqEngine::with_database(db);
        sequential.set_workers(1);
        parallel.set_workers(4);
        // An off-width partition count so the generated schedules also cover
        // partitioned counting folds (not just wide fan-out).
        parallel.set_fold_partitions(Some(3));
        sequential.set_cost_model(jumpy_model());
        parallel.set_cost_model(jumpy_model());
        let handles_seq = register_panel(&mut sequential);
        let handles_par = register_panel(&mut parallel);
        assert_engines_identical(
            &sequential, &parallel, &handles_seq, &handles_par, "registration",
        );

        let adaptive_slots = [handles_seq.len() - 2, handles_seq.len() - 1];
        for (step, ops) in batches.iter().enumerate() {
            let batch = ops_to_batch(ops);
            let report_seq = sequential.apply(&batch).unwrap();
            let report_par = parallel.apply(&batch).unwrap();
            prop_assert_eq!(report_seq, report_par, "apply reports diverged at batch {}", step);

            // Forced mid-stream migration right after a (possibly touching)
            // batch, on both engines identically — on top of whatever the
            // policy already migrated this epoch.
            let pick = picks[step % picks.len()] as usize;
            if pick < adaptive_slots.len() * 3 {
                let slot = adaptive_slots[pick % adaptive_slots.len()];
                let target = opposite(
                    sequential.view(handles_seq[slot]).unwrap().active_strategy(),
                );
                let migrated_seq = sequential.migrate(handles_seq[slot], target).unwrap();
                let migrated_par = parallel.migrate(handles_par[slot], target).unwrap();
                prop_assert_eq!(migrated_seq, migrated_par);
            }

            assert_engines_identical(
                &sequential,
                &parallel,
                &handles_seq,
                &handles_par,
                &format!("batch {step}"),
            );
            // The parallel engine is not just self-consistent with the
            // sequential one — both are *correct*.
            for handle in &handles_par {
                let view = parallel.view(*handle).unwrap();
                let expected =
                    baseline_dcq(view.dcq(), parallel.database(), CqStrategy::Vanilla).unwrap();
                prop_assert_eq!(
                    parallel.result(*handle).unwrap().sorted_rows(),
                    expected.sorted_rows(),
                    "parallel engine diverged from recomputation at batch {}",
                    step
                );
            }
        }

        // Teardown drains shared state identically at both widths, and the
        // deregistered views' work counters drain fully into the engines'
        // retired base: aggregated totals are preserved exactly, not lost with
        // the views.
        let totals_seq = sequential.counting_telemetry();
        let totals_par = parallel.counting_telemetry();
        for (s, p) in handles_seq.iter().zip(&handles_par) {
            sequential.deregister(*s).unwrap();
            parallel.deregister(*p).unwrap();
        }
        prop_assert_eq!(sequential.index_count(), 0);
        prop_assert_eq!(parallel.index_count(), 0);
        prop_assert_eq!(parallel.counting_pool_stats().live, 0);
        prop_assert_eq!(
            sequential.counting_telemetry(),
            totals_seq,
            "deregistration must not lose counting telemetry"
        );
        prop_assert_eq!(
            parallel.counting_telemetry(),
            totals_par,
            "deregistration must not lose counting telemetry"
        );
        prop_assert_eq!(sequential.counting_telemetry(), parallel.counting_telemetry());
    }
}

/// Worker counts beyond the view count, equal to it, and far beyond the host's
/// core count all produce the same state as the sequential engine.
#[test]
fn any_worker_width_matches_sequential() {
    let db = initial_db(
        &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 2), (2, 0)],
        &[(0, 1, 2), (1, 2, 3), (3, 3, 3)],
    );
    let mut reference = DcqEngine::with_database(db.clone());
    reference.set_workers(1);
    reference.set_cost_model(jumpy_model());
    let reference_handles = register_panel(&mut reference);

    let batches: Vec<DeltaBatch> = (0..6i64)
        .map(|step| {
            let mut batch = DeltaBatch::new();
            batch.insert("Graph", int_row([10 + step, step]));
            batch.insert("Graph", int_row([step, 10 + step]));
            if step % 2 == 0 {
                batch.delete("Graph", int_row([step, step + 1]));
                batch.insert("Triple", int_row([step, step, step]));
            }
            batch
        })
        .collect();
    for batch in &batches {
        reference.apply(batch).unwrap();
    }

    for workers in [2, 3, 9, 64] {
        let mut engine = DcqEngine::with_database(db.clone());
        engine.set_workers(workers);
        engine.set_cost_model(jumpy_model());
        let handles = register_panel(&mut engine);
        for batch in &batches {
            engine.apply(batch).unwrap();
        }
        assert_engines_identical(
            &reference,
            &engine,
            &reference_handles,
            &handles,
            &format!("workers = {workers}"),
        );
    }
}

/// The fold partition count is pure scheduling too: K ∈ {1, 2, 3, 8}
/// partitioned counting folds over the full panel (including the eight-view
/// one-pooled-side `Q_G5` family) produce identical observables, with forced
/// mid-stream migrations landing identically at every K.
#[test]
fn any_fold_partition_count_matches_sequential() {
    let db = initial_db(
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (1, 4),
            (4, 2),
            (2, 0),
            (4, 4),
        ],
        &[(0, 1, 2), (1, 2, 3), (3, 3, 3)],
    );
    let batches: Vec<DeltaBatch> = (0..8i64)
        .map(|step| {
            let mut batch = DeltaBatch::new();
            batch.insert("Graph", int_row([step % 5, (step + 2) % 5]));
            batch.insert("Graph", int_row([(step + 1) % 5, step % 5]));
            if step % 2 == 1 {
                batch.delete("Graph", int_row([step % 4, (step + 1) % 4]));
                batch.insert("Triple", int_row([step, step % 3, step % 2]));
            }
            batch
        })
        .collect();

    let run = |partitions: usize| -> (DcqEngine, Vec<ViewHandle>) {
        let mut engine = DcqEngine::with_database(db.clone());
        engine.set_workers(if partitions == 1 { 1 } else { 2 });
        engine.set_fold_partitions(Some(partitions));
        engine.set_cost_model(jumpy_model());
        let handles = register_panel(&mut engine);
        assert_eq!(engine.fold_partitions(), partitions);
        let adaptive_slots = [handles.len() - 2, handles.len() - 1];
        for (step, batch) in batches.iter().enumerate() {
            engine.apply(batch).unwrap();
            // Forced migrations right after touching batches: migrated views
            // must inherit the partition count, and the rebuilt side must land
            // identically at every K.
            if step == 2 || step == 5 {
                let slot = adaptive_slots[step % 2];
                let target = opposite(engine.view(handles[slot]).unwrap().active_strategy());
                engine.migrate(handles[slot], target).unwrap();
            }
        }
        (engine, handles)
    };

    let (reference, reference_handles) = run(1);
    for partitions in [2, 3, 8] {
        let (engine, handles) = run(partitions);
        assert_engines_identical(
            &reference,
            &engine,
            &reference_handles,
            &handles,
            &format!("fold partitions = {partitions}"),
        );
    }
}
