//! Property-based tests for the flat interned storage layer.
//!
//! The flat layout rests on two algebraic facts, checked here over random
//! value mixes covering every [`Value`] variant:
//!
//! * **Interning is a bijection on the interned set**: `resolve(intern(v)) == v`
//!   for every value, re-interning is stable (same id back), and distinct
//!   values never collide on an id — this is what lets the hot path compare
//!   raw `u32`s where it used to compare (and hash) whole values.
//! * **Id-space comparison is value order**: `ValueDict::cmp_ids` must induce
//!   exactly the total order of `Value: Ord`, regardless of arrival order —
//!   sorting a relation by ids and sorting it by values must agree.
//!
//! A third property closes the loop with durability: a checkpoint of a random
//! database — serialized in the v2 dictionary-encoded format — must read back
//! to exactly the database that was written.

use dcq_storage::checkpoint::{read_checkpoint, write_checkpoint};
use dcq_storage::row::Row;
use dcq_storage::{Database, Relation, Schema, Value, ValueDict};
use proptest::prelude::*;

/// Strategy: a random `Value` covering every variant, with collisions likely
/// (small domains) so re-interning and duplicate handling get exercised.
fn value_strategy() -> impl Strategy<Value = Value> {
    (0u8..5, -40i64..40).prop_map(|(tag, n)| match tag {
        0 => Value::Int(n),
        // Magnitudes far outside the small domain, including the extremes.
        1 => Value::Int(if n >= 0 {
            i64::MAX - n
        } else {
            i64::MIN - n - 1
        }),
        2 => Value::str(format!("s{n}")),
        3 => Value::str(String::new()),
        _ => Value::Null,
    })
}

fn values_strategy() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(value_strategy(), 1..80)
}

proptest! {
    /// `resolve ∘ intern` is the identity, re-interning returns the same id,
    /// `lookup` agrees with `intern`, and distinct values get distinct ids.
    #[test]
    fn intern_resolve_is_identity(values in values_strategy()) {
        let mut dict = ValueDict::new();
        let ids: Vec<u32> = values.iter().map(|v| dict.intern(v)).collect();
        for (v, &id) in values.iter().zip(&ids) {
            prop_assert_eq!(dict.resolve(id), v, "resolve must invert intern");
            prop_assert_eq!(dict.lookup(v), Some(id), "lookup must agree with intern");
            prop_assert_eq!(dict.intern(v), id, "re-interning must be stable");
        }
        // Injectivity both ways: equal values share an id, distinct values
        // never do.
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                prop_assert_eq!(a == b, ids[i] == ids[j], "id equality must mirror value equality");
            }
        }
        // The snapshot sees every id the live dict handed out.
        let snap = dict.snapshot();
        for (v, &id) in values.iter().zip(&ids) {
            prop_assert_eq!(snap.resolve(id), Some(v));
        }
    }

    /// `cmp_ids` induces exactly the `Value` total order, independent of the
    /// order values arrived in the dictionary.
    #[test]
    fn id_comparison_is_value_order(values in values_strategy()) {
        let mut dict = ValueDict::new();
        let ids: Vec<u32> = values.iter().map(|v| dict.intern(v)).collect();
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                prop_assert_eq!(
                    dict.cmp_ids(ids[i], ids[j]),
                    a.cmp(b),
                    "id-space comparison must equal value comparison"
                );
            }
        }
        // Sorting by id comparison and sorting by value must produce the same
        // sequence of values.
        let mut by_ids = ids.clone();
        by_ids.sort_by(|&a, &b| dict.cmp_ids(a, b));
        let mut by_values = values.clone();
        by_values.sort();
        let resolved: Vec<Value> = by_ids.iter().map(|&id| dict.resolve(id).clone()).collect();
        prop_assert_eq!(resolved, by_values);
    }

    /// A v2 (dictionary-encoded) checkpoint of a random mixed-value database
    /// reads back bit-for-bit equal.
    #[test]
    fn checkpoint_round_trips_random_databases(
        pairs in proptest::collection::vec((value_strategy(), value_strategy()), 0..40),
        epoch in 0u64..1000,
    ) {
        let mut rel = Relation::new("R", Schema::from_names(["a", "b"]));
        for (a, b) in pairs {
            rel.insert(Row::new(vec![a, b])).unwrap();
        }
        // Checkpoints serialize set-semantics stores; the reader dedups
        // defensively, so feed it a distinct relation to compare against.
        let mut db = Database::new();
        db.add(rel.distinct()).unwrap();
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, epoch, &db).unwrap();
        let (back_epoch, back) = read_checkpoint(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back_epoch, epoch);
        prop_assert_eq!(
            back.get("R").unwrap().sorted_rows(),
            db.get("R").unwrap().sorted_rows()
        );
    }
}
