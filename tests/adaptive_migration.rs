//! Live strategy migration ≡ never migrating ≡ fresh re-evaluation.
//!
//! The adaptive policy is only sound if migrating a view between touched-side
//! rerun and counting maintenance can *never* change its result or leak shared
//! state.  This suite pins that down from three directions:
//!
//! * a **property test**: random DCQs (self-joins, repeated variables, easy and
//!   hard shapes) × random update schedules with forced mid-stream migrations
//!   in both directions — every migration happens right after a batch that
//!   touched the view, the adversarial moment — asserting after every step that
//!   each migrated view is byte-identical to a never-migrated control view of
//!   the same query *and* to fresh re-evaluation over the database of record;
//! * **conservation**: the registry index count and the pool's live-side count
//!   are a function of which views currently run counting — re-entering a
//!   previously seen configuration must restore both numbers exactly, and
//!   deregistering everything must drain both to zero;
//! * a release-gated **crossover regression test** (`--ignored`; CI runs it
//!   under `--release`): one adaptive view driven across delta sizes
//!   0.1% → 30%, its per-batch cost asserted within a tolerance of
//!   `min(rerun, counting)` at every size, with the cost model fitted from the
//!   same run via `MaintenanceCostModel::from_crossover_samples` — the
//!   calibrate-then-deploy loop end to end.  This pins the compensated-probe
//!   setup cost: if per-batch counting setup regresses, the counting arm drags
//!   the adaptive arm past the tolerance at small deltas.

use dcq_core::baseline::{baseline_dcq, CqStrategy};
use dcq_core::heuristics::{CrossoverSample, MaintenanceCostModel};
use dcq_core::parse::parse_dcq;
use dcq_core::planner::IncrementalStrategy;
use dcq_datagen::datasets::build_dataset;
use dcq_datagen::{graph_query, update_workload, Graph, GraphQueryId, TripleRuleMix, UpdateSpec};
use dcq_engine::{DcqEngine, ViewHandle};
use dcq_storage::row::int_row;
use dcq_storage::{Database, DeltaBatch, Relation, UpdateLog};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Instant;

/// Easy and hard shapes over two relations, with self-joins and repeated
/// variables — the machinery most likely to break across an engine swap.
const QUERIES: &[(&str, &str)] = &[
    // Difference-linear single-atom difference (starts on rerun).
    ("direct", "Q(x, y) :- R(x, y) EXCEPT S(x, y)"),
    // Two-step self-join minus the direct edge (starts on counting).
    ("closure", "Q(x, z) :- R(x, y), R(y, z) EXCEPT R(x, z)"),
    // Triangle through a triple self-join.
    (
        "triangle",
        "Q(x, y, z) :- R(x, y), R(y, z), R(z, x) EXCEPT S(x, y), S(y, z)",
    ),
    // Repeated variables on both sides.
    ("loops", "Q(x) :- R(x, x) EXCEPT S(x, x)"),
    // Mixed self-join across relations with a repeated variable in S.
    ("mixed", "Q(x, y) :- R(x, y), S(y, y) EXCEPT R(y, x)"),
];

fn initial_db(rows: &[(u8, i64, i64)]) -> Database {
    let mut db = Database::new();
    for name in ["R", "S"] {
        db.add(Relation::from_int_rows(name, &["p", "q"], vec![]))
            .unwrap();
    }
    db.apply_batch(&ops_to_batch(rows, true)).unwrap();
    db
}

/// Turn generated `(relation, a, b)` tuples into a delta batch; `a + b` doubles
/// as the insert/delete selector when `all_inserts` is false.
fn ops_to_batch(ops: &[(u8, i64, i64)], all_inserts: bool) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    for (rel, a, b) in ops {
        let name = if *rel % 2 == 0 { "R" } else { "S" };
        let row = int_row([*a, *b]);
        if all_inserts || (*a + *b) % 3 != 0 {
            batch.insert(name, row);
        } else {
            batch.delete(name, row);
        }
    }
    batch
}

/// A cost model that never migrates on its own, so the schedule's *forced*
/// migrations are the only ones and the control flow stays deterministic.
fn manual_only() -> MaintenanceCostModel {
    MaintenanceCostModel {
        min_observations: usize::MAX,
        ..MaintenanceCostModel::default()
    }
}

/// The opposite concrete engine kind.
fn opposite(active: IncrementalStrategy) -> IncrementalStrategy {
    match active {
        IncrementalStrategy::EasyRerun => IncrementalStrategy::Counting,
        IncrementalStrategy::Counting => IncrementalStrategy::EasyRerun,
        IncrementalStrategy::Adaptive => unreachable!("active kinds are concrete"),
    }
}

/// Assert one view against the vanilla baseline over the engine's database.
fn assert_exact(engine: &DcqEngine, handle: ViewHandle, context: &str) {
    let view = engine.view(handle).unwrap();
    let expected = baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
    assert_eq!(
        engine.result(handle).unwrap().sorted_rows(),
        expected.sorted_rows(),
        "{context} diverged from fresh re-evaluation"
    );
}

proptest! {
    // 104 generated schedules ≥ the 100-schedule acceptance gate.
    #![proptest_config(ProptestConfig::with_cases(104))]

    /// Random update schedule with a forced migration after (almost) every
    /// batch, rotating through the views: migrated views stay byte-identical
    /// to their never-migrated controls and to fresh re-evaluation, and the
    /// shared registry/pool counters are conserved per active-kind
    /// configuration.
    #[test]
    fn forced_migrations_never_change_results(
        initial in proptest::collection::vec((0u8..2, 0i64..5, 0i64..5), 0..40),
        batches in proptest::collection::vec(
            proptest::collection::vec((0u8..2, 0i64..5, 0i64..5), 1..8),
            8..9
        ),
        picks in proptest::collection::vec(0u64..8, 8..9),
    ) {
        let mut engine = DcqEngine::with_database(initial_db(&initial));
        engine.set_cost_model(manual_only());
        let mut adaptive: Vec<(&str, ViewHandle)> = Vec::new();
        let mut controls: Vec<(&str, ViewHandle)> = Vec::new();
        for (label, src) in QUERIES {
            adaptive.push((label, engine.register_adaptive(parse_dcq(src).unwrap()).unwrap()));
            // The control keeps the dichotomy's structural strategy and is
            // never migrated; its (shape, strategy) key is distinct from the
            // adaptive twin's, so it is maintained independently.
            controls.push((label, engine.register_dcq(parse_dcq(src).unwrap()).unwrap()));
        }

        // Conservation ledger: (which adaptive views run counting) →
        // (registry index count, live pooled side shapes).  Re-entering a
        // configuration must restore both exactly.
        let mut ledger: HashMap<Vec<bool>, (usize, usize)> = HashMap::new();
        let config = |engine: &DcqEngine, handles: &[(&str, ViewHandle)]| -> Vec<bool> {
            handles
                .iter()
                .map(|(_, h)| {
                    engine.view(*h).unwrap().active_strategy() == IncrementalStrategy::Counting
                })
                .collect()
        };
        let mut check_conservation = |engine: &DcqEngine, context: &str| {
            let key = config(engine, &adaptive);
            let now = (engine.index_count(), engine.counting_pool_stats().live);
            let expected = *ledger.entry(key.clone()).or_insert(now);
            assert_eq!(
                now, expected,
                "{context}: registry/pool counters not conserved for configuration {key:?}"
            );
        };
        check_conservation(&engine, "registration");

        for (step, ops) in batches.iter().enumerate() {
            let batch = ops_to_batch(ops, false);
            engine.apply(&batch).unwrap();
            // Force a migration right after the batch — including on batches
            // that just touched the migrating view — rotating the victim and
            // flipping its active kind, so every view migrates repeatedly in
            // both directions over the schedule.
            let pick = picks[step % picks.len()] as usize;
            if pick < adaptive.len() {
                let (label, handle) = adaptive[pick];
                let target = opposite(engine.view(handle).unwrap().active_strategy());
                prop_assert!(engine.migrate(handle, target).unwrap());
                prop_assert_eq!(engine.view(handle).unwrap().active_strategy(), target);
                // Equality must hold immediately after the swap, before any
                // further batch repairs anything.
                assert_exact(&engine, handle, &format!("{label} right after migrating"));
            }
            for ((label, a), (_, c)) in adaptive.iter().zip(&controls) {
                assert_exact(&engine, *a, &format!("{label} (adaptive) at batch {step}"));
                assert_exact(&engine, *c, &format!("{label} (control) at batch {step}"));
                prop_assert_eq!(
                    engine.result(*a).unwrap().sorted_rows(),
                    engine.result(*c).unwrap().sorted_rows(),
                    "{} migrated view differs from its never-migrated control",
                    label
                );
            }
            check_conservation(&engine, &format!("batch {step}"));
        }

        // Nothing may leak: dropping every registration drains the registry
        // and the pool completely, whatever configuration we ended in.
        for (_, h) in adaptive.iter().chain(controls.iter()) {
            engine.deregister(*h).unwrap();
        }
        prop_assert_eq!(engine.index_count(), 0, "leaked registry indexes");
        prop_assert_eq!(engine.stats().index_bytes, 0);
        prop_assert_eq!(engine.counting_pool_stats().live, 0, "leaked pooled sides");
    }
}

/// Deterministic companion: a migration on the very batch that changes the
/// view's result, in both directions, with explicit registry accounting.
#[test]
fn migration_on_a_touching_batch_is_exact_and_accounted() {
    let mut db = Database::new();
    db.add(Relation::from_int_rows(
        "R",
        &["p", "q"],
        vec![vec![1, 2], vec![2, 3], vec![3, 1], vec![2, 2]],
    ))
    .unwrap();
    db.add(Relation::from_int_rows(
        "S",
        &["p", "q"],
        vec![vec![1, 2], vec![2, 2]],
    ))
    .unwrap();
    let mut engine = DcqEngine::with_database(db);
    engine.set_cost_model(manual_only());
    let view = engine
        .register_adaptive(parse_dcq("Q(x, z) :- R(x, y), R(y, z) EXCEPT R(x, z)").unwrap())
        .unwrap();
    assert_eq!(
        engine.view(view).unwrap().active_strategy(),
        IncrementalStrategy::Counting
    );
    let counting_indexes = engine.index_count();
    assert!(counting_indexes > 0);

    // Batch that changes the result, then migrate counting → rerun.
    let mut batch = DeltaBatch::new();
    batch.insert("R", int_row([3, 2]));
    batch.delete("R", int_row([1, 2]));
    engine.apply(&batch).unwrap();
    assert!(engine
        .migrate(view, IncrementalStrategy::EasyRerun)
        .unwrap());
    assert_exact(&engine, view, "counting→rerun on a touching batch");
    assert_eq!(
        engine.index_count(),
        0,
        "sole counting holder released its indexes on migration"
    );
    assert_eq!(engine.stats().migrations_to_rerun, 1);

    // Another effective batch under rerun, then migrate back.
    let mut batch = DeltaBatch::new();
    batch.insert("R", int_row([1, 2]));
    batch.insert("R", int_row([2, 1]));
    engine.apply(&batch).unwrap();
    assert!(engine.migrate(view, IncrementalStrategy::Counting).unwrap());
    assert_exact(&engine, view, "rerun→counting on a touching batch");
    assert_eq!(
        engine.index_count(),
        counting_indexes,
        "re-migration re-acquired exactly the structural index set"
    );
    assert_eq!(engine.stats().migrations_to_counting, 1);
    assert_eq!(engine.view(view).unwrap().stats().migrations, 2);

    // Keep maintaining after the round trip.
    let mut batch = DeltaBatch::new();
    batch.delete("R", int_row([2, 3]));
    batch.insert("S", int_row([9, 9]));
    engine.apply(&batch).unwrap();
    assert_exact(&engine, view, "maintenance after a migration round trip");

    engine.deregister(view).unwrap();
    assert_eq!(engine.index_count(), 0);
    assert_eq!(engine.counting_pool_stats().live, 0);
}

/// One measured cell of the crossover sweep.
struct ArmCost {
    per_batch_ms: f64,
}

/// Median-of-samples per-batch cost of applying `batch` + its inverse to the
/// engine (the inverse restores the registration state, so every sample does
/// two full-sized effective batch applications; we report half).
fn measure_arm(engine: &mut DcqEngine, batch: &DeltaBatch, inverse: &DeltaBatch) -> ArmCost {
    // One untimed round to settle allocations (and, for the adaptive arm, to
    // let the policy converge — its EWMA saw this fraction during warm-up).
    for _ in 0..2 {
        engine.apply(batch).expect("warm-up applies");
        engine.apply(inverse).expect("warm-up inverse applies");
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let started = Instant::now();
            engine.apply(batch).expect("measured batch applies");
            engine.apply(inverse).expect("measured inverse applies");
            started.elapsed().as_secs_f64() * 1e3 / 2.0
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    ArmCost {
        per_batch_ms: samples[samples.len() / 2],
    }
}

/// The crossover regression gate: across delta sizes 0.1% → 30%, the adaptive
/// arm must track `min(rerun, counting)` within `TOLERANCE`.  Timing-sensitive,
/// hence `#[ignore]`d by default; CI runs it explicitly under `--release`
/// (debug-build timings distort the rerun/counting ratio).
#[test]
#[ignore = "timing-sensitive sweep; CI runs it under --release"]
fn adaptive_arm_tracks_the_best_arm_across_the_delta_sweep() {
    const TOLERANCE: f64 = 1.40;
    const FRACTIONS: [f64; 5] = [0.001, 0.01, 0.03, 0.1, 0.3];

    let data = build_dataset(
        "adaptive-crossover",
        Graph::uniform(1_200, 5_000, 11),
        0.5,
        TripleRuleMix::balanced(),
        4,
    );
    let total = data.db.input_size();
    let dcq = graph_query(GraphQueryId::QG5);

    // Phase 1: measure both fixed arms at every delta size.
    let mut cells: Vec<(f64, DeltaBatch, DeltaBatch, f64, f64)> = Vec::new();
    for fraction in FRACTIONS {
        let tuples = ((total as f64 * fraction) as usize).max(1);
        let batch = update_workload(&data.db, &UpdateSpec::new(1, tuples, &["Graph"]), 23)
            .pop()
            .expect("one batch");
        let inverse = batch.inverse();
        let mut arms = [0.0f64; 2];
        for (slot, strategy) in [
            IncrementalStrategy::EasyRerun,
            IncrementalStrategy::Counting,
        ]
        .into_iter()
        .enumerate()
        {
            let mut engine = DcqEngine::with_database(data.db.clone());
            engine.set_log(UpdateLog::with_limit(4));
            engine
                .register_with(dcq.clone(), strategy)
                .expect("register");
            arms[slot] = measure_arm(&mut engine, &batch, &inverse).per_batch_ms;
        }
        cells.push((fraction, batch, inverse, arms[0], arms[1]));
    }

    // Phase 2: fit the host's cost model from the sweep — the calibrate →
    // deploy loop the `calibrate` example automates.
    let samples: Vec<CrossoverSample> = cells
        .iter()
        .map(|(fraction, _, _, rerun, counting)| CrossoverSample {
            delta_fraction: *fraction,
            rerun_cost: *rerun,
            counting_cost: *counting,
        })
        .collect();
    let model = MaintenanceCostModel::from_crossover_samples(&samples)
        .expect("sweep yields a fitted model");
    println!(
        "fitted crossover: {:.4} (sweep {:?})",
        model.crossover_fraction,
        samples
            .iter()
            .map(|s| (s.delta_fraction, s.rerun_cost, s.counting_cost))
            .collect::<Vec<_>>()
    );

    // Phase 3: one adaptive view per delta size under the fitted model must
    // stay within TOLERANCE of the better fixed arm.
    for (fraction, batch, inverse, rerun_ms, counting_ms) in &cells {
        let mut engine = DcqEngine::with_database(data.db.clone());
        engine.set_log(UpdateLog::with_limit(4));
        engine.set_cost_model(MaintenanceCostModel {
            min_observations: 2,
            ..model
        });
        let view = engine.register_adaptive(dcq.clone()).expect("register");
        // Let the policy see the workload and settle before measuring.
        for _ in 0..3 {
            engine.apply(batch).expect("settle");
            engine.apply(inverse).expect("settle inverse");
        }
        let adaptive_ms = measure_arm(&mut engine, batch, inverse).per_batch_ms;
        let best = rerun_ms.min(*counting_ms);
        println!(
            "delta {:>6.3}: rerun {rerun_ms:>9.3} ms  counting {counting_ms:>9.3} ms  \
             adaptive {adaptive_ms:>9.3} ms ({:?}, {:.2}× best)",
            fraction,
            engine.view(view).unwrap().active_strategy(),
            adaptive_ms / best,
        );
        assert!(
            adaptive_ms <= best * TOLERANCE + 0.05,
            "adaptive arm {adaptive_ms:.3} ms exceeds {TOLERANCE}× the best fixed arm \
             ({best:.3} ms) at delta fraction {fraction} — per-batch setup cost regressed?"
        );
    }
}
