//! Shared-index engine ≡ fresh re-evaluation, on the shapes that stress the
//! index registry hardest.
//!
//! The counting engines no longer own rows or indexes: every delta-join probe
//! goes through `SharedDatabase`'s refcounted index registry, with old-state
//! probes compensated from the batch delta.  The shapes most likely to break
//! that machinery are:
//!
//! * **self-joins** — several occurrences of one relation must telescope
//!   (earlier occurrences probed in the new state, later ones in the old state)
//!   against a *single* physical index that is already fully updated;
//! * **repeated-variable atoms** — the equality filter lives in the index
//!   signature (`IndexKey::equalities`) and in the delta-binding path, and a
//!   row failing it must be invisible at every occurrence;
//! * **cross-view sharing** — distinct DCQs registered on one engine resolve
//!   overlapping probe signatures to the *same* registry entries, so a bug in
//!   refcounting or maintenance corrupts several views at once.
//!
//! The property test drives all of that with proptest-generated insert/delete
//! batches on one engine hosting every query (counting forced), asserting after
//! every batch that every view is byte-identical to the vanilla baseline over
//! the engine's database of record; a deterministic companion churns
//! registrations and checks the registry drains to zero.

use dcq_core::baseline::{baseline_dcq, CqStrategy};
use dcq_core::parse::parse_dcq;
use dcq_core::planner::IncrementalStrategy;
use dcq_engine::DcqEngine;
use dcq_storage::row::int_row;
use dcq_storage::{Database, DeltaBatch, Relation};
use proptest::prelude::*;

/// Self-join- and repeated-variable-heavy DCQs, all maintained by counting so
/// the shared-index delta-join path is exercised regardless of classification.
const QUERIES: &[(&str, &str)] = &[
    // Repeated variables on both sides (the `equalities` filter end to end).
    ("loops", "Q(x) :- R(x, x) EXCEPT S(x, x)"),
    // Two-step self-join minus the direct edge: three occurrences of R share
    // indexes, and the negative side probes the same relation again.
    ("closure", "Q(x, z) :- R(x, y), R(y, z) EXCEPT R(x, z)"),
    // Symmetric self-join with a repeated-variable-only negative side.
    (
        "mutual",
        "Q(x, y) :- R(x, y), R(y, x) EXCEPT R(x, x), R(y, y)",
    ),
    // Triangle through a triple self-join.
    (
        "triangle",
        "Q(x, y, z) :- R(x, y), R(y, z), R(z, x) EXCEPT S(x, y), S(y, z)",
    ),
    // Mixed: self-join across relations with a repeated variable in S.
    ("mixed", "Q(x, y) :- R(x, y), S(y, y) EXCEPT R(y, x)"),
];

fn initial_db(rows: &[(u8, i64, i64)]) -> Database {
    let mut db = Database::new();
    for name in ["R", "S"] {
        db.add(Relation::from_int_rows(name, &["p", "q"], vec![]))
            .unwrap();
    }
    let batch = ops_to_batch(rows, true);
    db.apply_batch(&batch).unwrap();
    db
}

/// Turn generated `(relation, a, b)` tuples into a delta batch; `a + b` doubles
/// as the insert/delete selector when `all_inserts` is false.
fn ops_to_batch(ops: &[(u8, i64, i64)], all_inserts: bool) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    for (rel, a, b) in ops {
        let name = if *rel % 2 == 0 { "R" } else { "S" };
        let row = int_row([*a, *b]);
        if all_inserts || (*a + *b) % 3 != 0 {
            batch.insert(name, row);
        } else {
            batch.delete(name, row);
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One engine, every self-join/repeated-variable query registered (counting
    /// forced, overlapping registry entries): after every randomized batch,
    /// every view equals fresh re-evaluation over the database of record.
    #[test]
    fn shared_index_views_equal_fresh_reevaluation(
        initial in proptest::collection::vec((0u8..2, 0i64..5, 0i64..5), 0..40),
        batches in proptest::collection::vec(
            proptest::collection::vec((0u8..2, 0i64..5, 0i64..5), 1..8),
            8..9
        ),
    ) {
        let mut engine = DcqEngine::with_database(initial_db(&initial));
        let mut handles = Vec::new();
        for (label, src) in QUERIES {
            let handle = engine
                .register_with(parse_dcq(src).unwrap(), IncrementalStrategy::Counting)
                .unwrap();
            handles.push((*label, handle));
        }
        // The family overlaps heavily: sharing must leave fewer physical
        // indexes than the sum of per-view plans would build.
        prop_assert!(engine.index_count() > 0);

        // Registration state must already match.
        for (label, handle) in &handles {
            let view = engine.view(*handle).unwrap();
            let expected =
                baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
            prop_assert_eq!(
                engine.result(*handle).unwrap().sorted_rows(),
                expected.sorted_rows(),
                "{} diverged at registration", label
            );
        }
        for (step, ops) in batches.iter().enumerate() {
            let batch = ops_to_batch(ops, false);
            engine.apply(&batch).unwrap();
            for (label, handle) in &handles {
                let view = engine.view(*handle).unwrap();
                let expected =
                    baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
                prop_assert_eq!(
                    engine.result(*handle).unwrap().sorted_rows(),
                    expected.sorted_rows(),
                    "{} diverged at batch {}",
                    label, step
                );
            }
        }
    }
}

/// Registration churn: views come and go, shared entries are refcounted, and
/// the registry drains to zero when the last counting view leaves — while the
/// surviving views keep answering exactly.
#[test]
fn registry_refcounts_survive_registration_churn() {
    let mut db = Database::new();
    db.add(Relation::from_int_rows(
        "R",
        &["p", "q"],
        vec![vec![1, 2], vec![2, 3], vec![3, 1], vec![2, 2]],
    ))
    .unwrap();
    db.add(Relation::from_int_rows(
        "S",
        &["p", "q"],
        vec![vec![1, 2], vec![2, 2]],
    ))
    .unwrap();
    let mut engine = DcqEngine::with_database(db);

    let closure = engine
        .register_with(
            parse_dcq("Q(x, z) :- R(x, y), R(y, z) EXCEPT R(x, z)").unwrap(),
            IncrementalStrategy::Counting,
        )
        .unwrap();
    let with_closure = engine.index_count();
    assert!(with_closure > 0);
    // An α-renamed duplicate shares the maintained view (and its indexes).
    let renamed = engine
        .register_with(
            parse_dcq("P(a, c) :- R(a, b), R(b, c) EXCEPT R(a, c)").unwrap(),
            IncrementalStrategy::Counting,
        )
        .unwrap();
    assert_eq!(engine.index_count(), with_closure);
    // A distinct shape overlapping the same relation reuses entries where the
    // probe signatures agree.
    let triangle = engine
        .register_with(
            parse_dcq("Q(x, y, z) :- R(x, y), R(y, z), R(z, x) EXCEPT S(x, y), S(y, z)").unwrap(),
            IncrementalStrategy::Counting,
        )
        .unwrap();
    let with_all = engine.index_count();

    // Mutate under churn and keep checking exactness.
    let mut batch = DeltaBatch::new();
    batch.insert("R", int_row([3, 2]));
    batch.delete("R", int_row([1, 2]));
    batch.insert("S", int_row([3, 1]));
    engine.apply(&batch).unwrap();
    for handle in [closure, renamed, triangle] {
        let view = engine.view(handle).unwrap();
        let expected = baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
        assert_eq!(
            engine.result(handle).unwrap().sorted_rows(),
            expected.sorted_rows()
        );
    }

    engine.deregister(renamed).unwrap();
    assert_eq!(engine.index_count(), with_all, "shape still registered");
    engine.deregister(closure).unwrap();
    // Every index the closure view probed is also probed by the triangle view
    // (its occurrence plans hit R on both ends), so nothing is freed yet —
    // refcounts keep shared entries alive while *any* view still probes them.
    assert_eq!(
        engine.index_count(),
        with_all,
        "closure's entries are all shared with the triangle view"
    );
    // The survivor still answers exactly after its neighbours left.
    let mut batch = DeltaBatch::new();
    batch.insert("R", int_row([1, 2]));
    engine.apply(&batch).unwrap();
    let view = engine.view(triangle).unwrap();
    let expected = baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
    assert_eq!(
        engine.result(triangle).unwrap().sorted_rows(),
        expected.sorted_rows()
    );
    engine.deregister(triangle).unwrap();
    assert_eq!(
        engine.index_count(),
        0,
        "registry drains when the last counting view leaves"
    );
    assert_eq!(engine.stats().index_bytes, 0);
}
