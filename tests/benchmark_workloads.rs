//! The synthetic benchmark workloads (TPC-H Q16-like, TPC-DS Q35/Q69-like): the
//! rewritten plans must match the naive plans, and the generated data must exhibit
//! the paper's `OUT₁ ≈ OUT₂ ≈ OUT ≪ N` regime that explains why the optimized
//! queries barely help there.

use dcq_core::aggregate::{numerical_difference_aggregate, AnnotatedDatabase};
use dcq_core::baseline::{baseline_dcq_with_stats, CqStrategy};
use dcq_core::multi::{multi_dcq_naive, multi_dcq_recursive};
use dcq_datagen::{tpcds_q35_workload, tpcds_q69_workload, tpch_q16_workload};
use dcq_storage::Attr;

#[test]
fn all_benchmark_workloads_agree_between_plans() {
    for workload in [
        tpch_q16_workload(1),
        tpcds_q35_workload(1),
        tpcds_q69_workload(1),
    ] {
        let fast = multi_dcq_recursive(&workload.multi, &workload.db).unwrap();
        let slow = multi_dcq_naive(&workload.multi, &workload.db, CqStrategy::Vanilla).unwrap();
        assert_eq!(fast.sorted_rows(), slow.sorted_rows(), "{}", workload.name);
    }
}

#[test]
fn q16_exhibits_small_output_regime() {
    let workload = tpch_q16_workload(2);
    let dcq = workload.as_dcq().expect("Q16 has a single negative CQ");
    let (_, stats) = baseline_dcq_with_stats(&dcq, &workload.db, CqStrategy::Vanilla).unwrap();
    let n = workload.input_size();
    // OUT1, OUT2 and OUT are all far below the input size N (PK-FK joins).
    assert!(stats.out1 * 4 < n, "OUT1 = {} vs N = {n}", stats.out1);
    assert!(stats.out2 * 4 < n, "OUT2 = {} vs N = {n}", stats.out2);
    assert!(stats.out <= stats.out1);
    assert!(stats.out > 0);
}

#[test]
fn q69_requires_store_activity() {
    let workload = tpcds_q69_workload(1);
    let result = multi_dcq_recursive(&workload.multi, &workload.db).unwrap();
    let store: std::collections::HashSet<i64> = workload
        .db
        .get("StoreSalesCust")
        .unwrap()
        .iter()
        .map(|r| r.get(0).as_int().unwrap())
        .collect();
    let web: std::collections::HashSet<i64> = workload
        .db
        .get("WebSalesCust")
        .unwrap()
        .iter()
        .map(|r| r.get(0).as_int().unwrap())
        .collect();
    for row in result.iter() {
        let c = row.get(0).as_int().unwrap();
        assert!(store.contains(&c), "customer {c} has no store activity");
        assert!(!web.contains(&c), "customer {c} has web activity");
    }
}

#[test]
fn q16_count_aggregate_via_numerical_difference() {
    // TPC-H Q16 ultimately counts suppliers per part group; Example 5.3 notes the
    // query is a special case of the numerical-difference aggregation.
    let workload = tpch_q16_workload(1);
    let dcq = workload.as_dcq().unwrap();
    let adb: AnnotatedDatabase<i64> = AnnotatedDatabase::from_database(&workload.db);
    let agg = numerical_difference_aggregate(&dcq, &adb, &[Attr::new("pk")]).unwrap();
    // Every count is the number of (good minus bad) suppliers of the part: positive
    // or negative but bounded by the 4 suppliers per part the generator creates.
    for (_, w) in agg.iter() {
        assert!(w.abs() <= 4, "unexpected per-part supplier count {w}");
    }
    assert!(!agg.is_empty());
}

#[test]
fn scale_factor_grows_inputs_but_not_selectivities() {
    let small = tpcds_q35_workload(1);
    let large = tpcds_q35_workload(3);
    assert!(large.input_size() > 2 * small.input_size());
    let small_out = multi_dcq_recursive(&small.multi, &small.db).unwrap().len();
    let large_out = multi_dcq_recursive(&large.multi, &large.db).unwrap().len();
    // The output grows roughly with the input (same selectivities), staying ≪ N.
    assert!(large_out > small_out);
    assert!(large_out < large.input_size());
}
