//! The dichotomy in practice: the planner must choose the strategy Table 1 predicts
//! for every query family used in the paper, and every strategy that is applicable
//! must compute the same answer.

use dcq_core::classify::{classify, DcqClass};
use dcq_core::parse::parse_dcq;
use dcq_core::planner::{DcqPlanner, Strategy};
use dcq_datagen::{graph_query, GraphQueryId};
use dcqx::testkit::small_graph_db;

#[test]
fn figure4_queries_get_the_expected_strategy() {
    let planner = DcqPlanner::smart();
    let expected = [
        (GraphQueryId::QG1, Strategy::EasyLinear),
        (GraphQueryId::QG2, Strategy::EasyLinear),
        (GraphQueryId::QG3, Strategy::EasyLinear),
        (GraphQueryId::QG4, Strategy::EasyLinear),
        (GraphQueryId::QG5, Strategy::ProbeLinearReducible),
        (GraphQueryId::QG6, Strategy::EasyLinear),
    ];
    for (id, strategy) in expected {
        let plan = planner.plan(&graph_query(id));
        assert_eq!(plan.strategy, strategy, "{}", id.name());
    }
}

#[test]
fn hardness_examples_from_section_4_are_classified_hard() {
    // The hard-core queries of Lemmas 4.3, 4.4 and 4.6.
    let cases = [
        (
            "Q(x1, x3) :- R1(x1, x3) EXCEPT R2(x1, x2), R3(x2, x3)",
            DcqClass::HardQ2NotLinearReducible,
        ),
        (
            "Q(x1) :- R1(x1) EXCEPT R2(x1, x3), R3(x2, x3), R4(x1, x2)",
            DcqClass::HardQ2NotLinearReducible,
        ),
        (
            "Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3) EXCEPT R3(x1, x3), R4(x2)",
            DcqClass::HardAugmentedCyclic,
        ),
        (
            "Q(x1, x3) :- R1(x1, x2), R2(x2, x3) EXCEPT R3(x1, x3)",
            DcqClass::HardQ1NotFreeConnex,
        ),
    ];
    for (src, class) in cases {
        assert_eq!(classify(&parse_dcq(src).unwrap()).class, class, "{src}");
    }
}

#[test]
fn easy_examples_from_section_3_are_classified_easy() {
    let cases = [
        "Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3) EXCEPT S1(x1, x2), S2(x2, x3)",
        "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3, x4) EXCEPT R3(x1, x2, x3), R4(x3, x4)",
        "Q(x1, x2, x3) :- R1(x1, x2, x3) EXCEPT R2(x1, x2), R3(x2, x3), R4(x1, x3)",
        "Q(x1, x2, x3) :- R1(x1, x2), R2(x3) EXCEPT R3(x1, x2), R4(x2, x3), R5(x1, x3)",
    ];
    for src in cases {
        let c = classify(&parse_dcq(src).unwrap());
        assert_eq!(c.class, DcqClass::DifferenceLinear, "{src}");
        assert!(c.is_difference_linear());
    }
}

#[test]
fn every_applicable_strategy_agrees_on_the_small_database() {
    let db = small_graph_db();
    let planner = DcqPlanner::smart();
    let queries = [
        "Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)",
        "Q(a, b) :- Graph(a, b) EXCEPT Graph(a, b), Graph(b, c)",
        "Q(a, b, c) :- Graph(a, b), Graph(b, c) EXCEPT Edge(a, c), Edge(b, c)",
        "Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)",
        "Q(a) :- Node(a) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)",
    ];
    for src in queries {
        let dcq = parse_dcq(src).unwrap();
        let reference = planner
            .execute_with(Strategy::Baseline, &dcq, &db)
            .unwrap()
            .sorted_rows();
        // The planner's automatic choice.
        assert_eq!(
            planner.execute(&dcq, &db).unwrap().sorted_rows(),
            reference,
            "auto plan differs on {src}"
        );
        // Every heuristic that is always applicable.
        for strategy in [Strategy::PerTupleProbe, Strategy::Intersection] {
            assert_eq!(
                planner
                    .execute_with(strategy, &dcq, &db)
                    .unwrap()
                    .sorted_rows(),
                reference,
                "{strategy:?} differs on {src}"
            );
        }
        // EasyDCQ only when the query is difference-linear.
        if classify(&dcq).is_difference_linear() {
            assert_eq!(
                planner
                    .execute_with(Strategy::EasyLinear, &dcq, &db)
                    .unwrap()
                    .sorted_rows(),
                reference,
                "EasyDCQ differs on {src}"
            );
        }
    }
}

#[test]
fn vanilla_planner_matches_smart_planner() {
    let db = small_graph_db();
    for id in GraphQueryId::all() {
        let dcq = graph_query(id);
        let a = DcqPlanner::vanilla().execute(&dcq, &db).unwrap();
        let b = DcqPlanner::smart().execute(&dcq, &db).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows(), "{}", id.name());
    }
}
