//! End-to-end checks of the telemetry stack: exposition format, per-batch
//! traces, sink plumbing, and the overhead budget.
//!
//! The workspace builds `dcq-engine` with its default features, so these tests
//! always run with `telemetry` **on** (the `--no-default-features` CI leg
//! covers the compiled-out hooks at the engine crate's own test suite).  What
//! is asserted here:
//!
//! * `DcqEngine::metrics()` renders well-formed Prometheus exposition text
//!   covering every layer (engine, storage registry, counting subsystem,
//!   pool, plan cache) after a mixed insert/delete workload;
//! * per-batch [`BatchTrace`]s account phases and per-view records sanely
//!   (monotone epochs, one record per view, a known clock label, phase sums
//!   that the rewired benches can use as timings);
//! * a replacement [`TraceSink`] receives exactly what the default ring did,
//!   and ring capacity bounds retention;
//! * the per-batch bookkeeping the engine adds when telemetry is on — counter
//!   bumps, histogram observations, one ring-buffer `record` — costs **at
//!   most 5%** of a measured `apply` on the micro-bench-shaped workload
//!   (in practice it is orders of magnitude below the budget; the assert
//!   guards against the bookkeeping ever growing a lock or an allocation
//!   storm).

use dcq_datagen::datasets::build_dataset;
use dcq_datagen::{graph_query, update_workload, Graph, GraphQueryId, TripleRuleMix, UpdateSpec};
use dcq_engine::DcqEngine;
use dcq_incremental::IncrementalStrategy;
use dcq_storage::{Database, DeltaBatch};
use dcq_telemetry::{BatchTrace, MetricsRegistry, RingTraceSink, ViewTraceRecord};
use std::time::Instant;

/// A small mixed dataset with both `Graph` and `Triple` populated.
fn dataset() -> Database {
    build_dataset(
        "telemetry-e2e",
        Graph::uniform(600, 2_400, 23),
        0.5,
        TripleRuleMix::balanced(),
        9,
    )
    .db
}

/// An engine with one rerun-leaning and one counting view registered.
fn engine_with_two_views(db: &Database) -> DcqEngine {
    let mut engine = DcqEngine::with_database(db.clone());
    engine
        .register_with(
            graph_query(GraphQueryId::QG3),
            IncrementalStrategy::EasyRerun,
        )
        .expect("register QG3");
    engine
        .register_with(
            graph_query(GraphQueryId::QG5),
            IncrementalStrategy::Counting,
        )
        .expect("register QG5");
    engine
}

/// Batches that exercise inserts and (via the inverse) deletes.
fn batches(db: &Database) -> Vec<DeltaBatch> {
    let spec = UpdateSpec::new(3, 48, &["Graph", "Triple"]);
    let mut out = Vec::new();
    for batch in update_workload(db, &spec, 41) {
        let inverse = batch.inverse();
        out.push(batch);
        out.push(inverse);
    }
    out
}

#[test]
fn exposition_is_well_formed_and_covers_every_layer() {
    let db = dataset();
    let mut engine = engine_with_two_views(&db);
    for batch in batches(&db) {
        engine.apply(&batch).expect("batch applies");
    }

    let text = engine.metrics();
    // Well-formed: every line is a comment or `name[{labels}] value` where the
    // value parses as a finite number.
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "unknown comment form: {line}"
            );
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(!name.is_empty(), "empty metric name in: {line}");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparsable value in: {line}"));
        assert!(value.is_finite());
    }

    // Every layer shows up in one scrape.
    for family in [
        "dcq_engine_batches_total 6",
        "dcq_engine_epoch 6",
        "dcq_engine_commit_ns_bucket",
        "dcq_engine_fanout_ns_count 6",
        "dcq_engine_policy_ns_sum",
        "dcq_engine_view_handles 2",
        "dcq_index_count",
        "dcq_index_inplace_writes_total",
        "dcq_index_cow_clones_total",
        "dcq_dict_entries",
        "dcq_dict_bytes",
        "dcq_dict_intern_hits_total",
        "dcq_dict_intern_misses_total",
        "dcq_flat_bytes",
        "dcq_flat_live_bytes",
        "dcq_flat_relation_bytes_graph",
        "dcq_flat_relation_bytes_triple",
        "dcq_flat_relation_live_bytes_graph",
        "dcq_commit_shard_rows_0",
        "dcq_commit_shard_rows_3",
        "dcq_counting_fold_partitions",
        "dcq_counting_index_probes_total",
        "dcq_counting_compensated_masks_total",
        "dcq_counting_deletion_index_builds_total",
        "dcq_pool_live_sides",
        "dcq_pool_misses_total",
        "dcq_plan_cache_entries",
    ] {
        assert!(
            text.contains(family),
            "scrape is missing `{family}`:\n{text}"
        );
    }

    // The workload deleted rows through counting views, so the compensated
    // delete path and its probes actually ran.
    let registry = engine.metrics_registry();
    assert!(registry.value("dcq_counting_index_probes_total").unwrap() > 0);
    assert!(engine.counting_telemetry().index_probes > 0);

    // The flat interned layer is live: the dictionary interned the dataset
    // (hits + misses both nonzero after the mixed workload), and the flat
    // columns occupy real bytes.
    assert!(registry.value("dcq_dict_entries").unwrap() > 0);
    assert!(registry.value("dcq_dict_bytes").unwrap() > 0);
    assert!(registry.value("dcq_dict_intern_misses_total").unwrap() > 0);
    assert!(
        registry.value("dcq_dict_intern_hits_total").unwrap() > 0,
        "re-inserted values must hit the dictionary"
    );
    assert!(registry.value("dcq_flat_bytes").unwrap() > 0);
    // Live bytes exclude compaction slack, so they never exceed the
    // allocation gauge.
    let live = registry.value("dcq_flat_live_bytes").unwrap();
    assert!(live > 0 && live <= registry.value("dcq_flat_bytes").unwrap());
    // Every committed row was routed through exactly one shard counter.
    let sharded: u64 = (0..4)
        .map(|s| {
            registry
                .value(&format!("dcq_commit_shard_rows_{s}"))
                .unwrap()
        })
        .sum();
    assert!(sharded > 0, "sharded commit routed no rows");

    // JSON-lines dump: one object per applied batch, oldest first.
    let json = engine.trace_json_lines();
    let lines: Vec<&str> = json.lines().collect();
    assert_eq!(lines.len(), 6, "one trace line per apply");
    for line in &lines {
        assert!(
            line.starts_with("{\"epoch\":"),
            "not a trace object: {line}"
        );
        assert!(line.ends_with('}'));
        for key in [
            "\"commit_ns\":",
            "\"fanout_ns\":",
            "\"policy_ns\":",
            "\"views\":",
        ] {
            assert!(line.contains(key), "trace line missing {key}: {line}");
        }
    }
}

#[test]
fn traces_account_phases_and_views_sanely() {
    let db = dataset();
    let mut engine = engine_with_two_views(&db);
    // The default width tracks `DCQ_WORKERS` (the CI multi-worker leg pins
    // it > 1), so compare traces against the engine's own configuration
    // rather than a literal.
    let width = engine.stats().workers;
    let applied = batches(&db);
    for batch in &applied {
        engine.apply(batch).expect("batch applies");
    }

    let traces = engine.traces();
    assert_eq!(traces.len(), applied.len());
    let mut last_epoch = 0;
    for (trace, batch) in traces.iter().zip(&applied) {
        assert!(trace.epoch > last_epoch, "epochs strictly increase");
        last_epoch = trace.epoch;
        assert_eq!(trace.batch_len, batch.len());
        assert!(trace.inserted + trace.deleted <= batch.len() as u64);
        assert_eq!(trace.workers, width, "trace records the configured width");
        assert_eq!(trace.views.len(), 2, "one record per registered view");
        // The phase sum is what the rewired benches record as the per-batch
        // figure; it must be nonzero for a non-empty batch.
        assert!(trace.commit_ns + trace.fanout_ns + trace.policy_ns > 0);
        for record in &trace.views {
            assert!(record.slot < 2);
            assert!(matches!(record.strategy, "EasyRerun" | "Counting"));
            assert!(
                matches!(record.clock, "thread_cpu" | "wall"),
                "unknown clock label {}",
                record.clock
            );
            assert!(record.delta_fraction >= 0.0 && record.delta_fraction <= 1.0);
        }
    }
}

#[test]
fn replacement_sink_bounds_retention_and_drain_empties() {
    let db = dataset();
    let mut engine = engine_with_two_views(&db);
    // A tiny ring: applies beyond its capacity must evict oldest-first.
    engine.set_trace_sink(Box::new(RingTraceSink::new(4)));
    let applied = batches(&db);
    assert!(applied.len() > 4);
    for batch in &applied {
        engine.apply(batch).expect("batch applies");
    }
    let traces = engine.traces();
    assert_eq!(traces.len(), 4, "ring keeps only its capacity");
    assert_eq!(
        traces.last().expect("nonempty").epoch,
        applied.len() as u64,
        "newest trace survives eviction"
    );
    assert!(
        traces.windows(2).all(|w| w[0].epoch < w[1].epoch),
        "snapshot is oldest-first"
    );
    assert_eq!(engine.drain_traces().len(), 4);
    assert!(engine.traces().is_empty(), "drain empties the sink");
}

/// The telemetry-on bookkeeping `apply` performs per batch — one batch
/// counter bump, four histogram observations (three phases + per-view cost),
/// the phase timestamps, and one ring-buffer `record` carrying a per-view
/// record vector — must cost at most 5% of a measured `apply` on the
/// micro-bench-shaped workload.
#[test]
fn per_batch_bookkeeping_is_within_five_percent_of_apply() {
    let db = dataset();
    let mut engine = engine_with_two_views(&db);
    let spec = UpdateSpec::new(1, 48, &["Graph", "Triple"]);
    let batch = update_workload(&db, &spec, 43).pop().expect("one batch");
    let inverse = batch.inverse();

    // Measure apply the way the micro bench does: min over batch+inverse
    // pairs after a warm-up, half a pair per batch.
    for _ in 0..2 {
        engine.apply(&batch).expect("warm-up applies");
        engine.apply(&inverse).expect("warm-up inverse applies");
    }
    let mut apply_ns_per_batch = f64::INFINITY;
    for _ in 0..5 {
        let started = Instant::now();
        engine.apply(&batch).expect("batch applies");
        engine.apply(&inverse).expect("inverse applies");
        apply_ns_per_batch = apply_ns_per_batch.min(started.elapsed().as_nanos() as f64 / 2.0);
    }

    // Replay the per-batch bookkeeping sequence in isolation, many times.
    let registry = MetricsRegistry::new();
    let batches_total = registry.counter("t_batches_total", "overhead probe");
    let commit = registry.histogram("t_commit_ns", "overhead probe");
    let fanout = registry.histogram("t_fanout_ns", "overhead probe");
    let policy = registry.histogram("t_policy_ns", "overhead probe");
    let view_cost = registry.histogram("t_view_cost_ns", "overhead probe");
    let sink = RingTraceSink::new(256);
    const ROUNDS: u32 = 10_000;
    let started = Instant::now();
    for i in 0..ROUNDS {
        let t0 = Instant::now();
        batches_total.inc();
        commit.observe(t0.elapsed().as_nanos() as u64);
        let t1 = Instant::now();
        fanout.observe(t1.elapsed().as_nanos() as u64);
        let t2 = Instant::now();
        policy.observe(t2.elapsed().as_nanos() as u64);
        let views: Vec<ViewTraceRecord> = (0..2)
            .map(|slot| {
                view_cost.observe(1_000);
                ViewTraceRecord {
                    slot,
                    strategy: "Counting",
                    delta_fraction: 0.01,
                    cost_ns: 1_000,
                    clock: "thread_cpu",
                    skipped: false,
                    result_added: 3,
                    result_removed: 2,
                    migration: None,
                }
            })
            .collect();
        use dcq_telemetry::TraceSink as _;
        sink.record(BatchTrace {
            epoch: u64::from(i) + 1,
            batch_len: 48,
            inserted: 24,
            deleted: 24,
            commit_ns: 10_000,
            fanout_ns: 100_000,
            policy_ns: 5_000,
            workers: 1,
            views,
        });
    }
    let bookkeeping_ns_per_batch = started.elapsed().as_nanos() as f64 / f64::from(ROUNDS);

    let ratio = bookkeeping_ns_per_batch / apply_ns_per_batch;
    assert!(
        ratio <= 0.05,
        "telemetry bookkeeping is {bookkeeping_ns_per_batch:.0} ns/batch, \
         {:.2}% of a {apply_ns_per_batch:.0} ns apply (budget 5%)",
        ratio * 100.0
    );
}
