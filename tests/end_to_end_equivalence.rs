//! Cross-module end-to-end checks: SCQ rewrites, multi-differences, composition and
//! the decision procedures all agree with the reference semantics on the shared
//! small database.

use dcq_core::baseline::CqStrategy;
use dcq_core::compose::{join_dcq_results, push_projection, push_selection};
use dcq_core::multi::{multi_dcq_naive, multi_dcq_recursive, MultiDcq};
use dcq_core::parse::{parse_dcq, parse_dcq_multi};
use dcq_core::planner::DcqPlanner;
use dcq_core::scq::{dcq_linear_time_decidable, decide_dcq_nonempty, evaluate_dcq_via_scq};
use dcq_exec::natural_join;
use dcqx::testkit::small_graph_db;

#[test]
fn scq_rewriting_matches_planner_on_full_dcqs() {
    let db = small_graph_db();
    let planner = DcqPlanner::smart();
    let cases = [
        "Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)",
        "Q(a, b) :- Graph(a, b) EXCEPT Edge(a, b)",
        "Q(a, b, c) :- Graph(a, b), Graph(b, c) EXCEPT Edge(a, c), Edge(b, c)",
    ];
    for src in cases {
        let dcq = parse_dcq(src).unwrap();
        let via_scq = evaluate_dcq_via_scq(&dcq, &db).unwrap();
        let via_planner = planner.execute(&dcq, &db).unwrap();
        assert_eq!(via_scq.sorted_rows(), via_planner.sorted_rows(), "{src}");
        // The linear decision procedure applies exactly when Theorem 7.7 says the
        // DCQ is linear-time decidable; in that case it must agree with emptiness.
        if dcq_linear_time_decidable(&dcq) {
            assert_eq!(
                decide_dcq_nonempty(&dcq, &db).unwrap(),
                !via_planner.is_empty(),
                "{src}"
            );
        } else {
            assert!(decide_dcq_nonempty(&dcq, &db).is_err(), "{src}");
        }
    }
}

#[test]
fn multi_difference_recursion_matches_naive_on_many_shapes() {
    let db = small_graph_db();
    let cases = [
        "Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c) EXCEPT Edge(a, b), Edge(b, c)",
        "Q(a, b) :- Graph(a, b) EXCEPT Edge(a, b) EXCEPT Graph(a, b), Graph(b, c)",
        "Q(a, b, c) :- Triple(a, b, c) EXCEPT Edge(a, b), Node(c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)",
    ];
    for src in cases {
        let (dcq, rest) = parse_dcq_multi(src).unwrap();
        let mut negatives = vec![dcq.q2];
        negatives.extend(rest);
        let multi = MultiDcq::new(dcq.q1, negatives).unwrap();
        let fast = multi_dcq_recursive(&multi, &db).unwrap();
        let slow = multi_dcq_naive(&multi, &db, CqStrategy::Vanilla).unwrap();
        assert_eq!(fast.sorted_rows(), slow.sorted_rows(), "{src}");
    }
}

#[test]
fn selection_pushdown_commutes_with_evaluation() {
    let db = small_graph_db();
    let planner = DcqPlanner::smart();
    let dcq =
        parse_dcq("Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)")
            .unwrap();
    // σ_{node1 ≤ 3} applied to the Triple base relation.
    let filtered_db =
        push_selection(&db, "Triple", |row| row.get(0).as_int().unwrap() <= 3).unwrap();
    let filtered_result = planner.execute(&dcq, &filtered_db).unwrap();
    // Equivalent: evaluate on the full database and filter the output (the predicate
    // only mentions output attribute node1 of the Q1 base relation).
    let full_result = planner.execute(&dcq, &db).unwrap();
    let expected: Vec<_> = full_result
        .sorted_rows()
        .into_iter()
        .filter(|r| r.get(0).as_int().unwrap() <= 3)
        .collect();
    assert_eq!(filtered_result.sorted_rows(), expected);
}

#[test]
fn projection_pushdown_produces_a_plannable_dcq() {
    let db = small_graph_db();
    let planner = DcqPlanner::smart();
    let dcq =
        parse_dcq("Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)")
            .unwrap();
    let projected = push_projection(&dcq, &["a", "b"]).unwrap();
    let result = planner.execute(&projected, &db).unwrap();
    // Reference: π_{a,b} Q1 − π_{a,b} Q2 evaluated via the baseline.
    let reference = dcq_core::baseline::baseline_dcq(&projected, &db, CqStrategy::Vanilla).unwrap();
    assert_eq!(result.sorted_rows(), reference.sorted_rows());
    assert_eq!(result.schema().arity(), 2);
}

#[test]
fn join_of_dcqs_matches_manual_join() {
    let db = small_graph_db();
    let planner = DcqPlanner::smart();
    let d1 = parse_dcq("Q1(a, b) :- Graph(a, b) EXCEPT Edge(a, b)").unwrap();
    let d2 = parse_dcq("Q2(b, c) :- Graph(b, c) EXCEPT Edge(b, c)").unwrap();
    let joined = join_dcq_results(&[d1.clone(), d2.clone()], &db, &planner).unwrap();
    let manual = natural_join(
        &planner.execute(&d1, &db).unwrap(),
        &planner.execute(&d2, &db).unwrap(),
    );
    assert_eq!(joined.sorted_rows(), manual.sorted_rows());
}
