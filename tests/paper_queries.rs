//! End-to-end runs of the paper's graph queries Q_G1…Q_G6 on generated datasets:
//! the optimized plan chosen by the dichotomy must always produce exactly the same
//! result as the vanilla baseline plan.

use dcq_core::baseline::{baseline_dcq_with_stats, CqStrategy};
use dcq_core::planner::DcqPlanner;
use dcq_datagen::datasets::build_dataset;
use dcq_datagen::{graph_queries, Graph, GraphQueryId, TripleRuleMix};

fn dataset(seed: u64, edges: usize) -> dcq_datagen::GraphDataset {
    build_dataset(
        "integration",
        Graph::preferential_attachment((edges / 4) as u64, 4, seed),
        0.5,
        TripleRuleMix::balanced(),
        seed ^ 0xBEEF,
    )
}

#[test]
fn graph_queries_agree_between_plans_on_uniform_graph() {
    let data = build_dataset(
        "uniform",
        Graph::uniform(150, 900, 11),
        0.5,
        TripleRuleMix::balanced(),
        13,
    );
    let planner = DcqPlanner::smart();
    for (id, dcq) in graph_queries() {
        let (baseline, stats) =
            baseline_dcq_with_stats(&dcq, &data.db, CqStrategy::Vanilla).unwrap();
        let optimized = planner.execute(&dcq, &data.db).unwrap();
        assert_eq!(
            optimized.sorted_rows(),
            baseline.sorted_rows(),
            "{} differs between plans",
            id.name()
        );
        assert_eq!(stats.out, optimized.len());
    }
}

#[test]
fn graph_queries_agree_between_plans_on_skewed_graph() {
    let data = dataset(21, 1200);
    let planner = DcqPlanner::smart();
    for (id, dcq) in graph_queries() {
        // Keep the Cartesian-product query to a size this test can afford.
        if id == GraphQueryId::QG6 && data.stats.edges > 2_000 {
            continue;
        }
        let (baseline, _) = baseline_dcq_with_stats(&dcq, &data.db, CqStrategy::Vanilla).unwrap();
        let optimized = planner.execute(&dcq, &data.db).unwrap();
        assert_eq!(
            optimized.sorted_rows(),
            baseline.sorted_rows(),
            "{} differs between plans",
            id.name()
        );
    }
}

#[test]
fn qg1_results_are_edges_without_outgoing_continuation() {
    // Semantic spot-check of Q_G1: an edge (a, b) is in the answer iff b has no
    // outgoing edge.
    let data = dataset(33, 800);
    let planner = DcqPlanner::smart();
    let dcq = dcq_datagen::graph_query(GraphQueryId::QG1);
    let result = planner.execute(&dcq, &data.db).unwrap();
    let graph = data.db.get("Graph").unwrap();
    let has_outgoing: std::collections::HashSet<i64> =
        graph.iter().map(|r| r.get(0).as_int().unwrap()).collect();
    for row in result.iter() {
        let b = row.get(1).as_int().unwrap();
        assert!(
            !has_outgoing.contains(&b),
            "edge {row} should have been removed"
        );
    }
    let expected = graph
        .iter()
        .filter(|r| !has_outgoing.contains(&r.get(1).as_int().unwrap()))
        .count();
    assert_eq!(result.len(), expected);
}

#[test]
fn qg3_results_are_triples_that_are_not_triangles() {
    let data = dataset(44, 800);
    let planner = DcqPlanner::smart();
    let dcq = dcq_datagen::graph_query(GraphQueryId::QG3);
    let result = planner.execute(&dcq, &data.db).unwrap();
    let edges: std::collections::HashSet<(i64, i64)> = data
        .db
        .get("Graph")
        .unwrap()
        .iter()
        .map(|r| (r.get(0).as_int().unwrap(), r.get(1).as_int().unwrap()))
        .collect();
    let triples = data.db.get("Triple").unwrap();
    let expected = triples
        .iter()
        .filter(|t| {
            let (a, b, c) = (
                t.get(0).as_int().unwrap(),
                t.get(1).as_int().unwrap(),
                t.get(2).as_int().unwrap(),
            );
            !(edges.contains(&(a, b)) && edges.contains(&(b, c)) && edges.contains(&(c, a)))
        })
        .count();
    assert_eq!(result.len(), expected);
}

#[test]
fn output_sizes_scale_with_triple_relation() {
    // Figure 6's premise: growing the Triple relation grows OUT1 (and OUT), while
    // OUT2 is unaffected.
    let graph = Graph::preferential_attachment(400, 4, 9);
    let small = build_dataset("s", graph.clone(), 0.2, TripleRuleMix::balanced(), 1);
    let large = build_dataset("l", graph, 0.8, TripleRuleMix::balanced(), 1);
    let dcq = dcq_datagen::graph_query(GraphQueryId::QG4);
    let (_, small_stats) = baseline_dcq_with_stats(&dcq, &small.db, CqStrategy::Vanilla).unwrap();
    let (_, large_stats) = baseline_dcq_with_stats(&dcq, &large.db, CqStrategy::Vanilla).unwrap();
    assert!(large_stats.out1 > small_stats.out1);
    assert_eq!(large_stats.out2, small_stats.out2);
    assert!(large_stats.out >= small_stats.out);
}
