//! # dcq-engine
//!
//! The shared-store, multi-view engine facade of **dcqx**: one
//! [`DcqEngine`] owns one epoch-versioned database of record, callers
//! [`prepare`](DcqEngine::prepare) a difference query once (classification and
//! maintenance plan memoized in a [`PlanCache`] keyed by query shape), then
//! [`register`](DcqEngine::register) it to get a lightweight [`ViewHandle`], and a
//! single [`apply`](DcqEngine::apply) advances the store and fans the update out
//! to every registered view in one pass.
//!
//! This is the production shape Berkholz, Keppeler & Schweikardt's *Answering
//! Conjunctive Queries under Updates* frames — a dynamic database serving many
//! standing queries — applied to the DCQ dichotomy of Hu & Wang: each view is
//! maintained by touched-side rerun (difference-linear) or counting delta joins
//! (hard), but the store, the batch normalization, the epoch counter and the
//! update log exist **once**, not once per view:
//!
//! ```text
//!                      ┌────────────────────────────────────────┐
//!   prepare(dcq) ───►  │ PlanCache   (classify once per shape,  │
//!                      │              delta sub-plans per side) │
//!                      ├────────────────────────────────────────┤
//!   register(p)  ───►  │ SharedDatabase  (epoch, O(|Δ|) deltas) │
//!                      │   ├ IndexRegistry (refcounted shared   │
//!                      │   │  delta-join indexes, maintained    │
//!                      │   │  once per batch)                   │
//!                      │   │ normalized AppliedBatch            │
//!   apply(batch) ───►  │   ├──► DcqView #0 (counting: probes ↑) │
//!                      │   ├──► DcqView #1 (rerun)              │
//!                      │   └──► DcqView #2 (counting: probes ↑) │
//!                      └────────────────────────────────────────┘
//! ```
//!
//! Compared with `N` independent views, the engine holds one copy of the base
//! data instead of `N`, normalizes each batch once instead of `N` times,
//! classifies each query shape once no matter how many clients prepare it, and
//! — since index ownership moved into the storage layer — builds and maintains
//! each delta-join index once per *distinct probe signature*, not once per
//! view: distinct-but-overlapping DCQs (shared atom prefixes, α-renamed sides)
//! probe the same refcounted registry entries.
//!
//! ## Adaptive maintenance
//!
//! The dichotomy picks a maintenance strategy *structurally*; the observed
//! workload can disagree (counting cost scales with `|Δ|`, a rerun is flat in
//! it).  Views registered through [`DcqEngine::register_adaptive`] are managed
//! by a policy instead: the engine tracks every batch's effective size
//! relative to the store ([`BatchStats`]) and, when the EWMA delta fraction
//! crosses the [`MaintenanceCostModel`] crossover (hysteresis applied),
//! migrates the live view to the cheaper engine kind — rebuilt from the shared
//! store at the current epoch, old pooled sides and registry indexes released.
//! Migration is result-invariant; `cargo run --release --example calibrate`
//! fits the crossover to the host.
//!
//! ## Parallel fan-out
//!
//! [`DcqEngine::apply`] is split into two phases.  The **commit phase** is
//! exclusive and sequential: the batch is validated, normalized and applied to
//! the store once, every shared registry index is maintained once, the epoch
//! advances, and the update log records the batch.  The **fan-out phase** is
//! read-only and parallel: every distinct view folds the shared
//! [`AppliedBatch`](dcq_storage::AppliedBatch) against the now-immutable store
//! (`&`-borrowed, so nothing can move underneath the workers), distributed
//! over a [worker pool](DcqEngine::set_workers) of scoped threads.  Pooled
//! counting sides are folded exactly once per epoch by whichever worker takes
//! their lock first — the fold is a pure function of `(state, batch)`, so
//! results, stats and counters are **bit-identical** to the sequential path
//! (pinned by `tests/parallel_determinism.rs`).  A short sequential tail then
//! folds per-view outcomes into the report, feeds the adaptive policy —
//! per-view **CPU time**, not wall time, so lock waits and co-scheduled views
//! cannot inflate a view's cost samples — and executes any policy migrations.
//! (One attribution caveat survives from the sequential design, documented on
//! [`BatchStats::ewma_cost_ns`]: for *pool-shared* counting sides, whichever
//! sharing view folds a batch first pays the whole fold's CPU, and under
//! parallel fan-out which view that is depends on scheduling.  Migration
//! *decisions* read only the delta-fraction EWMA and stay deterministic.)
//!
//! Everything in the engine core is `Send`, and the store is `Sync`: the
//! ownership refactor that enabled this (Rc→Arc, RefCell→RwLock, copy-on-write
//! index snapshots) is exactly the shape a future async service front-end
//! needs — `apply` on a writer task, epoch-consistent snapshot reads anywhere.

#![warn(missing_docs)]

mod fanout;

use dcq_core::cache::{PlanCache, PlanCacheStats, QueryShapeKey};
use dcq_core::heuristics::{thread_cpu_time_ns, BatchStats, CostClock, MaintenanceCostModel};
use dcq_core::planner::{IncrementalPlan, IncrementalStrategy};
use dcq_core::{Dcq, DcqError};
use dcq_incremental::pool::{CountingPool, CountingPoolStats};
use dcq_incremental::view::{BatchOutcome, DcqView};
use dcq_incremental::{CountingTelemetry, IncrementalError};
use dcq_storage::hash::{FastHashMap, FastHashSet};
use dcq_storage::{
    Database, DeltaBatch, DeltaEffect, Epoch, IndexTelemetry, Relation, RelationRef,
    SharedDatabase, StorageError, UpdateLog,
};
#[cfg(feature = "telemetry")]
use dcq_telemetry::ViewTraceRecord;
use dcq_telemetry::{
    render_json_lines, BatchTrace, Counter, Histogram, MetricsRegistry, RingTraceSink, TraceSink,
};
use fanout::WorkerPool;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// One cost-sample measurement around a view's per-batch maintenance, on the
/// engine's **pinned** [`CostClock`] (see [`DcqEngine::cost_clock`]).
///
/// The clock is chosen once at engine construction — the per-thread CPU clock
/// where the platform has one (immune to lock waits, preemption and
/// co-scheduled views), wall time elsewhere — so every sample an engine ever
/// feeds the adaptive policy carries the same provenance.  The previous design
/// re-probed clock availability per sample and could hand
/// [`BatchStats::observe_cost`] a mix of wall and CPU nanoseconds within one
/// engine; clock availability is a static platform property, so pinning is
/// both correct and cheaper.
enum CostSample {
    Cpu(u64),
    Wall(Instant),
}

impl CostSample {
    fn start(clock: CostClock) -> Self {
        match clock {
            CostClock::ThreadCpu => CostSample::Cpu(
                thread_cpu_time_ns().expect("ThreadCpu is pinned only where the platform has it"),
            ),
            CostClock::Wall => CostSample::Wall(Instant::now()),
        }
    }

    /// The elapsed cost in nanoseconds.  Must be called on the same thread as
    /// [`CostSample::start`].
    fn finish(self) -> f64 {
        match self {
            CostSample::Cpu(start) => thread_cpu_time_ns()
                .expect("thread clock availability is constant within a process")
                .saturating_sub(start) as f64,
            CostSample::Wall(start) => start.elapsed().as_nanos() as f64,
        }
    }
}

/// The [`CostClock`] available on this platform: thread-CPU where the platform
/// offers it, wall time elsewhere.  Engines pin this at construction.
fn pinned_cost_clock() -> CostClock {
    if thread_cpu_time_ns().is_some() {
        CostClock::ThreadCpu
    } else {
        CostClock::Wall
    }
}

/// Static label of a concrete engine kind for trace records.
#[cfg(feature = "telemetry")]
fn strategy_label(strategy: IncrementalStrategy) -> &'static str {
    match strategy {
        IncrementalStrategy::EasyRerun => "EasyRerun",
        IncrementalStrategy::Counting => "Counting",
        IncrementalStrategy::Adaptive => "Adaptive",
    }
}

/// Static label of a [`CostClock`] for trace records.
#[cfg(feature = "telemetry")]
fn clock_label(clock: CostClock) -> &'static str {
    match clock {
        CostClock::ThreadCpu => "thread_cpu",
        CostClock::Wall => "wall",
    }
}

/// Errors surfaced by the engine facade.
#[derive(Debug)]
pub enum EngineError {
    /// An error from query validation or evaluation.
    Core(DcqError),
    /// An error from the storage layer.
    Storage(StorageError),
    /// An error from the per-view maintenance machinery.
    Incremental(IncrementalError),
    /// A [`ViewHandle`] that does not name a live view (wrong engine, or the view
    /// was deregistered).
    UnknownView(ViewHandle),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "core: {e}"),
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Incremental(e) => write!(f, "incremental: {e}"),
            EngineError::UnknownView(h) => {
                write!(f, "unknown view handle #{}v{}", h.slot, h.generation)
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DcqError> for EngineError {
    fn from(e: DcqError) -> Self {
        EngineError::Core(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<IncrementalError> for EngineError {
    fn from(e: IncrementalError) -> Self {
        EngineError::Incremental(e)
    }
}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

/// A lightweight, copyable handle naming one registered view of a [`DcqEngine`].
///
/// Handles stay valid until the view is [`deregister`](DcqEngine::deregister)ed;
/// a generation counter makes every copy of a deregistered handle fail at lookup
/// even after its slot has been reused by a later registration.  Handles are
/// engine-specific (using a handle on a different engine is an error at lookup
/// time, not undefined behavior).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ViewHandle {
    slot: usize,
    generation: u64,
}

impl ViewHandle {
    /// The handle's slot index (stable for the lifetime of the view; slots are
    /// reused by later registrations, so the pair (index, generation) is what
    /// identifies a registration).
    pub fn index(&self) -> usize {
        self.slot
    }
}

/// One handle slot: the registration it currently points at (if any) plus the
/// generation stamped into handles, bumped on every allocation so stale copies
/// of deregistered handles cannot alias the slot's next tenant.
#[derive(Default)]
struct HandleSlot {
    generation: u64,
    /// Index into `DcqEngine::views`, `None` after deregistration.
    target: Option<usize>,
}

/// A prepared difference query: validated against the engine's store, with the
/// dichotomy classification and maintenance plan resolved through the engine's
/// [`PlanCache`].
///
/// Preparation is the expensive, shape-dependent part of registration; a
/// `PreparedDcq` can be cloned and registered any number of times (each
/// registration builds fresh view state over the current store contents).
#[derive(Clone, Debug)]
pub struct PreparedDcq {
    dcq: Dcq,
    plan: IncrementalPlan,
    cache_hit: bool,
}

impl PreparedDcq {
    /// The prepared query.
    pub fn dcq(&self) -> &Dcq {
        &self.dcq
    }

    /// The resolved maintenance plan (strategy + classification).
    pub fn plan(&self) -> &IncrementalPlan {
        &self.plan
    }

    /// The maintenance strategy the plan selected.
    pub fn strategy(&self) -> IncrementalStrategy {
        self.plan.strategy
    }

    /// `true` iff this preparation was served from the plan cache (no
    /// classification work was performed).
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// Human-readable explanation of the maintenance choice.
    pub fn explain(&self) -> String {
        self.plan.explain()
    }
}

/// The result of one [`DcqEngine::apply`]: the epoch the store advanced to, the
/// net base-data effect, and the fan-out summary across registered views.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// The store epoch after this batch.
    pub epoch: Epoch,
    /// Net tuples inserted / deleted in the store.
    pub effect: DeltaEffect,
    /// Distinct maintained views that did maintenance work for this batch
    /// (shared views count once — that is the point of sharing).
    pub views_applied: usize,
    /// Distinct maintained views that skipped the batch (no referenced relation
    /// touched).
    pub views_skipped: usize,
    /// Result tuples that entered any view.
    pub result_added: usize,
    /// Result tuples that left any view.
    pub result_removed: usize,
}

/// Cumulative counters of one engine, plus a point-in-time snapshot of the
/// store's shared index registry, update log, counting-side pool and fan-out
/// configuration.
///
/// Since the telemetry refactor this is a **derived view** over the engine's
/// [`MetricsRegistry`] (see [`DcqEngine::metrics`]): the cumulative fields
/// read the same atomic counters the Prometheus exposition renders, the rest
/// are sampled from the live structures at call time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Batches applied to the store.
    pub batches_applied: usize,
    /// Views registered over the engine's lifetime.
    pub views_registered: usize,
    /// Views deregistered over the engine's lifetime.
    pub views_deregistered: usize,
    /// Live shared indexes in the store's registry (point in time).
    pub index_count: usize,
    /// Estimated heap footprint of those indexes in bytes (point in time).
    pub index_bytes: usize,
    /// Live view migrations onto touched-side rerun (adaptive policy or
    /// [`DcqEngine::migrate`]).
    pub migrations_to_rerun: usize,
    /// Live view migrations onto counting maintenance.
    pub migrations_to_counting: usize,
    /// Update-log compactions (scheduled policy or explicit
    /// [`DcqEngine::compact_log`] / [`DcqEngine::compact_log_to`]).
    pub compactions: usize,
    /// Batches currently retained in the update log (point in time).
    pub log_len: usize,
    /// Epoch the retained log suffix starts after (see
    /// [`UpdateLog::base_epoch`]; point in time).
    pub log_base_epoch: Epoch,
    /// Live counting side shapes in the sharing pool (point in time).
    pub pool_live: usize,
    /// Pooled sides currently held by more than one view (point in time).
    pub pool_shared: usize,
    /// Configured fan-out workers (point in time; scheduling only — never
    /// affects any other field).
    pub workers: usize,
}

/// Names all engine-level metrics carry in the registry; lower-layer totals
/// are aggregated into the same registry at render time (`dcq_index_*`,
/// `dcq_counting_*`, `dcq_pool_*`, `dcq_plan_cache_*`).
mod metric {
    pub const BATCHES: &str = "dcq_engine_batches_total";
    pub const VIEWS_REGISTERED: &str = "dcq_engine_views_registered_total";
    pub const VIEWS_DEREGISTERED: &str = "dcq_engine_views_deregistered_total";
    pub const MIGRATIONS_TO_RERUN: &str = "dcq_engine_migrations_to_rerun_total";
    pub const MIGRATIONS_TO_COUNTING: &str = "dcq_engine_migrations_to_counting_total";
    pub const COMPACTIONS: &str = "dcq_engine_compactions_total";
    pub const CHECKPOINT_ERRORS: &str = "dcq_engine_checkpoint_errors_total";
    pub const COMMIT_NS: &str = "dcq_engine_commit_ns";
    pub const FANOUT_NS: &str = "dcq_engine_fanout_ns";
    pub const POLICY_NS: &str = "dcq_engine_policy_ns";
    pub const VIEW_COST_NS: &str = "dcq_engine_view_cost_ns";
}

/// The engine's always-compiled metrics spine: one [`MetricsRegistry`] owning
/// every counter/gauge/histogram `metrics()` renders, the engine-owned counter
/// handles `apply`/`register`/`migrate` bump directly, the [`TraceSink`]
/// per-batch traces go to, and the retired-telemetry base that keeps
/// aggregated counting totals monotone across view teardown.
///
/// With the `telemetry` feature **off** only the per-batch trace emission and
/// the lower layers' recording disappear; these engine counters (and therefore
/// [`DcqEngine::stats`] and the exposition itself) work in every build.
struct EngineTelemetry {
    registry: MetricsRegistry,
    sink: Box<dyn TraceSink>,
    batches: Arc<Counter>,
    views_registered: Arc<Counter>,
    views_deregistered: Arc<Counter>,
    migrations_to_rerun: Arc<Counter>,
    migrations_to_counting: Arc<Counter>,
    compactions: Arc<Counter>,
    checkpoint_errors: Arc<Counter>,
    // The histograms are observed only by the `telemetry`-gated trace hooks,
    // but stay registered (and render, empty) in every build so the exposition
    // schema is feature-independent.
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    commit_ns: Arc<Histogram>,
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    fanout_ns: Arc<Histogram>,
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    policy_ns: Arc<Histogram>,
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    view_cost_ns: Arc<Histogram>,
    /// Counting telemetry of sides whose last-holder views were deregistered;
    /// see [`DcqView::retired_counting_telemetry`] for the per-view analogue.
    retired: CountingTelemetry,
}

impl EngineTelemetry {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        EngineTelemetry {
            batches: registry.counter(metric::BATCHES, "Batches applied to the store"),
            views_registered: registry.counter(
                metric::VIEWS_REGISTERED,
                "Views registered over the engine's lifetime",
            ),
            views_deregistered: registry.counter(
                metric::VIEWS_DEREGISTERED,
                "Views deregistered over the engine's lifetime",
            ),
            migrations_to_rerun: registry.counter(
                metric::MIGRATIONS_TO_RERUN,
                "Live view migrations onto touched-side rerun",
            ),
            migrations_to_counting: registry.counter(
                metric::MIGRATIONS_TO_COUNTING,
                "Live view migrations onto counting maintenance",
            ),
            compactions: registry.counter(
                metric::COMPACTIONS,
                "Update-log compactions (scheduled policy or explicit compact_log)",
            ),
            checkpoint_errors: registry.counter(
                metric::CHECKPOINT_ERRORS,
                "Scheduled compactions abandoned because the checkpoint sink failed",
            ),
            commit_ns: registry.histogram(
                metric::COMMIT_NS,
                "Commit phase duration per apply, wall nanoseconds",
            ),
            fanout_ns: registry.histogram(
                metric::FANOUT_NS,
                "Fan-out phase duration per apply, wall nanoseconds",
            ),
            policy_ns: registry.histogram(
                metric::POLICY_NS,
                "Policy tail duration per apply (incl. migrations), wall nanoseconds",
            ),
            view_cost_ns: registry.histogram(
                metric::VIEW_COST_NS,
                "Per-view maintenance cost samples, nanoseconds on the pinned cost clock",
            ),
            sink: Box::new(RingTraceSink::default()),
            registry,
            retired: CountingTelemetry::default(),
        }
    }
}

/// A point-in-time checkpoint produced by [`DcqEngine::compact_log`]: the
/// database of record at `epoch`, plus how much log prefix it subsumed.
///
/// Replaying the engine's retained log onto `database` (via
/// [`UpdateLog::replay_onto`] with this `epoch`) reproduces the engine's
/// current database of record; keep the newest checkpoint durable and the
/// bounded log tail is a full recovery story.
#[derive(Clone, Debug)]
pub struct LogCheckpoint {
    /// The store epoch this checkpoint captures.
    pub epoch: Epoch,
    /// Batches the compaction dropped from the log (already reflected here).
    pub compacted_batches: usize,
    /// A deep copy of the database of record at `epoch`.
    pub database: Database,
}

impl LogCheckpoint {
    /// Serialize the checkpoint (epoch + database) with
    /// [`dcq_storage::checkpoint`]'s versioned, checksummed format.
    /// `compacted_batches` is transient bookkeeping about one compaction call
    /// and is not persisted.
    pub fn to_writer<W: std::io::Write>(&self, w: &mut W) -> dcq_storage::Result<()> {
        dcq_storage::checkpoint::write_checkpoint(w, self.epoch, &self.database)
    }

    /// Read back a checkpoint written by [`LogCheckpoint::to_writer`] (or any
    /// [`dcq_storage::checkpoint::write_checkpoint`] output);
    /// `compacted_batches` reads as `0`.
    pub fn from_reader<R: std::io::Read>(r: &mut R) -> dcq_storage::Result<LogCheckpoint> {
        let (epoch, database) = dcq_storage::checkpoint::read_checkpoint(r)?;
        Ok(LogCheckpoint {
            epoch,
            compacted_batches: 0,
            database,
        })
    }
}

/// Bounds on the retained update log that trigger **scheduled compaction**
/// inside [`DcqEngine::apply`]'s policy tail.  Default: both bounds off — the
/// log grows until [`DcqEngine::compact_log`] is called explicitly.
///
/// When either bound is exceeded after a batch commits, the engine checkpoints
/// the store (through the [`CheckpointSink`] if one is installed) and
/// truncates the log prefix the checkpoint subsumes, keeping
/// `checkpoint ⊕ retained log = current state` while bounding log memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact when more than this many batches are retained.
    pub max_retained_batches: Option<usize>,
    /// Compact when the retained batches' approximate footprint
    /// ([`UpdateLog::approx_bytes`]) exceeds this many bytes.
    pub max_log_bytes: Option<usize>,
}

impl CompactionPolicy {
    /// A policy bounding the number of retained batches.
    pub fn max_retained_batches(n: usize) -> Self {
        CompactionPolicy {
            max_retained_batches: Some(n),
            max_log_bytes: None,
        }
    }

    /// A policy bounding the retained batches' approximate byte footprint.
    pub fn max_log_bytes(bytes: usize) -> Self {
        CompactionPolicy {
            max_retained_batches: None,
            max_log_bytes: Some(bytes),
        }
    }

    /// `true` iff at least one bound is set.
    pub fn is_bounded(&self) -> bool {
        self.max_retained_batches.is_some() || self.max_log_bytes.is_some()
    }

    /// `true` iff a log at `len` retained batches / `bytes` approximate bytes
    /// exceeds a configured bound.
    pub fn exceeded(&self, len: usize, bytes: usize) -> bool {
        self.max_retained_batches.is_some_and(|max| len > max)
            || self.max_log_bytes.is_some_and(|max| bytes > max)
    }
}

/// Where scheduled compaction persists its checkpoints.
///
/// When a [`CompactionPolicy`] bound trips, the engine streams the current
/// database of record into the sink **before** truncating the log — a sink
/// failure leaves the log intact (and bumps
/// `dcq_engine_checkpoint_errors_total`), so no update ever exists only in
/// memory because a disk write failed.  Without a sink, scheduled compaction
/// truncates only, for callers that handle durability elsewhere (or not at
/// all).
pub trait CheckpointSink: Send + Sync {
    /// Persist a checkpoint of `database` as of `epoch`.
    fn write_checkpoint(&mut self, epoch: Epoch, database: &Database) -> std::io::Result<()>;
}

/// Blanket sink for closures: `engine.set_checkpoint_sink(Box::new(|epoch, db| … ))`.
impl<F> CheckpointSink for F
where
    F: FnMut(Epoch, &Database) -> std::io::Result<()> + Send + Sync,
{
    fn write_checkpoint(&mut self, epoch: Epoch, database: &Database) -> std::io::Result<()> {
        self(epoch, database)
    }
}

/// One maintained view plus the handles that share it.
struct SharedView {
    view: DcqView,
    /// Live handles pointing at this view.
    refs: usize,
    /// The sharing key ((shape, strategy)) used to find it on registration.
    key: (QueryShapeKey, IncrementalStrategy),
    /// Batch statistics driving the adaptive policy; `Some` exactly for views
    /// registered with [`IncrementalStrategy::Adaptive`].
    adaptive: Option<BatchStats>,
}

/// The engine: one shared store, one plan cache, many registered views.
///
/// Registrations of the same query shape share one maintained view (see
/// [`DcqEngine::register`]), so per-batch maintenance work scales with the
/// number of *distinct* standing queries, not the number of clients.
///
/// ```
/// use dcq_engine::DcqEngine;
/// use dcq_core::parse_dcq;
/// use dcq_storage::{Database, DeltaBatch, Relation};
/// use dcq_storage::row::int_row;
///
/// let mut db = Database::new();
/// db.add(Relation::from_int_rows("R", &["a", "b"], vec![vec![1, 2]])).unwrap();
/// db.add(Relation::from_int_rows("S", &["a", "b"], vec![vec![3, 4]])).unwrap();
///
/// let mut engine = DcqEngine::with_database(db);
/// let prepared = engine
///     .prepare(parse_dcq("Q(a, b) :- R(a, b) EXCEPT S(a, b)").unwrap())
///     .unwrap();
/// let view = engine.register(&prepared).unwrap();
/// assert_eq!(engine.result(view).unwrap().len(), 1);
///
/// let mut batch = DeltaBatch::new();
/// batch.insert("S", int_row([1, 2]));
/// let report = engine.apply(&batch).unwrap();
/// assert_eq!(report.epoch, 1);
/// assert!(engine.result(view).unwrap().is_empty());
/// ```
pub struct DcqEngine {
    store: SharedDatabase,
    plans: PlanCache,
    /// Handle slot → shared-view slot, generation-checked.
    handles: Vec<HandleSlot>,
    /// The distinct maintained views (the fan-out targets of `apply`).
    views: Vec<Option<SharedView>>,
    /// (shape, strategy) → shared-view slot, so identical registrations share
    /// one maintained view.
    by_key: FastHashMap<(QueryShapeKey, IncrementalStrategy), usize>,
    /// Live counting sides keyed by α-canonical CQ shape: distinct DCQs with an
    /// equivalent side share one maintained `CountingCq` (folded once per
    /// batch), not just its plans and indexes.
    pool: CountingPool,
    /// The rerun/counting crossover model the adaptive policy consults after
    /// every batch; host-calibratable via [`DcqEngine::set_cost_model`].
    cost_model: MaintenanceCostModel,
    /// The per-view fan-out workers `apply` distributes over; see
    /// [`DcqEngine::set_workers`].
    fanout: WorkerPool,
    /// Explicit intra-view fold partition count, or `None` to follow the
    /// fan-out width; see [`DcqEngine::set_fold_partitions`].
    fold_partitions: Option<usize>,
    log: UpdateLog,
    /// Scheduled-compaction bounds checked in `apply`'s policy tail; default
    /// unbounded (no scheduled compaction).
    compaction: CompactionPolicy,
    /// Where scheduled compaction persists checkpoints; `None` = truncate-only.
    checkpoint_sink: Option<Box<dyn CheckpointSink>>,
    /// The clock every policy-facing cost sample is taken on, pinned at
    /// construction; see [`DcqEngine::cost_clock`].
    cost_clock: CostClock,
    telemetry: EngineTelemetry,
}

impl Default for DcqEngine {
    fn default() -> Self {
        DcqEngine::new()
    }
}

impl DcqEngine {
    /// An engine over an empty store (add relations with
    /// [`DcqEngine::add_relation`]).
    pub fn new() -> Self {
        DcqEngine::with_database(Database::new())
    }

    /// An engine taking ownership of `db` as its database of record.
    pub fn with_database(db: Database) -> Self {
        DcqEngine::with_database_at(db, 0)
    }

    /// An engine taking ownership of `db` as its database of record **at
    /// epoch `epoch`** — the recovery constructor.
    ///
    /// An engine rebuilt from a checkpoint taken at epoch `e` must keep epoch
    /// numbering where the pre-crash engine left off, so replayed log batches
    /// and previously acknowledged epochs line up.  The fresh update log is
    /// rebased to `epoch` for the same reason: `checkpoint ⊕ retained log =
    /// current state` stays an invariant from the first post-recovery batch.
    pub fn with_database_at(db: Database, epoch: Epoch) -> Self {
        let mut log = UpdateLog::new();
        log.rebase(epoch);
        let workers = WorkerPool::default_workers();
        let mut store = SharedDatabase::new_at(db, epoch);
        store.set_commit_workers(workers);
        DcqEngine {
            store,
            plans: PlanCache::new(),
            handles: Vec::new(),
            views: Vec::new(),
            by_key: FastHashMap::default(),
            pool: CountingPool::new(),
            cost_model: MaintenanceCostModel::default(),
            fanout: WorkerPool::new(workers),
            fold_partitions: None,
            log,
            compaction: CompactionPolicy::default(),
            checkpoint_sink: None,
            cost_clock: pinned_cost_clock(),
            telemetry: EngineTelemetry::new(),
        }
    }

    /// The clock every policy-facing cost sample this engine records is taken
    /// on: [`CostClock::ThreadCpu`] wherever the platform offers a per-thread
    /// CPU clock, [`CostClock::Wall`] elsewhere.  Pinned once at construction
    /// — clock availability is a static platform property — so
    /// [`BatchStats::observe_cost`] never sees mixed-provenance samples from
    /// one engine.
    pub fn cost_clock(&self) -> CostClock {
        self.cost_clock
    }

    /// The number of fan-out workers [`DcqEngine::apply`] distributes per-view
    /// maintenance over (defaults to the host's available parallelism with the
    /// `parallel` feature, `1` without it).
    pub fn workers(&self) -> usize {
        self.fanout.workers()
    }

    /// Set the fan-out width (clamped to at least 1; `1` forces strictly
    /// sequential, inline application in slot order).
    ///
    /// The width also flows into the other two parallel seams: the store's
    /// sharded commit ([`SharedDatabase::set_commit_workers`]) and — unless
    /// pinned via [`DcqEngine::set_fold_partitions`] — the counting sides'
    /// intra-view fold partitioning.
    ///
    /// Worker count never affects *what* the engine computes — results, stats
    /// and shared-state counters are bit-identical at any width
    /// (`tests/parallel_determinism.rs`) — only how per-view work is scheduled
    /// within one `apply`.
    pub fn set_workers(&mut self, workers: usize) {
        self.fanout = WorkerPool::new(workers);
        self.store.set_commit_workers(workers);
        self.push_fold_partitions();
    }

    /// Pin the counting sides' intra-view fold partition count, or pass `None`
    /// to follow the fan-out width (the default).  Like the fan-out width, a
    /// pure scheduling knob: results, stats and telemetry counters are
    /// bit-identical at any value (`tests/parallel_determinism.rs`).
    pub fn set_fold_partitions(&mut self, partitions: Option<usize>) {
        self.fold_partitions = partitions.map(|n| n.max(1));
        self.push_fold_partitions();
    }

    /// The effective intra-view fold partition count (the pinned value, else
    /// the fan-out width).
    pub fn fold_partitions(&self) -> usize {
        self.fold_partitions
            .unwrap_or_else(|| self.fanout.workers())
    }

    /// Push the effective fold partition count onto every live view (each view
    /// re-applies it to sides a later migration builds).
    fn push_fold_partitions(&mut self) {
        let effective = self.fold_partitions();
        for shared in self.views.iter_mut().flatten() {
            shared.view.set_fold_partitions(effective);
        }
    }

    /// Read-only access to the database of record.
    pub fn database(&self) -> &Database {
        self.store.database()
    }

    /// A versioned read handle on one stored relation.
    pub fn relation(&self, name: &str) -> Result<RelationRef<'_>> {
        Ok(self.store.relation(name)?)
    }

    /// The current store epoch (number of applied batches).
    pub fn epoch(&self) -> Epoch {
        self.store.epoch()
    }

    /// Register a new base relation (deduplicated on ingest).
    pub fn add_relation(&mut self, relation: Relation) -> Result<()> {
        Ok(self.store.add_relation(relation)?)
    }

    /// Prepare a DCQ: validate it against the store and resolve its maintenance
    /// plan through the plan cache.
    ///
    /// Preparing the same query shape twice performs **zero** re-classifications —
    /// the second preparation is a cache hit (observable via
    /// [`PreparedDcq::cache_hit`] and [`DcqEngine::plan_cache_stats`]).
    pub fn prepare(&mut self, dcq: Dcq) -> Result<PreparedDcq> {
        dcq.validate(self.store.database())?;
        let (plan, cache_hit) = self.plans.plan_incremental(&dcq);
        Ok(PreparedDcq {
            dcq,
            plan,
            cache_hit,
        })
    }

    /// Register a prepared DCQ as a maintained view over the current store
    /// contents, returning its handle.
    ///
    /// Registrations of an **identical query shape and strategy** share one
    /// maintained view: the engine maintains it once per batch no matter how many
    /// clients registered it, which is where multi-client fan-out wins big over
    /// independent per-client views.  (Shared views expose the variable naming of
    /// their first registrant; the result *rows* are identical by α-equivalence.)
    pub fn register(&mut self, prepared: &PreparedDcq) -> Result<ViewHandle> {
        self.register_view(prepared.dcq.clone(), prepared.plan.clone())
    }

    /// Prepare and register in one call (the common path for one-off clients).
    pub fn register_dcq(&mut self, dcq: Dcq) -> Result<ViewHandle> {
        let prepared = self.prepare(dcq)?;
        self.register(&prepared)
    }

    /// Register with an explicitly forced maintenance strategy (benchmarks and
    /// tests; production callers should trust the dichotomy).  Sharing applies
    /// per (shape, strategy): the same query forced to a different strategy gets
    /// its own view.
    pub fn register_with(&mut self, dcq: Dcq, strategy: IncrementalStrategy) -> Result<ViewHandle> {
        let prepared = self.prepare(dcq)?;
        let mut plan = prepared.plan.clone();
        plan.strategy = strategy;
        self.register_view(prepared.dcq.clone(), plan)
    }

    /// Register a view under the **adaptive** maintenance policy: it starts on
    /// the engine kind the cost model predicts for its workload prior
    /// ([`MaintenanceCostModel::initial_kind`] — counting, under the default
    /// trickle-update prior), the engine tracks the effective size of every
    /// batch it applies ([`BatchStats`]), and when the observed EWMA delta
    /// fraction crosses the cost model's rerun/counting crossover the engine
    /// migrates the live view to the cheaper engine kind — rebuilt from the
    /// shared store at the current epoch, with the old engine's pooled sides
    /// and registry indexes released.  Results are unaffected: a migrated view
    /// stays byte-identical to a never-migrated one
    /// (`tests/adaptive_migration.rs`).
    ///
    /// Adaptive registrations of one shape share a single maintained view and a
    /// single statistics tracker, and are distinct from fixed-strategy
    /// registrations of the same shape.
    pub fn register_adaptive(&mut self, dcq: Dcq) -> Result<ViewHandle> {
        self.register_with(dcq, IncrementalStrategy::Adaptive)
    }

    /// The rerun/counting cost model the adaptive policy consults.
    pub fn cost_model(&self) -> MaintenanceCostModel {
        self.cost_model
    }

    /// Replace the adaptive cost model, e.g. with one fitted by
    /// `cargo run --release --example calibrate` on this host.  Applies to
    /// every adaptive view from the next batch on, and to the initial engine
    /// kind of subsequent adaptive registrations — install the model before
    /// registering views when the workload prior matters.
    pub fn set_cost_model(&mut self, model: MaintenanceCostModel) {
        self.cost_model = model;
    }

    /// Find-or-build the shared view for `(shape, strategy)` and hand out a new
    /// handle to it.
    fn register_view(&mut self, dcq: Dcq, plan: IncrementalPlan) -> Result<ViewHandle> {
        let key = (QueryShapeKey::of(&dcq), plan.strategy);
        let view_slot = match self.by_key.get(&key) {
            // Already maintained: the existing state is current to the store
            // epoch, so the new registrant sees exactly the right result.  A
            // manual migration may have moved a fixed-strategy view off its
            // declared kind; a fresh registration re-asserts the contract, so
            // migrate it back before handing out the handle.
            Some(&slot) => {
                self.views[slot].as_mut().expect("keyed view is live").refs += 1;
                if key.1 != IncrementalStrategy::Adaptive {
                    self.migrate_slot(slot, key.1)?;
                }
                slot
            }
            None => {
                // Counting views resolve their sides through the engine's
                // sharing layers: delta plans through the plan cache (sub-plan
                // sharing across distinct DCQ shapes), whole counting sides
                // through the side pool (an α-equivalent side is folded once
                // per batch no matter how many views read it), and the shared
                // indexes those plans probe through the store's registry —
                // built once, maintained once per batch, refcounted across
                // every side that probes them.
                // Adaptive views start on the cost model's workload-prior
                // choice (counting, under the default trickle prior) rather
                // than the structural one: building the likely-right engine in
                // one piece at registration avoids an almost-certain early
                // migration whose mid-stream state is slower to probe.
                let mut view = DcqView::build_shared_with_initial(
                    dcq,
                    plan,
                    &mut self.store,
                    &mut self.plans,
                    &mut self.pool,
                    self.cost_model.initial_kind(),
                )?;
                view.set_fold_partitions(self.fold_partitions());
                let shared = SharedView {
                    view,
                    refs: 1,
                    key: key.clone(),
                    adaptive: (key.1 == IncrementalStrategy::Adaptive).then(BatchStats::default),
                };
                let slot = match self.views.iter().position(Option::is_none) {
                    Some(free) => {
                        self.views[free] = Some(shared);
                        free
                    }
                    None => {
                        self.views.push(Some(shared));
                        self.views.len() - 1
                    }
                };
                self.by_key.insert(key, slot);
                slot
            }
        };
        self.telemetry.views_registered.inc();
        // Hand out a dense handle slot pointing at the shared view; bumping the
        // generation on every allocation invalidates stale copies of whatever
        // handle owned the slot before.
        let slot = match self.handles.iter().position(|h| h.target.is_none()) {
            Some(free) => free,
            None => {
                self.handles.push(HandleSlot::default());
                self.handles.len() - 1
            }
        };
        self.handles[slot].generation += 1;
        self.handles[slot].target = Some(view_slot);
        Ok(ViewHandle {
            slot,
            generation: self.handles[slot].generation,
        })
    }

    /// Resolve a handle to its shared-view slot, rejecting stale generations.
    fn resolve(&self, handle: ViewHandle) -> Result<usize> {
        self.handles
            .get(handle.slot)
            .filter(|h| h.generation == handle.generation)
            .and_then(|h| h.target)
            .ok_or(EngineError::UnknownView(handle))
    }

    /// Drop a registration.  The handle (and any copy of it) becomes invalid; the
    /// underlying view is torn down when its last handle is deregistered.
    pub fn deregister(&mut self, handle: ViewHandle) -> Result<()> {
        let view_slot = self.resolve(handle)?;
        self.handles[handle.slot].target = None;
        self.telemetry.views_deregistered.inc();
        let shared = self.views[view_slot]
            .as_mut()
            .expect("handle pointed at a live view");
        shared.refs -= 1;
        if shared.refs == 0 {
            let key = shared.key.clone();
            self.by_key.remove(&key);
            let mut dropped = self.views[view_slot].take().expect("checked live above");
            // Release the view's pooled sides and registry references; each
            // shared structure is freed when its last reader deregisters.  The
            // view (and with it its side Rcs) must drop before the pool prunes,
            // or the dying sides still count as held.
            dropped.view.teardown(&mut self.store);
            // Fold the dying view's cumulative counting work into the engine's
            // retired base so aggregated totals ([`DcqEngine::counting_telemetry`])
            // stay monotone across deregistration.  Sides the view shared with
            // survivors were not folded into its retired counters and keep
            // reporting through the views that still hold them.
            self.telemetry
                .retired
                .merge(&dropped.view.retired_counting_telemetry());
            drop(dropped);
            self.pool.prune();
        }
        Ok(())
    }

    /// Apply one delta batch to the store and fan it out to every registered view.
    ///
    /// The batch is validated and normalized **once**, the store is updated in
    /// `O(|Δ|)`, the epoch advances, and each view folds in the shared normalized
    /// deltas (views referencing none of the touched relations only record the new
    /// epoch).  Every relation the batch names must exist in the store — the
    /// engine owns the database of record, so there is no "somebody else's
    /// relation" to silently skip.
    ///
    /// After the fan-out, the **adaptive policy** runs: every adaptive view's
    /// [`BatchStats`] absorbs the batch's effective delta fraction and the
    /// measured per-batch maintenance cost of its active engine kind, and views
    /// whose observed workload has crossed the cost model's rerun/counting
    /// crossover (with hysteresis) are migrated in place — at the new epoch, so
    /// the next batch finds them current.
    ///
    /// ## Phases
    ///
    /// 1. **Commit (sequential, exclusive):** the store applies and versions
    ///    the batch, every shared registry index is maintained exactly once,
    ///    the log records it.
    /// 2. **Fan-out (parallel, read-only):** distinct views fold the shared
    ///    normalized delta against the immutable post-commit store across the
    ///    [worker pool](DcqEngine::set_workers); pooled counting sides are
    ///    folded once per epoch by whichever worker locks them first, later
    ///    sharers get the memoized delta.  Worker count never changes results
    ///    or stats — only scheduling.
    /// 3. **Policy (sequential):** outcomes fold into the report in slot
    ///    order, adaptive views absorb delta-fraction and per-view **CPU
    ///    time** cost samples (wall time would charge a view for its
    ///    co-scheduled siblings and lock waits), and decided migrations
    ///    execute at the new epoch.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<ApplyReport> {
        #[cfg(feature = "telemetry")]
        let commit_start = Instant::now();
        // The delta fraction is measured against the PRE-batch store size,
        // matching how calibration sweeps label their samples (batch tuples
        // relative to the store the batch is generated against).
        let store_size = self.store.input_size().max(1);
        let applied = self.store.apply_batch(batch)?;
        self.log.record(batch.clone(), applied.effect);
        self.telemetry.batches.inc();
        let mut report = ApplyReport {
            epoch: applied.epoch,
            effect: applied.effect,
            ..ApplyReport::default()
        };
        #[cfg(feature = "telemetry")]
        let commit_ns = commit_start.elapsed().as_nanos() as u64;

        // Fan-out: per-view folds are independent given the immutable store
        // borrow, so they distribute over the worker pool; each worker samples
        // the engine's pinned cost clock around each view it runs.
        let store = &self.store;
        let applied_ref = &applied;
        let cost_clock = self.cost_clock;
        let tasks: Vec<(usize, &mut SharedView)> = self
            .views
            .iter_mut()
            .enumerate()
            .filter_map(|(slot, entry)| entry.as_mut().map(|shared| (slot, shared)))
            .collect();
        // Spawning workers only pays when at least two views have real
        // maintenance to do this batch; a trickle or irrelevant batch (every
        // view skips, or only one folds) runs inline, spawning nothing —
        // worker choice is pure scheduling either way, so this never changes
        // an observable.
        let working = tasks
            .iter()
            .filter(|(_, shared)| {
                applied
                    .normalized
                    .iter()
                    .any(|(name, delta)| !delta.is_empty() && shared.view.references(name))
            })
            .count();
        let fanout = if working >= 2 {
            self.fanout
        } else {
            WorkerPool::new(1)
        };
        #[cfg(feature = "telemetry")]
        let fanout_start = Instant::now();
        type ViewOutcome = (usize, dcq_incremental::Result<BatchOutcome>, f64);
        let outcomes: Vec<ViewOutcome> = fanout.run(tasks, |_, (slot, shared)| {
            let sample = CostSample::start(cost_clock);
            let outcome = shared.view.apply(applied_ref, store);
            (slot, outcome, sample.finish())
        });
        #[cfg(feature = "telemetry")]
        let fanout_ns = fanout_start.elapsed().as_nanos() as u64;
        #[cfg(feature = "telemetry")]
        let policy_start = Instant::now();

        // Policy tail: deterministic slot order regardless of which worker ran
        // what.  A view error surfaces after every view has seen the batch, so
        // the healthy views' epochs stay aligned with the store.
        let mut first_error: Option<EngineError> = None;
        let mut pending: Vec<(usize, IncrementalStrategy)> = Vec::new();
        #[cfg(feature = "telemetry")]
        let mut view_records: Vec<ViewTraceRecord> = Vec::new();
        for (slot, outcome, cost_ns) in outcomes {
            let outcome = match outcome {
                Ok(outcome) => outcome,
                Err(e) => {
                    first_error.get_or_insert(e.into());
                    continue;
                }
            };
            if outcome.skipped {
                report.views_skipped += 1;
            } else {
                report.views_applied += 1;
            }
            report.result_added += outcome.result_added;
            report.result_removed += outcome.result_removed;
            let shared = self.views[slot].as_mut().expect("live view slot");
            let delta_fraction = outcome.effect.total() as f64 / store_size as f64;
            let mut migration: Option<IncrementalStrategy> = None;
            if let Some(stats) = shared.adaptive.as_mut() {
                if !outcome.skipped {
                    stats.observe(delta_fraction);
                    stats.observe_cost(shared.view.active_strategy(), cost_ns, cost_clock);
                    if let Some(target) =
                        self.cost_model.decide(shared.view.active_strategy(), stats)
                    {
                        pending.push((slot, target));
                        migration = Some(target);
                    }
                }
            }
            #[cfg(feature = "telemetry")]
            {
                if !outcome.skipped {
                    self.telemetry.view_cost_ns.observe(cost_ns as u64);
                }
                view_records.push(ViewTraceRecord {
                    slot,
                    strategy: strategy_label(shared.view.active_strategy()),
                    delta_fraction: if outcome.skipped { 0.0 } else { delta_fraction },
                    cost_ns: cost_ns as u64,
                    clock: clock_label(cost_clock),
                    skipped: outcome.skipped,
                    result_added: outcome.result_added,
                    result_removed: outcome.result_removed,
                    migration: migration.map(strategy_label),
                });
            }
            #[cfg(not(feature = "telemetry"))]
            let _ = migration;
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        // Migrations mutate the store's registry and the side pool, so they run
        // after the fan-out released its borrows.  Each migrated view is
        // rebuilt at `applied.epoch` — exactly the state it already reflects.
        for (slot, target) in pending {
            self.migrate_slot(slot, target)?;
        }
        // Scheduled compaction closes the policy tail: the batch is committed,
        // logged, and every view reflects it, so a checkpoint taken here is a
        // consistent cut of the stream.
        if self.compaction.is_bounded() {
            self.maybe_compact();
        }
        #[cfg(feature = "telemetry")]
        {
            let policy_ns = policy_start.elapsed().as_nanos() as u64;
            self.telemetry.commit_ns.observe(commit_ns);
            self.telemetry.fanout_ns.observe(fanout_ns);
            self.telemetry.policy_ns.observe(policy_ns);
            self.telemetry.sink.record(BatchTrace {
                epoch: applied.epoch,
                batch_len: batch.len(),
                inserted: applied.effect.inserted as u64,
                deleted: applied.effect.deleted as u64,
                commit_ns,
                fanout_ns,
                policy_ns,
                workers: fanout.workers(),
                views: view_records,
            });
        }
        Ok(report)
    }

    /// Migrate the view behind `handle` to the given engine kind at the current
    /// epoch (see [`DcqView::migrate`]): the target state is rebuilt from the
    /// shared store (pooled counting sides are shared, not reseeded, when
    /// another view holds the same side shape), swapped in atomically, and the
    /// old engine's pooled sides and registry index references are released.
    ///
    /// Returns `false` when the view already runs `target`.  Passing
    /// [`IncrementalStrategy::Adaptive`] migrates back to the dichotomy's
    /// structural choice.  The declared strategy — and with it the view-sharing
    /// key — never changes; results are strategy-independent, so handles
    /// sharing the view observe nothing but a different cost profile.
    pub fn migrate(&mut self, handle: ViewHandle, target: IncrementalStrategy) -> Result<bool> {
        let slot = self.resolve(handle)?;
        self.migrate_slot(slot, target)
    }

    /// [`DcqEngine::migrate`] by shared-view slot (the policy loop's entry).
    fn migrate_slot(&mut self, slot: usize, target: IncrementalStrategy) -> Result<bool> {
        let shared = self.views[slot].as_mut().expect("live view slot");
        let migrated =
            shared
                .view
                .migrate(target, &mut self.store, &mut self.plans, &mut self.pool)?;
        if migrated {
            let active = shared.view.active_strategy();
            if let Some(stats) = shared.adaptive.as_mut() {
                stats.note_migration();
            }
            match active {
                IncrementalStrategy::EasyRerun => self.telemetry.migrations_to_rerun.inc(),
                IncrementalStrategy::Counting => self.telemetry.migrations_to_counting.inc(),
                IncrementalStrategy::Adaptive => unreachable!("active kind is always concrete"),
            }
            // A migration away from counting may have dropped the last holder
            // of a pooled side shape.
            self.pool.prune();
        }
        Ok(migrated)
    }

    /// The adaptive batch statistics of the view behind `handle`: `None` for
    /// views registered with a fixed strategy.
    pub fn batch_stats(&self, handle: ViewHandle) -> Result<Option<BatchStats>> {
        let slot = self.resolve(handle)?;
        Ok(self.views[slot].as_ref().expect("live handle").adaptive)
    }

    /// The view behind a handle (possibly shared with other handles of the same
    /// query shape).
    pub fn view(&self, handle: ViewHandle) -> Result<&DcqView> {
        let view_slot = self.resolve(handle)?;
        Ok(&self.views[view_slot].as_ref().expect("live handle").view)
    }

    /// Materialize a view's current result as a relation (the view's id-space
    /// membership set resolved through the store's dictionary).
    pub fn result(&self, handle: ViewHandle) -> Result<Relation> {
        Ok(self.view(handle)?.result(&self.store))
    }

    /// Iterate over `(handle, view)` pairs of the live registrations (a shared
    /// view appears once per handle).
    pub fn views(&self) -> impl Iterator<Item = (ViewHandle, &DcqView)> {
        self.handles.iter().enumerate().filter_map(|(i, h)| {
            h.target.map(|view_slot| {
                (
                    ViewHandle {
                        slot: i,
                        generation: h.generation,
                    },
                    &self.views[view_slot].as_ref().expect("live handle").view,
                )
            })
        })
    }

    /// Number of live registrations (handles).
    pub fn view_count(&self) -> usize {
        self.handles.iter().filter(|h| h.target.is_some()).count()
    }

    /// Number of *distinct* maintained views — the actual per-batch fan-out
    /// width.  Less than [`DcqEngine::view_count`] when registrations share.
    pub fn distinct_view_count(&self) -> usize {
        self.views.iter().flatten().count()
    }

    /// Plan-cache counters (hits = preparations that performed no classification).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// Counting-side pool counters (hits = registrations that reused a live
    /// maintained side instead of seeding their own).
    pub fn counting_pool_stats(&self) -> CountingPoolStats {
        self.pool.stats()
    }

    /// Cumulative engine counters (read from the metrics registry — the same
    /// atomics [`DcqEngine::metrics`] renders), with the index-registry,
    /// update-log, counting-pool and fan-out snapshots filled in at call time.
    pub fn stats(&self) -> EngineStats {
        let pool = self.pool.stats();
        EngineStats {
            batches_applied: self.telemetry.batches.get() as usize,
            views_registered: self.telemetry.views_registered.get() as usize,
            views_deregistered: self.telemetry.views_deregistered.get() as usize,
            index_count: self.store.index_count(),
            index_bytes: self.store.index_bytes(),
            migrations_to_rerun: self.telemetry.migrations_to_rerun.get() as usize,
            migrations_to_counting: self.telemetry.migrations_to_counting.get() as usize,
            compactions: self.telemetry.compactions.get() as usize,
            log_len: self.log.len(),
            log_base_epoch: self.log.base_epoch(),
            pool_live: pool.live,
            pool_shared: pool.shared,
            workers: self.fanout.workers(),
        }
    }

    /// Aggregated counting-maintenance telemetry across every side the engine
    /// ever maintained: the engine's retired base (sides whose last-holder
    /// views were deregistered), each live view's migration-retired base, and
    /// the live pooled sides — deduplicated by side identity, so a side shared
    /// by `N` views is counted once.  Schedule-independent and monotone; all
    /// gated fields read zero without the `telemetry` feature.
    pub fn counting_telemetry(&self) -> CountingTelemetry {
        let mut total = self.telemetry.retired;
        let mut seen: FastHashSet<usize> = FastHashSet::default();
        for shared in self.views.iter().flatten() {
            total.merge(&shared.view.retired_counting_telemetry());
            for (side, telemetry) in shared.view.counting_telemetry() {
                if seen.insert(side) {
                    total.merge(&telemetry);
                }
            }
        }
        total
    }

    /// The store's shared-index registry telemetry (COW clones vs. in-place
    /// writes, snapshots taken, live snapshot pins).  Gated fields read zero
    /// without the `telemetry` feature.
    pub fn index_telemetry(&self) -> IndexTelemetry {
        self.store.index_telemetry()
    }

    /// Render every metric the engine tracks in Prometheus text exposition
    /// format: engine counters and phase histograms, plus the lower layers'
    /// work counters (index registry, counting sides, side pool, plan cache)
    /// and point-in-time gauges (epoch, handles, log, memory), aggregated into
    /// the registry at call time.
    pub fn metrics(&self) -> String {
        self.refresh_registry();
        self.telemetry.registry.render_prometheus()
    }

    /// The engine's metrics registry with every aggregated/point-in-time value
    /// refreshed; [`DcqEngine::metrics`] is `refresh + render`.
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        self.refresh_registry();
        &self.telemetry.registry
    }

    /// Write the point-in-time gauges and the lower layers' aggregated totals
    /// into the registry (engine counters and histograms are live atomics and
    /// need no refresh).  Idempotent; creation is name-keyed, so repeated
    /// refreshes reuse the same metric objects.
    fn refresh_registry(&self) {
        let reg = &self.telemetry.registry;
        reg.gauge("dcq_engine_epoch", "Current store epoch")
            .set(self.store.epoch());
        reg.gauge("dcq_engine_view_handles", "Live registrations (handles)")
            .set(self.view_count() as u64);
        reg.gauge(
            "dcq_engine_distinct_views",
            "Distinct maintained views (per-batch fan-out width)",
        )
        .set(self.distinct_view_count() as u64);
        reg.gauge("dcq_engine_workers", "Configured fan-out workers")
            .set(self.fanout.workers() as u64);
        reg.gauge(
            "dcq_engine_update_log_len",
            "Batches retained in the update log",
        )
        .set(self.log.len() as u64);
        reg.gauge(
            "dcq_engine_update_log_base_epoch",
            "Epoch the retained log suffix starts after",
        )
        .set(self.log.base_epoch());
        reg.gauge(
            "dcq_engine_update_log_bytes",
            "Approximate heap footprint of the retained update log, bytes",
        )
        .set(self.log.approx_bytes() as u64);

        reg.gauge("dcq_index_count", "Live shared indexes in the registry")
            .set(self.store.index_count() as u64);
        reg.gauge("dcq_index_bytes", "Estimated index heap footprint, bytes")
            .set(self.store.index_bytes() as u64);
        let index = self.store.index_telemetry();
        reg.counter(
            "dcq_index_inplace_writes_total",
            "Unshared index maintenance writes applied in place",
        )
        .set_total(index.inplace_writes);
        reg.counter(
            "dcq_index_cow_clones_total",
            "Index maintenance writes that copy-on-wrote a pinned index",
        )
        .set_total(index.cow_clones);
        reg.counter(
            "dcq_index_snapshots_total",
            "Epoch-consistent index snapshots taken",
        )
        .set_total(index.snapshots_taken);
        reg.gauge(
            "dcq_index_live_snapshot_pins",
            "Index snapshots currently pinning an index version",
        )
        .set(index.live_snapshot_pins);

        let dict = self.store.dict_stats();
        reg.gauge(
            "dcq_dict_entries",
            "Distinct values interned in the store dictionary",
        )
        .set(dict.entries);
        reg.gauge(
            "dcq_dict_bytes",
            "Estimated dictionary heap footprint, bytes",
        )
        .set(dict.bytes);
        reg.counter(
            "dcq_dict_intern_hits_total",
            "Intern calls resolved to an existing id",
        )
        .set_total(dict.intern_hits);
        reg.counter(
            "dcq_dict_intern_misses_total",
            "Intern calls that assigned a fresh id",
        )
        .set_total(dict.intern_misses);
        reg.gauge(
            "dcq_flat_bytes",
            "Allocated flat id-column heap footprint across all relations, bytes",
        )
        .set(self.store.flat_bytes() as u64);
        reg.gauge(
            "dcq_flat_live_bytes",
            "Flat id-column heap bytes attributable to live rows (gap to \
             dcq_flat_bytes is reclaimable slack bounded by the compaction \
             threshold)",
        )
        .set(self.store.flat_live_bytes() as u64);
        for (name, live, allocated) in self.store.flat_relation_bytes() {
            let sanitized: String = name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            reg.gauge(
                &format!("dcq_flat_relation_bytes_{sanitized}"),
                "Allocated flat id-column heap footprint of one relation, bytes",
            )
            .set(allocated as u64);
            reg.gauge(
                &format!("dcq_flat_relation_live_bytes_{sanitized}"),
                "Live-row flat id-column heap footprint of one relation, bytes",
            )
            .set(live as u64);
        }
        for (shard, rows) in self.store.commit_shard_rows().iter().enumerate() {
            reg.gauge(
                &format!("dcq_commit_shard_rows_{shard}"),
                "Delta rows routed to one commit shard since startup (skew gauge)",
            )
            .set(*rows);
        }
        reg.gauge(
            "dcq_counting_fold_partitions",
            "Configured intra-view fold partitions (effective value)",
        )
        .set(self.fold_partitions() as u64);
        // Wall-clock per fold partition, summed across the distinct live
        // counting sides' most recent owned folds — a skew gauge, not part of
        // the deterministic surface.
        let mut partition_ns: Vec<u64> = Vec::new();
        let mut seen_sides: FastHashSet<usize> = FastHashSet::default();
        for shared in self.views.iter().flatten() {
            for (side, ns) in shared.view.fold_partition_ns() {
                if !seen_sides.insert(side) {
                    continue;
                }
                if partition_ns.len() < ns.len() {
                    partition_ns.resize(ns.len(), 0);
                }
                for (slot, v) in ns.iter().enumerate() {
                    partition_ns[slot] += v;
                }
            }
        }
        for (slot, ns) in partition_ns.iter().enumerate() {
            reg.gauge(
                &format!("dcq_counting_fold_partition_ns_{slot}"),
                "Wall-clock ns one fold partition spent in the latest owned \
                 folds, summed over live counting sides (skew gauge)",
            )
            .set(*ns);
        }

        let counting = self.counting_telemetry();
        reg.counter(
            "dcq_counting_index_probes_total",
            "Shared-index probes issued by telescoped fold steps",
        )
        .set_total(counting.index_probes);
        reg.counter(
            "dcq_counting_compensated_masks_total",
            "Rows masked out of probe results by delta compensation",
        )
        .set_total(counting.compensated_masks);
        reg.counter(
            "dcq_counting_compensated_restores_total",
            "Deleted rows restored into probe results by delta compensation",
        )
        .set_total(counting.compensated_restores);
        reg.counter(
            "dcq_counting_deletion_index_builds_total",
            "Transient deletion-side index builds",
        )
        .set_total(counting.deletion_index_builds);
        reg.counter(
            "dcq_counting_folds_owned_total",
            "Batch folds a side performed itself (first locker per epoch)",
        )
        .set_total(counting.folds_owned);
        reg.counter(
            "dcq_counting_fold_hits_shared_total",
            "Batch folds served from a pool-shared side's memoized delta",
        )
        .set_total(counting.fold_hits_shared);

        let pool = self.pool.stats();
        reg.counter(
            "dcq_pool_hits_total",
            "Side acquisitions served by a live shared side",
        )
        .set_total(pool.hits);
        reg.counter(
            "dcq_pool_misses_total",
            "Side acquisitions that built and seeded a fresh side",
        )
        .set_total(pool.misses);
        reg.gauge("dcq_pool_live_sides", "Live pooled counting side shapes")
            .set(pool.live as u64);
        reg.gauge(
            "dcq_pool_shared_sides",
            "Pooled sides held by more than one view",
        )
        .set(pool.shared as u64);

        let plans = self.plans.stats();
        reg.counter(
            "dcq_plan_cache_hits_total",
            "Preparations served without reclassification",
        )
        .set_total(plans.hits);
        reg.counter(
            "dcq_plan_cache_misses_total",
            "Preparations that performed classification work",
        )
        .set_total(plans.misses);
        reg.gauge("dcq_plan_cache_entries", "Memoized plan shapes")
            .set(plans.entries as u64);
    }

    /// Copy out the retained per-batch traces, oldest first, without consuming
    /// them.  Empty without the `telemetry` feature (the hooks that record
    /// traces compile to nothing).
    pub fn traces(&self) -> Vec<BatchTrace> {
        self.telemetry.sink.snapshot()
    }

    /// Remove and return the retained per-batch traces, oldest first.
    pub fn drain_traces(&self) -> Vec<BatchTrace> {
        self.telemetry.sink.drain()
    }

    /// Render the retained per-batch traces as JSON lines (one `BatchTrace`
    /// object per line, oldest first), without consuming them.
    pub fn trace_json_lines(&self) -> String {
        render_json_lines(&self.telemetry.sink.snapshot())
    }

    /// Replace the per-batch trace sink (default: a bounded
    /// [`RingTraceSink`] retaining the most recent
    /// [`RingTraceSink::DEFAULT_CAPACITY`] traces).  Retained traces in the
    /// old sink are discarded with it.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.telemetry.sink = sink;
    }

    /// The engine's update log (every applied batch, unbounded by default;
    /// bound it with [`UpdateLog::with_limit`] via [`DcqEngine::set_log`] or
    /// compact it explicitly with [`DcqEngine::compact_log`]).
    pub fn log(&self) -> &UpdateLog {
        &self.log
    }

    /// Replace the update log, e.g. to bound retention with
    /// [`UpdateLog::with_limit`].  Clears history; an empty replacement log is
    /// rebased to the current epoch so its [`UpdateLog::base_epoch`] stays
    /// truthful about where in the update stream it starts.
    pub fn set_log(&mut self, mut log: UpdateLog) {
        log.rebase(self.store.epoch());
        self.log = log;
    }

    /// Compact the update log against a checkpoint of the current store: every
    /// batch the returned checkpoint already reflects is dropped from the log,
    /// bounding log memory while preserving replayability **from the
    /// truncation point** — `checkpoint.database` plus
    /// [`UpdateLog::replay_onto`]`(…, checkpoint.epoch)` reproduces the
    /// engine's database of record exactly, now and after any number of
    /// further batches (each of which the log keeps recording as before).
    ///
    /// This is the first slice of checkpoint-based recovery: the caller owns
    /// durability of the returned [`LogCheckpoint`] (serialize it, ship it to
    /// object storage, …); the engine only guarantees the arithmetic —
    /// `checkpoint ⊕ retained log = current state`.
    ///
    /// The returned checkpoint **deep-copies** the database of record — the
    /// in-memory variant costs a second copy of the state.  Callers whose
    /// checkpoints are headed for a writer anyway should use
    /// [`DcqEngine::compact_log_to`], which streams the serialized form
    /// without cloning.
    pub fn compact_log(&mut self) -> LogCheckpoint {
        let epoch = self.store.epoch();
        let compacted_batches = self.log.truncate_before(epoch);
        if compacted_batches > 0 {
            self.telemetry.compactions.inc();
        }
        LogCheckpoint {
            epoch,
            compacted_batches,
            database: self.store.database().clone(),
        }
    }

    /// [`DcqEngine::compact_log`] without the in-memory clone: stream the
    /// current database of record into `w` as a serialized checkpoint
    /// ([`dcq_storage::checkpoint`] format — versioned header, CRC), then
    /// truncate the log prefix the checkpoint subsumes.
    ///
    /// The log is only truncated **after** the write succeeds; on error it is
    /// left intact, so the retained log still covers everything since the last
    /// durable checkpoint.  Compaction cost is bounded by one traversal of the
    /// state, not two ([`Relation`] clones *plus* serialization).
    ///
    /// Returns `(checkpoint epoch, batches compacted)`.
    pub fn compact_log_to<W: std::io::Write>(
        &mut self,
        w: &mut W,
    ) -> dcq_storage::Result<(Epoch, usize)> {
        let epoch = self.store.epoch();
        dcq_storage::checkpoint::write_checkpoint(w, epoch, self.store.database())?;
        let compacted_batches = self.log.truncate_before(epoch);
        if compacted_batches > 0 {
            self.telemetry.compactions.inc();
        }
        Ok((epoch, compacted_batches))
    }

    /// The scheduled-compaction bounds [`DcqEngine::apply`] checks after every
    /// batch (default: unbounded, no scheduled compaction).
    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.compaction
    }

    /// Install scheduled compaction: after any batch that leaves the retained
    /// log over a bound, the engine checkpoints the store — through the
    /// [`CheckpointSink`] when one is installed
    /// ([`DcqEngine::set_checkpoint_sink`]), truncate-only otherwise — and
    /// drops the subsumed log prefix.  Successful compactions bump the
    /// `dcq_engine_compactions_total` counter ([`EngineStats::compactions`]).
    pub fn set_compaction_policy(&mut self, policy: CompactionPolicy) {
        self.compaction = policy;
    }

    /// Install (or remove) the sink scheduled compaction persists checkpoints
    /// to.  A sink failure aborts that compaction — the log keeps every batch
    /// since the last successful checkpoint and
    /// `dcq_engine_checkpoint_errors_total` is bumped — and the policy retries
    /// after the next batch.
    pub fn set_checkpoint_sink(&mut self, sink: Option<Box<dyn CheckpointSink>>) {
        self.checkpoint_sink = sink;
    }

    /// The scheduled-compaction step: called from `apply`'s policy tail when a
    /// [`CompactionPolicy`] bound is exceeded.
    fn maybe_compact(&mut self) {
        if !self
            .compaction
            .exceeded(self.log.len(), self.log.approx_bytes())
        {
            return;
        }
        let epoch = self.store.epoch();
        if let Some(sink) = self.checkpoint_sink.as_mut() {
            if let Err(_e) = sink.write_checkpoint(epoch, self.store.database()) {
                self.telemetry.checkpoint_errors.inc();
                return;
            }
        }
        if self.log.truncate_before(epoch) > 0 {
            self.telemetry.compactions.inc();
        }
    }

    /// Estimated heap footprint of the store in bytes — base relations **plus**
    /// the shared index registry.
    ///
    /// This is the number that used to scale with the view count: independent
    /// views held per-view copies of their referenced relations *and* per-view
    /// index structures; the engine holds one store and one refcounted index per
    /// distinct probe signature, regardless of how many views probe it.  (Until
    /// this accounting was fixed, index memory was silently omitted.)
    pub fn store_bytes(&self) -> usize {
        self.store.approx_bytes() + self.store.index_bytes()
    }

    /// Number of live shared indexes in the store's registry.
    pub fn index_count(&self) -> usize {
        self.store.index_count()
    }

    /// Estimated heap footprint of the shared index registry in bytes.
    pub fn index_bytes(&self) -> usize {
        self.store.index_bytes()
    }
}

impl fmt::Debug for DcqEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DcqEngine[epoch {}, {} views, {} relations, {} tuples]",
            self.store.epoch(),
            self.view_count(),
            self.store.database().relation_count(),
            self.store.input_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_core::baseline::{baseline_dcq, CqStrategy};
    use dcq_core::parse_dcq;
    use dcq_storage::row::int_row;

    const EASY: &str = "Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)";
    const HARD: &str = "Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)";

    fn engine() -> DcqEngine {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![
                vec![1, 2],
                vec![2, 3],
                vec![3, 1],
                vec![2, 4],
                vec![4, 1],
                vec![4, 5],
            ],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Triple",
            &["a", "b", "c"],
            vec![vec![1, 2, 3], vec![2, 3, 1], vec![2, 4, 1], vec![7, 8, 9]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Edge",
            &["src", "dst"],
            vec![vec![1, 3], vec![2, 4]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows("Other", &["k"], vec![vec![1]]))
            .unwrap();
        DcqEngine::with_database(db)
    }

    #[test]
    fn prepare_register_apply_matches_recomputation() {
        let mut engine = engine();
        let easy = engine.register_dcq(parse_dcq(EASY).unwrap()).unwrap();
        let hard = engine.register_dcq(parse_dcq(HARD).unwrap()).unwrap();
        assert_eq!(engine.view_count(), 2);
        assert_eq!(
            engine.view(easy).unwrap().strategy(),
            IncrementalStrategy::EasyRerun
        );
        assert_eq!(
            engine.view(hard).unwrap().strategy(),
            IncrementalStrategy::Counting
        );

        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([9, 7]));
        batch.insert("Graph", int_row([7, 8]));
        batch.insert("Graph", int_row([8, 9]));
        batch.delete("Edge", int_row([2, 4]));
        let report = engine.apply(&batch).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.views_applied, 2);
        assert_eq!(report.effect.inserted, 3);
        assert_eq!(report.effect.deleted, 1);

        for handle in [easy, hard] {
            let view = engine.view(handle).unwrap();
            let expected =
                baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.result(handle).unwrap().sorted_rows(),
                expected.sorted_rows()
            );
            assert_eq!(view.epoch(), 1);
        }
        assert_eq!(engine.stats().batches_applied, 1);
        assert_eq!(engine.log().len(), 1);
    }

    #[test]
    fn identical_shapes_prepare_without_reclassification() {
        let mut engine = engine();
        let first = engine.prepare(parse_dcq(EASY).unwrap()).unwrap();
        assert!(!first.cache_hit());
        let second = engine.prepare(parse_dcq(EASY).unwrap()).unwrap();
        assert!(
            second.cache_hit(),
            "identical shape must hit the plan cache"
        );
        // α-renamed variables and a different query name still share the shape.
        let renamed = engine
            .prepare(
                parse_dcq(
                    "P(x, y, z) :- Triple(x, y, z) EXCEPT Graph(x, y), Graph(y, z), Graph(z, x)",
                )
                .unwrap(),
            )
            .unwrap();
        assert!(renamed.cache_hit());
        let stats = engine.plan_cache_stats();
        assert_eq!(stats.misses, 1, "exactly one classification performed");
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.entries, 1);
        assert_eq!(first.strategy(), second.strategy());
        assert!(first.explain().contains("touched-side rerun"));

        // Registering both preparations yields distinct handles over ONE shared
        // maintained view.
        let a = engine.register(&first).unwrap();
        let b = engine.register(&second).unwrap();
        assert_ne!(a, b);
        assert_eq!(engine.view_count(), 2);
        assert_eq!(engine.distinct_view_count(), 1, "identical shapes share");
        assert_eq!(
            engine.result(a).unwrap().sorted_rows(),
            engine.result(b).unwrap().sorted_rows()
        );
    }

    #[test]
    fn skipped_views_record_the_epoch() {
        let mut engine = engine();
        let easy = engine.register_dcq(parse_dcq(EASY).unwrap()).unwrap();
        let mut batch = DeltaBatch::new();
        batch.insert("Other", int_row([42]));
        let report = engine.apply(&batch).unwrap();
        assert_eq!(report.views_skipped, 1);
        assert_eq!(report.views_applied, 0);
        // The view did no work but still advanced to the store epoch.
        assert_eq!(engine.view(easy).unwrap().epoch(), 1);
        assert_eq!(engine.view(easy).unwrap().stats().batches_skipped, 1);
    }

    #[test]
    fn deregister_frees_the_slot_and_invalidates_the_handle() {
        let mut engine = engine();
        let a = engine.register_dcq(parse_dcq(EASY).unwrap()).unwrap();
        let b = engine.register_dcq(parse_dcq(HARD).unwrap()).unwrap();
        engine.deregister(a).unwrap();
        assert_eq!(engine.view_count(), 1);
        assert!(engine.view(a).is_err());
        assert!(engine.result(a).is_err());
        assert!(matches!(
            engine.deregister(a),
            Err(EngineError::UnknownView(_))
        ));
        // The freed slot is reused — but a stale copy of the old handle must NOT
        // alias the new tenant (generation check).
        let stale = a;
        let c = engine.register_dcq(parse_dcq(EASY).unwrap()).unwrap();
        assert_eq!(c.index(), a.index());
        assert_ne!(stale, c);
        assert!(engine.view(stale).is_err(), "stale handle must not resolve");
        assert!(matches!(
            engine.deregister(stale),
            Err(EngineError::UnknownView(_))
        ));
        assert!(engine.view(c).is_ok());
        assert_eq!(engine.view_count(), 2);
        assert_eq!(engine.stats().views_registered, 3);
        assert_eq!(engine.stats().views_deregistered, 1);
        // Remaining views keep working.
        let mut batch = DeltaBatch::new();
        batch.delete("Graph", int_row([2, 3]));
        engine.apply(&batch).unwrap();
        for (handle, view) in engine.views() {
            let expected =
                baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.result(handle).unwrap().sorted_rows(),
                expected.sorted_rows()
            );
        }
        let _ = b;
    }

    #[test]
    fn unknown_relations_and_bad_arity_are_rejected_atomically() {
        let mut engine = engine();
        let easy = engine.register_dcq(parse_dcq(EASY).unwrap()).unwrap();
        let before = engine.result(easy).unwrap().sorted_rows();

        let mut unknown = DeltaBatch::new();
        unknown.insert("Missing", int_row([1]));
        assert!(matches!(
            engine.apply(&unknown),
            Err(EngineError::Storage(StorageError::UnknownRelation(_)))
        ));
        let mut bad = DeltaBatch::new();
        bad.insert("Graph", int_row([1, 2, 3]));
        assert!(engine.apply(&bad).is_err());

        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.view(easy).unwrap().epoch(), 0);
        assert_eq!(engine.result(easy).unwrap().sorted_rows(), before);
    }

    #[test]
    fn relations_can_be_added_live() {
        let mut engine = DcqEngine::new();
        engine
            .add_relation(Relation::from_int_rows("R", &["a", "b"], vec![vec![1, 2]]))
            .unwrap();
        engine
            .add_relation(Relation::from_int_rows("S", &["a", "b"], vec![]))
            .unwrap();
        let view = engine
            .register_dcq(parse_dcq("Q(a, b) :- R(a, b) EXCEPT S(a, b)").unwrap())
            .unwrap();
        assert_eq!(engine.result(view).unwrap().len(), 1);
        assert_eq!(engine.relation("R").unwrap().len(), 1);
        let mut batch = DeltaBatch::new();
        batch.insert("S", int_row([1, 2]));
        engine.apply(&batch).unwrap();
        assert!(engine.result(view).unwrap().is_empty());
        assert!(format!("{engine:?}").contains("DcqEngine"));
        assert_eq!(engine.relation("R").unwrap().epoch(), 1);
    }

    #[test]
    fn shared_views_are_maintained_once_and_torn_down_last_out() {
        let mut engine = engine();
        let handles: Vec<ViewHandle> = (0..4)
            .map(|_| engine.register_dcq(parse_dcq(HARD).unwrap()).unwrap())
            .collect();
        assert_eq!(engine.view_count(), 4);
        assert_eq!(engine.distinct_view_count(), 1);
        // The same shape under a *forced different strategy* is its own view.
        let forced = engine
            .register_with(parse_dcq(HARD).unwrap(), IncrementalStrategy::EasyRerun)
            .unwrap();
        assert_eq!(engine.distinct_view_count(), 2);

        let mut batch = DeltaBatch::new();
        batch.delete("Graph", int_row([2, 3]));
        let report = engine.apply(&batch).unwrap();
        // 4 handles share one counting view; the fan-out is 2 distinct views.
        assert_eq!(report.views_applied, 2);
        for h in handles.iter().chain([&forced]) {
            let view = engine.view(*h).unwrap();
            let expected =
                baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.result(*h).unwrap().sorted_rows(),
                expected.sorted_rows()
            );
        }

        // Deregistering all but one handle keeps the shared view alive…
        for h in &handles[..3] {
            engine.deregister(*h).unwrap();
        }
        assert_eq!(engine.distinct_view_count(), 2);
        assert!(engine.view(handles[3]).is_ok());
        // …and the last one tears it down.
        engine.deregister(handles[3]).unwrap();
        assert_eq!(engine.distinct_view_count(), 1);
        assert!(engine.view(handles[3]).is_err());
        assert_eq!(engine.stats().views_registered, 5);
        assert_eq!(engine.stats().views_deregistered, 4);
    }

    #[test]
    fn counting_views_share_registry_indexes_across_distinct_shapes() {
        let mut engine = engine();
        let base = engine.store_bytes();
        assert_eq!(engine.stats().index_count, 0);

        // Two *distinct* hard shapes sharing the negative side's structure: the
        // probe signatures overlap, so the registry holds fewer indexes than a
        // per-view design would build.
        let a = engine.register_dcq(parse_dcq(HARD).unwrap()).unwrap();
        let after_first = engine.stats();
        assert!(after_first.index_count > 0);
        assert!(after_first.index_bytes > 0);
        assert_eq!(
            engine.store_bytes(),
            base + engine.index_bytes(),
            "store_bytes must account for index memory"
        );

        let b = engine
            .register_dcq(
                parse_dcq("P(a, c) :- Edge(c, a) EXCEPT Graph(a, b), Graph(b, c)").unwrap(),
            )
            .unwrap();
        let after_second = engine.stats();
        assert_eq!(engine.distinct_view_count(), 2, "shapes are distinct");
        assert!(
            after_second.index_count < 2 * after_first.index_count,
            "overlapping shapes must share registry entries \
             ({} vs 2×{})",
            after_second.index_count,
            after_first.index_count
        );

        // Both views stay exact, and deregistration returns every index.
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([5, 2]));
        batch.delete("Edge", int_row([1, 3]));
        engine.apply(&batch).unwrap();
        for h in [a, b] {
            let view = engine.view(h).unwrap();
            let expected =
                baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.result(h).unwrap().sorted_rows(),
                expected.sorted_rows()
            );
        }
        engine.deregister(a).unwrap();
        assert!(engine.stats().index_count > 0, "b still holds its indexes");
        engine.deregister(b).unwrap();
        assert_eq!(engine.stats().index_count, 0);
        assert_eq!(engine.stats().index_bytes, 0);
    }

    #[test]
    fn adaptive_views_migrate_both_ways_under_the_policy() {
        let mut engine = engine();
        // The test store is tiny, so pick thresholds in delta-fraction terms:
        // crossover at 20% of the store, short warm-up.  Decisions depend only
        // on observed delta fractions, never on wall-clock, so this test is
        // deterministic.
        engine.set_cost_model(MaintenanceCostModel {
            crossover_fraction: 0.2,
            hysteresis: 0.1,
            min_observations: 2,
            ..MaintenanceCostModel::default()
        });
        assert_eq!(engine.cost_model().crossover_fraction, 0.2);
        let adaptive = engine.register_adaptive(parse_dcq(HARD).unwrap()).unwrap();
        let view = engine.view(adaptive).unwrap();
        assert_eq!(view.strategy(), IncrementalStrategy::Adaptive);
        assert_eq!(
            view.active_strategy(),
            IncrementalStrategy::Counting,
            "the trickle prior (and the dichotomy) start this view on counting"
        );
        assert!(engine.batch_stats(adaptive).unwrap().is_some());
        // An adaptive registration of the same shape shares view AND stats; a
        // fixed-strategy registration of the same shape does not.
        let sharer = engine.register_adaptive(parse_dcq(HARD).unwrap()).unwrap();
        assert_eq!(engine.distinct_view_count(), 1);
        let fixed = engine.register_dcq(parse_dcq(HARD).unwrap()).unwrap();
        assert_eq!(engine.distinct_view_count(), 2);
        assert!(engine.batch_stats(fixed).unwrap().is_none());

        // Bulk batches (~1/3 of the store each) push the EWMA past the
        // crossover: after the warm-up the view flips to rerun.
        let mut next = 100;
        while engine.view(adaptive).unwrap().active_strategy() == IncrementalStrategy::Counting {
            let mut batch = DeltaBatch::new();
            for _ in 0..4 {
                batch.insert("Graph", int_row([next, next + 1]));
                next += 2;
            }
            engine.apply(&batch).unwrap();
            assert!(next < 200, "policy never migrated to rerun");
        }
        assert_eq!(engine.stats().migrations_to_rerun, 1);
        let stats = engine.batch_stats(adaptive).unwrap().unwrap();
        assert!(stats.ewma_delta_fraction > 0.2);
        assert!(stats.cost_estimate(IncrementalStrategy::Counting).is_some());

        // Trickle batches decay the EWMA back below the band: the view returns
        // to counting.
        while engine.view(adaptive).unwrap().active_strategy() == IncrementalStrategy::EasyRerun {
            let mut batch = DeltaBatch::new();
            batch.insert("Edge", int_row([next, next]));
            next += 1;
            engine.apply(&batch).unwrap();
            assert!(next < 300, "policy never migrated back to counting");
        }
        assert_eq!(engine.stats().migrations_to_counting, 1);
        let stats = engine.batch_stats(adaptive).unwrap().unwrap();
        assert!(
            stats
                .cost_estimate(IncrementalStrategy::EasyRerun)
                .is_some(),
            "the rerun leg left cost samples behind"
        );

        // Throughout and after all migrations every handle stays exact.
        for h in [adaptive, sharer, fixed] {
            let view = engine.view(h).unwrap();
            let expected =
                baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.result(h).unwrap().sorted_rows(),
                expected.sorted_rows()
            );
        }
        assert_eq!(
            engine.view(adaptive).unwrap().stats().migrations,
            2,
            "one flip each way"
        );

        // Deregistration drains shared state exactly as for fixed views.
        for h in [adaptive, sharer, fixed] {
            engine.deregister(h).unwrap();
        }
        assert_eq!(engine.stats().index_count, 0);
        assert_eq!(engine.counting_pool_stats().live, 0);
    }

    #[test]
    fn manual_migration_is_exact_and_conserves_shared_state() {
        let mut engine = engine();
        let fixed = engine.register_dcq(parse_dcq(HARD).unwrap()).unwrap();
        let baseline_indexes = engine.stats().index_count;
        assert!(baseline_indexes > 0);
        // A *distinct* view with the same counting sides (the adaptive twin of
        // the shape keys separately but pools the same sides), so a manual
        // migration of one view must not strand or free the other's state.
        let control = engine.register_adaptive(parse_dcq(HARD).unwrap()).unwrap();
        assert_eq!(engine.distinct_view_count(), 2);
        assert_eq!(engine.stats().index_count, baseline_indexes);

        assert!(engine
            .migrate(fixed, IncrementalStrategy::EasyRerun)
            .unwrap());
        assert!(!engine
            .migrate(fixed, IncrementalStrategy::EasyRerun)
            .unwrap());
        assert_eq!(
            engine.stats().index_count,
            baseline_indexes,
            "control still holds every shared index"
        );
        assert_eq!(engine.stats().migrations_to_rerun, 1);

        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([5, 2]));
        batch.delete("Edge", int_row([1, 3]));
        engine.apply(&batch).unwrap();
        for h in [fixed, control] {
            let view = engine.view(h).unwrap();
            let expected =
                baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.result(h).unwrap().sorted_rows(),
                expected.sorted_rows()
            );
        }

        // Migrate back: the pooled side is *shared* again, not reseeded.
        let hits_before = engine.counting_pool_stats().hits;
        assert!(engine
            .migrate(fixed, IncrementalStrategy::Counting)
            .unwrap());
        assert!(
            engine.counting_pool_stats().hits > hits_before,
            "re-migration must reuse the control's live pooled sides"
        );
        assert_eq!(engine.stats().index_count, baseline_indexes);

        engine.deregister(fixed).unwrap();
        engine.deregister(control).unwrap();
        assert_eq!(engine.stats().index_count, 0);
    }

    #[test]
    fn re_registration_re_asserts_the_declared_strategy() {
        let mut engine = engine();
        let fixed = engine.register_dcq(parse_dcq(HARD).unwrap()).unwrap();
        assert!(engine
            .migrate(fixed, IncrementalStrategy::EasyRerun)
            .unwrap());
        assert_eq!(
            engine.view(fixed).unwrap().active_strategy(),
            IncrementalStrategy::EasyRerun
        );
        // A fresh registration of the same (shape, Counting) key shares the
        // manually migrated view — and migrates it back to the kind the
        // registration demands.
        let again = engine
            .register_with(parse_dcq(HARD).unwrap(), IncrementalStrategy::Counting)
            .unwrap();
        assert_eq!(engine.distinct_view_count(), 1, "same key shares the view");
        for h in [fixed, again] {
            assert_eq!(
                engine.view(h).unwrap().active_strategy(),
                IncrementalStrategy::Counting,
                "registration re-asserts the declared strategy"
            );
        }
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([5, 2]));
        engine.apply(&batch).unwrap();
        for h in [fixed, again] {
            let view = engine.view(h).unwrap();
            let expected =
                baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.result(h).unwrap().sorted_rows(),
                expected.sorted_rows()
            );
        }
        engine.deregister(fixed).unwrap();
        engine.deregister(again).unwrap();
        assert_eq!(engine.stats().index_count, 0);
    }

    #[test]
    fn parallel_and_sequential_apply_agree_bit_for_bit() {
        // A quick in-crate smoke test; the full proptest suite lives in
        // tests/parallel_determinism.rs at the workspace root.
        let mut sequential = engine();
        let mut parallel = engine();
        sequential.set_workers(1);
        parallel.set_workers(4);
        assert_eq!(sequential.workers(), 1);
        assert_eq!(parallel.workers(), 4);

        let mut handles = Vec::new();
        for engine in [&mut sequential, &mut parallel] {
            engine.set_cost_model(MaintenanceCostModel {
                crossover_fraction: 0.2,
                hysteresis: 0.1,
                min_observations: 2,
                ..MaintenanceCostModel::default()
            });
            let hs = vec![
                engine.register_dcq(parse_dcq(EASY).unwrap()).unwrap(),
                engine.register_dcq(parse_dcq(HARD).unwrap()).unwrap(),
                engine.register_adaptive(parse_dcq(HARD).unwrap()).unwrap(),
                // A second Q_G5-style hard shape pooling the same positive side.
                engine
                    .register_dcq(
                        parse_dcq("P(a, c) :- Edge(c, a) EXCEPT Graph(a, b), Graph(b, c)").unwrap(),
                    )
                    .unwrap(),
            ];
            handles.push(hs);
        }

        let mut next = 50;
        for step in 0..12i64 {
            let mut batch = DeltaBatch::new();
            for _ in 0..(1 + step % 4) {
                batch.insert("Graph", int_row([next, next + 1]));
                next += 2;
            }
            if step % 3 == 0 {
                batch.delete("Graph", int_row([2, 3]));
                batch.insert("Edge", int_row([next, 1]));
            }
            let a = sequential.apply(&batch).unwrap();
            let b = parallel.apply(&batch).unwrap();
            assert_eq!(a, b, "reports diverged at step {step}");
            for (h1, h2) in handles[0].iter().zip(&handles[1]) {
                assert_eq!(
                    sequential.result(*h1).unwrap().sorted_rows(),
                    parallel.result(*h2).unwrap().sorted_rows(),
                    "results diverged at step {step}"
                );
                assert_eq!(
                    sequential.view(*h1).unwrap().stats(),
                    parallel.view(*h2).unwrap().stats()
                );
                assert_eq!(
                    sequential.view(*h1).unwrap().active_strategy(),
                    parallel.view(*h2).unwrap().active_strategy()
                );
            }
            // `workers` is the one stats field that legitimately differs — it
            // reports configuration, not work done.
            assert_eq!(
                EngineStats {
                    workers: 0,
                    ..sequential.stats()
                },
                EngineStats {
                    workers: 0,
                    ..parallel.stats()
                }
            );
            assert_eq!(
                sequential.counting_telemetry(),
                parallel.counting_telemetry(),
                "counting work counters diverged at step {step}"
            );
            assert_eq!(
                sequential.counting_pool_stats(),
                parallel.counting_pool_stats()
            );
        }
        // Cost samples are timing and therefore NOT comparable across engines —
        // but their provenance must be the engine's pinned clock, the CPU clock
        // wherever the platform has one, so parallel scheduling cannot skew them.
        if dcq_core::heuristics::thread_cpu_time_ns().is_some() {
            assert_eq!(parallel.cost_clock(), CostClock::ThreadCpu);
            let stats = parallel.batch_stats(handles[1][2]).unwrap().unwrap();
            assert_eq!(stats.cost_clock, dcq_core::heuristics::CostClock::ThreadCpu);
        }
    }

    #[test]
    fn cost_samples_use_one_pinned_clock() {
        // The clock is pinned at construction to the platform's best choice…
        let mut engine = engine();
        let expected = if dcq_core::heuristics::thread_cpu_time_ns().is_some() {
            CostClock::ThreadCpu
        } else {
            CostClock::Wall
        };
        assert_eq!(engine.cost_clock(), expected);

        // …and every sample the adaptive policy sees carries exactly that
        // provenance, batch after batch (the old design re-probed per sample
        // and could mix clocks within one engine).
        let adaptive = engine.register_adaptive(parse_dcq(HARD).unwrap()).unwrap();
        for step in 0..5i64 {
            let mut batch = DeltaBatch::new();
            batch.insert("Graph", int_row([900 + step, 901 + step]));
            engine.apply(&batch).unwrap();
            let stats = engine.batch_stats(adaptive).unwrap().unwrap();
            assert_eq!(stats.cost_clock, expected, "clock drifted at step {step}");
        }
    }

    #[test]
    fn compact_log_preserves_replayability_from_the_checkpoint() {
        let mut engine = engine();
        let easy = engine.register_dcq(parse_dcq(EASY).unwrap()).unwrap();

        let mut batches = Vec::new();
        for step in 0..6i64 {
            let mut batch = DeltaBatch::new();
            batch.insert("Graph", int_row([40 + step, step]));
            if step % 2 == 1 {
                batch.delete("Graph", int_row([40 + step - 1, step - 1]));
            }
            batches.push(batch);
        }
        for batch in &batches[..4] {
            engine.apply(batch).unwrap();
        }
        assert_eq!(engine.log().len(), 4);

        // Checkpoint at epoch 4: the log drops its reflected prefix…
        let checkpoint = engine.compact_log();
        assert_eq!(checkpoint.epoch, 4);
        assert_eq!(checkpoint.compacted_batches, 4);
        assert_eq!(engine.log().len(), 0);
        assert_eq!(engine.log().base_epoch(), 4);
        assert_eq!(engine.log().recorded(), 4, "counters survive compaction");

        // …keeps recording from there…
        for batch in &batches[4..] {
            engine.apply(batch).unwrap();
        }
        assert_eq!(engine.log().len(), 2);

        // …and checkpoint ⊕ retained tail reproduces the database of record.
        let mut rebuilt = checkpoint.database.clone();
        engine
            .log()
            .replay_onto(&mut rebuilt, checkpoint.epoch)
            .unwrap();
        for name in rebuilt.relation_names() {
            assert_eq!(
                rebuilt.get(&name).unwrap().sorted_rows(),
                engine.database().get(&name).unwrap().sorted_rows(),
                "replay from the truncation point diverged on {name}"
            );
        }
        // The epoch-0 replay is correctly refused, and views were untouched.
        let mut scratch = checkpoint.database.clone();
        assert!(matches!(
            engine.log().replay(&mut scratch),
            Err(StorageError::TruncatedLog { .. })
        ));
        let expected = baseline_dcq(
            engine.view(easy).unwrap().dcq(),
            engine.database(),
            CqStrategy::Vanilla,
        )
        .unwrap();
        assert_eq!(
            engine.result(easy).unwrap().sorted_rows(),
            expected.sorted_rows()
        );

        // A compaction with nothing new to drop is a cheap no-op.
        assert_eq!(engine.compact_log().compacted_batches, 2);
        assert_eq!(engine.compact_log().compacted_batches, 0);

        // A fresh bounded log installed mid-stream starts at the current epoch.
        engine.set_log(UpdateLog::with_limit(2));
        assert_eq!(engine.log().base_epoch(), 6);
    }

    #[test]
    fn scheduled_compaction_policy_bounds_the_log() {
        let mut engine = engine();
        engine.register_dcq(parse_dcq(EASY).unwrap()).unwrap();
        engine.set_compaction_policy(CompactionPolicy::max_retained_batches(5));
        assert_eq!(
            engine.compaction_policy(),
            CompactionPolicy::max_retained_batches(5)
        );

        // Checkpoints go to an in-memory sink; each write records its epoch.
        type WrittenCheckpoints = std::sync::Arc<std::sync::Mutex<Vec<(Epoch, Vec<u8>)>>>;
        let written: WrittenCheckpoints = std::sync::Arc::default();
        let sink_log = std::sync::Arc::clone(&written);
        engine.set_checkpoint_sink(Some(Box::new(
            move |epoch: Epoch, db: &Database| -> std::io::Result<()> {
                let mut buf = Vec::new();
                dcq_storage::checkpoint::write_checkpoint(&mut buf, epoch, db)
                    .map_err(std::io::Error::other)?;
                sink_log.lock().unwrap().push((epoch, buf));
                Ok(())
            },
        )));

        for step in 0..12i64 {
            let mut batch = DeltaBatch::new();
            batch.insert("Graph", int_row([70 + step, step]));
            engine.apply(&batch).unwrap();
            assert!(
                engine.log().len() <= 5,
                "policy must keep the log at or under its bound"
            );
        }
        let stats = engine.stats();
        assert!(stats.compactions >= 2, "12 batches over a 5-batch bound");
        assert!(engine.metrics().contains("dcq_engine_compactions_total 2"));

        // Every sink checkpoint ⊕ the log tail at that epoch was consistent;
        // the newest one ⊕ the retained tail reproduces the current state.
        let (epoch, bytes) = written.lock().unwrap().last().cloned().unwrap();
        let (read_epoch, mut rebuilt) =
            dcq_storage::checkpoint::read_checkpoint(&mut bytes.as_slice()).unwrap();
        assert_eq!(read_epoch, epoch);
        assert_eq!(engine.log().base_epoch(), epoch);
        engine.log().replay_onto(&mut rebuilt, epoch).unwrap();
        assert_eq!(
            rebuilt.get("Graph").unwrap().sorted_rows(),
            engine.database().get("Graph").unwrap().sorted_rows()
        );

        // A failing sink aborts compaction and leaves the log intact.
        engine.set_checkpoint_sink(Some(Box::new(
            |_: Epoch, _: &Database| -> std::io::Result<()> {
                Err(std::io::Error::other("disk on fire"))
            },
        )));
        let before = engine.stats().compactions;
        for step in 0..8i64 {
            let mut batch = DeltaBatch::new();
            batch.insert("Graph", int_row([700 + step, step]));
            engine.apply(&batch).unwrap();
        }
        assert_eq!(engine.stats().compactions, before);
        assert!(
            engine.log().len() > 5,
            "no checkpoint persisted, so nothing may be dropped"
        );
        assert!(engine
            .metrics()
            .contains("dcq_engine_checkpoint_errors_total 3"));

        // Byte-bounded policies trip on footprint instead of count.
        let policy = CompactionPolicy::max_log_bytes(1);
        assert!(policy.is_bounded());
        assert!(policy.exceeded(1, 2));
        assert!(!policy.exceeded(100, 1));
        engine.set_checkpoint_sink(None);
        engine.set_compaction_policy(policy);
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([999, 999]));
        engine.apply(&batch).unwrap();
        assert!(engine.log().is_empty(), "truncate-only compaction applies");
    }

    #[test]
    fn compact_log_to_streams_without_cloning_and_recovers() {
        let mut engine = engine();
        engine.register_dcq(parse_dcq(EASY).unwrap()).unwrap();
        for step in 0..4i64 {
            let mut batch = DeltaBatch::new();
            batch.insert("Graph", int_row([80 + step, step]));
            engine.apply(&batch).unwrap();
        }
        let mut buf = Vec::new();
        let (epoch, compacted) = engine.compact_log_to(&mut buf).unwrap();
        assert_eq!((epoch, compacted), (4, 4));
        assert!(engine.log().is_empty());
        assert_eq!(engine.stats().compactions, 1);

        // Two more batches after the checkpoint…
        for step in 4..6i64 {
            let mut batch = DeltaBatch::new();
            batch.insert("Graph", int_row([80 + step, step]));
            engine.apply(&batch).unwrap();
        }

        // …and `with_database_at` + replay recovers state *and* epoch.
        let checkpoint = LogCheckpoint::from_reader(&mut buf.as_slice()).unwrap();
        assert_eq!(checkpoint.epoch, 4);
        let mut rebuilt = checkpoint.database;
        engine.log().replay_onto(&mut rebuilt, 4).unwrap();
        let recovered = DcqEngine::with_database_at(rebuilt, engine.epoch());
        assert_eq!(recovered.epoch(), 6);
        assert_eq!(recovered.log().base_epoch(), 6);
        assert_eq!(
            recovered.database().get("Graph").unwrap().sorted_rows(),
            engine.database().get("Graph").unwrap().sorted_rows()
        );

        // LogCheckpoint::to_writer round-trips through the same format.
        let direct = engine.compact_log();
        let mut via_checkpoint = Vec::new();
        direct.to_writer(&mut via_checkpoint).unwrap();
        let back = LogCheckpoint::from_reader(&mut via_checkpoint.as_slice()).unwrap();
        assert_eq!(back.epoch, direct.epoch);
        assert_eq!(
            back.database.get("Graph").unwrap().sorted_rows(),
            direct.database.get("Graph").unwrap().sorted_rows()
        );
    }

    #[test]
    fn engine_core_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<DcqEngine>();
        assert_sync::<DcqEngine>();
        assert_send::<LogCheckpoint>();
        assert_sync::<SharedDatabase>();
    }

    #[test]
    fn metrics_exposition_covers_every_layer_and_stats_derive_from_it() {
        let mut engine = engine();
        engine.set_workers(2);
        let hard = engine.register_dcq(parse_dcq(HARD).unwrap()).unwrap();
        let easy = engine.register_dcq(parse_dcq(EASY).unwrap()).unwrap();
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([5, 2]));
        batch.delete("Edge", int_row([1, 3]));
        engine.apply(&batch).unwrap();

        // The derived stats view reflects the registry and the live snapshots.
        let stats = engine.stats();
        assert_eq!(stats.batches_applied, 1);
        assert_eq!(stats.views_registered, 2);
        assert_eq!(stats.log_len, 1);
        assert_eq!(stats.log_base_epoch, 0);
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.pool_live, 2, "two counting sides live");
        assert_eq!(stats.pool_shared, 0);

        // The exposition carries every layer's metric families, in every
        // feature configuration (gated counters just read zero when off).
        let text = engine.metrics();
        for name in [
            "dcq_engine_batches_total 1",
            "dcq_engine_epoch 1",
            "dcq_engine_view_handles 2",
            "dcq_engine_distinct_views 2",
            "dcq_engine_workers 2",
            "dcq_engine_update_log_len 1",
            "dcq_engine_commit_ns_count",
            "dcq_engine_fanout_ns_bucket",
            "dcq_engine_view_cost_ns_sum",
            "dcq_index_count",
            "dcq_index_inplace_writes_total",
            "dcq_index_cow_clones_total",
            "dcq_counting_index_probes_total",
            "dcq_counting_folds_owned_total",
            "dcq_pool_live_sides 2",
            "dcq_plan_cache_misses_total 2",
        ] {
            assert!(
                text.contains(name),
                "metrics() must render {name:?}:\n{text}"
            );
        }
        assert_eq!(
            engine.metrics_registry().value("dcq_engine_batches_total"),
            Some(1)
        );

        // Registry values and derived stats agree by construction.
        #[cfg(feature = "telemetry")]
        {
            assert!(
                engine.counting_telemetry().index_probes > 0,
                "the hard view's counting fold must probe shared indexes"
            );
            assert!(engine.index_telemetry().inplace_writes > 0);
        }
        engine.deregister(hard).unwrap();
        engine.deregister(easy).unwrap();
        assert_eq!(engine.stats().pool_live, 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn per_batch_traces_record_phases_views_and_migrations() {
        let mut engine = engine();
        engine.set_cost_model(MaintenanceCostModel {
            crossover_fraction: 0.2,
            hysteresis: 0.1,
            min_observations: 2,
            ..MaintenanceCostModel::default()
        });
        let adaptive = engine.register_adaptive(parse_dcq(HARD).unwrap()).unwrap();
        engine.register_dcq(parse_dcq(EASY).unwrap()).unwrap();

        // Drive bulk batches until the adaptive view migrates to rerun.
        let mut next = 100;
        while engine.view(adaptive).unwrap().active_strategy() == IncrementalStrategy::Counting {
            let mut batch = DeltaBatch::new();
            for _ in 0..4 {
                batch.insert("Graph", int_row([next, next + 1]));
                next += 2;
            }
            engine.apply(&batch).unwrap();
            assert!(next < 200, "policy never migrated");
        }

        let traces = engine.traces();
        assert_eq!(
            traces.len(),
            engine.stats().batches_applied,
            "one trace per apply"
        );
        let clock = clock_label(engine.cost_clock());
        for (i, trace) in traces.iter().enumerate() {
            assert_eq!(trace.epoch, i as u64 + 1);
            assert_eq!(trace.batch_len, 4);
            assert_eq!(trace.inserted, 4);
            assert_eq!(trace.views.len(), 2, "every live view gets a record");
            for record in &trace.views {
                assert_eq!(record.clock, clock);
                if !record.skipped {
                    assert!(record.delta_fraction > 0.0);
                }
            }
        }
        // The last trace carries the migration decision on the adaptive slot.
        let last = traces.last().unwrap();
        let migrated: Vec<_> = last
            .views
            .iter()
            .filter(|r| r.migration == Some("EasyRerun"))
            .collect();
        assert_eq!(migrated.len(), 1, "exactly one view migrated: {last:?}");
        assert_eq!(
            migrated[0].strategy, "Counting",
            "strategy is pre-migration"
        );

        // Phase histograms saw every batch, and the JSON-lines dump is one
        // object per trace with the phase fields present.
        assert!(engine
            .metrics()
            .contains(&format!("dcq_engine_commit_ns_count {}", traces.len())));
        let json = engine.trace_json_lines();
        assert_eq!(json.lines().count(), traces.len());
        assert!(json.lines().all(|l| l.starts_with("{\"epoch\":")
            && l.contains("\"commit_ns\":")
            && l.contains("\"fanout_ns\":")
            && l.contains("\"policy_ns\":")
            && l.contains("\"views\":[")));

        // Draining consumes; a replacement sink starts empty.
        assert_eq!(engine.drain_traces().len(), traces.len());
        assert!(engine.traces().is_empty());
        engine.set_trace_sink(Box::new(dcq_telemetry::RingTraceSink::new(2)));
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([7, 7]));
        engine.apply(&batch).unwrap();
        assert_eq!(engine.traces().len(), 1);
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn telemetry_off_records_no_traces_but_keeps_the_api() {
        let mut engine = engine();
        engine.register_dcq(parse_dcq(HARD).unwrap()).unwrap();
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([5, 2]));
        engine.apply(&batch).unwrap();
        assert!(engine.traces().is_empty(), "trace hooks compile to nothing");
        assert_eq!(engine.trace_json_lines(), "");
        assert_eq!(engine.counting_telemetry(), CountingTelemetry::default());
        assert_eq!(engine.stats().batches_applied, 1, "stats stay live");
        assert!(engine.metrics().contains("dcq_engine_batches_total 1"));
    }

    #[test]
    fn forced_strategy_registration_is_supported() {
        let mut engine = engine();
        let counting = engine
            .register_with(parse_dcq(EASY).unwrap(), IncrementalStrategy::Counting)
            .unwrap();
        assert_eq!(
            engine.view(counting).unwrap().strategy(),
            IncrementalStrategy::Counting
        );
        let mut batch = DeltaBatch::new();
        batch.insert("Triple", int_row([5, 6, 7]));
        engine.apply(&batch).unwrap();
        let view = engine.view(counting).unwrap();
        let expected = baseline_dcq(view.dcq(), engine.database(), CqStrategy::Vanilla).unwrap();
        assert_eq!(
            engine.result(counting).unwrap().sorted_rows(),
            expected.sorted_rows()
        );
    }
}
