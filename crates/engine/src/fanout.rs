//! The engine's view of the workspace worker pool.
//!
//! The pool itself lives in `dcq_storage::fanout` so the sharded commit path
//! ([`SharedDatabase::apply_batch`](dcq_storage::SharedDatabase::apply_batch))
//! and the incremental layer's partitioned counting folds can schedule on the
//! same seam; the engine's `parallel` feature forwards to `dcq-storage/parallel`
//! so one switch still governs the whole stack.  This module only re-exports
//! it under the engine's historical path.

pub(crate) use dcq_storage::fanout::WorkerPool;
