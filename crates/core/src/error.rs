//! Errors of the DCQ layer.

use dcq_exec::ExecError;
use dcq_storage::StorageError;
use std::fmt;

/// Errors raised while defining, planning or evaluating a DCQ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DcqError {
    /// The two input CQs do not have identical output attribute sets.
    MismatchedHeads {
        /// Output attributes of `Q₁`.
        left: String,
        /// Output attributes of `Q₂`.
        right: String,
    },
    /// An atom's variable count does not match the stored relation's arity.
    AtomArityMismatch {
        /// Relation name referenced by the atom.
        relation: String,
        /// Arity of the stored relation.
        expected: usize,
        /// Number of variables in the atom.
        actual: usize,
    },
    /// An output variable does not occur in any atom.
    UnboundHeadVariable(String),
    /// The requested strategy's structural precondition does not hold
    /// (e.g. EasyDCQ on a non-difference-linear DCQ).
    PreconditionViolated {
        /// The strategy whose precondition failed.
        strategy: &'static str,
        /// Why it failed.
        reason: String,
    },
    /// A parse error in the datalog-style query syntax.
    Parse {
        /// Human-readable message.
        message: String,
    },
    /// Underlying execution error.
    Exec(ExecError),
    /// Underlying storage error.
    Storage(StorageError),
}

impl fmt::Display for DcqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcqError::MismatchedHeads { left, right } => write!(
                f,
                "the two CQs of a DCQ must share output attributes: {left} vs {right}"
            ),
            DcqError::AtomArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "atom over `{relation}` has {actual} variables but the relation has arity {expected}"
            ),
            DcqError::UnboundHeadVariable(v) => {
                write!(f, "output variable `{v}` occurs in no atom")
            }
            DcqError::PreconditionViolated { strategy, reason } => {
                write!(f, "{strategy} precondition violated: {reason}")
            }
            DcqError::Parse { message } => write!(f, "parse error: {message}"),
            DcqError::Exec(e) => write!(f, "execution error: {e}"),
            DcqError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for DcqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DcqError::Exec(e) => Some(e),
            DcqError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for DcqError {
    fn from(e: ExecError) -> Self {
        DcqError::Exec(e)
    }
}

impl From<StorageError> for DcqError {
    fn from(e: StorageError) -> Self {
        DcqError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = DcqError::MismatchedHeads {
            left: "(x1)".into(),
            right: "(x1, x2)".into(),
        };
        assert!(e.to_string().contains("output attributes"));
        let e = DcqError::AtomArityMismatch {
            relation: "Graph".into(),
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains("Graph"));
        let e: DcqError = ExecError::EmptyQuery.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: DcqError = StorageError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains('R'));
        assert!(DcqError::UnboundHeadVariable("z".into())
            .to_string()
            .contains('z'));
    }
}
