//! The DCQ planner: pick the right algorithm per Table 1 and explain the choice.
//!
//! | condition (structural)                       | strategy                            | complexity (Table 1)            |
//! |----------------------------------------------|-------------------------------------|---------------------------------|
//! | difference-linear (Def. 2.3)                 | [`Strategy::EasyLinear`]            | `O(N + OUT)`                    |
//! | `Q₂` linear-reducible (but not diff.-linear) | [`Strategy::ProbeLinearReducible`]  | `O(cost(Q₁))` (Corollary 2.5)   |
//! | otherwise                                    | [`Strategy::Intersection`] /        | `min(OUT₁·cost(Q₂∅), cost(Q₂⊕))`|
//! |                                              | [`Strategy::PerTupleProbe`]         | (Theorems 4.8 / 4.10)           |
//! | always available                             | [`Strategy::Baseline`]              | `cost(Q₁) + cost(Q₂)` (Cor. 2.1)|

use crate::baseline::{baseline_dcq, CqStrategy};
use crate::classify::{classify, DcqClass, DcqClassification};
use crate::easy::easy_dcq;
use crate::heuristics::{intersection_heuristic, probe_heuristic};
use crate::query::Dcq;
use crate::Result;
use dcq_storage::{Database, Relation};
use std::fmt;

/// The evaluation strategies the planner can choose from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// `EasyDCQ` (Algorithm 2): linear time for difference-linear DCQs.
    EasyLinear,
    /// Corollary 2.5: evaluate `Q₁`, reduce `Q₂`, filter by hash probes.
    ProbeLinearReducible,
    /// Theorem 4.8: evaluate `Q₁`, decide the Boolean residual `Q₂∅` per tuple.
    PerTupleProbe,
    /// Theorem 4.10: evaluate the intersection query `Q₂⊕` and subtract.
    Intersection,
    /// Corollary 2.1: materialize both sides and subtract (the vanilla plan).
    Baseline,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::EasyLinear => "EasyDCQ (linear time, Theorem 3.1)",
            Strategy::ProbeLinearReducible => "probe reduced Q2 (Corollary 2.5)",
            Strategy::PerTupleProbe => "per-tuple Boolean probe (Theorem 4.8)",
            Strategy::Intersection => "intersection query Q2⊕ (Theorem 4.10)",
            Strategy::Baseline => "baseline: materialize both and subtract (Corollary 2.1)",
        };
        write!(f, "{s}")
    }
}

/// A chosen plan: the strategy plus the structural classification that justified it.
#[derive(Clone, Debug)]
pub struct DcqPlan {
    /// The selected strategy.
    pub strategy: Strategy,
    /// The dichotomy classification of the DCQ.
    pub classification: DcqClassification,
}

impl DcqPlan {
    /// Render a short multi-line explanation (the repository's stand-in for the
    /// EXPLAIN plans of Figure 1).
    pub fn explain(&self) -> String {
        format!("strategy: {}\n{}", self.strategy, self.classification)
    }
}

/// The planner: owns the single-CQ evaluation strategy used inside heuristics and
/// baselines.
#[derive(Clone, Copy, Debug, Default)]
pub struct DcqPlanner {
    /// Evaluator used for the `cost(Q₁)` / `cost(Q₂)` terms.
    pub cq_strategy: CqStrategy,
}

impl DcqPlanner {
    /// A planner using the structure-aware single-CQ evaluator.
    pub fn smart() -> Self {
        DcqPlanner {
            cq_strategy: CqStrategy::Smart,
        }
    }

    /// A planner using the vanilla binary-join single-CQ evaluator.
    pub fn vanilla() -> Self {
        DcqPlanner {
            cq_strategy: CqStrategy::Vanilla,
        }
    }

    /// The one-shot strategy Table 1 prescribes for an already-computed
    /// classification (shared by [`DcqPlanner::plan`] and the plan cache, so a
    /// cached classification never needs to be re-derived).
    pub fn strategy_for(classification: &DcqClassification) -> Strategy {
        match classification.class {
            DcqClass::DifferenceLinear => Strategy::EasyLinear,
            DcqClass::HardQ1NotFreeConnex | DcqClass::HardAugmentedCyclic => {
                // Q2 may still be linear-reducible, giving the Corollary 2.5 bound.
                if classification.q2_shape.linear_reducible {
                    Strategy::ProbeLinearReducible
                } else {
                    Strategy::Intersection
                }
            }
            DcqClass::HardQ2NotLinearReducible => Strategy::Intersection,
        }
    }

    /// Choose a strategy for the DCQ from its structural classification alone.
    pub fn plan(&self, dcq: &Dcq) -> DcqPlan {
        let classification = classify(dcq);
        let strategy = Self::strategy_for(&classification);
        DcqPlan {
            strategy,
            classification,
        }
    }

    /// Plan and execute with the chosen (optimized) strategy.
    pub fn execute(&self, dcq: &Dcq, db: &Database) -> Result<Relation> {
        let plan = self.plan(dcq);
        self.execute_with(plan.strategy, dcq, db)
    }

    /// Execute with an explicit strategy (used by the benchmarks to compare
    /// optimized and vanilla plans on the same query).
    pub fn execute_with(&self, strategy: Strategy, dcq: &Dcq, db: &Database) -> Result<Relation> {
        match strategy {
            Strategy::EasyLinear => easy_dcq(dcq, db),
            Strategy::ProbeLinearReducible | Strategy::PerTupleProbe => {
                Ok(probe_heuristic(dcq, db, self.cq_strategy)?.result)
            }
            Strategy::Intersection => Ok(intersection_heuristic(dcq, db, self.cq_strategy)?.result),
            Strategy::Baseline => baseline_dcq(dcq, db, self.cq_strategy),
        }
    }
}

/// How a registered DCQ should be maintained under updates (the `dcq-incremental`
/// crate executes these strategies).
///
/// The choice mirrors the dichotomy: when the DCQ is difference-linear, a full rerun
/// of the per-side linear plans is already `O(N + OUT)`, so maintenance only needs to
/// re-run the sides whose relations a batch actually touches.  For hard DCQs a rerun
/// pays the (super-linear) hard-side cost on every batch, so maintenance falls back
/// to counting: per-tuple support counts on both sides, updated by delta joins whose
/// cost scales with the batch size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IncrementalStrategy {
    /// Re-run the linear per-side plans, restricted to the sides (partitions of the
    /// atom set) the delta batch touches; untouched batches are no-ops.
    EasyRerun,
    /// Counting-based maintenance: maintain `|Q₁(t)|` and `|Q₂(t)|` support counts
    /// per output tuple via ℤ-annotated delta joins; a tuple enters the result when
    /// its `Q₁` count rises above zero while its `Q₂` count is zero.
    Counting,
    /// Pick per *workload*, not per structure: start on the cost model's
    /// workload-prior kind (the dichotomy's structural choice absent a model),
    /// track observed batch sizes
    /// ([`BatchStats`](crate::heuristics::BatchStats)), and migrate the live view
    /// between [`EasyRerun`](IncrementalStrategy::EasyRerun) and
    /// [`Counting`](IncrementalStrategy::Counting) when the measured delta
    /// fraction crosses the cost model's rerun/counting crossover
    /// ([`MaintenanceCostModel`](crate::heuristics::MaintenanceCostModel)).  The
    /// active engine at any instant is always one of the two concrete kinds.
    Adaptive,
}

impl fmt::Display for IncrementalStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IncrementalStrategy::EasyRerun => {
                "touched-side rerun (difference-linear: rerun is O(N + OUT))"
            }
            IncrementalStrategy::Counting => {
                "counting maintenance (support counts updated by delta joins)"
            }
            IncrementalStrategy::Adaptive => {
                "adaptive maintenance (rerun ↔ counting, migrated on observed delta size)"
            }
        };
        write!(f, "{s}")
    }
}

/// A chosen incremental-maintenance plan: the strategy plus the structural
/// classification that justified it.
#[derive(Clone, Debug)]
pub struct IncrementalPlan {
    /// The selected maintenance strategy.
    pub strategy: IncrementalStrategy,
    /// The dichotomy classification of the DCQ.
    pub classification: DcqClassification,
}

impl IncrementalPlan {
    /// Render a short multi-line explanation of the maintenance choice.
    pub fn explain(&self) -> String {
        format!("maintenance: {}\n{}", self.strategy, self.classification)
    }
}

impl DcqPlanner {
    /// The maintenance strategy the dichotomy prescribes for an already-computed
    /// classification (shared by [`DcqPlanner::plan_incremental`] and the plan
    /// cache).
    pub fn incremental_strategy_for(classification: &DcqClassification) -> IncrementalStrategy {
        if classification.is_difference_linear() {
            IncrementalStrategy::EasyRerun
        } else {
            IncrementalStrategy::Counting
        }
    }

    /// Choose how a registered DCQ should be maintained under updates.
    ///
    /// Difference-linear DCQs get [`IncrementalStrategy::EasyRerun`]; every hard
    /// class falls back to [`IncrementalStrategy::Counting`].
    ///
    /// This classifies from scratch on every call; engines that prepare the same
    /// query shape repeatedly should go through a
    /// [`PlanCache`](crate::cache::PlanCache) instead.
    pub fn plan_incremental(&self, dcq: &Dcq) -> IncrementalPlan {
        let classification = classify(dcq);
        let strategy = Self::incremental_strategy_for(&classification);
        IncrementalPlan {
            strategy,
            classification,
        }
    }

    /// An [`IncrementalStrategy::Adaptive`] maintenance plan: the view starts on
    /// the engine's cost-model prior kind (falling back to the dichotomy's
    /// structural choice, recoverable from the classification via
    /// [`DcqPlanner::incremental_strategy_for`]) and is migrated online as the
    /// observed batch sizes cross the engine's cost-model crossover.
    pub fn plan_adaptive(&self, dcq: &Dcq) -> IncrementalPlan {
        let classification = classify(dcq);
        IncrementalPlan {
            strategy: IncrementalStrategy::Adaptive,
            classification,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dcq;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![
                vec![1, 2],
                vec![2, 3],
                vec![3, 1],
                vec![3, 4],
                vec![4, 5],
                vec![2, 4],
            ],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Triple",
            &["a", "b", "c"],
            vec![vec![1, 2, 3], vec![2, 3, 4], vec![3, 4, 5]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Edge",
            &["src", "dst"],
            vec![vec![1, 3], vec![2, 4], vec![3, 5]],
        ))
        .unwrap();
        db
    }

    #[test]
    fn planner_picks_easy_for_difference_linear() {
        let dcq =
            parse_dcq("Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)")
                .unwrap();
        let plan = DcqPlanner::smart().plan(&dcq);
        assert_eq!(plan.strategy, Strategy::EasyLinear);
        assert!(plan.explain().contains("EasyDCQ"));
    }

    #[test]
    fn planner_picks_probe_for_hard_case_3() {
        // Q_G5 shape: Q1 and Q2 fine individually, augmented edge cyclic.
        let dcq = parse_dcq("Q(a, b, c) :- Graph(a, b), Graph(b, c) EXCEPT Edge(a, c), Edge(b, c)")
            .unwrap();
        let plan = DcqPlanner::smart().plan(&dcq);
        assert_eq!(plan.strategy, Strategy::ProbeLinearReducible);
    }

    #[test]
    fn planner_picks_intersection_for_non_linear_reducible_q2() {
        let dcq = parse_dcq("Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)").unwrap();
        let plan = DcqPlanner::smart().plan(&dcq);
        assert_eq!(plan.strategy, Strategy::Intersection);
    }

    #[test]
    fn all_strategies_agree_with_baseline_when_applicable() {
        let db = db();
        let cases = [
            "Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)",
            "Q(a, b, c) :- Graph(a, b), Graph(b, c) EXCEPT Edge(a, c), Edge(b, c)",
            "Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)",
        ];
        for src in cases {
            let dcq = parse_dcq(src).unwrap();
            let planner = DcqPlanner::smart();
            let expected = planner.execute_with(Strategy::Baseline, &dcq, &db).unwrap();
            let optimized = planner.execute(&dcq, &db).unwrap();
            assert_eq!(
                optimized.sorted_rows(),
                expected.sorted_rows(),
                "planner output differs from baseline on {src}"
            );
            // The explicitly-requested heuristics must agree as well.
            let inter = planner
                .execute_with(Strategy::Intersection, &dcq, &db)
                .unwrap();
            assert_eq!(inter.sorted_rows(), expected.sorted_rows());
            let probe = planner
                .execute_with(Strategy::PerTupleProbe, &dcq, &db)
                .unwrap();
            assert_eq!(probe.sorted_rows(), expected.sorted_rows());
        }
    }

    #[test]
    fn vanilla_and_smart_planners_agree() {
        let db = db();
        let dcq =
            parse_dcq("Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)")
                .unwrap();
        let a = DcqPlanner::vanilla().execute(&dcq, &db).unwrap();
        let b = DcqPlanner::smart().execute(&dcq, &db).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn incremental_plan_follows_dichotomy() {
        let planner = DcqPlanner::smart();
        let easy =
            parse_dcq("Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)")
                .unwrap();
        let plan = planner.plan_incremental(&easy);
        assert_eq!(plan.strategy, IncrementalStrategy::EasyRerun);
        assert!(plan.explain().contains("touched-side rerun"));

        let hard = parse_dcq("Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)").unwrap();
        let plan = planner.plan_incremental(&hard);
        assert_eq!(plan.strategy, IncrementalStrategy::Counting);
        assert!(plan.explain().contains("counting maintenance"));
        assert!(!plan.classification.is_difference_linear());
    }

    #[test]
    fn strategy_display_is_informative() {
        assert!(format!("{}", Strategy::EasyLinear).contains("Theorem 3.1"));
        assert!(format!("{}", Strategy::Baseline).contains("Corollary 2.1"));
        assert!(format!("{}", Strategy::Intersection).contains("4.10"));
        assert!(format!("{}", IncrementalStrategy::Adaptive).contains("adaptive"));
    }

    #[test]
    fn adaptive_plan_keeps_the_structural_choice_recoverable() {
        let planner = DcqPlanner::smart();
        for (src, structural) in [
            (
                "Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)",
                IncrementalStrategy::EasyRerun,
            ),
            (
                "Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)",
                IncrementalStrategy::Counting,
            ),
        ] {
            let plan = planner.plan_adaptive(&parse_dcq(src).unwrap());
            assert_eq!(plan.strategy, IncrementalStrategy::Adaptive);
            assert_eq!(
                DcqPlanner::incremental_strategy_for(&plan.classification),
                structural,
                "the adaptive view's starting engine is the dichotomy's choice"
            );
            assert!(plan.explain().contains("adaptive"));
        }
    }
}
