//! `EasyDCQ` — the linear-time algorithm for difference-linear DCQs (Algorithm 2).
//!
//! For a difference-linear DCQ `Q₁ − Q₂` (Definition 2.3) the algorithm runs in
//! `O(N + OUT)` time:
//!
//! 1. `Reduce` both inputs (Algorithm 1), leaving two full join queries
//!    `(y, E₁′)` and `(y, E₂′)` over reduced instances;
//! 2. for every reduced edge `e ∈ E₂′`:
//!    * compute `S_e = π_e Q₁` with the Yannakakis algorithm — free-connex because
//!      `(y, E₁′ ∪ {e})` is α-acyclic (the third difference-linear condition), and
//!      bounded by `O(N + OUT)` thanks to Lemma 3.8;
//!    * compute the base-relation difference `S_e − R′_e` (hashing, `O(N + OUT)`);
//!    * join `(S_e − R′_e) ⋈ Q₁` with Yannakakis — an acyclic full join whose output
//!      is exactly the part of `Q₁ − Q₂` witnessed by edge `e` (Lemma 3.7);
//! 3. return the union of the per-edge results.
//!
//! The rewriting is the paper's "push the difference operator down to the input
//! relations" idea: only differences of *base* (or linearly-materialized) relations
//! are ever computed, never the difference of two large materialized query results.

use crate::error::DcqError;
use crate::query::Dcq;
use crate::Result;
use dcq_exec::{acyclic_full_join, free_connex_evaluate, reduce, ExecError};
use dcq_storage::{Database, Relation};

/// Map the executor's structural errors onto the EasyDCQ precondition error.
fn precondition(e: ExecError) -> DcqError {
    match e {
        ExecError::NotAcyclic { detail } | ExecError::NotLinearReducible { detail } => {
            DcqError::PreconditionViolated {
                strategy: "EasyDCQ",
                reason: detail,
            }
        }
        other => DcqError::Exec(other),
    }
}

/// Evaluate a difference-linear DCQ in `O(N + OUT)` time (Theorem 3.1).
///
/// Returns [`DcqError::PreconditionViolated`] when the DCQ is not difference-linear
/// (use [`crate::planner::DcqPlanner`] to fall back to a heuristic automatically).
pub fn easy_dcq(dcq: &Dcq, db: &Database) -> Result<Relation> {
    let head = dcq.head_schema();

    // Line 1-2 of Algorithm 2: reduce both inputs to full joins over y.
    let q1_atoms = dcq.q1.bind(db)?;
    let q2_atoms = dcq.q2.bind(db)?;
    let reduced_q1 = reduce(&head, &q1_atoms).map_err(precondition)?;
    let reduced_q2 = reduce(&dcq.q2.head_schema(), &q2_atoms).map_err(precondition)?;

    // Line 3: S ← ∅.
    let mut result = Relation::new("easy_dcq", head.clone());
    result.assume_distinct();

    // Lines 4-6: one sub-query per reduced edge of Q2.
    for r2_edge in &reduced_q2.relations {
        // S_e ← Yannakakis((e, y, E1'), D1'): the projection of Q1 onto e's attrs.
        let edge_schema = r2_edge.schema().clone();
        let s_e =
            free_connex_evaluate(&edge_schema, &reduced_q1.relations).map_err(precondition)?;

        // The pushed-down difference of base relations: S_e − R'_e.
        let diff = s_e.minus(r2_edge)?;
        if diff.is_empty() {
            continue;
        }

        // (S_e − R'_e) ⋈ Q1: an acyclic full join over y (Lemma 3.5).
        let mut atoms = reduced_q1.relations.clone();
        atoms.push(diff);
        let joined = acyclic_full_join(&atoms).map_err(precondition)?;
        let projected = joined.project(head.attrs())?;

        result = result.union_set(&projected)?;
    }
    result.set_name("easy_dcq");
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{baseline_dcq, CqStrategy};
    use crate::parse::parse_dcq;
    use dcq_storage::row::int_row;

    fn graph_db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![
                vec![1, 2],
                vec![2, 3],
                vec![3, 1],
                vec![3, 4],
                vec![4, 5],
                vec![5, 3],
                vec![2, 4],
            ],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Triple",
            &["a", "b", "c"],
            vec![
                vec![1, 2, 3],
                vec![2, 3, 1],
                vec![3, 4, 5],
                vec![1, 2, 4],
                vec![9, 9, 9],
            ],
        ))
        .unwrap();
        // A second, shifted copy of Graph for same-schema difference tests.
        db.add(Relation::from_int_rows(
            "GraphB",
            &["src", "dst"],
            vec![vec![1, 2], vec![3, 1], vec![4, 5], vec![7, 8]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Node",
            &["id"],
            (1..=5).map(|i| vec![i]).collect::<Vec<_>>(),
        ))
        .unwrap();
        db
    }

    fn check_matches_baseline(src: &str) {
        let dcq = parse_dcq(src).unwrap();
        let db = graph_db();
        let fast = easy_dcq(&dcq, &db).unwrap();
        let slow = baseline_dcq(&dcq, &db, CqStrategy::Vanilla).unwrap();
        assert_eq!(
            fast.sorted_rows(),
            slow.sorted_rows(),
            "EasyDCQ disagrees with the baseline on {src}"
        );
    }

    #[test]
    fn example_3_3_same_schema_path_join() {
        check_matches_baseline(
            "Q(x1, x2, x3) :- Graph(x1, x2), Graph(x2, x3) EXCEPT GraphB(x1, x2), GraphB(x2, x3)",
        );
    }

    #[test]
    fn example_3_6_different_schemas() {
        check_matches_baseline(
            "Q(x1, x2, x3) :- Graph(x1, x2), Triple(x1, x2, x3)
             EXCEPT Triple(x1, x2, x3), GraphB(x2, x3)",
        );
    }

    #[test]
    fn friend_recommendation_qg3() {
        // Example 1.1 / Q_G3: triples that do not form a triangle.
        check_matches_baseline(
            "Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)",
        );
    }

    #[test]
    fn qg3_explicit_result() {
        let dcq =
            parse_dcq("Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)")
                .unwrap();
        let db = graph_db();
        let out = easy_dcq(&dcq, &db).unwrap();
        // Triangles: (1,2,3) rotations and (3,4,5) rotations; Triple ∩ triangles =
        // {(1,2,3),(2,3,1),(3,4,5)}, so (1,2,4) and (9,9,9) survive.
        assert_eq!(
            out.sorted_rows(),
            vec![int_row([1, 2, 4]), int_row([9, 9, 9])]
        );
    }

    #[test]
    fn qg4_projected_path_rhs() {
        // Q_G4: triples that cannot be extended to a length-3 path (third hop from c).
        check_matches_baseline(
            "Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, d)",
        );
    }

    #[test]
    fn qg1_shape_edges_without_continuation() {
        // Q_G1: edges that do not start a length-2 path, same-relation flavour.
        check_matches_baseline("Q(a, b) :- Graph(a, b) EXCEPT Graph(a, b), Graph(b, c)");
    }

    #[test]
    fn example_3_9_relation_minus_triangle() {
        check_matches_baseline(
            "Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(a, c)",
        );
    }

    #[test]
    fn example_3_10_cartesian_q1() {
        check_matches_baseline(
            "Q(a, b, c) :- Graph(a, b), Node(c) EXCEPT Graph(a, b), Graph(b, c), Graph(a, c)",
        );
    }

    #[test]
    fn empty_difference_when_q2_covers_q1() {
        // Q2 identical to Q1: nothing survives.
        check_matches_baseline("Q(a, b) :- Graph(a, b) EXCEPT Graph(a, b)");
        let dcq = parse_dcq("Q(a, b) :- Graph(a, b) EXCEPT Graph(a, b)").unwrap();
        assert!(easy_dcq(&dcq, &graph_db()).unwrap().is_empty());
    }

    #[test]
    fn non_difference_linear_is_rejected() {
        // Lemma 4.3's hard core: Q2 hides a projection join.
        let dcq = parse_dcq("Q(a, c) :- Graph(a, c) EXCEPT Graph(a, b), Graph(b, c)").unwrap();
        let err = easy_dcq(&dcq, &graph_db()).unwrap_err();
        assert!(matches!(err, DcqError::PreconditionViolated { .. }));
    }

    #[test]
    fn result_is_distinct_and_in_head_order() {
        let dcq =
            parse_dcq("Q(c, b, a) :- Graph(a, b), Graph(b, c) EXCEPT GraphB(a, b), GraphB(b, c)")
                .unwrap();
        let db = graph_db();
        let out = easy_dcq(&dcq, &db).unwrap();
        assert_eq!(out.schema(), &dcq.head_schema());
        assert_eq!(out.distinct_count(), out.len());
        let slow = baseline_dcq(&dcq, &db, CqStrategy::Vanilla).unwrap();
        assert_eq!(out.sorted_rows(), slow.sorted_rows());
    }
}
