//! The difference-linear dichotomy (Definition 2.3 / Theorem 2.4).
//!
//! A DCQ `Q₁ − Q₂` can be computed in `O(N + OUT)` time **iff** it is
//! *difference-linear*:
//!
//! 1. `Q₁` is free-connex,
//! 2. `Q₂` is linear-reducible,
//! 3. for every edge `e` of the reduced query of `Q₂`, the hypergraph
//!    `(y, E₁′ ∪ {e})` is α-acyclic, where `(y, E₁′)` is the reduced query of `Q₁`.
//!
//! The classifier below evaluates all three conditions *structurally* (no data is
//! touched): the reduced edge sets are derived from the same head-rooted join tree
//! construction the executor's `Reduce` (Algorithm 1) uses, so the classification
//! always predicts what the runtime will do.  The remaining DCQs are split into the
//! three "hard" cases of §4.1, which the planner maps to the heuristics of §4.2.

use crate::query::Dcq;
use dcq_hypergraph::{is_alpha_acyclic, AttrSet, CqShape, JoinTree};
use std::fmt;

/// Structural reduced edge set of a CQ `(head, edges)`: the hyperedges the `Reduce`
/// procedure (Algorithm 1) would leave behind, or `None` if the query is not
/// linear-reducible (no head-rooted join tree exists).
///
/// Mirrors `dcq_exec::reduce`: if every edge is already contained in the head the
/// query is full over the head and returned unchanged; otherwise the reduced edges
/// are the head-node's children in the augmented join tree, intersected with the
/// head.
pub fn structural_reduced_edges(head: &AttrSet, edges: &[AttrSet]) -> Option<Vec<AttrSet>> {
    if edges.is_empty() {
        return None;
    }
    if edges.iter().all(|e| e.is_subset(head)) {
        return Some(edges.to_vec());
    }
    let (tree, head_idx) = JoinTree::build_with_head(edges, head)?;
    let mut reduced = Vec::new();
    for &child in tree.children(head_idx) {
        reduced.push(tree.edge(child).intersect(head));
    }
    Some(reduced)
}

/// Which side of the dichotomy (and which hard sub-case) a DCQ falls into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DcqClass {
    /// The DCQ is difference-linear: `EasyDCQ` computes it in `O(N + OUT)` time.
    DifferenceLinear,
    /// Hard case (1) of §4.1: `Q₁` is not free-connex — even `Q₂ = ∅` is hard.
    HardQ1NotFreeConnex,
    /// Hard case (2): `Q₁` is free-connex but `Q₂` is not linear-reducible.
    HardQ2NotLinearReducible,
    /// Hard case (3): both structural conditions on the individual queries hold, but
    /// some reduced edge of `Q₂` makes `(y, E₁′ ∪ {e})` cyclic.
    HardAugmentedCyclic,
}

impl DcqClass {
    /// `true` iff the DCQ admits the linear-time algorithm of Theorem 3.1.
    pub fn is_easy(&self) -> bool {
        matches!(self, DcqClass::DifferenceLinear)
    }
}

impl fmt::Display for DcqClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DcqClass::DifferenceLinear => "difference-linear (easy)",
            DcqClass::HardQ1NotFreeConnex => "hard: Q1 is not free-connex",
            DcqClass::HardQ2NotLinearReducible => "hard: Q2 is not linear-reducible",
            DcqClass::HardAugmentedCyclic => {
                "hard: some reduced edge of Q2 makes (y, E1' ∪ {e}) cyclic"
            }
        };
        write!(f, "{s}")
    }
}

/// Full classification report for a DCQ.
#[derive(Clone, Debug)]
pub struct DcqClassification {
    /// The dichotomy class.
    pub class: DcqClass,
    /// Structural shape of `Q₁`.
    pub q1_shape: CqShape,
    /// Structural shape of `Q₂`.
    pub q2_shape: CqShape,
    /// Reduced edges `E₁′` of `Q₁` (present whenever `Q₁` is linear-reducible).
    pub reduced_e1: Option<Vec<AttrSet>>,
    /// Reduced edges `E₂′` of `Q₂` (present whenever `Q₂` is linear-reducible).
    pub reduced_e2: Option<Vec<AttrSet>>,
    /// When the class is [`DcqClass::HardAugmentedCyclic`], the first reduced edge of
    /// `Q₂` that violates condition (3).
    pub offending_edge: Option<AttrSet>,
}

impl DcqClassification {
    /// `true` iff the DCQ is difference-linear.
    pub fn is_difference_linear(&self) -> bool {
        self.class.is_easy()
    }
}

impl fmt::Display for DcqClassification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "class: {}", self.class)?;
        writeln!(
            f,
            "Q1: acyclic={} free-connex={} linear-reducible={} full={}",
            self.q1_shape.alpha_acyclic,
            self.q1_shape.free_connex,
            self.q1_shape.linear_reducible,
            self.q1_shape.full
        )?;
        writeln!(
            f,
            "Q2: acyclic={} free-connex={} linear-reducible={} full={}",
            self.q2_shape.alpha_acyclic,
            self.q2_shape.free_connex,
            self.q2_shape.linear_reducible,
            self.q2_shape.full
        )?;
        if let Some(e) = &self.offending_edge {
            writeln!(f, "offending edge: {e}")?;
        }
        Ok(())
    }
}

/// Classify a DCQ according to the dichotomy of Theorem 2.4.
pub fn classify(dcq: &Dcq) -> DcqClassification {
    let head = dcq.q1.head_set();
    let e1 = dcq.q1.edges();
    let e2 = dcq.q2.edges();
    let q1_shape = CqShape::of(&head, &e1);
    let q2_shape = CqShape::of(&dcq.q2.head_set(), &e2);

    let reduced_e1 = structural_reduced_edges(&head, &e1);
    let reduced_e2 = structural_reduced_edges(&dcq.q2.head_set(), &e2);

    let mut offending_edge = None;
    let class = if !q1_shape.free_connex {
        DcqClass::HardQ1NotFreeConnex
    } else if !q2_shape.linear_reducible {
        DcqClass::HardQ2NotLinearReducible
    } else {
        // Both reductions exist; check the per-edge augmented acyclicity condition.
        let e1p = reduced_e1
            .as_ref()
            .expect("Q1 free-connex implies linear-reducible implies reducible");
        let e2p = reduced_e2
            .as_ref()
            .expect("Q2 linear-reducible implies reducible");
        match e2p.iter().find(|e| {
            let mut augmented = e1p.clone();
            augmented.push((*e).clone());
            !is_alpha_acyclic(&augmented)
        }) {
            Some(bad) => {
                offending_edge = Some(bad.clone());
                DcqClass::HardAugmentedCyclic
            }
            None => DcqClass::DifferenceLinear,
        }
    };

    DcqClassification {
        class,
        q1_shape,
        q2_shape,
        reduced_e1,
        reduced_e2,
        offending_edge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dcq;

    fn classify_src(src: &str) -> DcqClassification {
        classify(&parse_dcq(src).unwrap())
    }

    #[test]
    fn example_3_3_same_schema_path_join_is_easy() {
        let c =
            classify_src("Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3) EXCEPT S1(x1, x2), S2(x2, x3)");
        assert_eq!(c.class, DcqClass::DifferenceLinear);
        assert!(c.is_difference_linear());
        assert!(c.q1_shape.free_connex && c.q2_shape.free_connex);
    }

    #[test]
    fn example_3_6_different_schemas_is_easy() {
        // Q1 = R1(x1,x2) ⋈ R2(x2,x3,x4), Q2 = R3(x1,x2,x3) ⋈ R4(x3,x4), both full.
        let c = classify_src(
            "Q(x1, x2, x3, x4) :- R1(x1, x2), R2(x2, x3, x4) EXCEPT R3(x1, x2, x3), R4(x3, x4)",
        );
        assert_eq!(c.class, DcqClass::DifferenceLinear);
    }

    #[test]
    fn example_3_9_triangle_q2_is_easy() {
        // Q1 = R1(x1,x2,x3), Q2 = triangle: Q2 is cyclic but linear-reducible, and its
        // reduced edges {x1,x2},{x2,x3},{x1,x3} each keep (y, E1'∪{e}) acyclic because
        // E1' = {x1,x2,x3} covers them.
        let c = classify_src(
            "Q(x1, x2, x3) :- R1(x1, x2, x3) EXCEPT R2(x1, x2), R3(x2, x3), R4(x1, x3)",
        );
        assert_eq!(c.class, DcqClass::DifferenceLinear);
        assert!(!c.q2_shape.alpha_acyclic);
        assert!(c.q2_shape.linear_reducible);
    }

    #[test]
    fn example_3_10_cartesian_q1_is_easy() {
        let c = classify_src(
            "Q(x1, x2, x3) :- R1(x1, x2), R2(x3) EXCEPT R3(x1, x2), R4(x2, x3), R5(x1, x3)",
        );
        assert_eq!(c.class, DcqClass::DifferenceLinear);
    }

    #[test]
    fn lemma_4_3_hardcore_is_hard_q2() {
        // R1(x1,x3) − π_{x1,x3}(R2(x1,x2) ⋈ R3(x2,x3)): Q2 is not linear-reducible.
        let c = classify_src("Q(x1, x3) :- R1(x1, x3) EXCEPT R2(x1, x2), R3(x2, x3)");
        assert_eq!(c.class, DcqClass::HardQ2NotLinearReducible);
        assert!(c.q1_shape.free_connex);
        assert!(!c.q2_shape.linear_reducible);
        assert!(c.reduced_e2.is_none());
    }

    #[test]
    fn lemma_4_4_hardcore_is_hard_q2() {
        // R1(x1) − π_{x1}(triangle): Q2 hides a triangle over non-output attributes.
        let c = classify_src("Q(x1) :- R1(x1) EXCEPT R2(x1, x3), R3(x2, x3), R4(x1, x2)");
        assert_eq!(c.class, DcqClass::HardQ2NotLinearReducible);
    }

    #[test]
    fn non_free_connex_q1_is_hard_case_1() {
        // π_{x1,x3}(R1(x1,x2) ⋈ R2(x2,x3)) − R3(x1,x3).
        let c = classify_src("Q(x1, x3) :- R1(x1, x2), R2(x2, x3) EXCEPT R3(x1, x3)");
        assert_eq!(c.class, DcqClass::HardQ1NotFreeConnex);
    }

    #[test]
    fn lemma_4_6_hardcores_are_hard_case_3() {
        // Q1 = R1(x1,x2) ⋈ R2(x2,x3) (full, free-connex), Q2 = R3(x1,x3) ⋈ R4(x2):
        // both sides fine individually, but E1' ∪ {x1,x3} forms a triangle.
        let c = classify_src("Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3) EXCEPT R3(x1, x3), R4(x2)");
        assert_eq!(c.class, DcqClass::HardAugmentedCyclic);
        assert_eq!(c.offending_edge, Some(AttrSet::from_names(["x1", "x3"])));

        let c = classify_src(
            "Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3) EXCEPT R3(x1, x3), R4(x2, x3), R5(x1, x2)",
        );
        assert_eq!(c.class, DcqClass::HardAugmentedCyclic);
    }

    #[test]
    fn friend_recommendation_query_is_easy() {
        // Example 1.1 / Q_G3: Triple minus triangles.
        let c = classify_src(
            "Q(n1, n2, n3) :- Triple(n1, n2, n3)
             EXCEPT Graph1(n1, n2), Graph2(n2, n3), Graph3(n3, n1)",
        );
        assert_eq!(c.class, DcqClass::DifferenceLinear);
    }

    #[test]
    fn qg4_projected_path_q2_is_easy() {
        // Q_G4: Triple(n1,n2,n3) − π(Graph(n1,n2) ⋈ Graph(n2,n3) ⋈ Graph(n3,n4)).
        let c = classify_src(
            "Q(n1, n2, n3) :- Triple(n1, n2, n3)
             EXCEPT G1(n1, n2), G2(n2, n3), G3(n3, n4)",
        );
        assert_eq!(c.class, DcqClass::DifferenceLinear);
        // Q2's reduced edges only mention output attributes.
        for e in c.reduced_e2.as_ref().unwrap() {
            assert!(e.is_subset(&AttrSet::from_names(["n1", "n2", "n3"])));
        }
    }

    #[test]
    fn qg5_length4_cycle_rhs_is_hard() {
        // Q_G5: length-4 paths minus length-4 cycles.  Q2's reduced edge {n1,n4}
        // (endpoints of the cycle-closing edge) makes E1' ∪ {e} cyclic.
        let c = classify_src(
            "Q(n1, n2, n3, n4) :- G1(n1, n2), G2(n2, n3), G3(n3, n4)
             EXCEPT H1(n2, n3), H2(n3, n4), H3(n4, n1)",
        );
        assert_eq!(c.class, DcqClass::HardAugmentedCyclic);
    }

    #[test]
    fn structural_reduction_matches_full_query() {
        let head = AttrSet::from_names(["a", "b"]);
        let edges = vec![AttrSet::from_names(["a", "b"])];
        assert_eq!(
            structural_reduced_edges(&head, &edges),
            Some(vec![AttrSet::from_names(["a", "b"])])
        );
        assert_eq!(structural_reduced_edges(&head, &[]), None);
    }

    #[test]
    fn classification_display_mentions_class() {
        let c = classify_src("Q(x1, x3) :- R1(x1, x3) EXCEPT R2(x1, x2), R3(x2, x3)");
        let text = format!("{c}");
        assert!(text.contains("not linear-reducible"));
        assert!(format!("{}", c.class).contains("hard"));
    }
}
