//! # dcq-core
//!
//! The primary contribution of **dcqx**: efficient evaluation of the **difference of
//! conjunctive queries (DCQ)**, reproducing *Computing the Difference of Conjunctive
//! Queries Efficiently* (Hu & Wang, SIGMOD 2023).
//!
//! Given two conjunctive queries `Q₁ = (y, V₁, E₁)` and `Q₂ = (y, V₂, E₂)` with the
//! same output attributes and a database instance, the crate answers
//! `Q₁(D₁) − Q₂(D₂)` — the tuples produced by `Q₁` but not by `Q₂` — with the
//! algorithms, dichotomy and heuristics of the paper:
//!
//! * [`query`] — CQ / DCQ abstract syntax and binding against a [`dcq_storage::Database`],
//! * [`parse`] — a small datalog-style text syntax for defining queries,
//! * [`mod@classify`] — the difference-linear dichotomy of Theorem 2.4,
//! * [`easy`] — the linear-time `EasyDCQ` algorithm (Algorithm 2, §3),
//! * [`baseline`] — the standard approach: materialize both sides, subtract
//!   (Corollary 2.1 — what the vanilla SQL plans of §6 do),
//! * [`heuristics`] — the §4.2 heuristics for hard DCQs (Theorems 4.8 and 4.10,
//!   Corollary 2.5),
//! * [`planner`] — picks the right strategy per Table 1 and explains its choice,
//! * [`cache`] — the prepared-plan cache keyed by canonical query shape, so an
//!   engine classifies each shape once no matter how often it is prepared,
//! * [`multi`] — difference of multiple CQs (Algorithm 4, §5.1),
//! * [`compose`] — selection / projection / join composed with DCQs (§5.2),
//! * [`aggregate`] — aggregation over annotated relations, relational and numerical
//!   difference (§5.3),
//! * [`bag`] — bag-semantics DCQ (§5.4, Appendix C),
//! * [`scq`] — signed conjunctive queries, rewrites and decidability (§7).

#![warn(missing_docs)]

pub mod aggregate;
pub mod bag;
pub mod baseline;
pub mod cache;
pub mod classify;
pub mod compose;
pub mod delta_plan;
pub mod easy;
pub mod error;
pub mod heuristics;
pub mod multi;
pub mod parse;
pub mod planner;
pub mod query;
pub mod scq;

pub use cache::{CachedPlan, CqShapeKey, PlanCache, PlanCacheStats, QueryShapeKey};
pub use classify::{classify, DcqClass, DcqClassification};
pub use delta_plan::{
    build_delta_plans, AtomBinding, CqDeltaPlans, DeltaStep, IndexSpec, OccurrencePlan,
};
pub use error::DcqError;
pub use heuristics::{
    thread_cpu_time_ns, BatchStats, CostClock, CrossoverSample, MaintenanceCostModel,
};
pub use parse::{parse_cq, parse_dcq};
pub use planner::{DcqPlanner, IncrementalPlan, IncrementalStrategy, Strategy};
pub use query::{Atom, ConjunctiveQuery, Dcq};

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, DcqError>;
