//! Bag-semantics DCQ (§5.4, Appendix C).
//!
//! Under bag semantics every distinct tuple carries a positive multiplicity; a tuple
//! `t` belongs to `Q₁ − Q₂` iff `w₁(t) > w₂(t)` and its output multiplicity is
//! `w₁(t) − w₂(t)`.  The set-semantics rewriting of §3 is **not** correct here
//! (Figure 3 shows the failure modes), so the paper partitions every base relation
//! against its counterpart (Example 5.4 / Lemma C.1):
//!
//! * `R_e∅` — tuples of `R_e` with no counterpart in `R′_e` (`w₂ = 0`),
//! * `R_e>` — counterparts exist and `w₁ > w₂`,
//! * `R_e<` — counterparts exist and `w₁ ≤ w₂`,
//!
//! and assembles the result from (a) joins in which at least one edge takes its
//! `∅` part — every such join result has `w₂ = 0` and qualifies outright — and
//! (b) the all-matched joins filtered by the `θ`-condition `∏w₁ > ∏w₂`.
//!
//! [`bag_dcq_naive`] is the reference evaluation (materialize both bags and
//! subtract); [`bag_dcq_rewritten`] implements the partition rewrite.  Part (a) runs
//! in `O(N + OUT)`; part (b) enumerates the matched join and filters, which is
//! correct but may exceed the paper's `O(N log N + OUT)` bound on adversarial
//! inputs — the sorted θ-join enumeration of Algorithm 5 is documented as future
//! work in DESIGN.md.

use crate::aggregate::AnnotatedDatabase;
use crate::error::DcqError;
use crate::query::Dcq;
use crate::Result;
use dcq_exec::{annotated_reduce, annotated_yannakakis, ExecError};
use dcq_storage::{BagRelation, Row, Schema, Semiring};

/// A database annotated with bag multiplicities.
pub type BagDatabase = AnnotatedDatabase<u64>;

/// Pair of multiplicities `(w₁, w₂)` carried through the all-matched join of part
/// (b); both components multiply under join.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightPair {
    /// The `Q₁`-side multiplicity.
    pub w1: u64,
    /// The `Q₂`-side multiplicity.
    pub w2: u64,
}

impl Semiring for WeightPair {
    fn zero() -> Self {
        WeightPair { w1: 0, w2: 0 }
    }
    fn one() -> Self {
        WeightPair { w1: 1, w2: 1 }
    }
    fn plus(&self, other: &Self) -> Self {
        WeightPair {
            w1: self.w1 + other.w1,
            w2: self.w2 + other.w2,
        }
    }
    fn times(&self, other: &Self) -> Self {
        WeightPair {
            w1: self.w1 * other.w1,
            w2: self.w2 * other.w2,
        }
    }
}

/// The bag produced by a single CQ: multiplicities of `π_y(⋈ atoms)` under bag
/// semantics, computed by folding annotated joins (always applicable).
pub fn bag_of_cq(cq: &crate::query::ConjunctiveQuery, bdb: &BagDatabase) -> Result<BagRelation> {
    let atoms = bdb.bind_cq(cq)?;
    let Some((first, rest)) = atoms.split_first() else {
        return Err(DcqError::Exec(ExecError::EmptyQuery));
    };
    let mut acc = first.clone();
    for r in rest {
        acc = dcq_exec::annotated_join(&acc, r);
    }
    Ok(acc.project(&cq.head)?)
}

/// Reference (baseline) bag difference: materialize both bags, subtract
/// multiplicities, keep positives.
pub fn bag_dcq_naive(dcq: &Dcq, bdb: &BagDatabase) -> Result<BagRelation> {
    let bag1 = bag_of_cq(&dcq.q1, bdb)?;
    let bag2 = bag_of_cq(&dcq.q2, bdb)?;
    let head = dcq.head_schema();
    let mut out = BagRelation::new("bag_dcq_naive", head.clone());
    let bag2 = reorder_bag(&bag2, &head);
    for (row, &w1) in bag1.iter() {
        let row = reorder_row(row, bag1.schema(), &head);
        let w2 = bag2.annotation(&row);
        if w1 > w2 {
            out.set(row, w1 - w2);
        }
    }
    Ok(out)
}

/// Reorder a bag relation's columns to a target schema over the same attribute set.
fn reorder_bag(bag: &BagRelation, target: &Schema) -> BagRelation {
    if bag.schema() == target {
        return bag.clone();
    }
    let mut out = BagRelation::new(bag.name(), target.clone());
    for (row, &w) in bag.iter() {
        out.set(reorder_row(row, bag.schema(), target), w);
    }
    out
}

fn reorder_row(row: &Row, from: &Schema, to: &Schema) -> Row {
    if from == to {
        return row.clone();
    }
    let positions: Vec<usize> = to
        .iter()
        .map(|a| from.position(a).expect("same attribute set"))
        .collect();
    row.project(&positions)
}

/// The partition-based rewriting of Theorem 5.5 for DCQs whose two sides are
/// free-connex CQs with the same (reduced) structure.
///
/// Returns [`DcqError::PreconditionViolated`] when the reductions of the two sides
/// do not produce relations over the same attribute sets — the precondition
/// `Q₁ = Q₂ = (y, V, E)` of the theorem.
pub fn bag_dcq_rewritten(dcq: &Dcq, bdb: &BagDatabase) -> Result<BagRelation> {
    let head = dcq.head_schema();
    let q1_atoms = bdb.bind_cq(&dcq.q1)?;
    let q2_atoms = bdb.bind_cq(&dcq.q2)?;
    let precondition = |e: ExecError| match e {
        ExecError::NotAcyclic { detail } | ExecError::NotLinearReducible { detail } => {
            DcqError::PreconditionViolated {
                strategy: "BagDCQ",
                reason: detail,
            }
        }
        other => DcqError::Exec(other),
    };
    // Reduce both sides to relations over subsets of y (bag-preserving: annotations
    // are pushed with ⊕/⊗ exactly as the appendix's annotated semi-joins do).
    let reduced1 = annotated_reduce(&head, &q1_atoms).map_err(precondition)?;
    let reduced2 = annotated_reduce(&dcq.q2.head_schema(), &q2_atoms).map_err(precondition)?;

    // Pair up the reduced relations by attribute set.
    let mut pairs: Vec<(BagRelation, BagRelation)> = Vec::with_capacity(reduced1.len());
    let mut used = vec![false; reduced2.len()];
    for r1 in &reduced1 {
        let position = reduced2
            .iter()
            .enumerate()
            .find(|(j, r2)| !used[*j] && r2.schema().same_attr_set(r1.schema()));
        match position {
            Some((j, r2)) => {
                used[j] = true;
                pairs.push((r1.clone(), reorder_bag(r2, r1.schema())));
            }
            None => {
                return Err(DcqError::PreconditionViolated {
                    strategy: "BagDCQ",
                    reason: format!(
                        "no Q2 relation matches the Q1 relation over {}",
                        r1.schema()
                    ),
                })
            }
        }
    }
    if used.iter().any(|u| !u) {
        return Err(DcqError::PreconditionViolated {
            strategy: "BagDCQ",
            reason: "Q2 has reduced relations with no Q1 counterpart".into(),
        });
    }

    // Partition every pair into the ∅ part (w2 = 0) and the matched part (w1, w2).
    struct Partitioned {
        /// Rows of R_e with no counterpart, annotated with w1.
        empty: BagRelation,
        /// Rows with a counterpart, annotated with w1 (for the part-(a) terms).
        matched_w1: BagRelation,
        /// Rows with a counterpart, annotated with (w1, w2) (for part (b)).
        matched_pair: dcq_storage::AnnotatedRelation<WeightPair>,
        /// All rows of R_e annotated with w1.
        full: BagRelation,
    }
    let mut partitions: Vec<Partitioned> = Vec::with_capacity(pairs.len());
    for (r1, r2) in &pairs {
        let schema = r1.schema().clone();
        let mut empty = BagRelation::new("R_e_empty", schema.clone());
        let mut matched_w1 = BagRelation::new("R_e_matched", schema.clone());
        let mut matched_pair =
            dcq_storage::AnnotatedRelation::<WeightPair>::new("R_e_pair", schema.clone());
        for (row, &w1) in r1.iter() {
            let w2 = r2.annotation(row);
            if w2 == 0 {
                empty.set(row.clone(), w1);
            } else {
                matched_w1.set(row.clone(), w1);
                matched_pair.set(row.clone(), WeightPair { w1, w2 });
            }
        }
        partitions.push(Partitioned {
            empty,
            matched_w1,
            matched_pair,
            full: r1.clone(),
        });
    }

    let mut out = BagRelation::new("bag_dcq_rewritten", head.clone());

    // Part (a): terms where edge i is the *first* edge taking its ∅ part.  The terms
    // are pairwise disjoint and every result tuple has w2 = 0, so its multiplicity is
    // the product of w1 annotations.
    for i in 0..partitions.len() {
        if partitions[i].empty.is_empty() {
            continue;
        }
        let mut atoms: Vec<BagRelation> = Vec::with_capacity(partitions.len());
        for (j, p) in partitions.iter().enumerate() {
            use std::cmp::Ordering;
            atoms.push(match j.cmp(&i) {
                Ordering::Less => p.matched_w1.clone(),
                Ordering::Equal => p.empty.clone(),
                Ordering::Greater => p.full.clone(),
            });
        }
        if atoms.iter().any(|a| a.is_empty()) {
            continue;
        }
        let term = annotated_yannakakis(&head, &atoms).map_err(precondition)?;
        for (row, &w) in term.iter() {
            out.combine(row.clone(), w);
        }
    }

    // Part (b): all edges matched; keep tuples whose Q1 multiplicity exceeds the Q2
    // multiplicity, with the difference as output multiplicity.
    let pair_atoms: Vec<_> = partitions.iter().map(|p| p.matched_pair.clone()).collect();
    if pair_atoms.iter().all(|a| !a.is_empty()) {
        let matched = annotated_yannakakis(&head, &pair_atoms).map_err(precondition)?;
        for (row, pair) in matched.iter() {
            if pair.w1 > pair.w2 {
                out.combine(row.clone(), pair.w1 - pair.w2);
            }
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dcq;
    use dcq_storage::row::int_row;
    use dcq_storage::AnnotatedRelation;

    /// The Figure 3 instance: R1, R2 (Q1's side) and R3, R4 (Q2's side).
    fn figure3_bdb() -> BagDatabase {
        let mut bdb = BagDatabase::new();
        bdb.add(BagRelation::from_int_rows_with_counts(
            "R1",
            &["x1", "x2"],
            vec![(vec![1, 10], 1), (vec![2, 10], 2), (vec![2, 20], 2)],
        ));
        bdb.add(BagRelation::from_int_rows_with_counts(
            "R2",
            &["x2", "x3"],
            vec![(vec![10, 100], 1), (vec![20, 100], 2), (vec![20, 200], 1)],
        ));
        bdb.add(BagRelation::from_int_rows_with_counts(
            "R3",
            &["x1", "x2"],
            vec![(vec![2, 10], 1), (vec![2, 20], 2), (vec![3, 20], 1)],
        ));
        bdb.add(BagRelation::from_int_rows_with_counts(
            "R4",
            &["x2", "x3"],
            vec![(vec![10, 100], 1), (vec![20, 100], 3), (vec![20, 200], 1)],
        ));
        bdb
    }

    fn figure3_dcq() -> Dcq {
        parse_dcq("Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3) EXCEPT R3(x1, x2), R4(x2, x3)").unwrap()
    }

    #[test]
    fn weight_pair_semiring_laws() {
        let a = WeightPair { w1: 2, w2: 3 };
        let b = WeightPair { w1: 5, w2: 7 };
        assert_eq!(a.times(&WeightPair::one()), a);
        assert_eq!(a.plus(&WeightPair::zero()), a);
        assert_eq!(a.times(&b), WeightPair { w1: 10, w2: 21 });
        assert_eq!(a.plus(&b), WeightPair { w1: 7, w2: 10 });
        assert!(WeightPair::zero().is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn naive_bag_difference_on_figure3() {
        let out = bag_dcq_naive(&figure3_dcq(), &figure3_bdb()).unwrap();
        // Q1 multiplicities: (1,10,100)=1, (2,10,100)=2, (2,20,100)=4, (2,20,200)=2.
        // Q2 multiplicities: (2,10,100)=1, (2,20,100)=6, (2,20,200)=2, (3,…)=….
        // Differences > 0: (1,10,100)=1, (2,10,100)=1.
        assert_eq!(out.annotation(&int_row([1, 10, 100])), 1);
        assert_eq!(out.annotation(&int_row([2, 10, 100])), 1);
        assert!(!out.contains(&int_row([2, 20, 100])));
        assert!(!out.contains(&int_row([2, 20, 200])));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn rewritten_matches_naive_on_figure3() {
        let dcq = figure3_dcq();
        let bdb = figure3_bdb();
        let fast = bag_dcq_rewritten(&dcq, &bdb).unwrap();
        let slow = bag_dcq_naive(&dcq, &bdb).unwrap();
        assert_eq!(fast.sorted_entries(), slow.sorted_entries());
    }

    #[test]
    fn rewritten_handles_unmatched_base_tuples() {
        // Add Q1-only join values so the ∅ partitions are exercised.
        let mut bdb = figure3_bdb();
        bdb.add(BagRelation::from_int_rows_with_counts(
            "R1",
            &["x1", "x2"],
            vec![
                (vec![1, 10], 1),
                (vec![2, 10], 2),
                (vec![2, 20], 2),
                (vec![5, 30], 3),
            ],
        ));
        bdb.add(BagRelation::from_int_rows_with_counts(
            "R2",
            &["x2", "x3"],
            vec![
                (vec![10, 100], 1),
                (vec![20, 100], 2),
                (vec![20, 200], 1),
                (vec![30, 300], 2),
            ],
        ));
        let dcq = figure3_dcq();
        let fast = bag_dcq_rewritten(&dcq, &bdb).unwrap();
        let slow = bag_dcq_naive(&dcq, &bdb).unwrap();
        assert_eq!(fast.sorted_entries(), slow.sorted_entries());
        assert_eq!(fast.annotation(&int_row([5, 30, 300])), 6);
    }

    #[test]
    fn rewritten_rejects_mismatched_structures() {
        // Q2 is a single ternary relation: reduced structures cannot be paired.
        let mut bdb = figure3_bdb();
        bdb.add(BagRelation::from_int_rows_with_counts(
            "T",
            &["x1", "x2", "x3"],
            vec![(vec![1, 10, 100], 1)],
        ));
        let dcq =
            parse_dcq("Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3) EXCEPT T(x1, x2, x3)").unwrap();
        assert!(matches!(
            bag_dcq_rewritten(&dcq, &bdb),
            Err(DcqError::PreconditionViolated { .. })
        ));
        // The naive evaluation still works.
        assert!(bag_dcq_naive(&dcq, &bdb).is_ok());
    }

    #[test]
    fn non_full_free_connex_bag_difference() {
        // Project Figure 3 onto (x1, x2): still free-connex, multiplicities aggregate.
        let dcq =
            parse_dcq("Q(x1, x2) :- R1(x1, x2), R2(x2, x3) EXCEPT R3(x1, x2), R4(x2, x3)").unwrap();
        let bdb = figure3_bdb();
        let fast = bag_dcq_rewritten(&dcq, &bdb).unwrap();
        let slow = bag_dcq_naive(&dcq, &bdb).unwrap();
        assert_eq!(fast.sorted_entries(), slow.sorted_entries());
    }

    #[test]
    fn example_5_4_three_case_partition() {
        // A hand-built instance exercising all three cases of Example 5.4:
        // (1) missing counterparts, (2) both factors larger, (3) mixed factors whose
        // product still favours Q1.
        let mut bdb = BagDatabase::new();
        bdb.add(BagRelation::from_int_rows_with_counts(
            "A",
            &["x", "y"],
            vec![(vec![1, 1], 4), (vec![2, 1], 1), (vec![3, 2], 5)],
        ));
        bdb.add(BagRelation::from_int_rows_with_counts(
            "B",
            &["y", "z"],
            vec![(vec![1, 7], 3), (vec![2, 8], 1)],
        ));
        bdb.add(BagRelation::from_int_rows_with_counts(
            "C",
            &["x", "y"],
            vec![(vec![1, 1], 2), (vec![2, 1], 3)],
        ));
        bdb.add(BagRelation::from_int_rows_with_counts(
            "D",
            &["y", "z"],
            vec![(vec![1, 7], 5), (vec![2, 8], 2)],
        ));
        let dcq = parse_dcq("Q(x, y, z) :- A(x, y), B(y, z) EXCEPT C(x, y), D(y, z)").unwrap();
        let fast = bag_dcq_rewritten(&dcq, &bdb).unwrap();
        let slow = bag_dcq_naive(&dcq, &bdb).unwrap();
        assert_eq!(fast.sorted_entries(), slow.sorted_entries());
        // (1,1,7): w1 = 4·3 = 12, w2 = 2·5 = 10 → multiplicity 2 (case 3 flavour).
        assert_eq!(fast.annotation(&int_row([1, 1, 7])), 2);
        // (2,1,7): w1 = 3, w2 = 15 → dropped.
        assert!(!fast.contains(&int_row([2, 1, 7])));
        // (3,2,8): w2 = 0 → kept with w1 = 5 (case 1).
        assert_eq!(fast.annotation(&int_row([3, 2, 8])), 5);
    }

    #[test]
    fn bag_of_cq_respects_projections() {
        let bdb = figure3_bdb();
        let dcq =
            parse_dcq("Q(x1) :- R1(x1, x2), R2(x2, x3) EXCEPT R3(x1, x2), R4(x2, x3)").unwrap();
        let bag = bag_of_cq(&dcq.q1, &bdb).unwrap();
        // x1 = 2 : 2·1 + 2·2 + 2·1 = 8.
        assert_eq!(bag.annotation(&int_row([2])), 8);
        let empty_q = crate::query::ConjunctiveQuery::new("E", &[], vec![]);
        assert!(bag_of_cq(&empty_q, &bdb).is_err());
        let _unused: AnnotatedRelation<u64> = bag.clone();
    }
}
