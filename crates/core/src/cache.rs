//! Prepared-plan caching keyed by query shape.
//!
//! Classifying a DCQ (GYO reductions, free-connex checks, augmented-hypergraph
//! acyclicity — [`classify`]) is pure structure: it depends only on the *shape* of
//! the query, not on variable spellings or the database.  An engine that prepares
//! the same difference query for many clients therefore classifies it exactly once
//! and serves every later preparation from a [`PlanCache`]:
//!
//! * [`QueryShapeKey`] — the canonical form of a DCQ: variables α-renamed to
//!   first-occurrence indices, relation names and atom order preserved.  Two
//!   queries that differ only in variable names (or query names) share a key.
//! * [`CachedPlan`] — the classification plus the one-shot and incremental
//!   strategies derived from it, cloned out on every hit.
//! * [`PlanCache`] — the memo table with hit/miss counters, so callers can assert
//!   "0 re-classifications" the way `dcq-engine`'s tests do.

use crate::classify::{classify, DcqClassification};
use crate::delta_plan::{build_delta_plans, CqDeltaPlans};
use crate::planner::{DcqPlan, DcqPlanner, IncrementalPlan, IncrementalStrategy, Strategy};
use crate::query::{ConjunctiveQuery, Dcq};
use dcq_storage::hash::FastHashMap;
use dcq_storage::Schema;
use std::sync::Arc;

/// The canonical shape of a DCQ: relation names and atom structure with variables
/// α-renamed to dense indices in order of first occurrence (`Q₁` head first, then
/// `Q₁` atoms, `Q₂` head, `Q₂` atoms).
///
/// Query and variable *names* do not participate, so `Q(x, y) :- R(x, y)` and
/// `P(a, b) :- R(a, b)` share a key; atom order does participate (it is part of
/// the shape the classifier sees).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryShapeKey {
    q1_head: Vec<u32>,
    q1_atoms: Vec<(String, Vec<u32>)>,
    q2_head: Vec<u32>,
    q2_atoms: Vec<(String, Vec<u32>)>,
}

impl QueryShapeKey {
    /// Canonicalize a DCQ into its shape key.
    pub fn of(dcq: &Dcq) -> Self {
        let mut ids: FastHashMap<String, u32> = FastHashMap::default();
        let mut id_of = |name: &str| -> u32 {
            if let Some(&id) = ids.get(name) {
                return id;
            }
            let id = ids.len() as u32;
            ids.insert(name.to_string(), id);
            id
        };
        let mut side = |cq: &ConjunctiveQuery| -> (Vec<u32>, Vec<(String, Vec<u32>)>) {
            let head = cq.head.iter().map(|v| id_of(v.name())).collect();
            let atoms = cq
                .atoms
                .iter()
                .map(|a| {
                    (
                        a.relation.clone(),
                        a.vars.iter().map(|v| id_of(v.name())).collect(),
                    )
                })
                .collect();
            (head, atoms)
        };
        let (q1_head, q1_atoms) = side(&dcq.q1);
        let (q2_head, q2_atoms) = side(&dcq.q2);
        QueryShapeKey {
            q1_head,
            q1_atoms,
            q2_head,
            q2_atoms,
        }
    }
}

/// The canonical shape of one **side** (CQ) of a DCQ together with its output
/// order: variables α-renamed to dense first-occurrence indices over
/// `(head, atoms)`, plus the output attributes as indices into that numbering.
///
/// This is the key of the delta-plan memo: two sides that differ only in
/// variable / query names — including sides of *distinct* DCQs, like the `Q_G5`
/// family's shared positive side — map to one entry, so their counting views
/// share one [`CqDeltaPlans`] and therefore resolve to the same shared indexes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CqShapeKey {
    head: Vec<u32>,
    atoms: Vec<(String, Vec<u32>)>,
    output: Vec<u32>,
}

impl CqShapeKey {
    /// Canonicalize a CQ (and the output order its counting state materializes)
    /// into its shape key.
    pub fn of(cq: &ConjunctiveQuery, output: &Schema) -> Self {
        let mut ids: FastHashMap<String, u32> = FastHashMap::default();
        let mut id_of = |name: &str| -> u32 {
            if let Some(&id) = ids.get(name) {
                return id;
            }
            let id = ids.len() as u32;
            ids.insert(name.to_string(), id);
            id
        };
        let head = cq.head.iter().map(|v| id_of(v.name())).collect();
        let atoms = cq
            .atoms
            .iter()
            .map(|a| {
                (
                    a.relation.clone(),
                    a.vars.iter().map(|v| id_of(v.name())).collect(),
                )
            })
            .collect();
        let output = output.attrs().iter().map(|v| id_of(v.name())).collect();
        CqShapeKey {
            head,
            atoms,
            output,
        }
    }
}

/// A memoized preparation: the dichotomy classification plus the strategies both
/// planners derive from it.
#[derive(Clone, Debug)]
pub struct CachedPlan {
    /// The dichotomy classification (computed once per shape).
    pub classification: DcqClassification,
    /// The one-shot evaluation strategy (Table 1).
    pub strategy: Strategy,
    /// The maintenance strategy (difference-linear → rerun, hard → counting).
    pub incremental: IncrementalStrategy,
}

/// Hit/miss counters of a [`PlanCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Preparations served from the cache (no classification performed).
    pub hits: u64,
    /// Preparations that had to classify from scratch.
    pub misses: u64,
    /// Shapes currently cached.
    pub entries: usize,
    /// Delta-plan requests served from the sub-plan memo (no plan built).
    pub delta_plan_hits: u64,
    /// Delta-plan requests that had to build from scratch.
    pub delta_plan_misses: u64,
    /// CQ shapes currently in the sub-plan memo.
    pub delta_plan_entries: usize,
}

/// A memo table from [`QueryShapeKey`] to [`CachedPlan`].
///
/// The cache is planner-independent: strategy selection depends only on the
/// classification, never on the planner's single-CQ evaluator, so one cache can
/// back any number of planners.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: FastHashMap<QueryShapeKey, CachedPlan>,
    hits: u64,
    misses: u64,
    /// Sub-plan memo: α-canonical CQ shape → delta-join plans.  Shared via `Arc`
    /// so `N` counting views of one shape hold one plan object.
    delta_plans: FastHashMap<CqShapeKey, Arc<CqDeltaPlans>>,
    delta_hits: u64,
    delta_misses: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The cached plan for this DCQ's shape, classifying (and caching) on a miss.
    /// The boolean is `true` on a hit.
    pub fn get_or_classify(&mut self, dcq: &Dcq) -> (CachedPlan, bool) {
        let key = QueryShapeKey::of(dcq);
        if let Some(plan) = self.entries.get(&key) {
            self.hits += 1;
            return (plan.clone(), true);
        }
        self.misses += 1;
        let classification = classify(dcq);
        let plan = CachedPlan {
            strategy: DcqPlanner::strategy_for(&classification),
            incremental: DcqPlanner::incremental_strategy_for(&classification),
            classification,
        };
        self.entries.insert(key, plan.clone());
        (plan, false)
    }

    /// A one-shot [`DcqPlan`] through the cache; the boolean is `true` on a hit.
    pub fn plan(&mut self, dcq: &Dcq) -> (DcqPlan, bool) {
        let (cached, hit) = self.get_or_classify(dcq);
        (
            DcqPlan {
                strategy: cached.strategy,
                classification: cached.classification,
            },
            hit,
        )
    }

    /// An [`IncrementalPlan`] through the cache; the boolean is `true` on a hit.
    pub fn plan_incremental(&mut self, dcq: &Dcq) -> (IncrementalPlan, bool) {
        let (cached, hit) = self.get_or_classify(dcq);
        (
            IncrementalPlan {
                strategy: cached.incremental,
                classification: cached.classification,
            },
            hit,
        )
    }

    /// The delta-join plans for `cq`'s shape (producing output tuples in the
    /// attribute order of `output`), building and memoizing on a miss.  The
    /// boolean is `true` on a hit.
    ///
    /// Hits return a clone of one shared `Arc`: counting views of α-equivalent
    /// sides — of the same **or different** DCQs — share a single plan object,
    /// and through its index specs, the same shared-store indexes.
    pub fn delta_plans(
        &mut self,
        cq: &ConjunctiveQuery,
        output: &Schema,
    ) -> (Arc<CqDeltaPlans>, bool) {
        let key = CqShapeKey::of(cq, output);
        if let Some(plans) = self.delta_plans.get(&key) {
            self.delta_hits += 1;
            return (Arc::clone(plans), true);
        }
        self.delta_misses += 1;
        let plans = Arc::new(build_delta_plans(cq, output));
        self.delta_plans.insert(key, Arc::clone(&plans));
        (plans, false)
    }

    /// Hit/miss counters and current size.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
            delta_plan_hits: self.delta_hits,
            delta_plan_misses: self.delta_misses,
            delta_plan_entries: self.delta_plans.len(),
        }
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry, including memoized delta plans (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.delta_plans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dcq;

    const EASY: &str = "Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)";
    const HARD: &str = "Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)";

    #[test]
    fn identical_queries_share_a_key_and_hit() {
        let mut cache = PlanCache::new();
        let dcq = parse_dcq(EASY).unwrap();
        let (first, hit) = cache.plan_incremental(&dcq);
        assert!(!hit);
        let (second, hit) = cache.plan_incremental(&parse_dcq(EASY).unwrap());
        assert!(hit);
        assert_eq!(first.strategy, second.strategy);
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 1,
                misses: 1,
                entries: 1,
                ..PlanCacheStats::default()
            }
        );
    }

    #[test]
    fn delta_plans_are_shared_across_distinct_dcq_shapes() {
        let mut cache = PlanCache::new();
        // Two *distinct* DCQs of the Q_G5 family: different closers, but the
        // positive sides are α-equivalent.
        let a = parse_dcq(
            "V0(n1, n2, n3) :- Graph(n1, n2), Graph(n2, n3) EXCEPT Graph(n2, n3), Graph(n3, n1)",
        )
        .unwrap();
        let b =
            parse_dcq("V1(a, b, c) :- Graph(a, b), Graph(b, c) EXCEPT Graph(b, c), Graph(a, c)")
                .unwrap();
        let (p1, hit1) = cache.delta_plans(&a.q1, &a.q1.head_schema());
        assert!(!hit1);
        let (p2, hit2) = cache.delta_plans(&b.q1, &b.q1.head_schema());
        assert!(hit2, "shared positive side must hit the sub-plan memo");
        assert!(Arc::ptr_eq(&p1, &p2), "hits share one plan object");
        // The negative sides differ in shape → separate entries.
        let (_, hit3) = cache.delta_plans(&a.q2, &a.q2.head_schema());
        assert!(!hit3);
        let (_, hit4) = cache.delta_plans(&b.q2, &b.q2.head_schema());
        assert!(!hit4);
        let stats = cache.stats();
        assert_eq!(stats.delta_plan_hits, 1);
        assert_eq!(stats.delta_plan_misses, 3);
        assert_eq!(stats.delta_plan_entries, 3);
        // A different output permutation of the same side is a different plan.
        let reordered = Schema::from_names(["n3", "n2", "n1"]);
        let (_, hit5) = cache.delta_plans(&a.q1, &reordered);
        assert!(!hit5, "output order is part of the sub-plan shape");
        cache.clear();
        assert_eq!(cache.stats().delta_plan_entries, 0);
    }

    #[test]
    fn alpha_equivalent_queries_share_a_key() {
        let mut cache = PlanCache::new();
        cache.get_or_classify(&parse_dcq(HARD).unwrap());
        let renamed = parse_dcq("P(u, w) :- Edge(u, w) EXCEPT Graph(u, v), Graph(v, w)").unwrap();
        let (_, hit) = cache.get_or_classify(&renamed);
        assert!(hit, "α-renamed query must reuse the cached classification");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_shapes_get_different_entries() {
        let mut cache = PlanCache::new();
        cache.get_or_classify(&parse_dcq(EASY).unwrap());
        let (_, hit) = cache.get_or_classify(&parse_dcq(HARD).unwrap());
        assert!(!hit);
        // Same relations, different variable wiring → different shape.
        let rewired = parse_dcq("Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(c, b)").unwrap();
        let (_, hit) = cache.get_or_classify(&rewired);
        assert!(!hit);
        assert_eq!(cache.len(), 3);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn cached_strategies_agree_with_the_planner() {
        let mut cache = PlanCache::new();
        let planner = DcqPlanner::smart();
        for src in [EASY, HARD] {
            let dcq = parse_dcq(src).unwrap();
            let (cached_plan, _) = cache.plan(&dcq);
            assert_eq!(cached_plan.strategy, planner.plan(&dcq).strategy);
            let (cached_inc, _) = cache.plan_incremental(&dcq);
            assert_eq!(cached_inc.strategy, planner.plan_incremental(&dcq).strategy);
        }
    }
}
