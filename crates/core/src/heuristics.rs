//! Heuristics for hard DCQs (§4.2).
//!
//! When a DCQ is not difference-linear a linear-time algorithm is impossible
//! (Theorem 2.4), but the baseline can still be beaten by exploiting the fact that
//! `Q₁ − Q₂ = Q₁ − (Q₁ ∩ Q₂)`:
//!
//! * [`probe_heuristic`] (Theorem 4.8 / Corollary 2.5) — materialize `Q₁`, then for
//!   every result decide the Boolean residual query `Q₂∅` obtained by substituting
//!   the output values into `Q₂`.  When `Q₂` is linear-reducible the residual check
//!   is a constant number of hash probes, giving the `O(cost(Q₁))` bound of
//!   Corollary 2.5; otherwise each probe solves a constant-size Boolean CQ over the
//!   matching tuples.
//! * [`intersection_heuristic`] (Theorem 4.10) — materialize `Q₁`, add it to `Q₂`'s
//!   body as an extra relation over `y` (the query `Q₂⊕`), evaluate that
//!   intersection query with the best available CQ algorithm, and subtract.

use crate::baseline::{evaluate_cq, CqStrategy};
use crate::error::DcqError;
use crate::query::Dcq;
use crate::Result;
use dcq_exec::{free_connex_evaluate, generic_join, reduce, ExecError};
use dcq_hypergraph::is_linear_reducible;
use dcq_storage::{Attr, HashIndex, Relation, Schema};
use dcq_storage::{Database, Row};

/// Outcome of a heuristic evaluation, with the intermediate sizes that determine the
/// complexity bounds of Table 1.
#[derive(Clone, Debug)]
pub struct HeuristicOutcome {
    /// The DCQ result.
    pub result: Relation,
    /// `|Q₁(D₁)|` — the number of candidate tuples probed.
    pub out1: usize,
    /// Number of candidates that were found in `Q₂` (i.e. `|Q₁ ∩ Q₂|`).
    pub intersected: usize,
}

/// Theorem 4.8 / Corollary 2.5: evaluate `Q₁`, then filter its results by probing
/// `Q₂` tuple by tuple.
///
/// `strategy` chooses the evaluator for `Q₁` (the `cost(Q₁)` term).
pub fn probe_heuristic(dcq: &Dcq, db: &Database, strategy: CqStrategy) -> Result<HeuristicOutcome> {
    let head = dcq.head_schema();
    let q1_result = evaluate_cq(&dcq.q1, db, strategy)?;
    let q2_atoms = dcq.q2.bind(db)?;
    let q2_head = dcq.q2.head_schema();

    // Fast path (Corollary 2.5): Q2 linear-reducible ⇒ reduce it to a full join over
    // y and check membership edge by edge with hash indexes.
    let q2_edges = dcq.q2.edges();
    if is_linear_reducible(&dcq.q2.head_set(), &q2_edges) {
        let reduced = reduce(&q2_head, &q2_atoms).map_err(DcqError::from)?;
        let probes: Vec<(Vec<usize>, dcq_storage::FastHashSet<Row>)> = reduced
            .relations
            .iter()
            .map(|rel| {
                let positions = head
                    .positions_of(rel.schema().attrs())
                    .expect("reduced relations only mention output attributes");
                (positions, rel.to_row_set())
            })
            .collect();
        let mut out = Relation::new("probe_heuristic", head.clone());
        let mut intersected = 0usize;
        for row in q1_result.iter() {
            let in_q2 = probes
                .iter()
                .all(|(positions, set)| set.contains(&row.project(positions)));
            if in_q2 {
                intersected += 1;
            } else {
                out.push_unchecked(row.clone());
            }
        }
        out.assume_distinct();
        return Ok(HeuristicOutcome {
            out1: q1_result.len(),
            intersected,
            result: out,
        });
    }

    // General path (Theorem 4.8): per tuple, solve the Boolean residual query Q2∅.
    // Index every Q2 atom by its output attributes once, then backtrack over the
    // matching tuples' non-output attributes.
    let probe_indexes: Vec<ProbeAtom> = q2_atoms
        .iter()
        .map(|rel| ProbeAtom::new(rel, &head))
        .collect::<Result<_>>()?;
    let mut out = Relation::new("probe_heuristic", head.clone());
    let mut intersected = 0usize;
    for row in q1_result.iter() {
        if residual_is_satisfiable(&probe_indexes, row) {
            intersected += 1;
        } else {
            out.push_unchecked(row.clone());
        }
    }
    out.assume_distinct();
    Ok(HeuristicOutcome {
        out1: q1_result.len(),
        intersected,
        result: out,
    })
}

/// A `Q₂` atom prepared for per-tuple probing: indexed by its output attributes,
/// with the non-output attributes kept for the residual Boolean check.
struct ProbeAtom {
    index: HashIndex,
    /// Positions (in the DCQ head) of this atom's output attributes.
    head_positions: Vec<usize>,
    /// The atom's rows (indexed by `index`).
    rows: Vec<Row>,
    /// Positions (in the atom's schema) of its non-output attributes.
    residual_positions: Vec<usize>,
    /// The non-output attributes themselves.
    residual_attrs: Vec<Attr>,
}

impl ProbeAtom {
    fn new(rel: &Relation, head: &Schema) -> Result<Self> {
        let output_attrs: Vec<Attr> = rel
            .schema()
            .iter()
            .filter(|a| head.contains(a))
            .cloned()
            .collect();
        let residual_attrs: Vec<Attr> = rel
            .schema()
            .iter()
            .filter(|a| !head.contains(a))
            .cloned()
            .collect();
        let index = HashIndex::build(rel, &output_attrs).map_err(DcqError::from)?;
        let head_positions = output_attrs
            .iter()
            .map(|a| head.position(a).expect("output attr is in head"))
            .collect();
        let residual_positions = rel
            .schema()
            .positions_of(&residual_attrs)
            .expect("residual attrs come from the schema");
        Ok(ProbeAtom {
            index,
            head_positions,
            rows: rel.rows().to_vec(),
            residual_positions,
            residual_attrs,
        })
    }

    /// The rows of this atom compatible with the candidate output tuple, projected
    /// onto the non-output attributes.
    fn residual_rows(&self, candidate: &Row) -> Vec<Row> {
        let key = candidate.project(&self.head_positions);
        self.index
            .get(&key)
            .iter()
            .map(|&i| self.rows[i].project(&self.residual_positions))
            .collect()
    }
}

/// Decide whether the Boolean residual query (all `Q₂` atoms with output attributes
/// bound to `candidate`) has a satisfying assignment of the non-output attributes.
fn residual_is_satisfiable(atoms: &[ProbeAtom], candidate: &Row) -> bool {
    // Collect per-atom candidate rows; an atom with no compatible row refutes Q₂.
    let mut residuals: Vec<(Vec<Attr>, Vec<Row>)> = Vec::with_capacity(atoms.len());
    for atom in atoms {
        let rows = atom.residual_rows(candidate);
        if rows.is_empty() {
            return false;
        }
        residuals.push((atom.residual_attrs.clone(), rows));
    }
    // Backtracking existence check over the residual atoms (constant query size).
    let mut binding: Vec<(Attr, dcq_storage::Value)> = Vec::new();
    exists_assignment(&residuals, 0, &mut binding)
}

fn exists_assignment(
    residuals: &[(Vec<Attr>, Vec<Row>)],
    next: usize,
    binding: &mut Vec<(Attr, dcq_storage::Value)>,
) -> bool {
    if next == residuals.len() {
        return true;
    }
    let (attrs, rows) = &residuals[next];
    'rows: for row in rows {
        // Check consistency with the current binding and record new bindings.
        let mut added = 0usize;
        for (attr, value) in attrs.iter().zip(row.iter()) {
            match binding.iter().find(|(a, _)| a == attr) {
                Some((_, bound)) if bound != value => {
                    for _ in 0..added {
                        binding.pop();
                    }
                    continue 'rows;
                }
                Some(_) => {}
                None => {
                    binding.push((attr.clone(), value.clone()));
                    added += 1;
                }
            }
        }
        if exists_assignment(residuals, next + 1, binding) {
            return true;
        }
        for _ in 0..added {
            binding.pop();
        }
    }
    false
}

/// Theorem 4.10: evaluate the intersection query `Q₂⊕ = (y, V₂, {y} ∪ E₂)` — `Q₂`
/// with the materialized `Q₁` result added as an extra relation over the output
/// attributes — and subtract it from `Q₁`.
pub fn intersection_heuristic(
    dcq: &Dcq,
    db: &Database,
    strategy: CqStrategy,
) -> Result<HeuristicOutcome> {
    let head = dcq.head_schema();
    let q1_result = evaluate_cq(&dcq.q1, db, strategy)?;
    let out1 = q1_result.len();

    // Build Q2⊕'s atom list: Q2's atoms plus the Q1 result as a relation over y.
    let mut atoms = dcq.q2.bind(db)?;
    let mut q1_atom = q1_result.clone();
    q1_atom.set_name("Q1_result");
    atoms.push(q1_atom);

    // Evaluate π_y(Q2⊕) with the best applicable algorithm.
    let intersection = match free_connex_evaluate(&head, &atoms) {
        Ok(rel) => rel,
        Err(ExecError::NotLinearReducible { .. }) | Err(ExecError::NotAcyclic { .. }) => {
            generic_join(&head, &atoms).map_err(DcqError::from)?
        }
        Err(other) => return Err(other.into()),
    };

    let mut result = q1_result.minus(&intersection)?;
    result.set_name("intersection_heuristic");
    Ok(HeuristicOutcome {
        out1,
        intersected: intersection.len(),
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::baseline_dcq;
    use crate::parse::parse_dcq;
    use dcq_storage::row::int_row;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![
                vec![1, 2],
                vec![2, 3],
                vec![3, 1],
                vec![3, 4],
                vec![4, 5],
                vec![5, 3],
                vec![2, 4],
                vec![4, 1],
            ],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Edge",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![1, 3], vec![4, 5], vec![9, 9]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Node",
            &["id"],
            (1..=6).map(|i| vec![i]).collect::<Vec<_>>(),
        ))
        .unwrap();
        db
    }

    fn check_both_heuristics(src: &str) {
        let dcq = parse_dcq(src).unwrap();
        let db = db();
        let expected = baseline_dcq(&dcq, &db, CqStrategy::Vanilla).unwrap();
        let probe = probe_heuristic(&dcq, &db, CqStrategy::Smart).unwrap();
        let inter = intersection_heuristic(&dcq, &db, CqStrategy::Smart).unwrap();
        assert_eq!(
            probe.result.sorted_rows(),
            expected.sorted_rows(),
            "probe heuristic disagrees on {src}"
        );
        assert_eq!(
            inter.result.sorted_rows(),
            expected.sorted_rows(),
            "intersection heuristic disagrees on {src}"
        );
        assert_eq!(probe.out1, inter.out1);
    }

    #[test]
    fn corollary_2_5_fast_path_on_linear_reducible_q2() {
        // Q2 is a (linear-reducible) triangle over the output attributes.
        check_both_heuristics(
            "Q(a, b, c) :- Graph(a, b), Graph(b, c) EXCEPT Edge(a, b), Edge(b, c), Edge(a, c)",
        );
    }

    #[test]
    fn lemma_4_3_hard_core() {
        // R1(x1,x3) − π_{x1,x3}(R2(x1,x2) ⋈ R3(x2,x3)): Q2 non-linear-reducible, so
        // the probe heuristic exercises the general Theorem 4.8 path.
        check_both_heuristics("Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)");
    }

    #[test]
    fn lemma_4_4_hard_core() {
        // R1(x1) − π_{x1}(triangle through x1).
        check_both_heuristics("Q(a) :- Node(a) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)");
    }

    #[test]
    fn example_4_11_edges_not_in_any_triangle() {
        check_both_heuristics("Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c), Graph(a, c)");
    }

    #[test]
    fn hard_case_3_lemma_4_6() {
        // Q1 = path, Q2 closes the triangle: difference-linear fails on the augmented
        // edge but both heuristics still apply.
        check_both_heuristics(
            "Q(a, b, c) :- Graph(a, b), Graph(b, c) EXCEPT Edge(a, c), Edge(b, c)",
        );
    }

    #[test]
    fn probe_outcome_counts_are_consistent() {
        let dcq = parse_dcq(
            "Q(a, b, c) :- Graph(a, b), Graph(b, c) EXCEPT Edge(a, b), Edge(b, c), Edge(a, c)",
        )
        .unwrap();
        let db = db();
        let outcome = probe_heuristic(&dcq, &db, CqStrategy::Smart).unwrap();
        assert_eq!(outcome.out1, outcome.result.len() + outcome.intersected);
    }

    #[test]
    fn q1_with_non_output_attribute_probes_correctly() {
        // Q1 projects away b; Q2 hides a non-linear-reducible pattern.
        check_both_heuristics(
            "Q(a, c) :- Graph(a, b), Graph(b, c), Node(c) EXCEPT Graph(a, d), Graph(d, c)",
        );
    }

    #[test]
    fn explicit_small_instance() {
        // Edges of `Edge` that do not participate in a Graph length-2 path a→b→c.
        let dcq = parse_dcq("Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)").unwrap();
        let db = db();
        let outcome = probe_heuristic(&dcq, &db, CqStrategy::Smart).unwrap();
        // Graph length-2 pairs include (1,3) via 2, (2,4) via 3, (2,1) via 3… ;
        // Edge tuples (1,3) is reachable, (1,2),(2,3) are not length-2 endpoints
        // unless a path exists: 1→?→2? no; 2→?→3? no (2→3 direct only, 2→4→? no 4→3).
        // (4,5): 4→?→5? 4→1→2,4→5 direct only — not a 2-path endpoint pair; (9,9): no.
        assert_eq!(
            outcome.result.sorted_rows(),
            vec![
                int_row([1, 2]),
                int_row([2, 3]),
                int_row([4, 5]),
                int_row([9, 9])
            ]
        );
    }
}
