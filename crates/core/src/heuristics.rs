//! Heuristics for hard DCQs (§4.2).
//!
//! When a DCQ is not difference-linear a linear-time algorithm is impossible
//! (Theorem 2.4), but the baseline can still be beaten by exploiting the fact that
//! `Q₁ − Q₂ = Q₁ − (Q₁ ∩ Q₂)`:
//!
//! * [`probe_heuristic`] (Theorem 4.8 / Corollary 2.5) — materialize `Q₁`, then for
//!   every result decide the Boolean residual query `Q₂∅` obtained by substituting
//!   the output values into `Q₂`.  When `Q₂` is linear-reducible the residual check
//!   is a constant number of hash probes, giving the `O(cost(Q₁))` bound of
//!   Corollary 2.5; otherwise each probe solves a constant-size Boolean CQ over the
//!   matching tuples.
//! * [`intersection_heuristic`] (Theorem 4.10) — materialize `Q₁`, add it to `Q₂`'s
//!   body as an extra relation over `y` (the query `Q₂⊕`), evaluate that
//!   intersection query with the best available CQ algorithm, and subtract.

use crate::baseline::{evaluate_cq, CqStrategy};
use crate::error::DcqError;
use crate::planner::IncrementalStrategy;
use crate::query::Dcq;
use crate::Result;
use dcq_exec::{free_connex_evaluate, generic_join, reduce, ExecError};
use dcq_hypergraph::is_linear_reducible;
use dcq_storage::{Attr, HashIndex, Relation, Schema};
use dcq_storage::{Database, Row};

/// Outcome of a heuristic evaluation, with the intermediate sizes that determine the
/// complexity bounds of Table 1.
#[derive(Clone, Debug)]
pub struct HeuristicOutcome {
    /// The DCQ result.
    pub result: Relation,
    /// `|Q₁(D₁)|` — the number of candidate tuples probed.
    pub out1: usize,
    /// Number of candidates that were found in `Q₂` (i.e. `|Q₁ ∩ Q₂|`).
    pub intersected: usize,
}

/// Theorem 4.8 / Corollary 2.5: evaluate `Q₁`, then filter its results by probing
/// `Q₂` tuple by tuple.
///
/// `strategy` chooses the evaluator for `Q₁` (the `cost(Q₁)` term).
pub fn probe_heuristic(dcq: &Dcq, db: &Database, strategy: CqStrategy) -> Result<HeuristicOutcome> {
    let head = dcq.head_schema();
    let q1_result = evaluate_cq(&dcq.q1, db, strategy)?;
    let q2_atoms = dcq.q2.bind(db)?;
    let q2_head = dcq.q2.head_schema();

    // Fast path (Corollary 2.5): Q2 linear-reducible ⇒ reduce it to a full join over
    // y and check membership edge by edge with hash indexes.
    let q2_edges = dcq.q2.edges();
    if is_linear_reducible(&dcq.q2.head_set(), &q2_edges) {
        let reduced = reduce(&q2_head, &q2_atoms).map_err(DcqError::from)?;
        let probes: Vec<(Vec<usize>, dcq_storage::FastHashSet<Row>)> = reduced
            .relations
            .iter()
            .map(|rel| {
                let positions = head
                    .positions_of(rel.schema().attrs())
                    .expect("reduced relations only mention output attributes");
                (positions, rel.to_row_set())
            })
            .collect();
        let mut out = Relation::new("probe_heuristic", head.clone());
        let mut intersected = 0usize;
        for row in q1_result.iter() {
            let in_q2 = probes
                .iter()
                .all(|(positions, set)| set.contains(&row.project(positions)));
            if in_q2 {
                intersected += 1;
            } else {
                out.push_unchecked(row.clone());
            }
        }
        out.assume_distinct();
        return Ok(HeuristicOutcome {
            out1: q1_result.len(),
            intersected,
            result: out,
        });
    }

    // General path (Theorem 4.8): per tuple, solve the Boolean residual query Q2∅.
    // Index every Q2 atom by its output attributes once, then backtrack over the
    // matching tuples' non-output attributes.
    let probe_indexes: Vec<ProbeAtom> = q2_atoms
        .iter()
        .map(|rel| ProbeAtom::new(rel, &head))
        .collect::<Result<_>>()?;
    let mut out = Relation::new("probe_heuristic", head.clone());
    let mut intersected = 0usize;
    for row in q1_result.iter() {
        if residual_is_satisfiable(&probe_indexes, row) {
            intersected += 1;
        } else {
            out.push_unchecked(row.clone());
        }
    }
    out.assume_distinct();
    Ok(HeuristicOutcome {
        out1: q1_result.len(),
        intersected,
        result: out,
    })
}

/// A `Q₂` atom prepared for per-tuple probing: indexed by its output attributes,
/// with the non-output attributes kept for the residual Boolean check.
struct ProbeAtom {
    index: HashIndex,
    /// Positions (in the DCQ head) of this atom's output attributes.
    head_positions: Vec<usize>,
    /// The atom's rows (indexed by `index`).
    rows: Vec<Row>,
    /// Positions (in the atom's schema) of its non-output attributes.
    residual_positions: Vec<usize>,
    /// The non-output attributes themselves.
    residual_attrs: Vec<Attr>,
}

impl ProbeAtom {
    fn new(rel: &Relation, head: &Schema) -> Result<Self> {
        let output_attrs: Vec<Attr> = rel
            .schema()
            .iter()
            .filter(|a| head.contains(a))
            .cloned()
            .collect();
        let residual_attrs: Vec<Attr> = rel
            .schema()
            .iter()
            .filter(|a| !head.contains(a))
            .cloned()
            .collect();
        let index = HashIndex::build(rel, &output_attrs).map_err(DcqError::from)?;
        let head_positions = output_attrs
            .iter()
            .map(|a| head.position(a).expect("output attr is in head"))
            .collect();
        let residual_positions = rel
            .schema()
            .positions_of(&residual_attrs)
            .expect("residual attrs come from the schema");
        Ok(ProbeAtom {
            index,
            head_positions,
            rows: rel.rows().to_vec(),
            residual_positions,
            residual_attrs,
        })
    }

    /// The rows of this atom compatible with the candidate output tuple, projected
    /// onto the non-output attributes.
    fn residual_rows(&self, candidate: &Row) -> Vec<Row> {
        let key = candidate.project(&self.head_positions);
        self.index
            .get(&key)
            .iter()
            .map(|&i| self.rows[i].project(&self.residual_positions))
            .collect()
    }
}

/// Decide whether the Boolean residual query (all `Q₂` atoms with output attributes
/// bound to `candidate`) has a satisfying assignment of the non-output attributes.
fn residual_is_satisfiable(atoms: &[ProbeAtom], candidate: &Row) -> bool {
    // Collect per-atom candidate rows; an atom with no compatible row refutes Q₂.
    let mut residuals: Vec<(Vec<Attr>, Vec<Row>)> = Vec::with_capacity(atoms.len());
    for atom in atoms {
        let rows = atom.residual_rows(candidate);
        if rows.is_empty() {
            return false;
        }
        residuals.push((atom.residual_attrs.clone(), rows));
    }
    // Backtracking existence check over the residual atoms (constant query size).
    let mut binding: Vec<(Attr, dcq_storage::Value)> = Vec::new();
    exists_assignment(&residuals, 0, &mut binding)
}

fn exists_assignment(
    residuals: &[(Vec<Attr>, Vec<Row>)],
    next: usize,
    binding: &mut Vec<(Attr, dcq_storage::Value)>,
) -> bool {
    if next == residuals.len() {
        return true;
    }
    let (attrs, rows) = &residuals[next];
    'rows: for row in rows {
        // Check consistency with the current binding and record new bindings.
        let mut added = 0usize;
        for (attr, value) in attrs.iter().zip(row.iter()) {
            match binding.iter().find(|(a, _)| a == attr) {
                Some((_, bound)) if bound != value => {
                    for _ in 0..added {
                        binding.pop();
                    }
                    continue 'rows;
                }
                Some(_) => {}
                None => {
                    binding.push((attr.clone(), value.clone()));
                    added += 1;
                }
            }
        }
        if exists_assignment(residuals, next + 1, binding) {
            return true;
        }
        for _ in 0..added {
            binding.pop();
        }
    }
    false
}

/// Theorem 4.10: evaluate the intersection query `Q₂⊕ = (y, V₂, {y} ∪ E₂)` — `Q₂`
/// with the materialized `Q₁` result added as an extra relation over the output
/// attributes — and subtract it from `Q₁`.
pub fn intersection_heuristic(
    dcq: &Dcq,
    db: &Database,
    strategy: CqStrategy,
) -> Result<HeuristicOutcome> {
    let head = dcq.head_schema();
    let q1_result = evaluate_cq(&dcq.q1, db, strategy)?;
    let out1 = q1_result.len();

    // Build Q2⊕'s atom list: Q2's atoms plus the Q1 result as a relation over y.
    let mut atoms = dcq.q2.bind(db)?;
    let mut q1_atom = q1_result.clone();
    q1_atom.set_name("Q1_result");
    atoms.push(q1_atom);

    // Evaluate π_y(Q2⊕) with the best applicable algorithm.
    let intersection = match free_connex_evaluate(&head, &atoms) {
        Ok(rel) => rel,
        Err(ExecError::NotLinearReducible { .. }) | Err(ExecError::NotAcyclic { .. }) => {
            generic_join(&head, &atoms).map_err(DcqError::from)?
        }
        Err(other) => return Err(other.into()),
    };

    let mut result = q1_result.minus(&intersection)?;
    result.set_name("intersection_heuristic");
    Ok(HeuristicOutcome {
        out1,
        intersected: intersection.len(),
        result,
    })
}

// ---------------------------------------------------------------------------
// Adaptive maintenance: per-view batch statistics and the rerun/counting
// cost model
// ---------------------------------------------------------------------------

/// The clock a maintenance cost sample was taken on.
///
/// Under a sequential fan-out the two clocks agree, but once per-view
/// maintenance runs on a worker pool, wall time charges a view for everything
/// its core did while the view waited — other views sharing the worker, lock
/// waits on pooled counting sides, scheduler preemption.  Feeding wall time
/// into the EWMA would make each view's cost estimate a function of *how many
/// other views exist*, not of its own work, and the adaptive crossover
/// decisions would drift with engine load.  Per-thread CPU time
/// ([`thread_cpu_time_ns`]) charges exactly the cycles the view's own
/// maintenance burned, so the samples stay comparable across worker counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CostClock {
    /// Wall-clock duration (the only clock available off-Linux): accurate when
    /// maintenance runs alone on a thread, inflated under contention.
    #[default]
    Wall,
    /// Per-thread CPU time: immune to preemption, lock waits and co-scheduled
    /// work, hence the clock of record under parallel fan-out.
    ThreadCpu,
}

/// Monotonic CPU time consumed by the **calling thread**, in nanoseconds, or
/// `None` where the platform offers no such clock.
///
/// This is the sampling primitive behind [`CostClock::ThreadCpu`]: two calls
/// bracketing a unit of work measure the cycles that work burned on this
/// thread, regardless of how often the scheduler parked it or how many sibling
/// workers were running.  On Linux this reads `CLOCK_THREAD_CPUTIME_ID` (a
/// vDSO call, ~20 ns — cheap enough to sample per view per batch).
pub fn thread_cpu_time_ns() -> Option<u64> {
    // 64-bit Linux only: the hand-declared Timespec below matches glibc/musl's
    // `struct timespec` exactly there (two 64-bit fields).  On 32-bit Linux
    // `time_t`/`long` are 32-bit (pre-time64 ABIs), so the same declaration
    // would read garbage — those targets take the wall-clock fallback instead
    // of risking a silently wrong clock.
    #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
    {
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
        }
        const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid, exclusively borrowed out-pointer whose
        // layout matches `struct timespec` on 64-bit Linux (enforced by the
        // cfg above), and the thread-CPU clock id is always supported there.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        (rc == 0).then(|| ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64)
    }
    #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
    {
        None
    }
}

/// Index of an *active* engine kind into [`BatchStats`]' per-kind arrays.
///
/// Only the two concrete maintenance engines have running costs;
/// [`IncrementalStrategy::Adaptive`] is a policy over them, never an active
/// kind.
fn kind_slot(kind: IncrementalStrategy) -> usize {
    match kind {
        IncrementalStrategy::EasyRerun => 0,
        IncrementalStrategy::Counting => 1,
        IncrementalStrategy::Adaptive => {
            unreachable!("Adaptive is a policy, not an active engine kind")
        }
    }
}

/// Per-view statistics of the update stream a maintained view observes, the
/// input of [`MaintenanceCostModel::decide`].
///
/// Tracks an exponentially weighted moving average (EWMA) of the *effective*
/// batch size relative to the store size — the quantity the rerun/counting
/// crossover is expressed in — plus EWMA per-batch maintenance cost samples for
/// both engine kinds, so a calibrator (or an operator reading
/// `DcqEngine::batch_stats`) can see the measured cost of each arm the view has
/// actually run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchStats {
    /// EWMA of `|Δ_effective| / N` over applied (non-skipped) batches.
    pub ewma_delta_fraction: f64,
    /// Applied (non-skipped) batches observed since registration.
    pub observed: usize,
    /// Applied batches since the last migration (the warm-up gate of
    /// [`MaintenanceCostModel::min_observations`]); equal to `observed` until
    /// the first migration.
    pub since_migration: usize,
    /// EWMA per-batch maintenance cost in nanoseconds, indexed
    /// `[EasyRerun, Counting]`; `0.0` until the first sample of that kind.
    ///
    /// Attribution caveat for pool-shared counting sides: the first sharing
    /// view to fold a batch pays for the whole fold, later sharers get the
    /// memoized per-epoch delta — so across views sharing a side, one EWMA
    /// over-reads and the others under-read.  Per-view delta-fraction
    /// tracking (what migration decisions use) is unaffected.
    pub ewma_cost_ns: [f64; 2],
    /// Cost samples folded per engine kind, indexed `[EasyRerun, Counting]`.
    pub cost_samples: [usize; 2],
    /// The clock the cost samples were taken on.  Engines sample
    /// [`CostClock::ThreadCpu`] wherever the platform offers it, so the EWMAs
    /// stay comparable across sequential and parallel fan-out; mixing clocks
    /// within one view is flagged by the last writer winning here.
    pub cost_clock: CostClock,
}

impl BatchStats {
    /// EWMA smoothing factor: the last ~8 batches dominate, so a workload shift
    /// is picked up quickly without flapping on one outlier batch.
    pub const ALPHA: f64 = 0.25;

    /// Fold one applied batch's effective delta fraction into the EWMA.
    pub fn observe(&mut self, delta_fraction: f64) {
        let f = delta_fraction.clamp(0.0, 1.0);
        if self.observed == 0 {
            self.ewma_delta_fraction = f;
        } else {
            self.ewma_delta_fraction += Self::ALPHA * (f - self.ewma_delta_fraction);
        }
        self.observed += 1;
        self.since_migration += 1;
    }

    /// Record that the view migrated: the warm-up gate re-arms, so the next
    /// migration again requires
    /// [`min_observations`](MaintenanceCostModel::min_observations) fresh
    /// batches (the EWMAs persist across migrations).
    pub fn note_migration(&mut self) {
        self.since_migration = 0;
    }

    /// Fold one per-batch maintenance cost sample for the engine kind that was
    /// active while the batch was applied, noting which clock produced it
    /// (per-thread CPU time under parallel fan-out, wall time as the
    /// fallback — see [`CostClock`] for why the distinction matters).
    pub fn observe_cost(&mut self, active: IncrementalStrategy, nanos: f64, clock: CostClock) {
        self.cost_clock = clock;
        let slot = kind_slot(active);
        if self.cost_samples[slot] == 0 {
            self.ewma_cost_ns[slot] = nanos;
        } else {
            self.ewma_cost_ns[slot] += Self::ALPHA * (nanos - self.ewma_cost_ns[slot]);
        }
        self.cost_samples[slot] += 1;
    }

    /// The EWMA per-batch cost of `kind`, `None` until a sample exists.
    pub fn cost_estimate(&self, kind: IncrementalStrategy) -> Option<f64> {
        let slot = kind_slot(kind);
        (self.cost_samples[slot] > 0).then(|| self.ewma_cost_ns[slot])
    }
}

/// One point of a rerun-vs-counting calibration sweep: the measured per-batch
/// cost of both maintenance arms at one delta fraction (arbitrary but
/// consistent cost units — wall-clock nanoseconds in practice).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrossoverSample {
    /// Effective batch size relative to the store size (`|Δ| / N`).
    pub delta_fraction: f64,
    /// Per-batch cost of touched-side rerun maintenance at this delta size.
    pub rerun_cost: f64,
    /// Per-batch cost of counting maintenance at this delta size.
    pub counting_cost: f64,
}

/// The calibratable cost model behind [`IncrementalStrategy::Adaptive`]:
/// *where* does counting maintenance (cost ∝ `|Δ|`) stop beating touched-side
/// rerun (cost ∝ `N + OUT`, flat in `|Δ|`)?
///
/// The paper's dichotomy answers structurally; this model answers dynamically,
/// in the spirit of the update-driven cost trade-offs of Berkholz et al.: below
/// [`crossover_fraction`](MaintenanceCostModel::crossover_fraction) trickle
/// deltas favor counting, above it bulk deltas favor a rerun.  The default
/// crossover is conservative; `cargo run --release --example calibrate`
/// measures the host's actual crossover and prints a fitted model to plug into
/// `DcqEngine::set_cost_model`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaintenanceCostModel {
    /// Delta fraction (`|Δ| / N`) above which a touched-side rerun is predicted
    /// to beat counting maintenance.
    pub crossover_fraction: f64,
    /// Relative hysteresis band around the crossover: migration to rerun
    /// requires the EWMA fraction to exceed `crossover · (1 + hysteresis)`,
    /// migration back requires it to drop below `crossover · (1 − hysteresis)`,
    /// so a workload sitting exactly on the crossover never flaps.
    pub hysteresis: f64,
    /// Applied batches a view must observe before its first migration (and
    /// after every migration), so one unusual batch cannot trigger a flip.
    pub min_observations: usize,
    /// The delta fraction an adaptive view is assumed to see **before** its
    /// first batch: its initial engine kind is
    /// [`preferred`](MaintenanceCostModel::preferred)`(initial_delta_fraction)`.
    /// Incremental-maintenance services overwhelmingly serve trickle updates,
    /// so the default prior (1%) starts adaptive views on counting; a view
    /// whose observed stream disagrees migrates once the EWMA crosses the
    /// band.  Starting on the likely-right kind matters beyond the first few
    /// batches: long-lived maintenance state built *mid-stream* (after another
    /// engine's evaluations churned the allocator) probes measurably slower
    /// than state built at registration, so avoidable early migrations are
    /// worth avoiding.
    pub initial_delta_fraction: f64,
}

impl Default for MaintenanceCostModel {
    /// The conservative host-independent default: crossover at 30% delta, ±25%
    /// hysteresis, 3 observed batches before any flip, and a 1% trickle-update
    /// prior for the initial engine kind.
    ///
    /// Hosts measured so far fit *higher* crossovers still (~60% for the hard
    /// `Q_G5` shape on the flat interned layout with id-space head deltas —
    /// counting still beat rerun ~3× at a 30% delta fraction in the last
    /// calibration sweep); the shipped default stays below the fits so an
    /// **uncalibrated** engine only leaves counting under clearly bulk
    /// workloads, where rerun's flat cost is safe on any host.  The pre-flat
    /// default was much lower (8%, then 15%) for two reasons the flat layout
    /// removed: boxed-row probes made counting itself slower (the fitted
    /// crossover was ~24% before the fold and the view combine went id-space
    /// end to end), and migrating *into* counting mid-stream carried a 30–40%
    /// probe penalty (boxed rows scattered by allocator churn) that flat id
    /// buckets erased (re-measured at ±a few percent, i.e. noise), so a wrong
    /// early rerun choice is now cheap to undo.  Run `cargo run --release
    /// --example calibrate` for a tight host-fitted crossover.
    fn default() -> Self {
        MaintenanceCostModel {
            crossover_fraction: 0.30,
            hysteresis: 0.25,
            min_observations: 3,
            initial_delta_fraction: 0.01,
        }
    }
}

impl MaintenanceCostModel {
    /// A model with an explicitly calibrated crossover and default
    /// hysteresis/warm-up.
    pub fn with_crossover(crossover_fraction: f64) -> Self {
        MaintenanceCostModel {
            crossover_fraction: crossover_fraction.max(f64::MIN_POSITIVE),
            ..MaintenanceCostModel::default()
        }
    }

    /// The engine kind this model predicts to be cheaper at a given delta
    /// fraction, hysteresis aside.
    pub fn preferred(&self, delta_fraction: f64) -> IncrementalStrategy {
        if delta_fraction > self.crossover_fraction {
            IncrementalStrategy::EasyRerun
        } else {
            IncrementalStrategy::Counting
        }
    }

    /// The engine kind an adaptive view starts on: the preferred kind at the
    /// model's workload prior
    /// ([`initial_delta_fraction`](MaintenanceCostModel::initial_delta_fraction)).
    pub fn initial_kind(&self) -> IncrementalStrategy {
        self.preferred(self.initial_delta_fraction)
    }

    /// The migration decision for a view currently running `active`: `Some`
    /// target kind when the observed EWMA delta fraction has crossed the
    /// hysteresis band and enough batches have been seen, `None` to stay put.
    pub fn decide(
        &self,
        active: IncrementalStrategy,
        stats: &BatchStats,
    ) -> Option<IncrementalStrategy> {
        if stats.since_migration < self.min_observations {
            return None;
        }
        let f = stats.ewma_delta_fraction;
        match active {
            IncrementalStrategy::Counting
                if f > self.crossover_fraction * (1.0 + self.hysteresis) =>
            {
                Some(IncrementalStrategy::EasyRerun)
            }
            IncrementalStrategy::EasyRerun
                if f < self.crossover_fraction * (1.0 - self.hysteresis) =>
            {
                Some(IncrementalStrategy::Counting)
            }
            _ => None,
        }
    }

    /// Fit the crossover from a measured sweep (the `calibrate` example's job):
    /// find the adjacent pair of samples where the cheaper arm flips from
    /// counting to rerun and log-interpolate the crossing point of the cost
    /// ratio between them.
    ///
    /// Degenerate sweeps still calibrate: if counting wins everywhere the
    /// crossover is placed just above the largest swept fraction, if rerun wins
    /// everywhere just below the smallest, so the resulting policy is "always
    /// counting" / "always rerun" over the measured range.  Returns `None` only
    /// for an empty or non-positive sweep.
    pub fn from_crossover_samples(samples: &[CrossoverSample]) -> Option<Self> {
        let mut sweep: Vec<CrossoverSample> = samples
            .iter()
            .copied()
            .filter(|s| {
                s.delta_fraction > 0.0
                    && s.rerun_cost.is_finite()
                    && s.counting_cost.is_finite()
                    && s.rerun_cost > 0.0
                    && s.counting_cost > 0.0
            })
            .collect();
        if sweep.is_empty() {
            return None;
        }
        sweep.sort_by(|a, b| a.delta_fraction.total_cmp(&b.delta_fraction));
        // log(counting / rerun): negative where counting wins, positive where
        // rerun wins; the crossover is its zero crossing.
        let ratio = |s: &CrossoverSample| (s.counting_cost / s.rerun_cost).ln();
        let crossing = sweep.windows(2).find(|w| {
            let (lo, hi) = (ratio(&w[0]), ratio(&w[1]));
            lo <= 0.0 && hi > 0.0
        });
        let crossover = match crossing {
            Some(w) => {
                let (lo, hi) = (ratio(&w[0]), ratio(&w[1]));
                let t = if (hi - lo).abs() < f64::EPSILON {
                    0.5
                } else {
                    -lo / (hi - lo)
                };
                let (f_lo, f_hi) = (w[0].delta_fraction.ln(), w[1].delta_fraction.ln());
                (f_lo + t * (f_hi - f_lo)).exp()
            }
            None if ratio(&sweep[0]) > 0.0 => {
                // Rerun already wins at the smallest swept fraction.
                sweep[0].delta_fraction * 0.5
            }
            None => {
                // Counting still wins at the largest swept fraction.
                sweep[sweep.len() - 1].delta_fraction * 2.0
            }
        };
        Some(MaintenanceCostModel::with_crossover(crossover))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::baseline_dcq;
    use crate::parse::parse_dcq;
    use dcq_storage::row::int_row;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![
                vec![1, 2],
                vec![2, 3],
                vec![3, 1],
                vec![3, 4],
                vec![4, 5],
                vec![5, 3],
                vec![2, 4],
                vec![4, 1],
            ],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Edge",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![1, 3], vec![4, 5], vec![9, 9]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Node",
            &["id"],
            (1..=6).map(|i| vec![i]).collect::<Vec<_>>(),
        ))
        .unwrap();
        db
    }

    fn check_both_heuristics(src: &str) {
        let dcq = parse_dcq(src).unwrap();
        let db = db();
        let expected = baseline_dcq(&dcq, &db, CqStrategy::Vanilla).unwrap();
        let probe = probe_heuristic(&dcq, &db, CqStrategy::Smart).unwrap();
        let inter = intersection_heuristic(&dcq, &db, CqStrategy::Smart).unwrap();
        assert_eq!(
            probe.result.sorted_rows(),
            expected.sorted_rows(),
            "probe heuristic disagrees on {src}"
        );
        assert_eq!(
            inter.result.sorted_rows(),
            expected.sorted_rows(),
            "intersection heuristic disagrees on {src}"
        );
        assert_eq!(probe.out1, inter.out1);
    }

    #[test]
    fn corollary_2_5_fast_path_on_linear_reducible_q2() {
        // Q2 is a (linear-reducible) triangle over the output attributes.
        check_both_heuristics(
            "Q(a, b, c) :- Graph(a, b), Graph(b, c) EXCEPT Edge(a, b), Edge(b, c), Edge(a, c)",
        );
    }

    #[test]
    fn lemma_4_3_hard_core() {
        // R1(x1,x3) − π_{x1,x3}(R2(x1,x2) ⋈ R3(x2,x3)): Q2 non-linear-reducible, so
        // the probe heuristic exercises the general Theorem 4.8 path.
        check_both_heuristics("Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)");
    }

    #[test]
    fn lemma_4_4_hard_core() {
        // R1(x1) − π_{x1}(triangle through x1).
        check_both_heuristics("Q(a) :- Node(a) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)");
    }

    #[test]
    fn example_4_11_edges_not_in_any_triangle() {
        check_both_heuristics("Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c), Graph(a, c)");
    }

    #[test]
    fn hard_case_3_lemma_4_6() {
        // Q1 = path, Q2 closes the triangle: difference-linear fails on the augmented
        // edge but both heuristics still apply.
        check_both_heuristics(
            "Q(a, b, c) :- Graph(a, b), Graph(b, c) EXCEPT Edge(a, c), Edge(b, c)",
        );
    }

    #[test]
    fn probe_outcome_counts_are_consistent() {
        let dcq = parse_dcq(
            "Q(a, b, c) :- Graph(a, b), Graph(b, c) EXCEPT Edge(a, b), Edge(b, c), Edge(a, c)",
        )
        .unwrap();
        let db = db();
        let outcome = probe_heuristic(&dcq, &db, CqStrategy::Smart).unwrap();
        assert_eq!(outcome.out1, outcome.result.len() + outcome.intersected);
    }

    #[test]
    fn q1_with_non_output_attribute_probes_correctly() {
        // Q1 projects away b; Q2 hides a non-linear-reducible pattern.
        check_both_heuristics(
            "Q(a, c) :- Graph(a, b), Graph(b, c), Node(c) EXCEPT Graph(a, d), Graph(d, c)",
        );
    }

    #[test]
    fn batch_stats_track_ewma_and_per_kind_costs() {
        let mut stats = BatchStats::default();
        assert_eq!(stats.cost_estimate(IncrementalStrategy::Counting), None);
        stats.observe(0.2);
        assert_eq!(
            stats.ewma_delta_fraction, 0.2,
            "first sample seeds the EWMA"
        );
        stats.observe(0.0);
        assert!(stats.ewma_delta_fraction < 0.2 && stats.ewma_delta_fraction > 0.0);
        assert_eq!(stats.observed, 2);
        stats.observe(5.0); // clamped
        assert!(stats.ewma_delta_fraction <= 1.0);

        assert_eq!(stats.cost_clock, CostClock::Wall, "default clock");
        stats.observe_cost(IncrementalStrategy::Counting, 1000.0, CostClock::ThreadCpu);
        stats.observe_cost(IncrementalStrategy::Counting, 2000.0, CostClock::ThreadCpu);
        stats.observe_cost(IncrementalStrategy::EasyRerun, 500.0, CostClock::ThreadCpu);
        let counting = stats.cost_estimate(IncrementalStrategy::Counting).unwrap();
        assert!(counting > 1000.0 && counting < 2000.0);
        assert_eq!(
            stats.cost_estimate(IncrementalStrategy::EasyRerun),
            Some(500.0)
        );
        assert_eq!(stats.cost_samples, [1, 2]);
        assert_eq!(stats.cost_clock, CostClock::ThreadCpu);
    }

    /// The regression gate behind the parallel fan-out's cost sampling: time a
    /// view's maintenance spends *blocked* (on a pooled side's lock, on the
    /// scheduler, here simulated by a sleep) must not be charged as cost, or
    /// the adaptive EWMAs would scale with engine load instead of view work.
    #[test]
    fn thread_cpu_time_excludes_blocked_time() {
        let Some(cpu_start) = thread_cpu_time_ns() else {
            // Platform without a thread CPU clock: engines fall back to wall
            // time (CostClock::Wall) and nothing is asserted here.
            return;
        };
        let wall_start = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(60));
        // Burn a little actual CPU so the clock provably advances.
        let mut acc = 0u64;
        for i in 0..200_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        assert_ne!(acc, 1, "keep the busy loop observable");
        let cpu_ns = thread_cpu_time_ns().unwrap().saturating_sub(cpu_start);
        let wall_ns = wall_start.elapsed().as_nanos() as u64;
        assert!(wall_ns >= 60_000_000, "the sleep really blocked");
        assert!(cpu_ns > 0, "the busy loop really burned CPU");
        assert!(
            cpu_ns < wall_ns / 2,
            "blocked time leaked into the CPU clock: cpu {cpu_ns} ns vs wall {wall_ns} ns"
        );
    }

    #[test]
    fn cost_model_decisions_respect_hysteresis_and_warmup() {
        let model = MaintenanceCostModel::default();
        assert_eq!(
            model.preferred(0.01),
            IncrementalStrategy::Counting,
            "trickle deltas prefer counting"
        );
        assert_eq!(
            model.preferred(0.45),
            IncrementalStrategy::EasyRerun,
            "bulk deltas prefer rerun"
        );
        assert_eq!(
            model.initial_kind(),
            IncrementalStrategy::Counting,
            "the default trickle prior starts adaptive views on counting"
        );
        assert_eq!(
            MaintenanceCostModel {
                initial_delta_fraction: 0.5,
                ..model
            }
            .initial_kind(),
            IncrementalStrategy::EasyRerun
        );

        // Too few observations: no migration regardless of the fraction.
        let mut stats = BatchStats::default();
        stats.observe(0.5);
        assert_eq!(model.decide(IncrementalStrategy::Counting, &stats), None);
        stats.observe(0.5);
        stats.observe(0.5);
        assert_eq!(
            model.decide(IncrementalStrategy::Counting, &stats),
            Some(IncrementalStrategy::EasyRerun)
        );
        // Already on the preferred side: stay put.
        assert_eq!(model.decide(IncrementalStrategy::EasyRerun, &stats), None);
        // A migration re-arms the warm-up gate.
        stats.note_migration();
        assert_eq!(model.decide(IncrementalStrategy::Counting, &stats), None);
        for _ in 0..model.min_observations {
            stats.observe(0.5);
        }
        assert_eq!(
            model.decide(IncrementalStrategy::Counting, &stats),
            Some(IncrementalStrategy::EasyRerun)
        );

        // Inside the hysteresis band nothing migrates in either direction.
        let mut band = BatchStats::default();
        for _ in 0..8 {
            band.observe(model.crossover_fraction);
        }
        assert_eq!(model.decide(IncrementalStrategy::Counting, &band), None);
        assert_eq!(model.decide(IncrementalStrategy::EasyRerun, &band), None);

        // Well below the band: a rerun view migrates back to counting.
        let mut tiny = BatchStats::default();
        for _ in 0..8 {
            tiny.observe(0.001);
        }
        assert_eq!(
            model.decide(IncrementalStrategy::EasyRerun, &tiny),
            Some(IncrementalStrategy::Counting)
        );
    }

    #[test]
    fn crossover_fits_from_sweep_samples() {
        // Counting cost grows linearly with the delta, rerun is flat: the
        // synthetic crossover sits at 0.1.
        let sweep: Vec<CrossoverSample> = [0.001, 0.01, 0.05, 0.2, 0.4]
            .iter()
            .map(|&f| CrossoverSample {
                delta_fraction: f,
                rerun_cost: 100.0,
                counting_cost: 1000.0 * f,
            })
            .collect();
        let model = MaintenanceCostModel::from_crossover_samples(&sweep).unwrap();
        assert!(
            (model.crossover_fraction - 0.1).abs() < 0.02,
            "fitted crossover {} should sit near the synthetic 0.1",
            model.crossover_fraction
        );

        // Counting wins everywhere → crossover above the sweep.
        let counting_always: Vec<CrossoverSample> = sweep
            .iter()
            .map(|s| CrossoverSample {
                counting_cost: s.rerun_cost * 0.1,
                ..*s
            })
            .collect();
        let model = MaintenanceCostModel::from_crossover_samples(&counting_always).unwrap();
        assert!(model.crossover_fraction > 0.4);

        // Rerun wins everywhere → crossover below the sweep.
        let rerun_always: Vec<CrossoverSample> = sweep
            .iter()
            .map(|s| CrossoverSample {
                counting_cost: s.rerun_cost * 10.0,
                ..*s
            })
            .collect();
        let model = MaintenanceCostModel::from_crossover_samples(&rerun_always).unwrap();
        assert!(model.crossover_fraction < 0.001);

        assert_eq!(MaintenanceCostModel::from_crossover_samples(&[]), None);
    }

    #[test]
    fn explicit_small_instance() {
        // Edges of `Edge` that do not participate in a Graph length-2 path a→b→c.
        let dcq = parse_dcq("Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)").unwrap();
        let db = db();
        let outcome = probe_heuristic(&dcq, &db, CqStrategy::Smart).unwrap();
        // Graph length-2 pairs include (1,3) via 2, (2,4) via 3, (2,1) via 3… ;
        // Edge tuples (1,3) is reachable, (1,2),(2,3) are not length-2 endpoints
        // unless a path exists: 1→?→2? no; 2→?→3? no (2→3 direct only, 2→4→? no 4→3).
        // (4,5): 4→?→5? 4→1→2,4→5 direct only — not a 2-path endpoint pair; (9,9): no.
        assert_eq!(
            outcome.result.sorted_rows(),
            vec![
                int_row([1, 2]),
                int_row([2, 3]),
                int_row([4, 5]),
                int_row([9, 9])
            ]
        );
    }
}
