//! Aggregation over annotated relations (§5.3).
//!
//! Every tuple of the input relations carries an annotation from a commutative ring
//! `(S, ⊕, ⊗)`; the annotation of a join result is the `⊗`-product of its parts and
//! a `GROUP BY y′` aggregate `⊕`-sums the annotations of each group.  On top of a
//! DCQ the paper distinguishes two semantics:
//!
//! * **Relational difference** — a tuple belongs to `Q₁ − Q₂` iff it is produced by
//!   `Q₁` and not by `Q₂`; its annotation is its `Q₁` annotation, and the aggregate
//!   groups the surviving tuples by `y′`.
//! * **Numerical difference** (Theorem 5.2) — every tuple produced by either query
//!   carries annotation `w₁(t) − w₂(t)`; the aggregate over `y′` is then simply the
//!   numerical difference of the two per-side aggregates, each computable in
//!   `O(N + OUT)` when `(y′, Vᵢ, Eᵢ)` is free-connex.  This captures e.g. TPC-H Q16.

use crate::error::DcqError;
use crate::planner::DcqPlanner;
use crate::query::{Atom, ConjunctiveQuery, Dcq};
use crate::Result;
use dcq_exec::annotated_yannakakis;
use dcq_storage::{AnnotatedRelation, Attr, Database, Ring, Schema, Semiring};
use std::collections::BTreeMap;

/// A database whose relations carry annotations from `A`.
#[derive(Clone, Default)]
pub struct AnnotatedDatabase<A: Semiring> {
    relations: BTreeMap<String, AnnotatedRelation<A>>,
}

impl<A: Semiring> AnnotatedDatabase<A> {
    /// Create an empty annotated database.
    pub fn new() -> Self {
        AnnotatedDatabase {
            relations: BTreeMap::new(),
        }
    }

    /// Annotate every tuple of a plain database with `1` (duplicates accumulate).
    pub fn from_database(db: &Database) -> Self {
        let mut out = AnnotatedDatabase::new();
        for (name, rel) in db.iter() {
            out.relations
                .insert(name.clone(), AnnotatedRelation::from_relation(rel));
        }
        out
    }

    /// Register (or replace) an annotated relation under its own name.
    pub fn add(&mut self, relation: AnnotatedRelation<A>) {
        self.relations.insert(relation.name().to_string(), relation);
    }

    /// Look up a relation by name.
    pub fn get(&self, name: &str) -> Result<&AnnotatedRelation<A>> {
        self.relations.get(name).ok_or_else(|| {
            DcqError::Storage(dcq_storage::StorageError::UnknownRelation(name.into()))
        })
    }

    /// Total number of annotated tuples — the input size `N`.
    pub fn input_size(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Forget the annotations, keeping the supports as a plain [`Database`].
    pub fn to_database(&self) -> Database {
        let mut db = Database::new();
        for rel in self.relations.values() {
            db.add_or_replace(rel.to_relation());
        }
        db
    }

    /// Bind an atom: fetch the annotated relation, apply equality filters for
    /// repeated variables, and re-label the columns with the atom's variables.
    pub fn bind_atom(&self, atom: &Atom) -> Result<AnnotatedRelation<A>> {
        let stored = self.get(&atom.relation)?;
        if stored.schema().arity() != atom.vars.len() {
            return Err(DcqError::AtomArityMismatch {
                relation: atom.relation.clone(),
                expected: stored.schema().arity(),
                actual: atom.vars.len(),
            });
        }
        let mut distinct_vars: Vec<Attr> = Vec::new();
        let mut keep_positions: Vec<usize> = Vec::new();
        let mut equalities: Vec<(usize, usize)> = Vec::new();
        for (pos, var) in atom.vars.iter().enumerate() {
            match atom.vars[..pos].iter().position(|v| v == var) {
                Some(first) => equalities.push((first, pos)),
                None => {
                    distinct_vars.push(var.clone());
                    keep_positions.push(pos);
                }
            }
        }
        let mut out = AnnotatedRelation::new(atom.relation.clone(), Schema::new(distinct_vars));
        for (row, a) in stored.iter() {
            if equalities.iter().all(|&(x, y)| row.get(x) == row.get(y)) {
                out.combine(row.project(&keep_positions), a.clone());
            }
        }
        Ok(out)
    }

    /// Bind every atom of a CQ.
    pub fn bind_cq(&self, cq: &ConjunctiveQuery) -> Result<Vec<AnnotatedRelation<A>>> {
        cq.atoms.iter().map(|a| self.bind_atom(a)).collect()
    }
}

/// Evaluate the annotated aggregate `π^⊕_{group_by}(Q)` of a single CQ in
/// `O(N + OUT)` time; requires `(group_by, V, E)` to be free-connex.
pub fn aggregate_cq<A: Semiring>(
    cq: &ConjunctiveQuery,
    adb: &AnnotatedDatabase<A>,
    group_by: &[Attr],
) -> Result<AnnotatedRelation<A>> {
    let atoms = adb.bind_cq(cq)?;
    let head = Schema::new(group_by.to_vec());
    Ok(annotated_yannakakis(&head, &atoms)?)
}

/// Relational-difference aggregation: group the tuples of `Q₁ − Q₂` by `group_by`
/// and `⊕`-sum their `Q₁` annotations.
///
/// The DCQ result set is computed with the planner's optimized strategy; the
/// `Q₁`-annotations are computed with the annotated Yannakakis algorithm (requires
/// `Q₁` free-connex, the same condition its set-semantics evaluation needs).
pub fn relational_difference_aggregate<A: Semiring>(
    dcq: &Dcq,
    adb: &AnnotatedDatabase<A>,
    group_by: &[Attr],
) -> Result<AnnotatedRelation<A>> {
    let db = adb.to_database();
    let survivors = DcqPlanner::smart().execute(dcq, &db)?;
    // Annotations of Q1's results over the full output attributes y.
    let q1_atoms = adb.bind_cq(&dcq.q1)?;
    let head = dcq.head_schema();
    let annotated_q1 = annotated_yannakakis(&head, &q1_atoms)?;
    // Keep only the survivors, then group by y'.
    let mut filtered = AnnotatedRelation::<A>::new("relational_difference", head.clone());
    for row in survivors.iter() {
        let a = annotated_q1.annotation(row);
        if !a.is_zero() {
            filtered.combine(row.clone(), a);
        }
    }
    Ok(filtered.project(group_by)?)
}

/// Numerical-difference aggregation (Theorem 5.2): `π^⊕_{y′}Q₁ ⊖ π^⊕_{y′}Q₂`,
/// computed as two annotated free-connex aggregates followed by an annotation-level
/// subtraction.  Tuples whose difference is `0` are dropped.
pub fn numerical_difference_aggregate<A: Ring>(
    dcq: &Dcq,
    adb: &AnnotatedDatabase<A>,
    group_by: &[Attr],
) -> Result<AnnotatedRelation<A>> {
    let agg1 = aggregate_cq(&dcq.q1, adb, group_by)?;
    let agg2 = aggregate_cq(&dcq.q2, adb, group_by)?;
    let mut out =
        AnnotatedRelation::<A>::new("numerical_difference", Schema::new(group_by.to_vec()));
    for (row, w1) in agg1.iter() {
        out.combine(row.clone(), w1.clone());
    }
    for (row, w2) in agg2.iter() {
        out.combine(row.clone(), w2.neg());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dcq;
    use dcq_storage::row::int_row;

    /// The Figure 3 instance of the paper (annotations are the tuple multiplicities).
    fn figure3_adb() -> AnnotatedDatabase<i64> {
        let mut adb = AnnotatedDatabase::new();
        let mut r1 = AnnotatedRelation::new("R1", Schema::from_names(["x1", "x2"]));
        for (row, w) in [([1, 10], 1i64), ([2, 10], 2), ([2, 20], 2)] {
            r1.combine(int_row(row), w);
        }
        let mut r2 = AnnotatedRelation::new("R2", Schema::from_names(["x2", "x3"]));
        for (row, w) in [([10, 100], 1i64), ([20, 100], 2), ([20, 200], 1)] {
            r2.combine(int_row(row), w);
        }
        let mut r3 = AnnotatedRelation::new("R3", Schema::from_names(["x1", "x2"]));
        for (row, w) in [([2, 10], 1i64), ([2, 20], 2), ([3, 20], 1)] {
            r3.combine(int_row(row), w);
        }
        let mut r4 = AnnotatedRelation::new("R4", Schema::from_names(["x2", "x3"]));
        for (row, w) in [([10, 100], 1i64), ([20, 100], 3), ([20, 200], 1)] {
            r4.combine(int_row(row), w);
        }
        adb.add(r1);
        adb.add(r2);
        adb.add(r3);
        adb.add(r4);
        adb
    }

    fn example_5_3_dcq() -> Dcq {
        parse_dcq("Q(x1, x2, x3) :- R1(x1, x2), R2(x2, x3) EXCEPT R3(x1, x2), R4(x2, x3)").unwrap()
    }

    #[test]
    fn aggregate_cq_counts_join_results() {
        let adb = figure3_adb();
        let dcq = example_5_3_dcq();
        let agg = aggregate_cq(&dcq.q1, &adb, &[Attr::new("x1")]).unwrap();
        // Q1 annotations: x1=1: 1·1=1; x1=2: (2·1)+(2·2)+(2·1)=2+4+2=8.
        assert_eq!(agg.annotation(&int_row([1])), 1);
        assert_eq!(agg.annotation(&int_row([2])), 8);
    }

    #[test]
    fn relational_difference_groups_surviving_tuples() {
        // π_{x1} with SUM over the relational difference: only tuples of Q1 that are
        // not produced by Q2 keep their Q1 annotation.
        let adb = figure3_adb();
        let dcq = example_5_3_dcq();
        let agg = relational_difference_aggregate(&dcq, &adb, &[Attr::new("x1")]).unwrap();
        // Q1 support: (1,10,100), (2,10,100), (2,20,100), (2,20,200).
        // Q2 support: (2,10,100), (2,20,100), (2,20,200), (3,20,100), (3,20,200).
        // Survivors: (1,10,100) with w1 = 1.
        assert_eq!(agg.annotation(&int_row([1])), 1);
        assert!(!agg.contains(&int_row([2])));
    }

    #[test]
    fn numerical_difference_subtracts_aggregates() {
        let adb = figure3_adb();
        let dcq = example_5_3_dcq();
        let agg = numerical_difference_aggregate(&dcq, &adb, &[Attr::new("x1")]).unwrap();
        // w1 per x1: {1: 1, 2: 8}; w2 per x1: {2: (1·1)+(2·3)+(2·1)=9, 3: 3+1=4}… wait:
        // Q2 x1=2: (2,10)·(10,100)=1·1=1, (2,20)·(20,100)=2·3=6, (2,20)·(20,200)=2·1=2 → 9.
        // Q2 x1=3: (3,20)·(20,100)=1·3=3, (3,20)·(20,200)=1·1=1 → 4.
        // Numerical difference: {1: 1, 2: 8-9=-1, 3: 0-4=-4}.
        assert_eq!(agg.annotation(&int_row([1])), 1);
        assert_eq!(agg.annotation(&int_row([2])), -1);
        assert_eq!(agg.annotation(&int_row([3])), -4);
    }

    #[test]
    fn annotated_database_roundtrip_and_binding() {
        let mut db = Database::new();
        db.add(dcq_storage::Relation::from_int_rows(
            "R",
            &["a", "b"],
            vec![vec![1, 1], vec![1, 2], vec![1, 2]],
        ))
        .unwrap();
        let adb: AnnotatedDatabase<i64> = AnnotatedDatabase::from_database(&db);
        assert_eq!(adb.input_size(), 2);
        assert_eq!(adb.get("R").unwrap().annotation(&int_row([1, 2])), 2);
        assert!(adb.get("Missing").is_err());
        let plain = adb.to_database();
        assert_eq!(plain.get("R").unwrap().len(), 2);

        // Binding with a repeated variable keeps only the diagonal.
        let bound = adb.bind_atom(&Atom::new("R", &["x", "x"])).unwrap();
        assert_eq!(bound.len(), 1);
        assert_eq!(bound.annotation(&int_row([1])), 1);
        assert!(adb.bind_atom(&Atom::new("R", &["x"])).is_err());
    }

    #[test]
    fn numerical_difference_requires_free_connex_group_by() {
        // Grouping by the two endpoints of a path query is not free-connex.
        let adb = figure3_adb();
        let dcq = example_5_3_dcq();
        let result =
            numerical_difference_aggregate(&dcq, &adb, &[Attr::new("x1"), Attr::new("x3")]);
        assert!(result.is_err());
    }
}
