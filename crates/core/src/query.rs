//! Conjunctive queries and their differences.
//!
//! A [`ConjunctiveQuery`] is the triple `(y, V, E)` of the paper: a list of output
//! variables `y`, and a body of [`Atom`]s, each naming a stored relation and listing
//! the query variables it binds (positionally).  A [`Dcq`] is a pair of CQs with the
//! same output variables, representing `Q₁ − Q₂`.
//!
//! Binding a query against a [`Database`] re-labels each stored relation with the
//! atom's variable names (and filters for repeated variables within an atom), which
//! is the representation all the executors in `dcq-exec` work on.

use crate::error::DcqError;
use crate::Result;
use dcq_hypergraph::{AttrSet, CqShape, Hypergraph};
use dcq_storage::{Attr, Database, Relation, Schema};
use std::fmt;

/// One atom `R(v₁, …, v_k)` of a conjunctive query body.
#[derive(Clone, PartialEq, Eq)]
pub struct Atom {
    /// Name of the stored relation this atom scans.
    pub relation: String,
    /// The query variables bound by the atom, positionally aligned with the stored
    /// relation's columns.  Repeating a variable expresses an equality filter.
    pub vars: Vec<Attr>,
}

impl Atom {
    /// Create an atom from a relation name and variable names.
    pub fn new(relation: impl Into<String>, vars: &[&str]) -> Self {
        Atom {
            relation: relation.into(),
            vars: vars.iter().map(|v| Attr::new(*v)).collect(),
        }
    }

    /// The distinct variables of the atom (its hyperedge).
    pub fn attr_set(&self) -> AttrSet {
        AttrSet::new(self.vars.iter().cloned())
    }

    /// Bind the atom against a database: fetch the stored relation, apply the
    /// equality filters induced by repeated variables, and re-label the columns with
    /// the atom's (distinct) variables.
    pub fn bind(&self, db: &Database) -> Result<Relation> {
        let stored = db.get(&self.relation)?;
        if stored.schema().arity() != self.vars.len() {
            return Err(DcqError::AtomArityMismatch {
                relation: self.relation.clone(),
                expected: stored.schema().arity(),
                actual: self.vars.len(),
            });
        }
        // Positions of the first occurrence of each distinct variable.
        let mut distinct_vars: Vec<Attr> = Vec::new();
        let mut keep_positions: Vec<usize> = Vec::new();
        // (earlier position, later position) pairs that must be equal.
        let mut equalities: Vec<(usize, usize)> = Vec::new();
        for (pos, var) in self.vars.iter().enumerate() {
            match self.vars[..pos].iter().position(|v| v == var) {
                Some(first) => equalities.push((first, pos)),
                None => {
                    distinct_vars.push(var.clone());
                    keep_positions.push(pos);
                }
            }
        }
        let schema = Schema::new(distinct_vars);
        let mut out = Relation::new(self.relation.clone(), schema);
        out.reserve(stored.len());
        for row in stored.iter() {
            if equalities.iter().all(|&(a, b)| row.get(a) == row.get(b)) {
                out.push_unchecked(row.project(&keep_positions));
            }
        }
        Ok(out)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A conjunctive query `(y, V, E)` without self-joins: output variables plus a body
/// of atoms.
#[derive(Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Query name (used in explanations and plans).
    pub name: String,
    /// The output variables `y`, in output order.
    pub head: Vec<Attr>,
    /// The body atoms.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Create a CQ from a name, output variable names and atoms.
    pub fn new(name: impl Into<String>, head: &[&str], atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery {
            name: name.into(),
            head: head.iter().map(|v| Attr::new(*v)).collect(),
            atoms,
        }
    }

    /// The output schema `y` (in output order).
    pub fn head_schema(&self) -> Schema {
        Schema::new(self.head.clone())
    }

    /// The output variables as a set.
    pub fn head_set(&self) -> AttrSet {
        AttrSet::new(self.head.iter().cloned())
    }

    /// The hyperedges of the body (one per atom, duplicates within an atom removed).
    pub fn edges(&self) -> Vec<AttrSet> {
        self.atoms.iter().map(|a| a.attr_set()).collect()
    }

    /// The body hypergraph `(V, E)`.
    pub fn hypergraph(&self) -> Hypergraph {
        Hypergraph::new(self.edges())
    }

    /// All variables `V` of the query.
    pub fn variables(&self) -> AttrSet {
        self.hypergraph().vertices()
    }

    /// `true` iff the query is full (`y = V`).
    pub fn is_full(&self) -> bool {
        self.head_set() == self.variables()
    }

    /// The structural shape (α-acyclic / free-connex / linear-reducible / full).
    pub fn shape(&self) -> CqShape {
        CqShape::of(&self.head_set(), &self.edges())
    }

    /// Check well-formedness against a database: atoms reference existing relations
    /// with the right arity and every head variable occurs in some atom.
    pub fn validate(&self, db: &Database) -> Result<()> {
        for atom in &self.atoms {
            let stored = db.get(&atom.relation)?;
            if stored.schema().arity() != atom.vars.len() {
                return Err(DcqError::AtomArityMismatch {
                    relation: atom.relation.clone(),
                    expected: stored.schema().arity(),
                    actual: atom.vars.len(),
                });
            }
        }
        for v in &self.head {
            if !self.atoms.iter().any(|a| a.vars.contains(v)) {
                return Err(DcqError::UnboundHeadVariable(v.name().to_string()));
            }
        }
        Ok(())
    }

    /// Bind every atom against the database, yielding variable-schema relations in
    /// atom order (the input format of the `dcq-exec` evaluators).
    pub fn bind(&self, db: &Database) -> Result<Vec<Relation>> {
        self.validate(db)?;
        self.atoms.iter().map(|a| a.bind(db)).collect()
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The difference of two conjunctive queries `Q₁ − Q₂` (§2.1).
#[derive(Clone, Debug)]
pub struct Dcq {
    /// The positive side `Q₁`.
    pub q1: ConjunctiveQuery,
    /// The negative side `Q₂`.
    pub q2: ConjunctiveQuery,
}

impl Dcq {
    /// Create a DCQ, verifying that the two CQs share the same output attribute set.
    ///
    /// The output order of `Q₁` is used for the result.
    pub fn new(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> Result<Self> {
        if q1.head_set() != q2.head_set() {
            return Err(DcqError::MismatchedHeads {
                left: format!("{}", q1.head_schema()),
                right: format!("{}", q2.head_schema()),
            });
        }
        Ok(Dcq { q1, q2 })
    }

    /// The common output schema (in `Q₁`'s order).
    pub fn head_schema(&self) -> Schema {
        self.q1.head_schema()
    }

    /// Validate both sides against the database.
    pub fn validate(&self, db: &Database) -> Result<()> {
        self.q1.validate(db)?;
        self.q2.validate(db)
    }
}

impl fmt::Display for Dcq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}  −  {:?}", self.q1, self.q2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_storage::row::int_row;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![3, 3], vec![3, 1]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Triple",
            &["a", "b", "c"],
            vec![vec![1, 2, 3], vec![2, 3, 1]],
        ))
        .unwrap();
        db
    }

    #[test]
    fn atom_binding_relabels_columns() {
        let atom = Atom::new("Graph", &["node1", "node2"]);
        let rel = atom.bind(&db()).unwrap();
        assert_eq!(rel.schema(), &Schema::from_names(["node1", "node2"]));
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn atom_binding_with_repeated_variable_filters_diagonal() {
        // Graph(x, x): self-loops only.
        let atom = Atom::new("Graph", &["x", "x"]);
        let rel = atom.bind(&db()).unwrap();
        assert_eq!(rel.schema(), &Schema::from_names(["x"]));
        assert_eq!(rel.sorted_rows(), vec![int_row([3])]);
    }

    #[test]
    fn atom_arity_mismatch_detected() {
        let atom = Atom::new("Graph", &["a", "b", "c"]);
        assert!(matches!(
            atom.bind(&db()),
            Err(DcqError::AtomArityMismatch { .. })
        ));
    }

    #[test]
    fn cq_accessors_and_shape() {
        // Q_G3's Q2: triangle through the Graph relation (conceptually a self-join,
        // which we model by binding the same stored relation three times).
        let q = ConjunctiveQuery::new(
            "Triangles",
            &["n1", "n2", "n3"],
            vec![
                Atom::new("Graph", &["n1", "n2"]),
                Atom::new("Graph", &["n2", "n3"]),
                Atom::new("Graph", &["n3", "n1"]),
            ],
        );
        assert!(q.is_full());
        let shape = q.shape();
        assert!(!shape.alpha_acyclic);
        assert!(shape.linear_reducible);
        assert_eq!(q.variables().len(), 3);
        assert_eq!(q.edges().len(), 3);
        q.validate(&db()).unwrap();
        let bound = q.bind(&db()).unwrap();
        assert_eq!(bound.len(), 3);
        assert_eq!(bound[1].schema(), &Schema::from_names(["n2", "n3"]));
    }

    #[test]
    fn cq_validation_catches_unbound_head_and_unknown_relation() {
        let q = ConjunctiveQuery::new("Bad", &["z"], vec![Atom::new("Graph", &["a", "b"])]);
        assert!(matches!(
            q.validate(&db()),
            Err(DcqError::UnboundHeadVariable(_))
        ));
        let q = ConjunctiveQuery::new("Bad", &["a"], vec![Atom::new("Nope", &["a"])]);
        assert!(q.validate(&db()).is_err());
    }

    #[test]
    fn dcq_requires_matching_heads() {
        let q1 = ConjunctiveQuery::new("Q1", &["a", "b"], vec![Atom::new("Graph", &["a", "b"])]);
        let q2 = ConjunctiveQuery::new("Q2", &["a"], vec![Atom::new("Graph", &["a", "b"])]);
        assert!(matches!(
            Dcq::new(q1.clone(), q2),
            Err(DcqError::MismatchedHeads { .. })
        ));
        // Same attribute set in a different order is fine; Q1's order wins.
        let q2 = ConjunctiveQuery::new("Q2", &["b", "a"], vec![Atom::new("Graph", &["b", "a"])]);
        let dcq = Dcq::new(q1, q2).unwrap();
        assert_eq!(dcq.head_schema(), Schema::from_names(["a", "b"]));
        dcq.validate(&db()).unwrap();
    }

    #[test]
    fn display_formats() {
        let q = ConjunctiveQuery::new(
            "Q1",
            &["a", "c"],
            vec![
                Atom::new("Graph", &["a", "b"]),
                Atom::new("Graph", &["b", "c"]),
            ],
        );
        let s = format!("{q}");
        assert!(s.contains("Q1(a, c)"));
        assert!(s.contains("Graph(a, b)"));
    }
}
