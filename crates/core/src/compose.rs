//! Composing DCQs with other relational operators (§5.2).
//!
//! * **Selection** — a predicate `φ` on a base relation is pushed down to that
//!   relation before the DCQ is evaluated ([`push_selection`]); this is the `O(N)`
//!   step the paper describes and is how the benchmark queries' `WHERE` clauses and
//!   the OUT₂ sweep of Figure 7 are modelled.
//! * **Projection** — `π_θ(Q₁ − Q₂)` is *rewritten* as the new DCQ
//!   `π_θQ₁ − π_θQ₂` ([`push_projection`]), following the paper's convention that
//!   the projection is pushed into both sides (the composed query is then planned
//!   as an ordinary DCQ).
//! * **Join** — the join of several DCQs is evaluated by joining their results
//!   ([`join_dcq_results`]); §5.1's rewriting shows the whole expression can also be
//!   unfolded into a difference of multiple CQs, which [`crate::multi`] handles.

use crate::planner::DcqPlanner;
use crate::query::{ConjunctiveQuery, Dcq};
use crate::Result;
use dcq_exec::natural_join;
use dcq_storage::{Database, Relation, Row};

/// Push a selection on a base relation down into the database: returns a copy of the
/// database in which `relation` is filtered by `predicate`.
///
/// Evaluating a DCQ over the returned database is exactly evaluating
/// `σ_φ(Q₁) − σ_φ(Q₂)` when `φ` only mentions that base relation.
pub fn push_selection<F>(db: &Database, relation: &str, predicate: F) -> Result<Database>
where
    F: FnMut(&Row) -> bool,
{
    let mut out = db.clone();
    let original = db.get(relation)?;
    let mut filtered = original.filter(predicate);
    filtered.set_name(relation);
    out.add_or_replace(filtered);
    Ok(out)
}

/// Push a projection into both sides of a DCQ: `π_θ(Q₁ − Q₂) ⇒ π_θQ₁ − π_θQ₂`.
///
/// The projected attributes must be a subset of the current output attributes.
pub fn push_projection(dcq: &Dcq, new_head: &[&str]) -> Result<Dcq> {
    let project = |cq: &ConjunctiveQuery| ConjunctiveQuery {
        name: format!("π({})", cq.name),
        head: new_head.iter().map(dcq_storage::Attr::new).collect(),
        atoms: cq.atoms.clone(),
    };
    for attr in new_head {
        if !dcq.q1.head.iter().any(|a| a.name() == *attr) {
            return Err(crate::DcqError::UnboundHeadVariable((*attr).to_string()));
        }
    }
    Dcq::new(project(&dcq.q1), project(&dcq.q2))
}

/// Evaluate the natural join of several DCQs by joining their (optimized) results.
///
/// §5.2 notes that `Q¹ ⋈ ⋯ ⋈ Q^k` with `Qⁱ = Qⁱ₁ − Qⁱ₂` can be unfolded into a
/// difference of multiple CQs; this helper provides the semantic reference
/// evaluation used by the tests and the benchmark harness.
pub fn join_dcq_results(dcqs: &[Dcq], db: &Database, planner: &DcqPlanner) -> Result<Relation> {
    let mut results = Vec::with_capacity(dcqs.len());
    for dcq in dcqs {
        results.push(planner.execute(dcq, db)?);
    }
    let Some((first, rest)) = results.split_first() else {
        return Err(crate::DcqError::Exec(dcq_exec::ExecError::EmptyQuery));
    };
    let mut acc = first.clone();
    for r in rest {
        acc = natural_join(&acc, r);
    }
    acc.set_name("join_of_dcqs");
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{baseline_dcq, CqStrategy};
    use crate::parse::parse_dcq;
    use dcq_storage::row::int_row;
    use dcq_storage::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "G",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 5], vec![10, 11]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "H",
            &["src", "dst"],
            vec![vec![1, 2], vec![3, 4]],
        ))
        .unwrap();
        db
    }

    #[test]
    fn selection_pushdown_filters_base_relation() {
        let db = db();
        let filtered = push_selection(&db, "G", |row| row.get(0).as_int().unwrap() < 10).unwrap();
        assert_eq!(filtered.get("G").unwrap().len(), 4);
        // Original untouched; unknown relation rejected.
        assert_eq!(db.get("G").unwrap().len(), 5);
        assert!(push_selection(&db, "Nope", |_| true).is_err());

        // σ over the DCQ = DCQ over the σ-filtered database.
        let dcq = parse_dcq("Q(a, b) :- G(a, b) EXCEPT H(a, b)").unwrap();
        let out = baseline_dcq(&dcq, &filtered, CqStrategy::Smart).unwrap();
        assert_eq!(out.sorted_rows(), vec![int_row([2, 3]), int_row([4, 5])]);
    }

    #[test]
    fn selection_models_figure7_predicate_sweep() {
        // Figure 7 varies OUT2 by making the predicate on Graph in Q2 more selective.
        let db = db();
        let dcq = parse_dcq("Q(a, b) :- G(a, b) EXCEPT H(a, b)").unwrap();
        let strict = push_selection(&db, "H", |row| row.get(0) == &Value::int(1)).unwrap();
        let loose = push_selection(&db, "H", |_| true).unwrap();
        let out_strict = baseline_dcq(&dcq, &strict, CqStrategy::Smart).unwrap();
        let out_loose = baseline_dcq(&dcq, &loose, CqStrategy::Smart).unwrap();
        assert!(out_strict.len() >= out_loose.len());
    }

    #[test]
    fn projection_pushdown_rewrites_both_sides() {
        let dcq = parse_dcq("Q(a, b) :- G(a, b) EXCEPT H(a, b)").unwrap();
        let projected = push_projection(&dcq, &["a"]).unwrap();
        assert_eq!(projected.q1.head.len(), 1);
        assert_eq!(projected.q2.head.len(), 1);
        assert_eq!(
            projected.head_schema(),
            dcq_storage::Schema::from_names(["a"])
        );
        assert!(push_projection(&dcq, &["z"]).is_err());
    }

    #[test]
    fn join_of_dcq_results_joins_on_shared_attributes() {
        let db = db();
        let d1 = parse_dcq("Q1(a, b) :- G(a, b) EXCEPT H(a, b)").unwrap();
        let d2 = parse_dcq("Q2(b, c) :- G(b, c) EXCEPT H(b, c)").unwrap();
        let planner = DcqPlanner::smart();
        let joined = join_dcq_results(&[d1.clone(), d2.clone()], &db, &planner).unwrap();
        // D1 = {(2,3),(3,4)… minus H} = {(2,3),(4,5),(10,11)}; D2 likewise over (b,c);
        // join on b: (2,3)⋈(3,4)? (3,4) ∈ D2? H contains (3,4) so no; (2,3)⋈(3,?)→no;
        // Compute via the definition instead of hand-listing:
        let r1 = planner.execute(&d1, &db).unwrap();
        let r2 = planner.execute(&d2, &db).unwrap();
        let expected = natural_join(&r1, &r2);
        assert_eq!(joined.sorted_rows(), expected.sorted_rows());
        assert!(join_dcq_results(&[], &db, &planner).is_err());
    }
}
