//! Canonical delta-join plans for counting maintenance.
//!
//! The counting engines (`dcq-incremental`'s `CountingCq`) maintain support
//! counts with the telescoping delta rule: a delta arriving at atom occurrence
//! `d` is joined against every other atom through a hash index on exactly the
//! join key the occurrence's plan needs.  This module precomputes those plans
//! **once per query shape**, in a form that is independent of variable
//! spellings:
//!
//! * probe keys, equality filters and append columns are expressed in
//!   **stored-column coordinates** ([`IndexSpec`], [`DeltaStep`]), so α-renamed
//!   queries (and distinct queries sharing a side) compile to byte-identical
//!   plans;
//! * every distinct `(relation, equality signature, key columns)` triple the
//!   plans probe is collected into [`CqDeltaPlans::index_specs`] — exactly the
//!   [`dcq_storage::IndexKey`]s the consumer acquires from the shared store's
//!   index registry, deduplicated across occurrences;
//! * [`PlanCache`](crate::cache::PlanCache) memoizes [`CqDeltaPlans`] per
//!   α-canonical CQ shape ([`crate::cache::CqShapeKey`]), so
//!   distinct-but-overlapping DCQs whose sides share a shape (the `Q_G5` family
//!   of the multi-view bench: identical positive sides, different closers)
//!   share one plan object — and therefore resolve to the same shared indexes.
//!
//! The join order itself is the same greedy connected order the first-generation
//! engine used: starting from the delta occurrence, repeatedly probe the
//! remaining atom sharing the most variables with the accumulated schema,
//! breaking ties toward earlier atoms for stable, deterministic plans.

use crate::query::{Atom, ConjunctiveQuery};
use dcq_storage::{Attr, IndexKey, Schema};

/// How one atom of a CQ binds its stored relation, in stored-column coordinates.
///
/// `keep_positions[i]` is the stored position of the atom's `i`-th distinct
/// variable (first occurrence); `equalities` lists the `(earlier, later)` stored
/// positions that must agree (repeated variables).  The translation
/// `stored row → bound row` (project onto `keep_positions` after the equality
/// filter) is injective, so signed deltas stay consistent under it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomBinding {
    /// Name of the stored relation the atom scans.
    pub relation: String,
    /// Stored positions of each distinct variable's first occurrence.
    pub keep_positions: Vec<usize>,
    /// `(earlier, later)` stored positions that must be equal.
    pub equalities: Vec<(usize, usize)>,
}

impl AtomBinding {
    /// Derive the binding of one atom.
    pub fn of(atom: &Atom) -> Self {
        let mut keep_positions: Vec<usize> = Vec::new();
        let mut equalities: Vec<(usize, usize)> = Vec::new();
        for (pos, var) in atom.vars.iter().enumerate() {
            match atom.vars[..pos].iter().position(|v| v == var) {
                Some(first) => equalities.push((first, pos)),
                None => keep_positions.push(pos),
            }
        }
        AtomBinding {
            relation: atom.relation.clone(),
            keep_positions,
            equalities,
        }
    }

    /// The atom's bound schema (distinct variables in first-occurrence order).
    fn bound_schema(atom: &Atom) -> Schema {
        let mut distinct: Vec<Attr> = Vec::new();
        for var in &atom.vars {
            if !distinct.contains(var) {
                distinct.push(var.clone());
            }
        }
        Schema::new(distinct)
    }
}

/// One probe step of a delta plan: join the accumulated rows with an atom
/// through a shared index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaStep {
    /// Index of the probed atom within the query body.
    pub atom: usize,
    /// Slot of the probed index's signature within [`CqDeltaPlans::index_specs`].
    pub index: usize,
    /// Positions of the join key inside the accumulated row (bound coordinates
    /// of the accumulated schema), ordered like the spec's `key_positions`.
    pub acc_key_positions: Vec<usize>,
    /// **Stored** positions of the probed relation's columns appended to the
    /// accumulated row (the atom's variables not yet in the accumulation).
    pub append_positions: Vec<usize>,
}

/// The signature of one shared index a plan probes — convertible 1:1 into the
/// storage layer's [`IndexKey`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct IndexSpec {
    /// Name of the indexed stored relation.
    pub relation: String,
    /// Equality constraints of the probed atom, in stored coordinates.
    pub equalities: Vec<(usize, usize)>,
    /// Stored positions forming the probe key.
    pub key_positions: Vec<usize>,
}

impl IndexSpec {
    /// The storage-layer identity of this index.
    pub fn to_index_key(&self) -> IndexKey {
        IndexKey {
            relation: self.relation.clone(),
            equalities: self.equalities.clone(),
            key_positions: self.key_positions.clone(),
        }
    }
}

/// Precomputed join pipeline for a delta arriving at one atom occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OccurrencePlan {
    /// The probe steps, in join order.
    pub steps: Vec<DeltaStep>,
    /// Positions of the output attributes in the final accumulated schema.
    pub head_positions: Vec<usize>,
}

/// The complete delta-plan set of one CQ: per-occurrence join pipelines plus the
/// deduplicated signatures of every shared index they probe.
///
/// Everything is α-invariant — two CQs with the same
/// [`CqShapeKey`](crate::cache::CqShapeKey) produce identical plan sets, which
/// is what lets the plan cache share them across distinct view shapes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CqDeltaPlans {
    /// Per-atom stored-relation bindings, in body order.
    pub atoms: Vec<AtomBinding>,
    /// One plan per atom occurrence (same order as `atoms`).
    pub occurrence_plans: Vec<OccurrencePlan>,
    /// Deduplicated signatures of the shared indexes the steps probe.
    pub index_specs: Vec<IndexSpec>,
    /// `(relation, ascending atom occurrences)` pairs, sorted by relation name —
    /// the fan-in map from a stored relation's delta to the plans it triggers.
    pub occurrences: Vec<(String, Vec<usize>)>,
}

impl CqDeltaPlans {
    /// The atom occurrences of `relation`, ascending (empty if unreferenced).
    pub fn occurrences_of(&self, relation: &str) -> &[usize] {
        self.occurrences
            .binary_search_by(|(name, _)| name.as_str().cmp(relation))
            .map(|i| self.occurrences[i].1.as_slice())
            .unwrap_or(&[])
    }

    /// `true` iff some atom scans `relation`.
    pub fn references(&self, relation: &str) -> bool {
        !self.occurrences_of(relation).is_empty()
    }
}

/// Build the delta plans of `cq`, producing output tuples in the attribute order
/// of `output` (which must be a permutation of the head variables, each of which
/// must occur in some atom).
pub fn build_delta_plans(cq: &ConjunctiveQuery, output: &Schema) -> CqDeltaPlans {
    let atoms: Vec<AtomBinding> = cq.atoms.iter().map(AtomBinding::of).collect();
    let schemas: Vec<Schema> = cq.atoms.iter().map(AtomBinding::bound_schema).collect();
    let mut index_specs: Vec<IndexSpec> = Vec::new();
    let mut occurrence_plans = Vec::with_capacity(atoms.len());

    for d in 0..atoms.len() {
        let mut acc_schema = schemas[d].clone();
        let mut remaining: Vec<usize> = (0..atoms.len()).filter(|&i| i != d).collect();
        let mut steps = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let (pick, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(slot, &i)| {
                    let shared = acc_schema.intersect(&schemas[i]).arity();
                    // Prefer more shared variables; break ties toward earlier
                    // atoms (stable, deterministic plans).
                    (shared, usize::MAX - *slot)
                })
                .expect("remaining is non-empty");
            let atom = remaining.remove(pick);
            // The join key: shared variables in the probed atom's first-occurrence
            // order — a canonical order both sides of the probe can reproduce.
            let key_schema = schemas[atom].intersect(&acc_schema);
            let key_attrs = key_schema.attrs();
            let acc_key_positions = acc_schema
                .positions_of(key_attrs)
                .expect("key attrs are in the accumulated schema");
            let key_positions: Vec<usize> = key_attrs
                .iter()
                .map(|a| {
                    let bound = schemas[atom].position(a).expect("key attr is in the atom");
                    atoms[atom].keep_positions[bound]
                })
                .collect();
            let spec = IndexSpec {
                relation: atoms[atom].relation.clone(),
                equalities: atoms[atom].equalities.clone(),
                key_positions,
            };
            let index = match index_specs.iter().position(|s| *s == spec) {
                Some(slot) => slot,
                None => {
                    index_specs.push(spec);
                    index_specs.len() - 1
                }
            };
            let append_schema = schemas[atom].minus(&acc_schema);
            let append_positions: Vec<usize> = append_schema
                .attrs()
                .iter()
                .map(|a| {
                    let bound = schemas[atom]
                        .position(a)
                        .expect("append attr is in the atom");
                    atoms[atom].keep_positions[bound]
                })
                .collect();
            acc_schema = acc_schema.union(&schemas[atom]);
            steps.push(DeltaStep {
                atom,
                index,
                acc_key_positions,
                append_positions,
            });
        }
        let head_positions = acc_schema
            .positions_of(output.attrs())
            .expect("every head variable occurs in some atom");
        occurrence_plans.push(OccurrencePlan {
            steps,
            head_positions,
        });
    }

    let mut occurrences: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, atom) in atoms.iter().enumerate() {
        match occurrences
            .iter_mut()
            .find(|(name, _)| *name == atom.relation)
        {
            Some((_, occ)) => occ.push(i),
            None => occurrences.push((atom.relation.clone(), vec![i])),
        }
    }
    occurrences.sort();

    CqDeltaPlans {
        atoms,
        occurrence_plans,
        index_specs,
        occurrences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_cq;

    fn plans_of(src: &str) -> CqDeltaPlans {
        let cq = parse_cq(src).unwrap();
        build_delta_plans(&cq, &cq.head_schema())
    }

    #[test]
    fn plans_are_alpha_invariant() {
        let a = plans_of("P(x, z) :- Graph(x, y), Graph(y, z)");
        let b = plans_of("Q(u, w) :- Graph(u, v), Graph(v, w)");
        assert_eq!(a, b, "α-renamed queries must compile identically");
    }

    #[test]
    fn index_specs_are_deduplicated_and_stored_coordinate() {
        // Both occurrences probe Graph keyed by one end; the two directions give
        // two distinct specs, not four.
        let plans = plans_of("P(x, z) :- Graph(x, y), Graph(y, z)");
        assert_eq!(plans.occurrence_plans.len(), 2);
        assert_eq!(plans.index_specs.len(), 2);
        let key_sets: Vec<&[usize]> = plans
            .index_specs
            .iter()
            .map(|s| s.key_positions.as_slice())
            .collect();
        assert!(key_sets.contains(&&[0][..]) && key_sets.contains(&&[1][..]));
        for spec in &plans.index_specs {
            assert_eq!(spec.relation, "Graph");
            assert!(spec.equalities.is_empty());
            assert_eq!(spec.to_index_key().key_positions, spec.key_positions);
        }
    }

    #[test]
    fn repeated_variables_become_equality_signatures() {
        let plans = plans_of("P(x, y) :- Graph(x, x), Edge(x, y)");
        assert_eq!(plans.atoms[0].equalities, vec![(0, 1)]);
        assert_eq!(plans.atoms[0].keep_positions, vec![0]);
        assert_eq!(plans.atoms[1].equalities, vec![]);
        // The step probing Graph(x, x) carries the equality into its spec.
        let spec_of_graph = plans
            .index_specs
            .iter()
            .find(|s| s.relation == "Graph")
            .unwrap();
        assert_eq!(spec_of_graph.equalities, vec![(0, 1)]);
    }

    #[test]
    fn occurrence_map_covers_self_joins() {
        let plans = plans_of("P(x, y, z) :- Graph(x, y), Graph(y, z), Edge(z, x)");
        assert_eq!(plans.occurrences_of("Graph"), &[0, 1]);
        assert_eq!(plans.occurrences_of("Edge"), &[2]);
        assert!(plans.occurrences_of("Missing").is_empty());
        assert!(plans.references("Graph") && !plans.references("Missing"));
    }

    #[test]
    fn head_positions_follow_the_output_order() {
        let cq = parse_cq("P(z, x) :- Graph(x, y), Graph(y, z)").unwrap();
        let plans = build_delta_plans(&cq, &cq.head_schema());
        // Plan 0 accumulates (x, y) then appends z → head (z, x) is positions [2, 0].
        assert_eq!(plans.occurrence_plans[0].head_positions, vec![2, 0]);
    }

    #[test]
    fn single_atom_plans_have_no_steps() {
        let plans = plans_of("P(x) :- Graph(x, x)");
        assert_eq!(plans.occurrence_plans.len(), 1);
        assert!(plans.occurrence_plans[0].steps.is_empty());
        assert!(plans.index_specs.is_empty());
        assert_eq!(plans.occurrence_plans[0].head_positions, vec![0]);
    }
}
