//! The baseline ("standard approach") for DCQ evaluation.
//!
//! Corollary 2.1: materialize `Q₁(D₁)` and `Q₂(D₂)` separately with a single-CQ
//! evaluator, then compute the set difference.  This is what every engine the paper
//! benchmarks does (§1, §6): the cost is `cost(Q₁) + cost(Q₂)` regardless of how few
//! tuples survive the difference.
//!
//! Two single-CQ evaluators are provided:
//!
//! * [`CqStrategy::Vanilla`] — a left-deep binary-join plan with a final projection
//!   (what PostgreSQL/Spark produce for the original SQL), the engine used for the
//!   *original* queries in the experiments;
//! * [`CqStrategy::Smart`] — Yannakakis for free-connex queries, a full-reducer
//!   acyclic join plus projection for acyclic queries, and the generic
//!   worst-case-optimal join for cyclic queries (the "state-of-the-art CQ
//!   evaluation" of §2.2).

use crate::query::{ConjunctiveQuery, Dcq};
use crate::Result;
use dcq_exec::{acyclic_full_join, free_connex_evaluate, generic_join, BinaryJoinPlan};
use dcq_storage::{Database, Relation};

/// Which single-CQ evaluator the baseline uses for each side.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CqStrategy {
    /// Left-deep binary hash joins + projection (vanilla SQL execution).
    #[default]
    Vanilla,
    /// Structure-aware: Yannakakis / acyclic full join / generic join.
    Smart,
}

/// Evaluate a single conjunctive query with the chosen strategy.
///
/// The output schema is the query's head, in head order, and the result is distinct.
pub fn evaluate_cq(cq: &ConjunctiveQuery, db: &Database, strategy: CqStrategy) -> Result<Relation> {
    let atoms = cq.bind(db)?;
    let head = cq.head_schema();
    let result = match strategy {
        CqStrategy::Vanilla => BinaryJoinPlan::new(head.clone(), atoms).execute()?,
        CqStrategy::Smart => {
            let shape = cq.shape();
            if shape.free_connex {
                free_connex_evaluate(&head, &atoms)?
            } else if shape.alpha_acyclic {
                // Acyclic but not free-connex: full join in O(N + OUT_full), then
                // project (the O(N·OUT) bound of §2.2).
                acyclic_full_join(&atoms)?.project(head.attrs())?
            } else {
                generic_join(&head, &atoms)?
            }
        }
    };
    let mut result = result;
    result.set_name(cq.name.clone());
    Ok(result)
}

/// Materialized sizes observed while running the baseline — the `OUT₁` / `OUT₂`
/// quantities of Figures 6–8.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BaselineStats {
    /// `|Q₁(D₁)|`.
    pub out1: usize,
    /// `|Q₂(D₂)|`.
    pub out2: usize,
    /// `|Q₁(D₁) − Q₂(D₂)|`.
    pub out: usize,
}

/// The standard approach: evaluate both CQs and subtract (Corollary 2.1).
pub fn baseline_dcq(dcq: &Dcq, db: &Database, strategy: CqStrategy) -> Result<Relation> {
    Ok(baseline_dcq_with_stats(dcq, db, strategy)?.0)
}

/// [`baseline_dcq`] returning the materialized sizes alongside the result.
pub fn baseline_dcq_with_stats(
    dcq: &Dcq,
    db: &Database,
    strategy: CqStrategy,
) -> Result<(Relation, BaselineStats)> {
    let q1 = evaluate_cq(&dcq.q1, db, strategy)?;
    let q2 = evaluate_cq(&dcq.q2, db, strategy)?;
    let mut diff = q1.minus(&q2)?;
    diff.set_name("baseline_difference");
    let stats = BaselineStats {
        out1: q1.distinct_count(),
        out2: q2.distinct_count(),
        out: diff.len(),
    };
    Ok((diff, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_cq, parse_dcq};
    use dcq_storage::row::int_row;

    fn graph_db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![3, 1], vec![3, 4], vec![4, 5]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Triple",
            &["a", "b", "c"],
            vec![vec![1, 2, 3], vec![2, 3, 1], vec![3, 4, 5], vec![1, 2, 4]],
        ))
        .unwrap();
        db
    }

    #[test]
    fn vanilla_and_smart_agree_on_acyclic_cq() {
        let cq = parse_cq("P(a, c) :- Graph(a, b), Graph(b, c)").unwrap();
        let db = graph_db();
        let v = evaluate_cq(&cq, &db, CqStrategy::Vanilla).unwrap();
        let s = evaluate_cq(&cq, &db, CqStrategy::Smart).unwrap();
        assert_eq!(v.sorted_rows(), s.sorted_rows());
        assert!(v.rows().contains(&int_row([1, 3])));
    }

    #[test]
    fn vanilla_and_smart_agree_on_cyclic_cq() {
        let cq = parse_cq("T(a, b, c) :- Graph(a, b), Graph(b, c), Graph(c, a)").unwrap();
        let db = graph_db();
        let v = evaluate_cq(&cq, &db, CqStrategy::Vanilla).unwrap();
        let s = evaluate_cq(&cq, &db, CqStrategy::Smart).unwrap();
        assert_eq!(v.sorted_rows(), s.sorted_rows());
        assert_eq!(v.len(), 3); // 1→2→3→1 in all three rotations
    }

    #[test]
    fn vanilla_and_smart_agree_on_non_free_connex_projection() {
        let cq = parse_cq("P(a, c) :- Graph(a, b), Graph(b, c), Graph(c, d)").unwrap();
        let db = graph_db();
        let v = evaluate_cq(&cq, &db, CqStrategy::Vanilla).unwrap();
        let s = evaluate_cq(&cq, &db, CqStrategy::Smart).unwrap();
        assert_eq!(v.sorted_rows(), s.sorted_rows());
    }

    #[test]
    fn baseline_difference_matches_manual_subtraction() {
        // Example 1.1 / Q_G3: Triples that do not form a triangle.
        let dcq = parse_dcq(
            "Q(a, b, c) :- Triple(a, b, c)
             EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)",
        )
        .unwrap();
        let db = graph_db();
        let (result, stats) = baseline_dcq_with_stats(&dcq, &db, CqStrategy::Vanilla).unwrap();
        // Triangles in the graph over (a,b,c): (1,2,3),(2,3,1),(3,1,2) — Triple holds
        // (1,2,3) and (2,3,1), which are removed; (3,4,5) and (1,2,4) survive.
        assert_eq!(
            result.sorted_rows(),
            vec![int_row([1, 2, 4]), int_row([3, 4, 5])]
        );
        assert_eq!(stats.out1, 4);
        assert_eq!(stats.out2, 3);
        assert_eq!(stats.out, 2);
    }

    #[test]
    fn baseline_smart_strategy_matches_vanilla() {
        let dcq = parse_dcq(
            "Q(a, b, c) :- Triple(a, b, c)
             EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)",
        )
        .unwrap();
        let db = graph_db();
        let v = baseline_dcq(&dcq, &db, CqStrategy::Vanilla).unwrap();
        let s = baseline_dcq(&dcq, &db, CqStrategy::Smart).unwrap();
        assert_eq!(v.sorted_rows(), s.sorted_rows());
    }

    #[test]
    fn empty_q2_returns_q1() {
        let mut db = graph_db();
        db.add(Relation::from_int_rows("Empty", &["x", "y", "z"], vec![]))
            .unwrap();
        let dcq = parse_dcq("Q(a, b, c) :- Triple(a, b, c) EXCEPT Empty(a, b, c)").unwrap();
        let out = baseline_dcq(&dcq, &db, CqStrategy::Smart).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn result_schema_follows_q1_head_order() {
        let dcq = parse_dcq("Q(c, a) :- Graph(a, b), Graph(b, c) EXCEPT Graph(c, a)").unwrap();
        let db = graph_db();
        let out = baseline_dcq(&dcq, &db, CqStrategy::Smart).unwrap();
        assert_eq!(out.schema(), &dcq.head_schema());
    }
}
