//! Difference of multiple conjunctive queries (§5.1, Algorithm 4).
//!
//! `Q = Q₁ − Q₂ − ⋯ − Q_k` is evaluated recursively: the first two queries are
//! combined exactly as in `EasyDCQ` — for every reduced edge `e` of `Q₂`, the
//! pushed-down difference `(π_e Q₁ − R′_e) ⋈ Q₁` materializes the part of `Q₁ − Q₂`
//! witnessed by `e` — and each materialized part becomes the new `Q₁` of a
//! difference with one fewer negative query.  Theorem 5.1 gives the structural
//! condition under which the whole recursion stays `O(N + OUT)`.
//!
//! [`multi_dcq_naive`] is the reference implementation (fold of set differences)
//! used as the correctness baseline in the tests and benchmarks.

use crate::baseline::{evaluate_cq, CqStrategy};
use crate::error::DcqError;
use crate::query::ConjunctiveQuery;
use crate::Result;
use dcq_exec::{acyclic_full_join, free_connex_evaluate, reduce, ExecError};
use dcq_storage::{Database, Relation, Schema};

/// A difference of multiple conjunctive queries `Q₁ − Q₂ − ⋯ − Q_k`.
#[derive(Clone, Debug)]
pub struct MultiDcq {
    /// The positive query `Q₁`.
    pub positive: ConjunctiveQuery,
    /// The negative queries `Q₂, …, Q_k`, applied left to right.
    pub negatives: Vec<ConjunctiveQuery>,
}

impl MultiDcq {
    /// Create a multi-difference, verifying that every query shares the same output
    /// attribute set.
    pub fn new(positive: ConjunctiveQuery, negatives: Vec<ConjunctiveQuery>) -> Result<Self> {
        for n in &negatives {
            if n.head_set() != positive.head_set() {
                return Err(DcqError::MismatchedHeads {
                    left: format!("{}", positive.head_schema()),
                    right: format!("{}", n.head_schema()),
                });
            }
        }
        Ok(MultiDcq {
            positive,
            negatives,
        })
    }

    /// The common output schema (in the positive query's order).
    pub fn head_schema(&self) -> Schema {
        self.positive.head_schema()
    }
}

/// Reference evaluation: materialize every query and fold the set differences.
pub fn multi_dcq_naive(multi: &MultiDcq, db: &Database, strategy: CqStrategy) -> Result<Relation> {
    let mut acc = evaluate_cq(&multi.positive, db, strategy)?;
    for n in &multi.negatives {
        let neg = evaluate_cq(n, db, strategy)?;
        acc = acc.minus(&neg)?;
    }
    acc.set_name("multi_dcq_naive");
    Ok(acc)
}

fn precondition(e: ExecError) -> DcqError {
    match e {
        ExecError::NotAcyclic { detail } | ExecError::NotLinearReducible { detail } => {
            DcqError::PreconditionViolated {
                strategy: "DMCQ",
                reason: detail,
            }
        }
        other => DcqError::Exec(other),
    }
}

/// Algorithm 4: recursive evaluation of a multi-difference.
///
/// Requires the structural conditions of Theorem 5.1 (every intermediate rewriting
/// must stay acyclic); otherwise a [`DcqError::PreconditionViolated`] is returned and
/// the caller should fall back to [`multi_dcq_naive`].
pub fn multi_dcq_recursive(multi: &MultiDcq, db: &Database) -> Result<Relation> {
    let head = multi.head_schema();
    // Bind and reduce the positive query once.
    let positive_atoms = multi.positive.bind(db)?;
    let reduced_positive = reduce(&head, &positive_atoms).map_err(precondition)?;
    // Bind and reduce every negative query.
    let negative_relations: Vec<Vec<Relation>> = multi
        .negatives
        .iter()
        .map(|n| {
            let atoms = n.bind(db)?;
            Ok(reduce(&n.head_schema(), &atoms)
                .map_err(precondition)?
                .relations)
        })
        .collect::<Result<_>>()?;

    let mut result = recurse(&head, &reduced_positive.relations, &negative_relations)?;
    result.set_name("multi_dcq_recursive");
    Ok(result)
}

/// Recursive core: `positive` is a full join over `head`; `negatives` are the
/// reduced (full-join-over-`head`) bodies of the remaining negative queries.
fn recurse(head: &Schema, positive: &[Relation], negatives: &[Vec<Relation>]) -> Result<Relation> {
    let Some((first_negative, remaining)) = negatives.split_first() else {
        // No negatives left: evaluate the positive full join.
        let joined = acyclic_full_join(positive).map_err(precondition)?;
        return Ok(joined.project(head.attrs())?);
    };

    let mut result = Relation::new("dmcq", head.clone());
    result.assume_distinct();
    for r_e in first_negative {
        // S_e = π_e(positive), computed with Yannakakis.
        let edge_schema = r_e.schema().clone();
        let s_e = free_connex_evaluate(&edge_schema, positive).map_err(precondition)?;
        let diff = s_e.minus(r_e)?;
        if diff.is_empty() {
            continue;
        }
        // Materialize (S_e − R'_e) ⋈ positive: the part of (positive − Q₂) witnessed
        // by e, as a single relation over the head.
        let mut atoms = positive.to_vec();
        atoms.push(diff);
        let part = acyclic_full_join(&atoms)
            .map_err(precondition)?
            .project(head.attrs())?;
        if part.is_empty() {
            continue;
        }
        // Recurse: the materialized part is the new positive (a single full relation
        // over the head), with one fewer negative query.
        let sub = recurse(head, &[part], remaining)?;
        result = result.union_set(&sub)?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_cq, parse_dcq_multi};
    use dcq_storage::row::int_row;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Triple",
            &["a", "b", "c"],
            vec![
                vec![1, 2, 3],
                vec![2, 3, 4],
                vec![3, 4, 5],
                vec![4, 5, 6],
                vec![7, 7, 7],
            ],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "G",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 5], vec![5, 6]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "H",
            &["src", "dst"],
            vec![vec![2, 3], vec![3, 4], vec![7, 7]],
        ))
        .unwrap();
        db
    }

    fn multi_from(src: &str) -> MultiDcq {
        let (dcq, rest) = parse_dcq_multi(src).unwrap();
        let mut negatives = vec![dcq.q2];
        negatives.extend(rest);
        MultiDcq::new(dcq.q1, negatives).unwrap()
    }

    #[test]
    fn two_query_case_degenerates_to_dcq() {
        let m = multi_from("Q(a, b, c) :- Triple(a, b, c) EXCEPT G(a, b), G(b, c)");
        let db = db();
        let fast = multi_dcq_recursive(&m, &db).unwrap();
        let slow = multi_dcq_naive(&m, &db, CqStrategy::Vanilla).unwrap();
        assert_eq!(fast.sorted_rows(), slow.sorted_rows());
    }

    #[test]
    fn three_query_difference_matches_naive() {
        let m = multi_from(
            "Q(a, b, c) :- Triple(a, b, c) EXCEPT G(a, b), H(b, c) EXCEPT H(a, b), H(b, c)",
        );
        let db = db();
        let fast = multi_dcq_recursive(&m, &db).unwrap();
        let slow = multi_dcq_naive(&m, &db, CqStrategy::Vanilla).unwrap();
        assert_eq!(fast.sorted_rows(), slow.sorted_rows());
        // The G∘H paths remove (1,2,3) and (2,3,4); the H∘H paths remove (7,7,7).
        assert_eq!(
            fast.sorted_rows(),
            vec![int_row([3, 4, 5]), int_row([4, 5, 6])]
        );
    }

    #[test]
    fn four_query_difference_matches_naive() {
        let m = multi_from(
            "Q(a, b) :- G(a, b) EXCEPT H(a, b) EXCEPT G(a, b), G(b, c) EXCEPT G(c, a), G(a, b)",
        );
        let db = db();
        let fast = multi_dcq_recursive(&m, &db).unwrap();
        let slow = multi_dcq_naive(&m, &db, CqStrategy::Smart).unwrap();
        assert_eq!(fast.sorted_rows(), slow.sorted_rows());
    }

    #[test]
    fn empty_negative_list_returns_q1() {
        let q1 = parse_cq("Q(a, b) :- G(a, b)").unwrap();
        let m = MultiDcq::new(q1, vec![]).unwrap();
        let db = db();
        let out = multi_dcq_recursive(&m, &db).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(
            out.sorted_rows(),
            multi_dcq_naive(&m, &db, CqStrategy::Vanilla)
                .unwrap()
                .sorted_rows()
        );
    }

    #[test]
    fn mismatched_heads_rejected() {
        let q1 = parse_cq("Q(a, b) :- G(a, b)").unwrap();
        let q2 = parse_cq("Q(a) :- H(a, b)").unwrap();
        assert!(MultiDcq::new(q1, vec![q2]).is_err());
    }

    #[test]
    fn order_of_negatives_does_not_change_result() {
        let m1 = multi_from(
            "Q(a, b, c) :- Triple(a, b, c) EXCEPT G(a, b), G(b, c) EXCEPT H(a, b), H(b, c)",
        );
        let m2 = multi_from(
            "Q(a, b, c) :- Triple(a, b, c) EXCEPT H(a, b), H(b, c) EXCEPT G(a, b), G(b, c)",
        );
        let db = db();
        assert_eq!(
            multi_dcq_recursive(&m1, &db).unwrap().sorted_rows(),
            multi_dcq_recursive(&m2, &db).unwrap().sorted_rows()
        );
    }

    #[test]
    fn precondition_violation_is_reported() {
        // A non-linear-reducible negative query cannot be handled by the recursion.
        let m = multi_from("Q(a, c) :- G(a, c) EXCEPT G(a, b), G(b, c) EXCEPT H(a, c)");
        assert!(matches!(
            multi_dcq_recursive(&m, &db()),
            Err(DcqError::PreconditionViolated { .. })
        ));
    }
}
