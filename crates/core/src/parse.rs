//! A small datalog-style text syntax for CQs and DCQs.
//!
//! Rather than a full SQL front-end (the paper rewrites SQL by hand, §6.1), dcqx
//! offers a rule syntax that states the conjunctive structure directly:
//!
//! ```text
//! Q(node1, node2, node3) :- Triple(node1, node2, node3)
//!   EXCEPT
//!   Graph(node1, node2), Graph(node2, node3), Graph(node3, node1)
//! ```
//!
//! * `Head(vars) :- atom, atom, …` defines a conjunctive query,
//! * `EXCEPT` separates the positive body `Q₁` from the negative body `Q₂`
//!   (the SQL `NOT EXISTS` / `EXCEPT` of Example 1.1),
//! * additional `EXCEPT` sections define a difference of multiple CQs (§5.1).
//!
//! The head variable list gives the output attributes of **both** sides; an optional
//! trailing `.` is accepted.

use crate::error::DcqError;
use crate::query::{Atom, ConjunctiveQuery, Dcq};
use crate::Result;

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Turnstile,
    Except,
    Dot,
}

fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '.' => {
                chars.next();
                tokens.push(Token::Dot);
            }
            ':' => {
                chars.next();
                if chars.peek() == Some(&'-') {
                    chars.next();
                    tokens.push(Token::Turnstile);
                } else {
                    return Err(DcqError::Parse {
                        message: "expected `-` after `:`".into(),
                    });
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if ident.eq_ignore_ascii_case("except") {
                    tokens.push(Token::Except);
                } else {
                    tokens.push(Token::Ident(ident));
                }
            }
            other => {
                return Err(DcqError::Parse {
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<()> {
        match self.next() {
            Some(ref t) if t == expected => Ok(()),
            other => Err(DcqError::Parse {
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(DcqError::Parse {
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    /// `Name ( v1, v2, … )`
    fn predicate(&mut self) -> Result<(String, Vec<String>)> {
        let name = self.ident("a predicate name")?;
        self.expect(&Token::LParen, "`(`")?;
        let mut vars = Vec::new();
        loop {
            match self.peek() {
                Some(Token::RParen) => {
                    self.next();
                    break;
                }
                _ => {
                    vars.push(self.ident("a variable name")?);
                    if let Some(Token::Comma) = self.peek() {
                        self.next();
                    }
                }
            }
        }
        Ok((name, vars))
    }

    /// `atom, atom, …` up to (but not consuming) `EXCEPT`, `.` or end of input.
    fn body(&mut self) -> Result<Vec<Atom>> {
        let mut atoms = Vec::new();
        loop {
            let (name, vars) = self.predicate()?;
            let var_refs: Vec<&str> = vars.iter().map(|s| s.as_str()).collect();
            atoms.push(Atom::new(name, &var_refs));
            match self.peek() {
                Some(Token::Comma) => {
                    self.next();
                }
                _ => break,
            }
        }
        if atoms.is_empty() {
            return Err(DcqError::Parse {
                message: "a query body needs at least one atom".into(),
            });
        }
        Ok(atoms)
    }
}

/// Parse a single conjunctive query `Head(vars) :- atom, atom, …`.
pub fn parse_cq(src: &str) -> Result<ConjunctiveQuery> {
    let mut p = Parser::new(tokenize(src)?);
    let (name, head_vars) = p.predicate()?;
    p.expect(&Token::Turnstile, "`:-`")?;
    let atoms = p.body()?;
    if let Some(Token::Dot) = p.peek() {
        p.next();
    }
    if p.peek().is_some() {
        return Err(DcqError::Parse {
            message: format!("unexpected trailing tokens: {:?}", p.peek()),
        });
    }
    let head_refs: Vec<&str> = head_vars.iter().map(|s| s.as_str()).collect();
    Ok(ConjunctiveQuery::new(name, &head_refs, atoms))
}

/// Parse a DCQ `Head(vars) :- body₁ EXCEPT body₂ [EXCEPT body₃ …]`.
///
/// Returns the parsed difference as `(Q₁ − Q₂, remaining bodies)`; when more than
/// one `EXCEPT` section is present the remaining CQs (for the multi-difference
/// algorithm of §5.1) are returned in order.
pub fn parse_dcq_multi(src: &str) -> Result<(Dcq, Vec<ConjunctiveQuery>)> {
    let mut p = Parser::new(tokenize(src)?);
    let (name, head_vars) = p.predicate()?;
    p.expect(&Token::Turnstile, "`:-`")?;
    let head_refs: Vec<&str> = head_vars.iter().map(|s| s.as_str()).collect();

    let mut bodies = vec![p.body()?];
    while let Some(Token::Except) = p.peek() {
        p.next();
        bodies.push(p.body()?);
    }
    if let Some(Token::Dot) = p.peek() {
        p.next();
    }
    if p.peek().is_some() {
        return Err(DcqError::Parse {
            message: format!("unexpected trailing tokens: {:?}", p.peek()),
        });
    }
    if bodies.len() < 2 {
        return Err(DcqError::Parse {
            message: "a DCQ needs at least one EXCEPT section".into(),
        });
    }
    let mut queries: Vec<ConjunctiveQuery> = bodies
        .into_iter()
        .enumerate()
        .map(|(i, atoms)| ConjunctiveQuery::new(format!("{name}_{}", i + 1), &head_refs, atoms))
        .collect();
    let q1 = queries.remove(0);
    let q2 = queries.remove(0);
    Ok((Dcq::new(q1, q2)?, queries))
}

/// Parse a DCQ with exactly one `EXCEPT` section.
pub fn parse_dcq(src: &str) -> Result<Dcq> {
    let (dcq, rest) = parse_dcq_multi(src)?;
    if !rest.is_empty() {
        return Err(DcqError::Parse {
            message: "expected exactly one EXCEPT section".into(),
        });
    }
    Ok(dcq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_cq() {
        let q = parse_cq("Q(a, c) :- R(a, b), S(b, c).").unwrap();
        assert_eq!(q.name, "Q");
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.atoms[0].relation, "R");
        assert_eq!(q.atoms[1].vars[1].name(), "c");
    }

    #[test]
    fn parse_cq_without_trailing_dot_and_with_newlines() {
        let q = parse_cq(
            "Triangles(n1, n2, n3) :-\n  Graph(n1, n2),\n  Graph(n2, n3),\n  Graph(n3, n1)",
        )
        .unwrap();
        assert_eq!(q.atoms.len(), 3);
        assert!(q.is_full());
    }

    #[test]
    fn parse_dcq_example_1_1() {
        // Example 1.1: candidate recommendations that do not form a triangle.
        let dcq = parse_dcq(
            "Q(node1, node2, node3) :- Triple(node1, node2, node3)
             EXCEPT
             Graph(node1, node2), Graph(node2, node3), Graph(node3, node1)",
        )
        .unwrap();
        assert_eq!(dcq.q1.atoms.len(), 1);
        assert_eq!(dcq.q2.atoms.len(), 3);
        assert_eq!(dcq.head_schema().arity(), 3);
        assert_eq!(dcq.q1.name, "Q_1");
        assert_eq!(dcq.q2.name, "Q_2");
    }

    #[test]
    fn parse_multi_difference() {
        let (dcq, rest) =
            parse_dcq_multi("Q(a, b) :- R(a, b) EXCEPT S(a, b) EXCEPT T(a, b), U(b, b)").unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].atoms.len(), 2);
        assert_eq!(dcq.q2.atoms[0].relation, "S");
    }

    #[test]
    fn except_is_case_insensitive() {
        assert!(parse_dcq("Q(a) :- R(a, b) except S(a, c)").is_ok());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_cq("Q(a) : R(a)").is_err());
        assert!(parse_cq("Q(a)").is_err());
        assert!(parse_cq("Q(a) :- ").is_err());
        assert!(parse_dcq("Q(a) :- R(a)").is_err());
        assert!(parse_cq("Q(a) :- R(a) trailing(b)").is_err());
        assert!(parse_cq("Q(a) :- R(a$)").is_err());
        assert!(parse_dcq("Q(a) :- R(a) EXCEPT S(a) EXCEPT T(a)").is_err());
    }

    #[test]
    fn nullary_heads_parse() {
        let q = parse_cq("Exists() :- R(a, b)").unwrap();
        assert!(q.head.is_empty());
    }
}
