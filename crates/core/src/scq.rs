//! Signed conjunctive queries (§7).
//!
//! A signed CQ (SCQ) allows negated atoms: `Q = π_y(η₁R₁ ⋈ ⋯ ⋈ η_nR_n)` with each
//! `η_i` either empty or `¬`.  The paper connects SCQs and DCQs in both directions:
//!
//! * Lemma 7.1 — every DCQ is a union of SCQs with exactly one negated atom each:
//!   `Q₁ − Q₂ = ⋃_{e ∈ E₂} (Q₁ ⋈ ¬R_e)`;
//! * Lemma 7.2 — every SCQ is an intersection of DCQs;
//! * Lemma 7.6 / Theorem 7.7 — deciding a DCQ of two full joins is possible in
//!   linear time iff `(y, E₁)` and every `(y, E₁ ∪ {e})`, `e ∈ E₂`, are α-acyclic.
//!
//! This module provides the SCQ type, safe (range-restricted) SCQ evaluation, the
//! Lemma 7.1 rewriting, and the linear-time decision procedure for DCQs.

use crate::error::DcqError;
use crate::query::{Atom, Dcq};
use crate::Result;
use dcq_exec::{anti_join, free_connex_evaluate};
use dcq_hypergraph::{is_alpha_acyclic, AttrSet};
use dcq_storage::{Database, Relation};
use std::fmt;

/// One atom of a signed conjunctive query.
#[derive(Clone, Debug)]
pub struct SignedAtom {
    /// The underlying atom.
    pub atom: Atom,
    /// `true` iff the atom is negated (`¬R(…)`).
    pub negated: bool,
}

/// A signed conjunctive query.
#[derive(Clone, Debug)]
pub struct SignedCq {
    /// Query name.
    pub name: String,
    /// Output variables.
    pub head: Vec<dcq_storage::Attr>,
    /// The signed body.
    pub atoms: Vec<SignedAtom>,
}

impl SignedCq {
    /// Positive atoms of the body.
    pub fn positive_atoms(&self) -> Vec<&Atom> {
        self.atoms
            .iter()
            .filter(|a| !a.negated)
            .map(|a| &a.atom)
            .collect()
    }

    /// Negated atoms of the body.
    pub fn negative_atoms(&self) -> Vec<&Atom> {
        self.atoms
            .iter()
            .filter(|a| a.negated)
            .map(|a| &a.atom)
            .collect()
    }

    /// Hyperedges of the positive part.
    pub fn positive_edges(&self) -> Vec<AttrSet> {
        self.positive_atoms().iter().map(|a| a.attr_set()).collect()
    }

    /// Hyperedges of the negated part.
    pub fn negative_edges(&self) -> Vec<AttrSet> {
        self.negative_atoms().iter().map(|a| a.attr_set()).collect()
    }

    /// `true` iff every variable of a negated atom also occurs in a positive atom —
    /// the *safety* (range restriction) condition under which the query can be
    /// evaluated without enumerating attribute domains.
    pub fn is_safe(&self) -> bool {
        let positive_vars = self
            .positive_edges()
            .iter()
            .fold(AttrSet::empty(), |acc, e| acc.union(e));
        self.negative_edges()
            .iter()
            .all(|e| e.is_subset(&positive_vars))
    }

    /// Theorem 7.5: the SCQ is decidable in linear time iff `(y, E⁺ ∪ S)` is
    /// α-acyclic for every subset `S ⊆ E⁻`.
    pub fn linear_time_decidable(&self) -> bool {
        let positive = self.positive_edges();
        let negative = self.negative_edges();
        // Enumerate subsets of the (constant-size) negative edge set.
        let m = negative.len();
        for mask in 0..(1usize << m) {
            let mut edges = positive.clone();
            for (i, e) in negative.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    edges.push(e.clone());
                }
            }
            if !is_alpha_acyclic(&edges) {
                return false;
            }
        }
        true
    }

    /// Evaluate a *safe* SCQ: join the positive atoms, then anti-join every negated
    /// atom, then project onto the head.
    pub fn evaluate(&self, db: &Database) -> Result<Relation> {
        if !self.is_safe() {
            return Err(DcqError::PreconditionViolated {
                strategy: "SCQ evaluation",
                reason: "unsafe negation: a negated atom uses a variable that occurs in no positive atom"
                    .into(),
            });
        }
        let positive: Vec<Relation> = self
            .positive_atoms()
            .iter()
            .map(|a| a.bind(db))
            .collect::<Result<_>>()?;
        if positive.is_empty() {
            return Err(DcqError::Exec(dcq_exec::ExecError::EmptyQuery));
        }
        // Join the positive part (reference plan: left-deep joins; small queries).
        let mut acc = positive[0].clone();
        for r in &positive[1..] {
            acc = dcq_exec::natural_join(&acc, r);
        }
        // Apply each negated atom as an anti-join.
        for neg in self.negative_atoms() {
            let rel = neg.bind(db)?;
            acc = anti_join(&acc, &rel);
        }
        let head = dcq_storage::Schema::new(self.head.clone());
        Ok(acc.project(head.attrs())?)
    }
}

impl fmt::Display for SignedCq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if a.negated {
                write!(f, "¬")?;
            }
            write!(f, "{}", a.atom)?;
        }
        Ok(())
    }
}

/// Lemma 7.1: rewrite a DCQ as a union of SCQs, one per atom of `Q₂`, each negating
/// exactly that atom.
pub fn dcq_to_scqs(dcq: &Dcq) -> Vec<SignedCq> {
    dcq.q2
        .atoms
        .iter()
        .enumerate()
        .map(|(i, negated_atom)| {
            let mut atoms: Vec<SignedAtom> = dcq
                .q1
                .atoms
                .iter()
                .map(|a| SignedAtom {
                    atom: a.clone(),
                    negated: false,
                })
                .collect();
            atoms.push(SignedAtom {
                atom: negated_atom.clone(),
                negated: true,
            });
            SignedCq {
                name: format!("{}_scq{}", dcq.q1.name, i + 1),
                head: dcq.q1.head.clone(),
                atoms,
            }
        })
        .collect()
}

/// Evaluate a DCQ through the Lemma 7.1 rewriting (union of single-negation SCQs).
///
/// Only valid when `Q₁` and `Q₂` are full joins over the same variables (so that a
/// `Q₁` result assigns every variable a negated atom mentions); the planner's
/// algorithms in [`crate::easy`] / [`crate::heuristics`] handle the general case.
pub fn evaluate_dcq_via_scq(dcq: &Dcq, db: &Database) -> Result<Relation> {
    let scqs = dcq_to_scqs(dcq);
    let head = dcq.head_schema();
    let mut result = Relation::new("dcq_via_scq", head.clone());
    result.assume_distinct();
    for scq in &scqs {
        let part = scq.evaluate(db)?;
        result = result.union_set(&part)?;
    }
    Ok(result)
}

/// Theorem 7.7: a DCQ of two full joins is decidable in linear time iff `(y, E₁)` is
/// α-acyclic and `(y, E₁ ∪ {e})` is α-acyclic for every `e ∈ E₂`.
pub fn dcq_linear_time_decidable(dcq: &Dcq) -> bool {
    let e1 = dcq.q1.edges();
    let e2 = dcq.q2.edges();
    if !is_alpha_acyclic(&e1) {
        return false;
    }
    e2.iter().all(|e| {
        let mut augmented = e1.clone();
        augmented.push(e.clone());
        is_alpha_acyclic(&augmented)
    })
}

/// Lemma 7.6's linear-time decision procedure: is `Q₁ − Q₂` non-empty?
///
/// For every `e ∈ E₂` the projection `π_e Q₁` is free-connex (by the decidability
/// condition), so it can be enumerated in linear time; the difference is non-empty
/// iff some projected tuple is missing from `R′_e`, or some negated relation is
/// empty while `Q₁` is not.
pub fn decide_dcq_nonempty(dcq: &Dcq, db: &Database) -> Result<bool> {
    let q1_atoms = dcq.q1.bind(db)?;
    for atom in &dcq.q2.atoms {
        let rel = atom.bind(db)?;
        let edge_schema = rel.schema().clone();
        let s_e = free_connex_evaluate(&edge_schema, &q1_atoms)?;
        let witnesses = s_e.minus(&rel)?;
        if !witnesses.is_empty() {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{baseline_dcq, CqStrategy};
    use crate::parse::parse_dcq;
    use dcq_storage::row::int_row;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "R",
            &["a", "b"],
            vec![vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 1]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "S",
            &["a", "b"],
            vec![vec![1, 2], vec![3, 4]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows("T", &["b"], vec![vec![2], vec![4]]))
            .unwrap();
        db
    }

    #[test]
    fn scq_evaluation_with_single_negation() {
        // Q(a,b) :- R(a,b), ¬S(a,b): the paper's running "NOT EXISTS" shape.
        let scq = SignedCq {
            name: "Q".into(),
            head: vec![dcq_storage::Attr::new("a"), dcq_storage::Attr::new("b")],
            atoms: vec![
                SignedAtom {
                    atom: Atom::new("R", &["a", "b"]),
                    negated: false,
                },
                SignedAtom {
                    atom: Atom::new("S", &["a", "b"]),
                    negated: true,
                },
            ],
        };
        assert!(scq.is_safe());
        let out = scq.evaluate(&db()).unwrap();
        assert_eq!(out.sorted_rows(), vec![int_row([2, 3]), int_row([4, 1])]);
        assert!(format!("{scq}").contains('¬'));
    }

    #[test]
    fn unsafe_scq_is_rejected() {
        let scq = SignedCq {
            name: "Q".into(),
            head: vec![dcq_storage::Attr::new("a")],
            atoms: vec![
                SignedAtom {
                    atom: Atom::new("T", &["a"]),
                    negated: false,
                },
                SignedAtom {
                    atom: Atom::new("R", &["a", "z"]),
                    negated: true,
                },
            ],
        };
        assert!(!scq.is_safe());
        assert!(scq.evaluate(&db()).is_err());
    }

    #[test]
    fn lemma_7_1_rewriting_matches_dcq_semantics() {
        // Q1 and Q2 are full joins over the same variables.
        let dcq = parse_dcq("Q(a, b) :- R(a, b) EXCEPT S(a, b), T(b)").unwrap();
        let db = db();
        let via_scq = evaluate_dcq_via_scq(&dcq, &db).unwrap();
        let expected = baseline_dcq(&dcq, &db, CqStrategy::Vanilla).unwrap();
        assert_eq!(via_scq.sorted_rows(), expected.sorted_rows());
        assert_eq!(dcq_to_scqs(&dcq).len(), 2);
    }

    #[test]
    fn theorem_7_7_classification() {
        // Path query minus an edge that closes a triangle: not linear-time decidable.
        let hard = parse_dcq("Q(a, b, c) :- R(a, b), R(b, c) EXCEPT S(a, c)").unwrap();
        assert!(!dcq_linear_time_decidable(&hard));
        // Same-shape subtraction: decidable in linear time.
        let easy = parse_dcq("Q(a, b) :- R(a, b) EXCEPT S(a, b)").unwrap();
        assert!(dcq_linear_time_decidable(&easy));
    }

    #[test]
    fn theorem_7_5_scq_classification() {
        // Positive path + two negated edges closing a cycle is not linear-decidable.
        let scq = SignedCq {
            name: "Q".into(),
            head: vec![],
            atoms: vec![
                SignedAtom {
                    atom: Atom::new("R", &["a", "b"]),
                    negated: false,
                },
                SignedAtom {
                    atom: Atom::new("R", &["b", "c"]),
                    negated: false,
                },
                SignedAtom {
                    atom: Atom::new("S", &["a", "c"]),
                    negated: true,
                },
            ],
        };
        assert!(!scq.linear_time_decidable());
        let scq_easy = SignedCq {
            name: "Q".into(),
            head: vec![],
            atoms: vec![
                SignedAtom {
                    atom: Atom::new("R", &["a", "b"]),
                    negated: false,
                },
                SignedAtom {
                    atom: Atom::new("S", &["a", "b"]),
                    negated: true,
                },
            ],
        };
        assert!(scq_easy.linear_time_decidable());
    }

    #[test]
    fn decision_procedure_matches_emptiness_of_result() {
        let db = db();
        let dcq = parse_dcq("Q(a, b) :- R(a, b) EXCEPT S(a, b), T(b)").unwrap();
        let nonempty = decide_dcq_nonempty(&dcq, &db).unwrap();
        let result = baseline_dcq(&dcq, &db, CqStrategy::Vanilla).unwrap();
        assert_eq!(nonempty, !result.is_empty());

        // A DCQ whose difference is empty: subtract the relation from itself.
        let dcq = parse_dcq("Q(a, b) :- R(a, b) EXCEPT R(a, b)").unwrap();
        assert!(!decide_dcq_nonempty(&dcq, &db).unwrap());
    }
}
