//! End-to-end tests of the DCQ view service: protocol round-trips against a
//! control engine, subscription streams, admission control under a wedged
//! ingest thread, kill-and-restart crash recovery, and read/ingest isolation.

use dcq_engine::{CompactionPolicy, DcqEngine};
use dcq_server::client::{DcqClient, PushOutcome, RETRY_HINT_CAP_MS};
use dcq_server::loadgen::parse_metric;
use dcq_server::{recover, DcqServer, DurabilityConfig, ServerConfig};
use dcq_storage::row::int_row;
use dcq_storage::{Database, DeltaBatch, Relation};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIFF_QUERY: &str = "Q(x, y) :- Graph(x, z), Graph(z, y) EXCEPT Graph(x, y)";
const FILTER_QUERY: &str = "Q(x, y) :- Graph(x, y) EXCEPT Blocked(x, y)";

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dcq-service-test-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn seeded_db() -> Database {
    let mut db = Database::new();
    db.add(Relation::from_int_rows(
        "Graph",
        &["src", "dst"],
        (0..8i64).map(|i| vec![i, (i + 1) % 8]),
    ))
    .unwrap();
    db.add(Relation::from_int_rows(
        "Blocked",
        &["src", "dst"],
        Vec::<Vec<i64>>::new(),
    ))
    .unwrap();
    db
}

fn edge_batch(step: i64) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    batch.insert("Graph", int_row([100 + step, step % 8]));
    batch.insert("Graph", int_row([step % 8, 200 + step]));
    batch
}

#[test]
fn service_round_trip_matches_local_engine() {
    let db = seeded_db();
    let mut control = DcqEngine::with_database(db.clone());
    let control_view = control
        .register_with(
            dcq_core::parse_dcq(DIFF_QUERY).unwrap(),
            dcq_core::IncrementalStrategy::Counting,
        )
        .unwrap();

    let server = DcqServer::start(DcqEngine::with_database(db), ServerConfig::default()).unwrap();
    let mut client = DcqClient::connect(server.addr()).unwrap();

    let reg = client.register(DIFF_QUERY, Some("counting")).unwrap();
    assert_eq!(reg.strategy, "counting");
    assert_eq!(reg.epoch, 0);

    let mut last_epoch = 0;
    for step in 0..6 {
        let batch = edge_batch(step);
        control.apply(&batch).unwrap();
        match client.push(&batch).unwrap() {
            PushOutcome::Acked(ack) => last_epoch = ack.epoch,
            PushOutcome::Overloaded { .. } => panic!("unloaded server pushed back"),
        }
    }
    assert_eq!(last_epoch, 6);

    // Read from a *different* connection, gated on the pushed epoch: the
    // published snapshot must match the control engine's materialization.
    let mut reader = DcqClient::connect(server.addr()).unwrap();
    let reply = reader.read(reg.view, Some(last_epoch)).unwrap();
    assert_eq!(reply.epoch, last_epoch);
    assert_eq!(
        reply.rows,
        control.result(control_view).unwrap().sorted_rows()
    );
    assert!(!reply.rows.is_empty(), "test query should produce rows");

    // Protocol error paths: bad pushes are rejected without consuming an
    // epoch, reads of unknown views fail, bad strategies fail.
    let mut bad = DeltaBatch::new();
    bad.insert("NoSuchRelation", int_row([1, 2]));
    assert!(client
        .push(&bad)
        .unwrap_err()
        .to_string()
        .contains("unknown relation"));
    let mut wrong_arity = DeltaBatch::new();
    wrong_arity.insert("Graph", int_row([1, 2, 3]));
    assert!(client
        .push(&wrong_arity)
        .unwrap_err()
        .to_string()
        .contains("arity mismatch"));
    assert!(reader
        .read(999, None)
        .unwrap_err()
        .to_string()
        .contains("unknown view"));
    assert!(client.register(DIFF_QUERY, Some("psychic")).is_err());
    assert_eq!(
        server.committed_epoch(),
        6,
        "rejected pushes advance nothing"
    );

    // Metrics verb: one exposition containing engine and server families.
    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("dcq_engine_epoch 6"));
    assert_eq!(parse_metric(&metrics, "dcq_server_push_total"), Some(6));
    assert_eq!(parse_metric(&metrics, "dcq_server_read_total"), Some(1));

    // Deregistration makes the view unknown to later reads.
    client.deregister(reg.view).unwrap();
    assert!(reader.read(reg.view, None).is_err());

    // The shutdown verb stops the service; the handle's shutdown() then just
    // reaps threads and returns the engine at the committed epoch.
    client.shutdown().unwrap();
    let engine = server.shutdown().unwrap();
    assert_eq!(engine.epoch(), 6);
}

#[test]
fn subscription_streams_result_churn() {
    let server = DcqServer::start(
        DcqEngine::with_database(seeded_db()),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = DcqClient::connect(server.addr()).unwrap();
    let reg = client.register(FILTER_QUERY, Some("rerun")).unwrap();

    let sub_conn = DcqClient::connect(server.addr()).unwrap();
    let mut sub = sub_conn.subscribe(reg.view).unwrap();
    assert_eq!(sub.start_epoch(), 0);

    // A fresh edge enters the result...
    let mut insert = DeltaBatch::new();
    insert.insert("Graph", int_row([41, 42]));
    client.push(&insert).unwrap();
    let event = sub.next_event().unwrap().expect("stream open");
    assert_eq!(event.epoch, 1);
    assert_eq!(event.added, vec![int_row([41, 42])]);
    assert!(event.removed.is_empty());

    // ...then gets blocked, so it leaves the result.
    let mut block = DeltaBatch::new();
    block.insert("Blocked", int_row([41, 42]));
    client.push(&block).unwrap();
    let event = sub.next_event().unwrap().expect("stream open");
    assert_eq!(event.epoch, 2);
    assert!(event.added.is_empty());
    assert_eq!(event.removed, vec![int_row([41, 42])]);

    // A batch that does not churn this view's result emits no event: the next
    // thing on the stream after another churning batch is epoch 4, not 3.
    let mut unrelated = DeltaBatch::new();
    unrelated.insert("Blocked", int_row([7, 7]));
    client.push(&unrelated).unwrap();
    let mut churn = DeltaBatch::new();
    churn.insert("Graph", int_row([51, 52]));
    client.push(&churn).unwrap();
    let event = sub.next_event().unwrap().expect("stream open");
    assert_eq!(event.epoch, 4);
    assert_eq!(event.added, vec![int_row([51, 52])]);

    // Graceful shutdown closes the stream rather than wedging it.
    let engine = server.shutdown().unwrap();
    assert_eq!(engine.epoch(), 4);
    assert!(sub.next_event().unwrap().is_none());
}

#[test]
fn full_ingest_queue_answers_overloaded_and_loses_nothing() {
    let server = DcqServer::start(
        DcqEngine::with_database(seeded_db()),
        ServerConfig::with_capacity(4),
    )
    .unwrap();
    let addr = server.addr();

    // Wedge the ingest thread. The stall verb acks when the sleep *starts*.
    let mut admin = DcqClient::connect(addr).unwrap();
    admin.stall(800).unwrap();

    // 12 concurrent one-shot pushers against a queue of 4: some get queued
    // (their acks arrive once the stall ends), the rest must be pushed back
    // immediately with a positive retry hint — not block, not deadlock.
    let acked = Arc::new(AtomicU64::new(0));
    let overloaded = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut joins = Vec::new();
    for step in 0..12 {
        let acked = Arc::clone(&acked);
        let overloaded = Arc::clone(&overloaded);
        joins.push(std::thread::spawn(move || {
            let mut client = DcqClient::connect_retry(addr, 8).unwrap();
            match client.push(&edge_batch(step)).unwrap() {
                PushOutcome::Acked(_) => {
                    acked.fetch_add(1, Ordering::Relaxed);
                }
                PushOutcome::Overloaded { retry_after_ms } => {
                    assert!(retry_after_ms >= 1, "hint must be positive");
                    overloaded.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for join in joins {
        join.join().unwrap();
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "overload handling must not deadlock"
    );
    let acked = acked.load(Ordering::Relaxed);
    let overloaded = overloaded.load(Ordering::Relaxed);
    assert_eq!(acked + overloaded, 12, "every push got exactly one answer");
    assert!(acked >= 1, "queued pushes drain once the stall ends");
    assert!(
        overloaded >= 1,
        "a queue of 4 cannot absorb 12 pushes during the stall"
    );

    // Zero lost acked batches: each ack was one epoch advance, and the
    // server-side counters agree with what the clients observed.
    let metrics = admin.metrics().unwrap();
    assert_eq!(server.committed_epoch(), acked);
    assert_eq!(parse_metric(&metrics, "dcq_server_push_total"), Some(acked));
    assert_eq!(
        parse_metric(&metrics, "dcq_server_overloaded_total"),
        Some(overloaded)
    );

    // The service is healthy after the storm: the next push is acked.
    match admin.push(&edge_batch(99)).unwrap() {
        PushOutcome::Acked(ack) => assert_eq!(ack.epoch, acked + 1),
        PushOutcome::Overloaded { .. } => panic!("drained server pushed back"),
    }

    // Second storm, this time with retrying pushers: every honoured pushback
    // must sleep at least the server's (capped) hint — the client may add
    // jitter on top but never undercuts what admission control asked for.
    admin.stall(400).unwrap();
    let mut fillers = Vec::new();
    for step in 100..108 {
        fillers.push(std::thread::spawn(move || {
            let mut filler = DcqClient::connect_retry(addr, 8).unwrap();
            // Generous retry budget: hints here are ~1ms, and a rejected
            // pusher must outlast the whole stall, not a fixed count.
            filler.push_with_retry(&edge_batch(step), 10_000).unwrap();
        }));
    }
    // Let the fillers occupy the queue so the probe below gets pushed back.
    std::thread::sleep(Duration::from_millis(50));
    let mut probe = DcqClient::connect_retry(addr, 8).unwrap();
    let (_, rejections) = probe.push_with_retry(&edge_batch(108), 10_000).unwrap();
    for join in fillers {
        join.join().unwrap();
    }
    let observations = probe.retry_observations();
    assert_eq!(observations.len() as u32, rejections);
    for obs in observations {
        assert!(
            obs.slept_ms >= obs.hint_ms.min(RETRY_HINT_CAP_MS),
            "client slept {}ms against a {}ms hint",
            obs.slept_ms,
            obs.hint_ms
        );
    }
    server.shutdown().unwrap();
}

#[test]
fn kill_and_restart_recovers_identical_state() {
    let dir = temp_dir("kill-restart");
    let db = seeded_db();
    // The control runs the same batches uninterrupted on a plain engine.
    let mut control = DcqEngine::with_database(db.clone());
    let control_view = control
        .register_with(
            dcq_core::parse_dcq(DIFF_QUERY).unwrap(),
            dcq_core::IncrementalStrategy::Counting,
        )
        .unwrap();

    let config = ServerConfig {
        durability: Some(DurabilityConfig::at(&dir)),
        // Tight bound so checkpoint rotation provably happens mid-stream.
        compaction: CompactionPolicy::max_retained_batches(3),
        ..ServerConfig::default()
    };
    let server = DcqServer::start(DcqEngine::with_database(db), config).unwrap();
    let mut client = DcqClient::connect(server.addr()).unwrap();
    client.register(DIFF_QUERY, Some("counting")).unwrap();
    for step in 0..10 {
        let batch = edge_batch(step);
        control.apply(&batch).unwrap();
        match client.push(&batch).unwrap() {
            PushOutcome::Acked(_) => {}
            PushOutcome::Overloaded { .. } => panic!("unloaded server pushed back"),
        }
    }
    // Crash: no final checkpoint, no drain — the disk is left as-is.
    server.kill().unwrap();

    let (mut recovered, report) = recover(&dir).unwrap();
    assert!(
        report.checkpoint_epoch >= 4,
        "the retained-batches bound must have checkpointed mid-stream \
         (got {report:?})"
    );
    assert_eq!(
        report.checkpoint_epoch - report.wal_base_epoch,
        report.skipped as u64
    );
    assert_eq!(
        report.checkpoint_epoch + report.replayed as u64,
        10,
        "checkpoint ⊕ retained WAL tail must reach the acked epoch"
    );
    assert!(!report.torn_tail);

    // Bit-identical store: same epoch, same rows in every relation.
    assert_eq!(recovered.epoch(), control.epoch());
    for (name, relation) in control.database().iter() {
        assert_eq!(
            recovered.database().get(name).unwrap().sorted_rows(),
            relation.sorted_rows(),
            "relation {name} diverged across the crash"
        );
    }
    // And identical view results once the view is re-registered (view
    // registrations are session state, the store is the durable part).
    let view = recovered
        .register_with(
            dcq_core::parse_dcq(DIFF_QUERY).unwrap(),
            dcq_core::IncrementalStrategy::Counting,
        )
        .unwrap();
    assert_eq!(
        recovered.result(view).unwrap().sorted_rows(),
        control.result(control_view).unwrap().sorted_rows()
    );

    // The recovered engine serves again — and keeps recovering after more
    // writes land in the same directory.
    let config = ServerConfig {
        durability: Some(DurabilityConfig::at(&dir)),
        compaction: CompactionPolicy::max_retained_batches(3),
        ..ServerConfig::default()
    };
    let server = DcqServer::start(recovered, config).unwrap();
    let mut client = DcqClient::connect(server.addr()).unwrap();
    let reg = client.register(DIFF_QUERY, Some("counting")).unwrap();
    control.apply(&edge_batch(10)).unwrap();
    match client.push(&edge_batch(10)).unwrap() {
        PushOutcome::Acked(ack) => assert_eq!(ack.epoch, 11),
        PushOutcome::Overloaded { .. } => panic!("unloaded server pushed back"),
    }
    let reply = client.read(reg.view, Some(11)).unwrap();
    assert_eq!(
        reply.rows,
        control.result(control_view).unwrap().sorted_rows()
    );
    server.kill().unwrap();
    let (recovered, _) = recover(&dir).unwrap();
    assert_eq!(recovered.epoch(), 11);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_wal_tail_recovers_to_the_last_intact_epoch() {
    let dir = temp_dir("torn-e2e");
    let config = ServerConfig {
        durability: Some(DurabilityConfig::at(&dir)),
        // No compaction: all ten batches stay in the WAL so tearing the tail
        // provably lands on a batch frame.
        ..ServerConfig::default()
    };
    let server = DcqServer::start(DcqEngine::with_database(seeded_db()), config).unwrap();
    let mut client = DcqClient::connect(server.addr()).unwrap();
    for step in 0..10 {
        client.push(&edge_batch(step)).unwrap();
    }
    server.kill().unwrap();

    // Power-loss simulation: the tail of the last appended frame never made
    // it to disk.
    let wal = dir.join("wal.log");
    let len = std::fs::metadata(&wal).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    file.set_len(len - 3).unwrap();
    drop(file);

    let (recovered, report) = recover(&dir).unwrap();
    assert!(report.torn_tail, "the cut frame must be detected");
    assert_eq!(report.replayed, 9);
    assert_eq!(
        recovered.epoch(),
        9,
        "recovery stops at the last intact frame; the torn one is discarded"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_reads_do_not_slow_ingest() {
    let server = DcqServer::start(
        DcqEngine::with_database(seeded_db()),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr();
    let mut client = DcqClient::connect(addr).unwrap();
    let reg = client.register(DIFF_QUERY, Some("counting")).unwrap();

    let per_view_cost = |metrics: &str| -> (u64, u64) {
        (
            parse_metric(metrics, "dcq_engine_view_cost_ns_sum").unwrap_or(0),
            parse_metric(metrics, "dcq_engine_view_cost_ns_count").unwrap_or(0),
        )
    };

    // One measurement: a no-read baseline phase, then the same ingest with
    // reader threads hammering the snapshot path.  Means are per (batch,
    // view) maintenance cost from `dcq_engine_view_cost_ns` — thread-CPU
    // time, so snapshot-served reads must not show up in it at all.
    let mut step = 0i64;
    let mut measure = |client: &mut DcqClient| -> (u64, u64, u64) {
        let (sum_0, count_0) = per_view_cost(&client.metrics().unwrap());
        for _ in 0..40 {
            client.push(&edge_batch(step)).unwrap();
            step += 1;
        }
        let (sum_1, count_1) = per_view_cost(&client.metrics().unwrap());

        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let stop = Arc::clone(&stop);
            let view = reg.view;
            readers.push(std::thread::spawn(move || {
                let mut reader = DcqClient::connect_retry(addr, 8).unwrap();
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    reader.read(view, None).unwrap();
                    reads += 1;
                }
                reads
            }));
        }
        for _ in 0..40 {
            client.push(&edge_batch(step)).unwrap();
            step += 1;
        }
        let (sum_2, count_2) = per_view_cost(&client.metrics().unwrap());
        stop.store(true, Ordering::Relaxed);
        let reads: u64 = readers.into_iter().map(|j| j.join().unwrap()).sum();
        assert!(reads > 0, "readers must actually have been running");
        let mean_baseline = (sum_1 - sum_0) / (count_1 - count_0).max(1);
        let mean_loaded = (sum_2 - sum_1) / (count_2 - count_1).max(1);
        (mean_baseline, mean_loaded, reads)
    };

    // Mean per-batch maintenance cost under read load must stay within 2x
    // the no-read baseline (plus a small absolute floor so near-zero
    // baselines don't make the ratio degenerate).  On a loaded 1-core CI
    // box cache/scheduler noise can spike a single measurement, so only
    // fail if the degradation reproduces across several attempts — a real
    // isolation bug (reads queueing behind or locking out ingest) fails
    // every attempt.
    let mut last = (0, 0, 0);
    let isolated = (0..3).any(|_| {
        last = measure(&mut client);
        let (mean_baseline, mean_loaded, _) = last;
        mean_loaded <= mean_baseline * 2 + 50_000
    });
    let (mean_baseline, mean_loaded, reads) = last;
    assert!(
        isolated,
        "per-batch maintenance cost degraded under read load in every attempt: \
         baseline {mean_baseline}ns, under load {mean_loaded}ns ({reads} reads)"
    );
    server.shutdown().unwrap();
}

#[test]
fn graceful_shutdown_checkpoints_so_recovery_needs_no_replay() {
    let dir = temp_dir("graceful");
    let config = ServerConfig {
        durability: Some(DurabilityConfig::at(&dir)),
        ..ServerConfig::default()
    };
    let server = DcqServer::start(DcqEngine::with_database(seeded_db()), config).unwrap();
    let mut client = DcqClient::connect(server.addr()).unwrap();
    for step in 0..5 {
        client.push(&edge_batch(step)).unwrap();
    }
    let engine = server.shutdown().unwrap();
    assert_eq!(engine.epoch(), 5);

    let (recovered, report) = recover(&dir).unwrap();
    assert_eq!(
        report.checkpoint_epoch, 5,
        "shutdown wrote a final checkpoint"
    );
    assert_eq!(report.replayed, 0, "nothing left in the WAL to replay");
    assert_eq!(recovered.epoch(), 5);
    std::fs::remove_dir_all(&dir).unwrap();
}
