//! A minimal blocking client for the service protocol, used by the tests,
//! the example binary and the load harness.

use crate::json::Json;
use crate::proto::{read_frame, row_from_json, write_frame, Request};
use dcq_storage::{DeltaBatch, Epoch, Row};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One connection to a [`crate::DcqServer`].
pub struct DcqClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    retry_observations: Vec<RetryObservation>,
}

/// Ceiling on how long a client sleeps on one `overloaded` hint.  The server
/// clamps its own hint to 10s; a matching client cap means a corrupt or
/// hostile hint can never park a caller for minutes.
pub const RETRY_HINT_CAP_MS: u64 = 10_000;

/// One honoured admission-control pushback: the hint the server sent and how
/// long the client actually slept before retrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryObservation {
    /// The server's `retry_after_ms` drain-time estimate.
    pub hint_ms: u64,
    /// Wall milliseconds the client slept before its retry.
    pub slept_ms: u64,
}

/// How long to back off for a `retry_after_ms` hint: the hint itself (capped
/// at [`RETRY_HINT_CAP_MS`]) plus up to ~25% deterministic jitter from `salt`,
/// so a herd of clients rejected together does not retry together.
pub fn retry_backoff_ms(hint_ms: u64, salt: u64) -> u64 {
    let base = hint_ms.clamp(1, RETRY_HINT_CAP_MS);
    // xorshift64 — no rand dependency; `salt` varies per client and attempt.
    let mut x = salt | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    base + x % (base / 4 + 1)
}

/// A successful push acknowledgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PushReply {
    /// The committed epoch the batch advanced the store to.
    pub epoch: Epoch,
    /// Result tuples that entered any view.
    pub result_added: usize,
    /// Result tuples that left any view.
    pub result_removed: usize,
}

/// The server's answer to a push: accepted, or pushed back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// Committed (WAL-logged first when the server is durable).
    Acked(PushReply),
    /// Admission control rejected the batch; retry after the hinted delay.
    Overloaded {
        /// The server's drain-time estimate.
        retry_after_ms: u64,
    },
}

/// A view registration acknowledgement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisterReply {
    /// The view id all later verbs use.
    pub view: u64,
    /// Epoch the initial materialization is valid at.
    pub epoch: Epoch,
    /// The strategy the engine actually chose (`rerun`/`counting`/`adaptive`).
    pub strategy: String,
}

/// A `read` answer: the full result set at `epoch`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadReply {
    /// Epoch the snapshot is valid at.
    pub epoch: Epoch,
    /// The sorted result rows.
    pub rows: Vec<Row>,
}

/// One result-churn event from a subscription stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaEvent {
    /// Commit epoch that produced the churn.
    pub epoch: Epoch,
    /// Rows that entered the result.
    pub added: Vec<Row>,
    /// Rows that left the result.
    pub removed: Vec<Row>,
}

fn protocol_err(msg: impl Into<String>) -> io::Error {
    io::Error::other(msg.into())
}

impl DcqClient {
    /// Connect to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<DcqClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(DcqClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            retry_observations: Vec::new(),
        })
    }

    /// Connect, retrying briefly — for harnesses racing server startup or
    /// saturating the listener backlog.
    pub fn connect_retry(addr: SocketAddr, attempts: u32) -> io::Result<DcqClient> {
        let mut last = None;
        for attempt in 0..attempts.max(1) {
            match DcqClient::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(Duration::from_millis(2 << attempt.min(6)));
                }
            }
        }
        Err(last.unwrap_or_else(|| protocol_err("connect failed")))
    }

    /// Set the read timeout on the underlying socket.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    fn round_trip(&mut self, request: &Request) -> io::Result<Json> {
        write_frame(&mut self.writer, &request.to_json())?;
        match read_frame(&mut self.reader)? {
            Some((json, _)) => Ok(json),
            None => Err(protocol_err("server closed the connection")),
        }
    }

    fn expect_ok(reply: Json) -> io::Result<Json> {
        match reply.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(reply),
            _ => {
                let msg = reply
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("malformed reply");
                Err(protocol_err(format!("server error: {msg}")))
            }
        }
    }

    /// Register a DCQ; `strategy` is `rerun`/`counting`/`adaptive` or `None`
    /// for the engine's adaptive default.
    pub fn register(&mut self, query: &str, strategy: Option<&str>) -> io::Result<RegisterReply> {
        let reply = Self::expect_ok(self.round_trip(&Request::Register {
            query: query.to_string(),
            strategy: strategy.map(str::to_string),
        })?)?;
        Ok(RegisterReply {
            view: field_u64(&reply, "view")?,
            epoch: field_u64(&reply, "epoch")?,
            strategy: reply
                .get("strategy")
                .and_then(Json::as_str)
                .unwrap_or("adaptive")
                .to_string(),
        })
    }

    /// Drop a view registration.
    pub fn deregister(&mut self, view: u64) -> io::Result<()> {
        Self::expect_ok(self.round_trip(&Request::Deregister { view })?)?;
        Ok(())
    }

    /// Push one delta batch; distinguishes commit from admission-control
    /// pushback (any other server error is an `Err`).
    pub fn push(&mut self, batch: &DeltaBatch) -> io::Result<PushOutcome> {
        let reply = self.round_trip(&Request::Push {
            batch: batch.clone(),
        })?;
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            return Ok(PushOutcome::Acked(PushReply {
                epoch: field_u64(&reply, "epoch")?,
                result_added: field_u64(&reply, "result_added")? as usize,
                result_removed: field_u64(&reply, "result_removed")? as usize,
            }));
        }
        if reply.get("error").and_then(Json::as_str) == Some("overloaded") {
            return Ok(PushOutcome::Overloaded {
                retry_after_ms: reply
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .unwrap_or(1),
            });
        }
        Err(protocol_err(format!(
            "server error: {}",
            reply
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("malformed reply")
        )))
    }

    /// Push with bounded retry on `overloaded`, honouring the server's
    /// `retry_after_ms` hints (capped at [`RETRY_HINT_CAP_MS`], jittered via
    /// [`retry_backoff_ms`]).  Returns the ack and how many times admission
    /// control pushed back; each honoured hint is recorded in
    /// [`DcqClient::retry_observations`].
    pub fn push_with_retry(
        &mut self,
        batch: &DeltaBatch,
        max_retries: u32,
    ) -> io::Result<(PushReply, u32)> {
        let mut rejections = 0u32;
        let salt_base = self as *const DcqClient as u64;
        loop {
            match self.push(batch)? {
                PushOutcome::Acked(reply) => return Ok((reply, rejections)),
                PushOutcome::Overloaded { retry_after_ms } => {
                    rejections += 1;
                    if rejections > max_retries {
                        return Err(protocol_err(format!(
                            "still overloaded after {max_retries} retries"
                        )));
                    }
                    let backoff = retry_backoff_ms(retry_after_ms, salt_base ^ rejections as u64);
                    let slept = std::time::Instant::now();
                    std::thread::sleep(Duration::from_millis(backoff));
                    self.retry_observations.push(RetryObservation {
                        hint_ms: retry_after_ms,
                        slept_ms: slept.elapsed().as_millis() as u64,
                    });
                }
            }
        }
    }

    /// Every admission-control pushback this connection honoured so far:
    /// the server's hint and the wall time actually slept before the retry.
    pub fn retry_observations(&self) -> &[RetryObservation] {
        &self.retry_observations
    }

    /// Read a view's full result set, optionally gated on a minimum epoch.
    pub fn read(&mut self, view: u64, min_epoch: Option<Epoch>) -> io::Result<ReadReply> {
        let reply = Self::expect_ok(self.round_trip(&Request::Read { view, min_epoch })?)?;
        let rows = reply
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| protocol_err("read reply missing rows"))?
            .iter()
            .map(|j| row_from_json(j).map_err(protocol_err))
            .collect::<io::Result<Vec<Row>>>()?;
        Ok(ReadReply {
            epoch: field_u64(&reply, "epoch")?,
            rows,
        })
    }

    /// Prometheus text exposition (engine + server registries).
    pub fn metrics(&mut self) -> io::Result<String> {
        let reply = Self::expect_ok(self.round_trip(&Request::Metrics)?)?;
        Ok(reply
            .get("metrics")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string())
    }

    /// Test/debug: stall the ingest thread for `ms` milliseconds.
    pub fn stall(&mut self, ms: u64) -> io::Result<()> {
        Self::expect_ok(self.round_trip(&Request::Stall { ms })?)?;
        Ok(())
    }

    /// Ask the server to drain and stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        Self::expect_ok(self.round_trip(&Request::Shutdown)?)?;
        Ok(())
    }

    /// Turn this connection into a subscription stream for `view`.  Returns
    /// the snapshot epoch the stream starts after; use
    /// [`Subscription::next_event`]
    /// for events.  The connection is consumed — streams are dedicated.
    pub fn subscribe(mut self, view: u64) -> io::Result<Subscription> {
        let reply = Self::expect_ok(self.round_trip(&Request::Subscribe { view })?)?;
        let epoch = field_u64(&reply, "epoch")?;
        Ok(Subscription {
            reader: self.reader,
            start_epoch: epoch,
        })
    }
}

fn field_u64(json: &Json, field: &str) -> io::Result<u64> {
    json.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| protocol_err(format!("reply missing field `{field}`")))
}

/// The receive half of a `subscribe`d connection.
pub struct Subscription {
    reader: BufReader<TcpStream>,
    start_epoch: Epoch,
}

impl Subscription {
    /// Epoch of the snapshot the stream starts after (events carry later
    /// epochs).
    pub fn start_epoch(&self) -> Epoch {
        self.start_epoch
    }

    /// Block for the next result-churn event; `Ok(None)` when the server
    /// closed the stream.
    pub fn next_event(&mut self) -> io::Result<Option<DeltaEvent>> {
        let Some((json, _)) = read_frame(&mut self.reader)? else {
            return Ok(None);
        };
        if json.get("event").and_then(Json::as_str) != Some("delta") {
            return Err(protocol_err("unexpected frame on subscription stream"));
        }
        let rows = |field: &str| -> io::Result<Vec<Row>> {
            json.get(field)
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(|j| row_from_json(j).map_err(protocol_err))
                .collect()
        };
        Ok(Some(DeltaEvent {
            epoch: field_u64(&json, "epoch")?,
            added: rows("added")?,
            removed: rows("removed")?,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::{retry_backoff_ms, RETRY_HINT_CAP_MS};

    #[test]
    fn backoff_honours_the_hint_up_to_the_cap() {
        for salt in 0..64u64 {
            // An honest hint is honoured in full, plus at most 25% jitter.
            let b = retry_backoff_ms(40, salt);
            assert!((40..=50).contains(&b), "backoff {b} for hint 40");
            // A hostile hint is capped, jitter included.
            let b = retry_backoff_ms(u64::MAX, salt);
            assert!((RETRY_HINT_CAP_MS..=RETRY_HINT_CAP_MS + RETRY_HINT_CAP_MS / 4).contains(&b));
            // A zero hint still backs off a little instead of busy-spinning.
            assert!(retry_backoff_ms(0, salt) >= 1);
        }
        // Different salts actually spread the herd.
        let spread: std::collections::HashSet<u64> =
            (0..64).map(|salt| retry_backoff_ms(1000, salt)).collect();
        assert!(spread.len() > 8, "jitter must vary with the salt");
    }
}
