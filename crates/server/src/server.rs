//! The concurrent view service itself.
//!
//! # Threading model
//!
//! One **ingestion thread** owns the [`DcqEngine`] outright (`&mut` — no lock
//! around the engine, ever) and drains a *bounded* command queue.  Mutating
//! verbs (`push`, `register`, `deregister`) and engine-introspection verbs
//! (`metrics`) travel through that queue; each command carries a reply slot
//! its submitter blocks on.
//!
//! Every client connection gets a handler thread, and those handlers *are*
//! the query workers: `read` and `subscribe` are answered entirely from
//! immutable [`ResultSnapshot`]s the ingest thread publishes after each
//! commit, so reads never enqueue behind writes and never touch the engine.
//!
//! # Admission control
//!
//! The ingest queue is a `sync_channel` of configurable depth.  `push` uses
//! `try_send`: a full queue answers `overloaded` immediately with a
//! `retry_after_ms` hint derived from the ingest thread's EWMA of apply time
//! (its commit + fan-out + policy phases, the same work the engine's
//! `dcq_engine_commit_ns`/`dcq_engine_fanout_ns` histograms break down)
//! multiplied by the queue depth — i.e. "how long until your slot would
//! drain".  Control verbs use a blocking send; they are rare and must not be
//! droppable.
//!
//! # Durability
//!
//! With a [`DurabilityConfig`], the ingest thread appends every batch to the
//! WAL **before** applying it, and the engine's scheduled-compaction hook
//! writes checkpoints + rotates the WAL (see [`crate::durability`]).  Batches
//! are validated against the store schema *before* the append, so every WAL
//! record corresponds to exactly one epoch advance — the arithmetic crash
//! recovery leans on.  [`DcqServer::shutdown`] writes a final checkpoint;
//! [`DcqServer::kill`] deliberately does not (crash semantics, for tests).

use crate::durability::{Durability, DurabilityConfig};
use crate::json::Json;
use crate::proto::{self, read_frame, rows_to_json, write_frame, Request};
use dcq_core::{parse_dcq, IncrementalStrategy};
use dcq_engine::{CompactionPolicy, DcqEngine, ViewHandle};
use dcq_storage::fanout::WorkerPool;
use dcq_storage::{DeltaBatch, Epoch, Row};
use dcq_telemetry::MetricsRegistry;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning knobs for [`DcqServer::start`].
#[derive(Debug)]
pub struct ServerConfig {
    /// Bound of the ingest command queue; a full queue rejects pushes with
    /// `overloaded` (admission control) rather than queueing unboundedly.
    pub ingest_capacity: usize,
    /// When set, every acked batch is on disk before the ack (WAL) and the
    /// engine's compaction policy checkpoints + rotates through it.
    pub durability: Option<DurabilityConfig>,
    /// Scheduled compaction bound installed on the engine (checked in the
    /// apply policy tail).  Unbounded by default.
    pub compaction: CompactionPolicy,
    /// How long a `read` with `min_epoch` waits for the commit gate before
    /// giving up with an error.
    pub read_wait_timeout: Duration,
    /// Stack size for per-connection handler threads; kept small so a
    /// thousand idle connections stay cheap.
    pub handler_stack_bytes: usize,
    /// Engine worker width (fan-out, sharded commit, fold partitions).
    /// `None` reserves one core for the ingest thread: the engine gets
    /// `default_workers() - 1` (min 1) so its pool never oversubscribes the
    /// host while ingest owns a core.  Set explicitly to override.
    pub engine_workers: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            ingest_capacity: 256,
            durability: None,
            compaction: CompactionPolicy::default(),
            read_wait_timeout: Duration::from_secs(5),
            handler_stack_bytes: 256 * 1024,
            engine_workers: None,
        }
    }
}

impl ServerConfig {
    /// Default config with the given ingest queue bound.
    pub fn with_capacity(ingest_capacity: usize) -> Self {
        ServerConfig {
            ingest_capacity,
            ..ServerConfig::default()
        }
    }
}

/// An immutable published view result: the full (deduplicated, sorted) result
/// set as of `epoch`.  Handlers serve `read` from the newest snapshot without
/// touching the engine.
#[derive(Debug)]
pub struct ResultSnapshot {
    /// Commit epoch this snapshot is valid at.
    pub epoch: Epoch,
    /// Sorted result rows (shared — republished unchanged results reuse it).
    pub rows: Arc<Vec<Row>>,
}

/// One result-churn event on a subscription stream.
#[derive(Clone, Debug)]
struct SubEvent {
    epoch: Epoch,
    view: u64,
    added: Arc<Vec<Row>>,
    removed: Arc<Vec<Row>>,
}

/// A reply slot a handler blocks on while the ingest thread works: a
/// `Mutex<Option<T>>` + condvar pair.
struct ReplySlot<T>(Arc<(Mutex<Option<T>>, Condvar)>);

impl<T> ReplySlot<T> {
    fn new() -> Self {
        ReplySlot(Arc::new((Mutex::new(None), Condvar::new())))
    }

    fn clone_slot(&self) -> Self {
        ReplySlot(Arc::clone(&self.0))
    }

    fn fill(&self, value: T) {
        let (lock, cv) = &*self.0;
        *lock.lock().unwrap_or_else(|p| p.into_inner()) = Some(value);
        cv.notify_all();
    }

    /// Wait for the ingest thread's answer.  The generous bound only trips if
    /// the ingest thread died without replying.
    fn wait(self) -> Option<T> {
        let (lock, cv) = &*self.0;
        let mut guard = lock.lock().unwrap_or_else(|p| p.into_inner());
        let deadline = Instant::now() + Duration::from_secs(120);
        while guard.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = cv
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            guard = g;
        }
        guard.take()
    }
}

/// A successful push acknowledgement.
struct PushAck {
    epoch: Epoch,
    result_added: usize,
    result_removed: usize,
}

/// A successful registration.
struct RegisterAck {
    view: u64,
    epoch: Epoch,
    strategy: String,
}

enum Command {
    Push {
        batch: DeltaBatch,
        reply: ReplySlot<Result<PushAck, String>>,
    },
    Register {
        query: String,
        strategy: Option<String>,
        reply: ReplySlot<Result<RegisterAck, String>>,
    },
    Deregister {
        view: u64,
        reply: ReplySlot<Result<(), String>>,
    },
    Metrics {
        reply: ReplySlot<String>,
    },
    Stall {
        ms: u64,
        reply: ReplySlot<()>,
    },
    Shutdown {
        reply: ReplySlot<()>,
    },
    /// Crash-semantics stop: break the ingest loop *without* a final
    /// checkpoint, leaving the durability directory as a crash would.
    Kill,
}

/// Counters/gauges/histograms owned by the server layer (`dcq_server_*`);
/// rendered by the `metrics` verb appended to the engine's exposition.
struct ServerMetrics {
    registry: MetricsRegistry,
    requests: Arc<dcq_telemetry::Counter>,
    pushes: Arc<dcq_telemetry::Counter>,
    overloaded: Arc<dcq_telemetry::Counter>,
    reads: Arc<dcq_telemetry::Counter>,
    read_gate_timeouts: Arc<dcq_telemetry::Counter>,
    subscriber_events: Arc<dcq_telemetry::Counter>,
    wal_records: Arc<dcq_telemetry::Counter>,
    wal_bytes: Arc<dcq_telemetry::Counter>,
    connections_total: Arc<dcq_telemetry::Counter>,
    active_connections: Arc<dcq_telemetry::Gauge>,
    queue_depth: Arc<dcq_telemetry::Gauge>,
    apply_ewma_ns: Arc<dcq_telemetry::Gauge>,
    push_wait_ns: Arc<dcq_telemetry::Histogram>,
    read_ns: Arc<dcq_telemetry::Histogram>,
}

impl ServerMetrics {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        ServerMetrics {
            requests: registry.counter("dcq_server_requests_total", "Requests decoded"),
            pushes: registry.counter("dcq_server_push_total", "Push batches accepted"),
            overloaded: registry.counter(
                "dcq_server_overloaded_total",
                "Pushes rejected by admission control (full ingest queue)",
            ),
            reads: registry.counter("dcq_server_read_total", "Read requests answered"),
            read_gate_timeouts: registry.counter(
                "dcq_server_read_gate_timeouts_total",
                "Reads that timed out waiting for min_epoch",
            ),
            subscriber_events: registry.counter(
                "dcq_server_subscriber_events_total",
                "Result-churn events delivered to subscribers",
            ),
            wal_records: registry.counter("dcq_server_wal_records_total", "WAL frames appended"),
            wal_bytes: registry.counter("dcq_server_wal_bytes_total", "WAL bytes appended"),
            connections_total: registry
                .counter("dcq_server_connections_total", "Connections accepted"),
            active_connections: registry.gauge(
                "dcq_server_active_connections",
                "Currently open connections",
            ),
            queue_depth: registry.gauge(
                "dcq_server_ingest_queue_depth",
                "Commands currently queued for the ingest thread",
            ),
            apply_ewma_ns: registry.gauge(
                "dcq_server_apply_ewma_ns",
                "EWMA of per-batch apply wall time (drives retry_after_ms)",
            ),
            push_wait_ns: registry.histogram(
                "dcq_server_push_wait_ns",
                "Handler-observed push latency: enqueue to ack",
            ),
            read_ns: registry.histogram(
                "dcq_server_read_ns",
                "Handler-observed read latency (incl. min_epoch gate)",
            ),
            registry,
        }
    }
}

/// State shared between the ingest thread, the acceptor and all handlers.
struct Shared {
    /// Store schema (relation → arity), fixed at start; handlers pre-validate
    /// pushes against it so every enqueued (and WAL-logged) batch advances
    /// the epoch by exactly one.
    schema: HashMap<String, usize>,
    /// Published snapshots, keyed by protocol view id.
    views: Mutex<HashMap<u64, Arc<ResultSnapshot>>>,
    /// Commit gate: the newest committed epoch, for `read { min_epoch }`.
    committed: Mutex<Epoch>,
    committed_cv: Condvar,
    /// Per-view subscriber channels, fed by the ingest thread.
    subscribers: Mutex<HashMap<u64, Vec<mpsc::Sender<SubEvent>>>>,
    metrics: ServerMetrics,
    /// EWMA of apply wall nanos (admission-control input).
    apply_ewma_ns: AtomicU64,
    ingest_capacity: usize,
    stop: AtomicBool,
    read_wait_timeout: Duration,
}

impl Shared {
    fn publish_epoch(&self, epoch: Epoch) {
        let mut committed = self.committed.lock().unwrap_or_else(|p| p.into_inner());
        if epoch > *committed {
            *committed = epoch;
            self.committed_cv.notify_all();
        }
    }

    fn committed(&self) -> Epoch {
        *self.committed.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Block until the committed epoch reaches `min`; `None` on timeout.
    fn wait_for_epoch(&self, min: Epoch) -> Option<Epoch> {
        let mut committed = self.committed.lock().unwrap_or_else(|p| p.into_inner());
        let deadline = Instant::now() + self.read_wait_timeout;
        while *committed < min {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self
                .committed_cv
                .wait_timeout(committed, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            committed = g;
        }
        Some(*committed)
    }

    /// The `retry_after_ms` hint: EWMA apply time × queue capacity — roughly
    /// how long a full queue takes to drain — clamped to [1ms, 10s].
    fn retry_after_ms(&self) -> u64 {
        let ewma = self.apply_ewma_ns.load(Ordering::Relaxed);
        let drain_ns = ewma.saturating_mul(self.ingest_capacity as u64);
        (drain_ns / 1_000_000).clamp(1, 10_000)
    }
}

/// A running DCQ view service bound to a loopback TCP port.
pub struct DcqServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    tx: SyncSender<Command>,
    ingest: Option<JoinHandle<DcqEngine>>,
    acceptor: Option<JoinHandle<()>>,
}

impl DcqServer {
    /// Start serving `engine` on an OS-assigned loopback port.
    ///
    /// When `config.durability` is set, a fresh checkpoint of the engine's
    /// current state is written first (so the on-disk pair is consistent
    /// before the first client connects) and the engine's checkpoint sink +
    /// compaction policy are installed.
    pub fn start(mut engine: DcqEngine, config: ServerConfig) -> io::Result<DcqServer> {
        let durability = match &config.durability {
            Some(cfg) => {
                let d = Durability::initialize(cfg, &engine)?;
                engine.set_checkpoint_sink(Some(d.sink()));
                Some(d)
            }
            None => None,
        };
        engine.set_compaction_policy(config.compaction);
        // The ingest thread below owns a core of its own; with the default
        // width the engine pool would oversubscribe by one, so reserve it.
        let workers = config
            .engine_workers
            .unwrap_or_else(|| WorkerPool::default_workers().saturating_sub(1).max(1));
        engine.set_workers(workers);

        let schema = engine
            .database()
            .iter()
            .map(|(name, rel)| (name.clone(), rel.schema().arity()))
            .collect();
        let shared = Arc::new(Shared {
            schema,
            views: Mutex::new(HashMap::new()),
            committed: Mutex::new(engine.epoch()),
            committed_cv: Condvar::new(),
            subscribers: Mutex::new(HashMap::new()),
            metrics: ServerMetrics::new(),
            apply_ewma_ns: AtomicU64::new(0),
            ingest_capacity: config.ingest_capacity,
            stop: AtomicBool::new(false),
            read_wait_timeout: config.read_wait_timeout,
        });

        let (tx, rx) = mpsc::sync_channel::<Command>(config.ingest_capacity.max(1));
        let ingest = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("dcq-ingest".into())
                .spawn(move || ingest_loop(engine, durability, rx, shared))?
        };

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            let stack = config.handler_stack_bytes;
            thread::Builder::new()
                .name("dcq-accept".into())
                .spawn(move || accept_loop(listener, tx, shared, stack))?
        };

        Ok(DcqServer {
            addr,
            shared,
            tx,
            ingest: Some(ingest),
            acceptor: Some(acceptor),
        })
    }

    /// The loopback address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The newest committed epoch.
    pub fn committed_epoch(&self) -> Epoch {
        self.shared.committed()
    }

    /// Graceful stop: drain queued commands, write a final checkpoint (when
    /// durable), and hand the engine back.
    pub fn shutdown(mut self) -> io::Result<DcqEngine> {
        let reply = ReplySlot::new();
        // A full queue must not wedge shutdown; blocking send drains in turn.
        // A failed send means the ingest loop already exited (e.g. a client
        // issued the `shutdown` verb) — nothing to wait for then.
        if self
            .tx
            .send(Command::Shutdown {
                reply: reply.clone_slot(),
            })
            .is_ok()
        {
            reply.wait();
        }
        self.stop_acceptor();
        let engine = self.join_ingest()?;
        Ok(engine)
    }

    /// Crash-semantics stop for recovery tests: the ingest loop breaks
    /// *without* a final checkpoint and queued-but-unacked work is dropped,
    /// leaving the durability directory exactly as a `kill -9` would.
    pub fn kill(mut self) -> io::Result<()> {
        let _ = self.tx.send(Command::Kill);
        self.stop_acceptor();
        self.join_ingest()?;
        Ok(())
    }

    fn stop_acceptor(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    fn join_ingest(&mut self) -> io::Result<DcqEngine> {
        match self.ingest.take() {
            Some(h) => h
                .join()
                .map_err(|_| io::Error::other("ingest thread panicked")),
            None => Err(io::Error::other("server already stopped")),
        }
    }
}

impl Drop for DcqServer {
    fn drop(&mut self) {
        if self.ingest.is_some() {
            // Blocking send, NOT try_send: a full queue would drop the Kill
            // silently, and the join below would then wedge forever on an
            // ingest loop blocked in recv() (this handle's sender keeps the
            // channel open).  The ingest thread drains the queue, so the send
            // completes; if the thread already exited, the send fails fast.
            let _ = self.tx.send(Command::Kill);
            self.stop_acceptor();
            if let Some(h) = self.ingest.take() {
                let _ = h.join();
            }
        }
    }
}

fn ewma_update(shared: &Shared, sample_ns: u64) {
    // α = 1/8, integer arithmetic: new = old + (sample − old)/8.
    let old = shared.apply_ewma_ns.load(Ordering::Relaxed);
    let new = if old == 0 {
        sample_ns
    } else {
        (old * 7 + sample_ns) / 8
    };
    shared.apply_ewma_ns.store(new, Ordering::Relaxed);
    shared.metrics.apply_ewma_ns.set(new);
}

/// Sorted-merge diff: `(added, removed)` going from `old` to `new`.
fn diff_sorted(old: &[Row], new: &[Row]) -> (Vec<Row>, Vec<Row>) {
    let (mut added, mut removed) = (Vec::new(), Vec::new());
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < new.len() {
        match old[i].cmp(&new[j]) {
            std::cmp::Ordering::Less => {
                removed.push(old[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                added.push(new[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    removed.extend_from_slice(&old[i..]);
    added.extend_from_slice(&new[j..]);
    (added, removed)
}

fn strategy_name(s: IncrementalStrategy) -> &'static str {
    match s {
        IncrementalStrategy::EasyRerun => "rerun",
        IncrementalStrategy::Counting => "counting",
        IncrementalStrategy::Adaptive => "adaptive",
    }
}

/// The ingest thread: sole owner of the engine and (via the shared WAL
/// writer) the append side of durability.
fn ingest_loop(
    mut engine: DcqEngine,
    durability: Option<Durability>,
    rx: Receiver<Command>,
    shared: Arc<Shared>,
) -> DcqEngine {
    // Protocol id → (engine handle, last published rows), ingest-private.
    let mut views: HashMap<u64, (ViewHandle, Arc<Vec<Row>>)> = HashMap::new();
    let mut next_view: u64 = 1;
    // Once durability fails the service stops acking writes rather than
    // diverging from its log.
    let mut poisoned: Option<String> = None;

    // The loop ends on Shutdown/Kill, or when every sender is gone (server
    // handle dropped) — the latter also has crash semantics.
    while let Ok(cmd) = rx.recv() {
        shared.metrics.queue_depth.sub(1);
        match cmd {
            Command::Push { batch, reply } => {
                if let Some(why) = &poisoned {
                    reply.fill(Err(format!("service read-only: {why}")));
                    continue;
                }
                // Handlers pre-validate, but re-check here: the WAL append
                // below must only ever log batches that will commit.
                if let Err(e) = validate_batch(&batch, &shared.schema) {
                    reply.fill(Err(e));
                    continue;
                }
                if let Some(d) = &durability {
                    let appended = d
                        .wal
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .append(&batch);
                    if let Err(e) = appended {
                        let why = format!("WAL append failed: {e}");
                        poisoned = Some(why.clone());
                        reply.fill(Err(why));
                        continue;
                    }
                    shared.metrics.wal_records.inc();
                    shared.metrics.wal_bytes.add(batch.approx_bytes() as u64);
                }
                let started = Instant::now();
                match engine.apply(&batch) {
                    Ok(report) => {
                        ewma_update(&shared, started.elapsed().as_nanos() as u64);
                        publish(&mut views, &engine, &shared, report.epoch);
                        shared.publish_epoch(report.epoch);
                        reply.fill(Ok(PushAck {
                            epoch: report.epoch,
                            result_added: report.result_added,
                            result_removed: report.result_removed,
                        }));
                    }
                    Err(e) => {
                        // Unreachable after validation; if it happens with a
                        // WAL record already written, the log no longer
                        // matches reality — stop acking writes.
                        let why = format!("apply failed: {e}");
                        if durability.is_some() {
                            poisoned = Some(why.clone());
                        }
                        reply.fill(Err(why));
                    }
                }
            }
            Command::Register {
                query,
                strategy,
                reply,
            } => {
                reply.fill(do_register(
                    &mut engine,
                    &shared,
                    &mut views,
                    &mut next_view,
                    &query,
                    strategy.as_deref(),
                ));
            }
            Command::Deregister { view, reply } => {
                let outcome = match views.remove(&view) {
                    Some((handle, _)) => {
                        shared
                            .views
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .remove(&view);
                        shared
                            .subscribers
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .remove(&view);
                        engine.deregister(handle).map_err(|e| e.to_string())
                    }
                    None => Err(format!("unknown view {view}")),
                };
                reply.fill(outcome);
            }
            Command::Metrics { reply } => {
                reply.fill(engine.metrics());
            }
            Command::Stall { ms, reply } => {
                // Ack first — the point of the verb is to wedge the *queue*,
                // and the test issuing it needs its ack to proceed.
                reply.fill(());
                thread::sleep(Duration::from_millis(ms));
            }
            Command::Shutdown { reply } => {
                if poisoned.is_none() {
                    if let Some(d) = &durability {
                        let mut sink = d.sink();
                        let _ = dcq_engine::CheckpointSink::write_checkpoint(
                            &mut *sink,
                            engine.epoch(),
                            engine.database(),
                        );
                    }
                }
                reply.fill(());
                break;
            }
            Command::Kill => break,
        }
    }
    // Drop all subscriber senders so streaming handlers see disconnect and
    // terminate their connections.
    shared
        .subscribers
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clear();
    engine
}

fn do_register(
    engine: &mut DcqEngine,
    shared: &Shared,
    views: &mut HashMap<u64, (ViewHandle, Arc<Vec<Row>>)>,
    next_view: &mut u64,
    query: &str,
    strategy: Option<&str>,
) -> Result<RegisterAck, String> {
    let dcq = parse_dcq(query).map_err(|e| format!("parse error: {e}"))?;
    let handle = match strategy {
        None | Some("adaptive") => engine.register_adaptive(dcq),
        Some("rerun") => engine.register_with(dcq, IncrementalStrategy::EasyRerun),
        Some("counting") => engine.register_with(dcq, IncrementalStrategy::Counting),
        Some(other) => return Err(format!("unknown strategy `{other}`")),
    }
    .map_err(|e| e.to_string())?;
    let strategy = engine
        .view(handle)
        .map(|v| strategy_name(v.strategy()))
        .unwrap_or("adaptive");
    let id = *next_view;
    *next_view += 1;
    let rows = Arc::new(
        engine
            .result(handle)
            .map_err(|e| e.to_string())?
            .sorted_rows(),
    );
    let epoch = engine.epoch();
    views.insert(id, (handle, Arc::clone(&rows)));
    shared
        .views
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(id, Arc::new(ResultSnapshot { epoch, rows }));
    Ok(RegisterAck {
        view: id,
        epoch,
        strategy: strategy.to_string(),
    })
}

/// After a commit: refresh every view's published snapshot and feed each
/// view's result churn to its subscribers.
fn publish(
    views: &mut HashMap<u64, (ViewHandle, Arc<Vec<Row>>)>,
    engine: &DcqEngine,
    shared: &Shared,
    epoch: Epoch,
) {
    let mut published = shared.views.lock().unwrap_or_else(|p| p.into_inner());
    let mut subscribers = shared.subscribers.lock().unwrap_or_else(|p| p.into_inner());
    for (&id, (handle, prev_rows)) in views.iter_mut() {
        let rows = match engine.result(*handle) {
            Ok(rel) => rel.sorted_rows(),
            Err(_) => continue,
        };
        let rows = if rows == **prev_rows {
            Arc::clone(prev_rows)
        } else {
            let fresh = Arc::new(rows);
            if let Some(subs) = subscribers.get_mut(&id) {
                let (added, removed) = diff_sorted(prev_rows, &fresh);
                if !added.is_empty() || !removed.is_empty() {
                    let event = SubEvent {
                        epoch,
                        view: id,
                        added: Arc::new(added),
                        removed: Arc::new(removed),
                    };
                    subs.retain(|tx| tx.send(event.clone()).is_ok());
                    shared.metrics.subscriber_events.add(subs.len() as u64);
                }
            }
            *prev_rows = Arc::clone(&fresh);
            fresh
        };
        published.insert(id, Arc::new(ResultSnapshot { epoch, rows }));
    }
}

fn validate_batch(batch: &DeltaBatch, schema: &HashMap<String, usize>) -> Result<(), String> {
    for (relation, ops) in batch.iter() {
        let Some(&arity) = schema.get(relation) else {
            return Err(format!("unknown relation `{relation}`"));
        };
        for (row, sign) in ops {
            if row.arity() != arity {
                return Err(format!(
                    "arity mismatch for `{relation}`: expected {arity}, got {}",
                    row.arity()
                ));
            }
            if *sign != 1 && *sign != -1 {
                return Err(format!("bad op sign {sign} for `{relation}`"));
            }
        }
    }
    Ok(())
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<Command>,
    shared: Arc<Shared>,
    stack_bytes: usize,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        shared.metrics.connections_total.inc();
        shared.metrics.active_connections.add(1);
        let tx = tx.clone();
        let conn_shared = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name("dcq-conn".into())
            .stack_size(stack_bytes)
            .spawn(move || {
                let _ = handle_connection(stream, tx, &conn_shared);
                conn_shared.metrics.active_connections.sub(1);
            });
        if spawned.is_err() {
            shared.metrics.active_connections.sub(1);
        }
    }
}

/// Send a command on the bounded queue, blocking (control verbs).
fn send_blocking(tx: &SyncSender<Command>, shared: &Shared, cmd: Command) -> Result<(), String> {
    shared.metrics.queue_depth.add(1);
    tx.send(cmd).map_err(|_| {
        shared.metrics.queue_depth.sub(1);
        "server is shutting down".to_string()
    })
}

fn handle_connection(
    stream: TcpStream,
    tx: SyncSender<Command>,
    shared: &Shared,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some((json, _))) => json,
            Ok(None) => return Ok(()),
            Err(e) => {
                // Frame-level garbage: answer once, then drop the connection
                // (re-sync is impossible without framing).
                let _ = write_frame(&mut writer, &proto::error(format!("bad frame: {e}")));
                return Ok(());
            }
        };
        shared.metrics.requests.inc();
        let request = match Request::from_json(&frame) {
            Ok(r) => r,
            Err(msg) => {
                write_frame(&mut writer, &proto::error(msg))?;
                continue;
            }
        };
        match request {
            Request::Push { batch } => handle_push(&mut writer, &tx, shared, batch)?,
            Request::Read { view, min_epoch } => handle_read(&mut writer, shared, view, min_epoch)?,
            Request::Subscribe { view } => {
                // The connection becomes a dedicated stream; this call only
                // returns when the stream ends.
                return handle_subscribe(&mut writer, shared, view);
            }
            Request::Register { query, strategy } => {
                let reply = ReplySlot::new();
                let sent = send_blocking(
                    &tx,
                    shared,
                    Command::Register {
                        query,
                        strategy,
                        reply: reply.clone_slot(),
                    },
                );
                let response = match sent {
                    Err(e) => proto::error(e),
                    Ok(()) => match reply.wait() {
                        Some(Ok(ack)) => proto::ok([
                            ("view", Json::Int(ack.view as i64)),
                            ("epoch", Json::Int(ack.epoch as i64)),
                            ("strategy", Json::str(ack.strategy)),
                        ]),
                        Some(Err(e)) => proto::error(e),
                        None => proto::error("ingest thread unresponsive"),
                    },
                };
                write_frame(&mut writer, &response)?;
            }
            Request::Deregister { view } => {
                let reply = ReplySlot::new();
                let sent = send_blocking(
                    &tx,
                    shared,
                    Command::Deregister {
                        view,
                        reply: reply.clone_slot(),
                    },
                );
                let response = match sent {
                    Err(e) => proto::error(e),
                    Ok(()) => match reply.wait() {
                        Some(Ok(())) => proto::ok([("view", Json::Int(view as i64))]),
                        Some(Err(e)) => proto::error(e),
                        None => proto::error("ingest thread unresponsive"),
                    },
                };
                write_frame(&mut writer, &response)?;
            }
            Request::Metrics => {
                let reply = ReplySlot::new();
                let sent = send_blocking(
                    &tx,
                    shared,
                    Command::Metrics {
                        reply: reply.clone_slot(),
                    },
                );
                let response = match sent {
                    Err(e) => proto::error(e),
                    Ok(()) => match reply.wait() {
                        Some(engine_text) => {
                            let mut text = engine_text;
                            text.push_str(&shared.metrics.registry.render_prometheus());
                            proto::ok([("metrics", Json::Str(text))])
                        }
                        None => proto::error("ingest thread unresponsive"),
                    },
                };
                write_frame(&mut writer, &response)?;
            }
            Request::Stall { ms } => {
                let reply = ReplySlot::new();
                let sent = send_blocking(
                    &tx,
                    shared,
                    Command::Stall {
                        ms,
                        reply: reply.clone_slot(),
                    },
                );
                let response = match sent {
                    Err(e) => proto::error(e),
                    Ok(()) => match reply.wait() {
                        Some(()) => proto::ok([("stalled_ms", Json::Int(ms as i64))]),
                        None => proto::error("ingest thread unresponsive"),
                    },
                };
                write_frame(&mut writer, &response)?;
            }
            Request::Shutdown => {
                let reply = ReplySlot::new();
                let sent = send_blocking(
                    &tx,
                    shared,
                    Command::Shutdown {
                        reply: reply.clone_slot(),
                    },
                );
                let response = match sent {
                    Err(e) => proto::error(e),
                    Ok(()) => {
                        reply.wait();
                        shared.stop.store(true, Ordering::SeqCst);
                        proto::ok([])
                    }
                };
                write_frame(&mut writer, &response)?;
                return Ok(());
            }
        }
    }
}

fn handle_push(
    writer: &mut impl Write,
    tx: &SyncSender<Command>,
    shared: &Shared,
    batch: DeltaBatch,
) -> io::Result<()> {
    let started = Instant::now();
    // Cheap rejection before the queue: invalid batches never consume a
    // queue slot or a WAL record.
    if let Err(e) = validate_batch(&batch, &shared.schema) {
        return write_frame(writer, &proto::error(e)).map(|_| ());
    }
    let reply = ReplySlot::new();
    shared.metrics.queue_depth.add(1);
    let response = match tx.try_send(Command::Push {
        batch,
        reply: reply.clone_slot(),
    }) {
        Err(TrySendError::Full(_)) => {
            shared.metrics.queue_depth.sub(1);
            shared.metrics.overloaded.inc();
            proto::overloaded(shared.retry_after_ms())
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.metrics.queue_depth.sub(1);
            proto::error("server is shutting down")
        }
        Ok(()) => match reply.wait() {
            Some(Ok(ack)) => {
                shared.metrics.pushes.inc();
                shared
                    .metrics
                    .push_wait_ns
                    .observe(started.elapsed().as_nanos() as u64);
                proto::ok([
                    ("epoch", Json::Int(ack.epoch as i64)),
                    ("result_added", Json::Int(ack.result_added as i64)),
                    ("result_removed", Json::Int(ack.result_removed as i64)),
                ])
            }
            Some(Err(e)) => proto::error(e),
            None => proto::error("ingest thread unresponsive"),
        },
    };
    write_frame(writer, &response).map(|_| ())
}

fn handle_read(
    writer: &mut impl Write,
    shared: &Shared,
    view: u64,
    min_epoch: Option<u64>,
) -> io::Result<()> {
    let started = Instant::now();
    if let Some(min) = min_epoch {
        if shared.wait_for_epoch(min).is_none() {
            shared.metrics.read_gate_timeouts.inc();
            return write_frame(
                writer,
                &proto::error(format!(
                    "timed out waiting for epoch {min} (committed {})",
                    shared.committed()
                )),
            )
            .map(|_| ());
        }
    }
    let snapshot = shared
        .views
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get(&view)
        .cloned();
    let response = match snapshot {
        Some(snap) => {
            shared.metrics.reads.inc();
            shared
                .metrics
                .read_ns
                .observe(started.elapsed().as_nanos() as u64);
            proto::ok([
                ("view", Json::Int(view as i64)),
                ("epoch", Json::Int(snap.epoch as i64)),
                ("count", Json::Int(snap.rows.len() as i64)),
                ("rows", rows_to_json(snap.rows.iter())),
            ])
        }
        None => proto::error(format!("unknown view {view}")),
    };
    write_frame(writer, &response).map(|_| ())
}

fn handle_subscribe(writer: &mut impl Write, shared: &Shared, view: u64) -> io::Result<()> {
    let snapshot = shared
        .views
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get(&view)
        .cloned();
    let Some(snapshot) = snapshot else {
        return write_frame(writer, &proto::error(format!("unknown view {view}"))).map(|_| ());
    };
    let (event_tx, event_rx) = mpsc::channel::<SubEvent>();
    shared
        .subscribers
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .entry(view)
        .or_default()
        .push(event_tx);
    write_frame(
        writer,
        &proto::ok([
            ("view", Json::Int(view as i64)),
            ("epoch", Json::Int(snapshot.epoch as i64)),
            ("count", Json::Int(snapshot.rows.len() as i64)),
        ]),
    )?;
    loop {
        match event_rx.recv_timeout(Duration::from_millis(500)) {
            Ok(event) => {
                let frame = Json::obj([
                    ("event", Json::str("delta")),
                    ("view", Json::Int(event.view as i64)),
                    ("epoch", Json::Int(event.epoch as i64)),
                    ("added", rows_to_json(event.added.iter())),
                    ("removed", rows_to_json(event.removed.iter())),
                ]);
                write_frame(writer, &frame)?;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}
