//! The durability half of the service: write-ahead log + checkpoint files and
//! crash recovery.
//!
//! On-disk layout inside the configured directory (formats from
//! [`dcq_storage::checkpoint`] — versioned headers, CRC-framed payloads):
//!
//! * `state.ckpt` — the newest database checkpoint (epoch + full state),
//!   always replaced atomically (`state.ckpt.tmp` + rename).
//! * `wal.log` — a header declaring its base epoch, then one self-checking
//!   frame per batch appended **before** that batch is applied and
//!   acknowledged.
//!
//! The invariant the two files uphold together:
//! **`checkpoint ⊕ retained WAL tail = current state`.**  Scheduled
//! compaction (the engine's [`CheckpointSink`] hook) replaces the checkpoint
//! first and only then rotates the WAL, so a crash between the two steps
//! leaves a WAL whose leading `checkpoint_epoch − wal_base_epoch` records are
//! already reflected in the checkpoint — [`recover`] skips exactly that many
//! and replays the rest.  A frame torn by a crash mid-append fails its CRC
//! and is treated as the end of the stream: the batch it held was never
//! acknowledged.

use dcq_engine::{CheckpointSink, DcqEngine};
use dcq_storage::checkpoint::{
    read_batch_frame_at, read_checkpoint, read_wal_header_versioned, write_batch_frame,
    write_checkpoint, write_wal_header,
};
use dcq_storage::{Database, DeltaBatch, Epoch, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Checkpoint file name inside the durability directory.
pub const CHECKPOINT_FILE: &str = "state.ckpt";
/// Write-ahead log file name inside the durability directory.
pub const WAL_FILE: &str = "wal.log";

/// Durability settings for a server.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding `state.ckpt` and `wal.log` (created if missing).
    pub dir: PathBuf,
    /// `sync_all` after every WAL append and checkpoint write.  Off by
    /// default: the service then survives process crashes (the acked data has
    /// left the process in page cache) but not power loss — the right trade
    /// for a benchmarkable default on a development box.
    pub fsync: bool,
}

impl DurabilityConfig {
    /// Durability rooted at `dir`, `fsync` off.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            fsync: false,
        }
    }
}

fn storage_to_io(e: StorageError) -> io::Error {
    io::Error::other(e.to_string())
}

/// The open WAL writer; shared (behind a mutex) between the ingest loop that
/// appends and the engine's checkpoint sink that rotates.
pub(crate) struct WalWriter {
    path: PathBuf,
    file: BufWriter<File>,
    fsync: bool,
    /// Frames appended since the last rotation.
    pub(crate) records: u64,
    /// Bytes appended since the last rotation (incl. header).
    pub(crate) bytes: u64,
}

impl WalWriter {
    /// Create (truncate) the WAL at `path` with a header declaring
    /// `base_epoch`.
    fn create(path: PathBuf, base_epoch: Epoch, fsync: bool) -> io::Result<WalWriter> {
        let mut file = BufWriter::new(File::create(&path)?);
        write_wal_header(&mut file, base_epoch).map_err(storage_to_io)?;
        file.flush()?;
        if fsync {
            file.get_ref().sync_all()?;
        }
        Ok(WalWriter {
            path,
            file,
            fsync,
            records: 0,
            bytes: 0,
        })
    }

    /// Append one batch frame and push it out of the process (flush, plus
    /// `sync_all` when configured).  Must complete before the batch is
    /// acknowledged.
    pub(crate) fn append(&mut self, batch: &DeltaBatch) -> io::Result<()> {
        let wrote = write_batch_frame(&mut self.file, batch).map_err(storage_to_io)?;
        self.file.flush()?;
        if self.fsync {
            self.file.get_ref().sync_all()?;
        }
        self.records += 1;
        self.bytes += wrote as u64;
        Ok(())
    }

    /// Atomically replace the WAL with an empty one based at `epoch`
    /// (tmp + rename); called right after the checkpoint covering everything
    /// before `epoch` has been persisted.
    fn rotate(&mut self, epoch: Epoch) -> io::Result<()> {
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut fresh = BufWriter::new(File::create(&tmp)?);
            write_wal_header(&mut fresh, epoch).map_err(storage_to_io)?;
            fresh.flush()?;
            if self.fsync {
                fresh.get_ref().sync_all()?;
            }
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = BufWriter::new(OpenOptions::new().append(true).open(&self.path)?);
        self.records = 0;
        self.bytes = 0;
        Ok(())
    }
}

/// The live durability state of a running server: the shared WAL writer plus
/// the directory the checkpoints go to.
pub(crate) struct Durability {
    dir: PathBuf,
    fsync: bool,
    pub(crate) wal: Arc<Mutex<WalWriter>>,
}

impl Durability {
    /// Start durability for `engine`'s current state: persist a fresh
    /// checkpoint at its epoch and open an empty WAL based there.  Called on
    /// every server start (fresh or recovered), so the on-disk pair is always
    /// internally consistent before the first client connects.
    pub(crate) fn initialize(config: &DurabilityConfig, engine: &DcqEngine) -> io::Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        let epoch = engine.epoch();
        write_checkpoint_file(&config.dir, config.fsync, epoch, engine.database())?;
        let wal = WalWriter::create(config.dir.join(WAL_FILE), epoch, config.fsync)?;
        Ok(Durability {
            dir: config.dir.clone(),
            fsync: config.fsync,
            wal: Arc::new(Mutex::new(wal)),
        })
    }

    /// The [`CheckpointSink`] to install on the engine: checkpoint first,
    /// rotate the WAL second (the order [`recover`]'s skip logic relies on).
    pub(crate) fn sink(&self) -> Box<dyn CheckpointSink> {
        Box::new(FileCheckpointSink {
            dir: self.dir.clone(),
            fsync: self.fsync,
            wal: Arc::clone(&self.wal),
        })
    }
}

fn write_checkpoint_file(dir: &Path, fsync: bool, epoch: Epoch, db: &Database) -> io::Result<()> {
    let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
    {
        let mut f = BufWriter::new(File::create(&tmp)?);
        write_checkpoint(&mut f, epoch, db).map_err(storage_to_io)?;
        f.flush()?;
        if fsync {
            f.get_ref().sync_all()?;
        }
    }
    std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))?;
    Ok(())
}

struct FileCheckpointSink {
    dir: PathBuf,
    fsync: bool,
    wal: Arc<Mutex<WalWriter>>,
}

impl CheckpointSink for FileCheckpointSink {
    fn write_checkpoint(&mut self, epoch: Epoch, database: &Database) -> io::Result<()> {
        write_checkpoint_file(&self.dir, self.fsync, epoch, database)?;
        // Only rotate once the checkpoint covering the old WAL is durable; a
        // crash in between leaves overlap, which recovery skips by epoch
        // arithmetic, never loss.
        self.wal
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .rotate(epoch)
    }
}

/// What [`recover`] found and did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the recovered checkpoint.
    pub checkpoint_epoch: Epoch,
    /// Base epoch the WAL declared.
    pub wal_base_epoch: Epoch,
    /// Leading WAL records skipped because the checkpoint already reflected
    /// them (`checkpoint_epoch − wal_base_epoch`).
    pub skipped: usize,
    /// WAL records replayed onto the checkpoint.
    pub replayed: usize,
    /// `true` iff the WAL ended in a torn (CRC-failing or cut-short) frame —
    /// the signature of a crash mid-append; the frame's batch was never
    /// acknowledged and is discarded.
    pub torn_tail: bool,
}

/// Rebuild an engine from `dir`: read the checkpoint, skip the WAL prefix the
/// checkpoint subsumes, and replay the tail.  The recovered engine resumes at
/// exactly the epoch the pre-crash engine last acknowledged (plus any batches
/// that were logged but not yet acked — standard WAL semantics).
pub fn recover(dir: impl AsRef<Path>) -> io::Result<(DcqEngine, RecoveryReport)> {
    let dir = dir.as_ref();
    let mut ckpt = BufReader::new(File::open(dir.join(CHECKPOINT_FILE))?);
    let (checkpoint_epoch, db) = read_checkpoint(&mut ckpt).map_err(storage_to_io)?;

    let mut wal = BufReader::new(File::open(dir.join(WAL_FILE))?);
    // The header declares the file's format version; every batch frame in the
    // file decodes in that version's layout (a WAL written by the previous
    // release replays just as well as a current one).
    let (wal_base_epoch, wal_version) =
        read_wal_header_versioned(&mut wal).map_err(storage_to_io)?;
    if wal_base_epoch > checkpoint_epoch {
        return Err(io::Error::other(format!(
            "WAL base epoch {wal_base_epoch} is ahead of checkpoint epoch {checkpoint_epoch}; \
             the directory mixes files from different runs"
        )));
    }
    let mut batches = Vec::new();
    let mut torn_tail = false;
    loop {
        match read_batch_frame_at(&mut wal, wal_version) {
            Ok(Some(batch)) => batches.push(batch),
            Ok(None) => break,
            Err(StorageError::Corrupt { .. }) => {
                // Crash mid-append: everything after this point was never
                // acknowledged.  Stop here.
                torn_tail = true;
                break;
            }
            Err(e) => return Err(storage_to_io(e)),
        }
    }

    // The WAL logs each batch *before* it is applied, so batch `i` advances
    // epoch `wal_base + i` — the first `checkpoint_epoch − wal_base` records
    // are already inside the checkpoint.
    let skipped = (checkpoint_epoch - wal_base_epoch) as usize;
    let mut engine = DcqEngine::with_database_at(db, checkpoint_epoch);
    let mut replayed = 0;
    for batch in batches.iter().skip(skipped) {
        engine
            .apply(batch)
            .map_err(|e| io::Error::other(format!("WAL replay failed: {e}")))?;
        replayed += 1;
    }
    Ok((
        engine,
        RecoveryReport {
            checkpoint_epoch,
            wal_base_epoch,
            skipped,
            replayed,
            torn_tail,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_storage::row::int_row;
    use dcq_storage::Relation;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dcq-server-test-{}-{tag}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seeded_engine() -> DcqEngine {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3]],
        ))
        .unwrap();
        DcqEngine::with_database(db)
    }

    fn push_batch(step: i64) -> DeltaBatch {
        let mut b = DeltaBatch::new();
        b.insert("Graph", int_row([100 + step, step]));
        b
    }

    #[test]
    fn initialize_append_recover_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut engine = seeded_engine();
        let durability = Durability::initialize(&DurabilityConfig::at(&dir), &engine).unwrap();
        for step in 0..5 {
            let batch = push_batch(step);
            durability.wal.lock().unwrap().append(&batch).unwrap();
            engine.apply(&batch).unwrap();
        }
        let (recovered, report) = recover(&dir).unwrap();
        assert_eq!(
            report,
            RecoveryReport {
                checkpoint_epoch: 0,
                wal_base_epoch: 0,
                skipped: 0,
                replayed: 5,
                torn_tail: false,
            }
        );
        assert_eq!(recovered.epoch(), engine.epoch());
        assert_eq!(
            recovered.database().get("Graph").unwrap().sorted_rows(),
            engine.database().get("Graph").unwrap().sorted_rows()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sink_rotation_skips_the_covered_prefix() {
        let dir = temp_dir("rotate");
        let mut engine = seeded_engine();
        let durability = Durability::initialize(&DurabilityConfig::at(&dir), &engine).unwrap();
        let mut sink = durability.sink();
        for step in 0..3 {
            let batch = push_batch(step);
            durability.wal.lock().unwrap().append(&batch).unwrap();
            engine.apply(&batch).unwrap();
        }
        // Checkpoint at epoch 3 → WAL rotates to base 3.
        sink.write_checkpoint(engine.epoch(), engine.database())
            .unwrap();
        for step in 3..5 {
            let batch = push_batch(step);
            durability.wal.lock().unwrap().append(&batch).unwrap();
            engine.apply(&batch).unwrap();
        }
        let (recovered, report) = recover(&dir).unwrap();
        assert_eq!(report.checkpoint_epoch, 3);
        assert_eq!(report.wal_base_epoch, 3);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.replayed, 2);
        assert_eq!(recovered.epoch(), 5);

        // Now simulate the crash window *between* checkpoint rename and WAL
        // rotation: write a newer checkpoint directly, leaving the WAL alone.
        write_checkpoint_file(&dir, false, engine.epoch(), engine.database()).unwrap();
        let (recovered, report) = recover(&dir).unwrap();
        assert_eq!(report.checkpoint_epoch, 5);
        assert_eq!(report.wal_base_epoch, 3);
        assert_eq!(report.skipped, 2, "overlap is skipped, not re-applied");
        assert_eq!(report.replayed, 0);
        assert_eq!(recovered.epoch(), 5);
        assert_eq!(
            recovered.database().get("Graph").unwrap().sorted_rows(),
            engine.database().get("Graph").unwrap().sorted_rows()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_discarded_not_fatal() {
        let dir = temp_dir("torn");
        let mut engine = seeded_engine();
        let durability = Durability::initialize(&DurabilityConfig::at(&dir), &engine).unwrap();
        for step in 0..3 {
            let batch = push_batch(step);
            durability.wal.lock().unwrap().append(&batch).unwrap();
            engine.apply(&batch).unwrap();
        }
        drop(durability);
        // Tear the last frame, as a crash mid-append would.
        let wal_path = dir.join(WAL_FILE);
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let (recovered, report) = recover(&dir).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.replayed, 2, "only the intact frames replay");
        assert_eq!(recovered.epoch(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
