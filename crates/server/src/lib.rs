//! `dcq-server`: a concurrent DCQ view service over TCP.
//!
//! The crate turns a [`dcq_engine::DcqEngine`] into a long-running service:
//!
//! * **[`proto`]** — the wire format: length-prefixed JSON frames (hand-rolled
//!   std-only codec in [`json`]) carrying `register` / `deregister` / `push` /
//!   `read` / `subscribe` / `metrics` / `stall` / `shutdown` verbs.
//! * **[`server`]** — the threading model: one ingestion thread owning the
//!   engine behind a *bounded* command queue (admission control answers
//!   `overloaded` with a telemetry-derived `retry_after_ms` when it fills),
//!   and per-connection handler threads that answer reads from published
//!   immutable result snapshots without ever blocking ingest.
//! * **[`durability`]** — crash safety: every acked batch is WAL-logged
//!   before it is applied, and the engine's scheduled compaction writes
//!   checkpoints and rotates the log so that
//!   `checkpoint ⊕ retained WAL tail = current state` at every instant;
//!   [`durability::recover`] rebuilds an engine from those two files.
//! * **[`client`]** — a small blocking client used by the tests, the example
//!   server and the `dcq-loadgen` harness.
//! * **[`loadgen`]** — the load harness: N concurrent connections pushing
//!   batches and reading views, with latency percentiles taken from the
//!   server's own histograms.
//!
//! Everything is `std`-only: TCP via `std::net`, threads + channels via
//! `std::sync`, the JSON codec and binary file formats hand-rolled.

pub mod client;
pub mod durability;
pub mod json;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use client::DcqClient;
pub use durability::{recover, DurabilityConfig, RecoveryReport};
pub use loadgen::{run_load, LoadReport, LoadSpec};
pub use server::{DcqServer, ResultSnapshot, ServerConfig};
