//! `dcq-loadgen`: self-hosted load harness for the DCQ view service.
//!
//! Starts a durable server in-process over a seeded graph store, registers a
//! difference view, then sweeps concurrent-connection counts (default
//! 8/64/256/1000), each point pushing fresh edge batches and reading the view
//! back.  Writes one JSON report per sweep point.
//!
//! ```text
//! dcq-loadgen [--clients 8,64,256,1000] [--budget 2000] [--capacity 256]
//!             [--out BENCH_service.json]
//! ```

use dcq_server::loadgen::{run_load, LoadSpec};
use dcq_server::{DcqClient, DcqServer, DurabilityConfig, ServerConfig};
use dcq_storage::{Database, Relation};
use std::io::Write;

/// The last sweep recorded on the boxed-slice `Row` storage layout (same
/// host class, default 8/64/256/1000 × 2000-push budget): `(clients,
/// push_throughput_per_s, push_p50_us, push_p99_us)`.  Emitted alongside a
/// default-parameter sweep so the report states before/after across the
/// flat-interned-storage change.
const BOXED_ROW_RECORDED: [(usize, f64, u64, u64); 4] = [
    (8, 526.4, 12_490, 33_447),
    (64, 495.8, 127_620, 233_279),
    (256, 437.3, 477_139, 954_260),
    (1000, 138.0, 2_808_246, 12_992_159),
];

fn main() {
    let mut clients: Vec<usize> = vec![8, 64, 256, 1000];
    let mut budget: usize = 2000;
    let mut capacity: usize = 256;
    let mut out = String::from("BENCH_service.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--clients" => {
                clients = value("--clients")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--clients: integers"))
                    .collect();
            }
            "--budget" => budget = value("--budget").parse().expect("--budget: integer"),
            "--capacity" => capacity = value("--capacity").parse().expect("--capacity: integer"),
            "--out" => out = value("--out"),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let durability_dir = std::env::temp_dir().join(format!("dcq-loadgen-{}", std::process::id()));
    let mut reports = Vec::new();
    for &n in &clients {
        // Fresh server per sweep point so points don't contaminate each
        // other's store size or telemetry counters.
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            (0..64i64).map(|i| vec![i, (i + 1) % 64]),
        ))
        .expect("seed relation");
        let engine = dcq_engine::DcqEngine::with_database(db);
        let dir = durability_dir.join(format!("c{n}"));
        let config = ServerConfig {
            ingest_capacity: capacity,
            durability: Some(DurabilityConfig::at(&dir)),
            compaction: dcq_engine::CompactionPolicy::max_retained_batches(64),
            ..ServerConfig::default()
        };
        let server = DcqServer::start(engine, config).expect("server start");

        let mut admin = DcqClient::connect(server.addr()).expect("admin connect");
        let view = admin
            .register(
                "Q(x, y) :- Graph(x, z), Graph(z, y) EXCEPT Graph(x, y)",
                Some("counting"),
            )
            .expect("register view")
            .view;

        let mut spec = LoadSpec::clients(n);
        spec.view = view;
        spec.requests_per_client = (budget / n).max(2);
        eprintln!(
            "sweep: {n} clients x {} pushes (queue capacity {capacity})",
            spec.requests_per_client
        );
        let report = run_load(server.addr(), &spec).expect("load sweep");
        eprintln!(
            "  -> {:.0} pushes/s, push p50/p99 {}us/{}us, read p50/p99 {}us/{}us, \
             overload rate {:.2}%",
            report.push_throughput_per_s,
            report.push_p50_us,
            report.push_p99_us,
            report.read_p50_us,
            report.read_p99_us,
            report.server_overload_rate * 100.0,
        );
        reports.push(report);
        server.shutdown().expect("shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&durability_dir);

    let body = reports
        .iter()
        .map(|r| format!("  {}", r.to_json()))
        .collect::<Vec<_>>()
        .join(",\n");
    // The boxed-row comparison only makes sense for the parameters the
    // baseline was recorded under (the defaults).
    let flat_vs_boxed = if budget == 2000 && capacity == 256 {
        let cells = BOXED_ROW_RECORDED
            .iter()
            .filter_map(|&(n, boxed_tput, boxed_p50, boxed_p99)| {
                let flat = reports.iter().find(|r| r.clients == n)?;
                Some(format!(
                    "  {{\"clients\":{n},\"boxed_push_per_s\":{boxed_tput:.1},\
                     \"flat_push_per_s\":{:.1},\"throughput_ratio\":{:.2},\
                     \"boxed_push_p50_us\":{boxed_p50},\"flat_push_p50_us\":{},\
                     \"boxed_push_p99_us\":{boxed_p99},\"flat_push_p99_us\":{}}}",
                    flat.push_throughput_per_s,
                    flat.push_throughput_per_s / boxed_tput,
                    flat.push_p50_us,
                    flat.push_p99_us,
                ))
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(",\n\"flat_vs_boxed_row_recorded\": [\n{cells}\n]")
    } else {
        String::new()
    };
    let json = format!(
        "{{\n\"bench\": \"dcq-server load sweep\",\n\"queue_capacity\": {capacity},\n\
         \"push_budget\": {budget},\n\"sweeps\": [\n{body}\n]{flat_vs_boxed}\n}}\n"
    );
    let mut file = std::fs::File::create(&out).expect("open output");
    file.write_all(json.as_bytes()).expect("write output");
    eprintln!("wrote {out}");
}
