//! The wire protocol: length-prefixed JSON frames and the request/response
//! vocabulary.
//!
//! Every message — in both directions — is one frame: a big-endian `u32`
//! payload length followed by that many bytes of UTF-8 JSON (one object, no
//! trailing newline inside the frame).  Length prefixing keeps reads exact
//! and lets a server bound per-connection memory up front
//! ([`MAX_FRAME_BYTES`]).
//!
//! ## Verbs
//!
//! | request `op`  | fields                          | success reply                                  |
//! |---------------|---------------------------------|------------------------------------------------|
//! | `register`    | `query`, optional `strategy`    | `{"ok":true,"view":N,"epoch":E,"strategy":S,"rows":K}` |
//! | `deregister`  | `view`                          | `{"ok":true}`                                  |
//! | `push`        | `batch` (see below)             | `{"ok":true,"epoch":E}`                        |
//! | `read`        | `view`, optional `min_epoch`    | `{"ok":true,"epoch":E,"rows":[[…],…]}`         |
//! | `subscribe`   | `view`                          | ack, then a stream of `delta` events           |
//! | `metrics`     | —                               | `{"ok":true,"text":"…Prometheus exposition…"}` |
//! | `stall`       | `ms` (test/debug)               | `{"ok":true}` once the stall *starts*          |
//! | `shutdown`    | —                               | `{"ok":true}`; server drains and exits         |
//!
//! A `batch` is `[["Relation", sign, [value,…]], …]` with `sign ∈ {1, -1}`;
//! values are integers, strings, or `null`.  Overload replies are
//! `{"ok":false,"error":"overloaded","retry_after_ms":T}`; other failures are
//! `{"ok":false,"error":"…"}`.  Subscription events are
//! `{"event":"delta","view":N,"epoch":E,"added":[[…]],"removed":[[…]]}`.

use crate::json::Json;
use dcq_storage::{DeltaBatch, Row, Value};
use std::io::{self, Read, Write};

/// Hard per-frame size cap (64 MiB): a declared length beyond this aborts the
/// connection instead of attempting the allocation.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Write one frame (`u32` BE length + JSON bytes) and flush.
pub fn write_frame<W: Write>(w: &mut W, json: &Json) -> io::Result<usize> {
    let body = json.render();
    let len = body.len() as u32;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()?;
    Ok(4 + body.len())
}

/// Read one frame.  `Ok(None)` on a clean EOF at a frame boundary; anything
/// malformed (oversized length, short read, bad UTF-8/JSON) is an error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<(Json, usize)>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame-header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "declared frame length exceeds MAX_FRAME_BYTES",
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let text = std::str::from_utf8(&body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    let json = Json::parse(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad JSON frame: {e}")))?;
    Ok(Some((json, 4 + body.len())))
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Register a DCQ as a maintained view; returns a view id.
    Register {
        /// The DCQ source text (`Q(..) :- … EXCEPT …`).
        query: String,
        /// `"rerun"`, `"counting"`, or `"adaptive"` (default).
        strategy: Option<String>,
    },
    /// Drop a view registration.
    Deregister {
        /// The view id from `register`.
        view: u64,
    },
    /// Push one delta batch; the ack carries the committed epoch.
    Push {
        /// The signed tuple operations.
        batch: DeltaBatch,
    },
    /// Read a view's full result set at or after an epoch.
    Read {
        /// The view id.
        view: u64,
        /// Wait until the committed epoch reaches this before answering.
        min_epoch: Option<u64>,
    },
    /// Turn this connection into a per-view result-churn stream.
    Subscribe {
        /// The view id.
        view: u64,
    },
    /// Prometheus text exposition (engine + server registries).
    Metrics,
    /// Test/debug verb: make the ingest thread sleep for `ms` milliseconds
    /// (acked when the stall *starts*), so tests can fill the ingest queue.
    Stall {
        /// Milliseconds to stall ingest.
        ms: u64,
    },
    /// Drain and stop the server.
    Shutdown,
}

impl Request {
    /// Decode a request frame.
    pub fn from_json(json: &Json) -> Result<Request, String> {
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field `op`")?;
        match op {
            "register" => Ok(Request::Register {
                query: json
                    .get("query")
                    .and_then(Json::as_str)
                    .ok_or("register: missing string field `query`")?
                    .to_string(),
                strategy: json
                    .get("strategy")
                    .and_then(Json::as_str)
                    .map(str::to_string),
            }),
            "deregister" => Ok(Request::Deregister {
                view: required_u64(json, "view")?,
            }),
            "push" => Ok(Request::Push {
                batch: batch_from_json(json.get("batch").ok_or("push: missing field `batch`")?)?,
            }),
            "read" => Ok(Request::Read {
                view: required_u64(json, "view")?,
                min_epoch: json.get("min_epoch").and_then(Json::as_u64),
            }),
            "subscribe" => Ok(Request::Subscribe {
                view: required_u64(json, "view")?,
            }),
            "metrics" => Ok(Request::Metrics),
            "stall" => Ok(Request::Stall {
                ms: required_u64(json, "ms")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Encode a request frame (the client half; servers only decode).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Register { query, strategy } => {
                let mut pairs = vec![("op", Json::str("register")), ("query", Json::str(query))];
                if let Some(s) = strategy {
                    pairs.push(("strategy", Json::str(s)));
                }
                Json::obj(pairs)
            }
            Request::Deregister { view } => Json::obj([
                ("op", Json::str("deregister")),
                ("view", Json::Int(*view as i64)),
            ]),
            Request::Push { batch } => {
                Json::obj([("op", Json::str("push")), ("batch", batch_to_json(batch))])
            }
            Request::Read { view, min_epoch } => {
                let mut pairs = vec![("op", Json::str("read")), ("view", Json::Int(*view as i64))];
                if let Some(e) = min_epoch {
                    pairs.push(("min_epoch", Json::Int(*e as i64)));
                }
                Json::obj(pairs)
            }
            Request::Subscribe { view } => Json::obj([
                ("op", Json::str("subscribe")),
                ("view", Json::Int(*view as i64)),
            ]),
            Request::Metrics => Json::obj([("op", Json::str("metrics"))]),
            Request::Stall { ms } => {
                Json::obj([("op", Json::str("stall")), ("ms", Json::Int(*ms as i64))])
            }
            Request::Shutdown => Json::obj([("op", Json::str("shutdown"))]),
        }
    }
}

fn required_u64(json: &Json, field: &str) -> Result<u64, String> {
    json.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing non-negative integer field `{field}`"))
}

/// `{"ok":true, …fields}`.
pub fn ok(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.extend(fields);
    Json::obj(pairs)
}

/// `{"ok":false,"error":msg}`.
pub fn error(msg: impl Into<String>) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(msg.into()))])
}

/// The admission-control rejection: `{"ok":false,"error":"overloaded",
/// "retry_after_ms":T}`.
pub fn overloaded(retry_after_ms: u64) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::str("overloaded")),
        ("retry_after_ms", Json::Int(retry_after_ms as i64)),
    ])
}

/// Serialize a [`Value`] for the wire.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(i) => Json::Int(*i),
        Value::Str(s) => Json::str(s.as_ref()),
        Value::Null => Json::Null,
    }
}

/// Decode a wire value.
pub fn value_from_json(json: &Json) -> Result<Value, String> {
    match json {
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Str(s) => Ok(Value::str(s)),
        Json::Null => Ok(Value::Null),
        other => Err(format!("row values are int/string/null, got {other:?}")),
    }
}

/// Serialize a [`Row`] as a JSON array of values.
pub fn row_to_json(row: &Row) -> Json {
    Json::Arr(row.iter().map(value_to_json).collect())
}

/// Decode a wire row.
pub fn row_from_json(json: &Json) -> Result<Row, String> {
    let items = json.as_arr().ok_or("a row must be a JSON array")?;
    let values = items
        .iter()
        .map(value_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Row::new(values))
}

/// Serialize rows as a JSON array of arrays.
pub fn rows_to_json<'a>(rows: impl IntoIterator<Item = &'a Row>) -> Json {
    Json::Arr(rows.into_iter().map(row_to_json).collect())
}

/// Serialize a batch as `[["Relation", sign, [values…]], …]`.
pub fn batch_to_json(batch: &DeltaBatch) -> Json {
    let mut ops = Vec::with_capacity(batch.len());
    for (relation, rel_ops) in batch.iter() {
        for (row, sign) in rel_ops {
            ops.push(Json::Arr(vec![
                Json::str(relation),
                Json::Int(*sign),
                row_to_json(row),
            ]));
        }
    }
    Json::Arr(ops)
}

/// Decode a wire batch.
pub fn batch_from_json(json: &Json) -> Result<DeltaBatch, String> {
    let ops = json.as_arr().ok_or("`batch` must be a JSON array")?;
    let mut batch = DeltaBatch::new();
    for op in ops {
        let parts = op
            .as_arr()
            .filter(|p| p.len() == 3)
            .ok_or("each batch op must be a 3-element array [relation, sign, row]")?;
        let relation = parts[0]
            .as_str()
            .ok_or("batch op relation must be a string")?;
        let sign = parts[1]
            .as_i64()
            .filter(|s| *s == 1 || *s == -1)
            .ok_or("batch op sign must be 1 or -1")?;
        batch.push(relation, row_from_json(&parts[2])?, sign);
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_storage::row::int_row;

    #[test]
    fn frames_round_trip() {
        let msg = Request::Read {
            view: 7,
            min_epoch: Some(3),
        }
        .to_json();
        let mut buf = Vec::new();
        let wrote = write_frame(&mut buf, &msg).unwrap();
        assert_eq!(wrote, buf.len());
        let mut r = buf.as_slice();
        let (back, read) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(read, wrote);
        assert_eq!(back, msg);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::str("x")).unwrap();
        for cut in 1..buf.len() {
            assert!(read_frame(&mut &buf[..cut]).is_err(), "cut at {cut}");
        }
        // An absurd declared length is rejected before allocation.
        let huge = (MAX_FRAME_BYTES + 1).to_be_bytes();
        assert!(read_frame(&mut huge.as_slice()).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([1, 2]));
        batch.delete("Edge", Row::new(vec![Value::str("a"), Value::Null]));
        let requests = [
            Request::Register {
                query: "Q(a) :- R(a) EXCEPT S(a)".into(),
                strategy: Some("counting".into()),
            },
            Request::Register {
                query: "Q(a) :- R(a) EXCEPT S(a)".into(),
                strategy: None,
            },
            Request::Deregister { view: 4 },
            Request::Push { batch },
            Request::Read {
                view: 1,
                min_epoch: None,
            },
            Request::Subscribe { view: 0 },
            Request::Metrics,
            Request::Stall { ms: 250 },
            Request::Shutdown,
        ];
        for req in requests {
            let json = req.to_json();
            assert_eq!(Request::from_json(&json).unwrap(), req, "{json:?}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (text, needle) in [
            (r#"{"verb":"push"}"#, "op"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"op":"read"}"#, "view"),
            (r#"{"op":"push","batch":[["R",0,[1]]]}"#, "sign"),
            (r#"{"op":"push","batch":[["R",1,1]]}"#, "array"),
            (
                r#"{"op":"push","batch":[["R",1,[true]]]}"#,
                "int/string/null",
            ),
        ] {
            let json = Json::parse(text).unwrap();
            let err = Request::from_json(&json).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn reply_builders() {
        assert_eq!(
            ok([("epoch", Json::Int(9))]).render(),
            r#"{"ok":true,"epoch":9}"#
        );
        assert_eq!(error("nope").render(), r#"{"ok":false,"error":"nope"}"#);
        let o = overloaded(12);
        assert_eq!(o.get("error").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(o.get("retry_after_ms").and_then(Json::as_u64), Some(12));
    }
}
