//! A minimal JSON value model, parser and serializer.
//!
//! The service speaks newline-free JSON objects inside length-prefixed frames
//! (see [`crate::proto`]).  The workspace is offline and std-only, so instead
//! of serde this module hand-rolls the ~200 lines of JSON the protocol needs:
//! the full value grammar on parse (objects, arrays, strings with escapes,
//! integers, floats, booleans, null), and a canonical serializer that keeps
//! object keys in insertion order.
//!
//! Numbers parse as [`Json::Int`] when they are exactly representable as
//! `i64` (the protocol's row values and epochs), [`Json::Float`] otherwise.

use std::fmt;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (anything without `.`/`e` that fits an `i64`).
    Int(i64),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order (good enough for a wire protocol,
    /// and deterministic for tests).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a key in an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i64` (integers only — floats are not silently truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a non-negative `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as `f64` (ints widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    let s = format!("{f}");
                    out.push_str(&s);
                    // `3.0` renders as `3`; keep it a float on the wire so it
                    // round-trips as one.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON value from `text` (which must contain nothing else but
    /// trailing whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: decode \uD800-\uDBFF + low half.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 leaves pos past the digits; compensate for
                            // the shared `pos += 1` below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing on
                    // char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let v = Json::obj([
            ("op", Json::str("push")),
            (
                "batch",
                Json::Arr(vec![Json::Arr(vec![
                    Json::str("Graph"),
                    Json::Int(1),
                    Json::Arr(vec![Json::Int(-7), Json::str("naïve \"x\"\n"), Json::Null]),
                ])]),
            ),
            ("flag", Json::Bool(true)),
            ("ratio", Json::Float(0.25)),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_numbers_and_escapes() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-9").unwrap(), Json::Int(-9));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            Json::parse(r#""aA\té""#).unwrap(),
            Json::Str("aA\té".into())
        );
        assert_eq!(Json::parse(r#""🦀""#).unwrap(), Json::Str("🦀".into()));
        assert_eq!(
            Json::parse(" { \"k\" : [ 1 , null ] } ").unwrap(),
            Json::Obj(vec![(
                "k".into(),
                Json::Arr(vec![Json::Int(1), Json::Null])
            )])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\":}", "nul", "01x", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"op":"read","view":3,"ok":true}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("read"));
        assert_eq!(v.get("view").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(2).as_f64(), Some(2.0));
    }
}
