//! The load harness: many concurrent client connections pushing delta
//! batches and reading views against a running [`crate::DcqServer`].
//!
//! Client-observed latencies are collected per request (exact percentiles,
//! no bucketing error); saturation behaviour — accepted pushes, admission
//! rejections, queue depth — is read back from the *server's* own
//! `dcq_server_*` telemetry so the report reflects what the service measured,
//! not what the clients inferred.

use crate::client::{retry_backoff_ms, DcqClient, PushOutcome};
use dcq_storage::row::int_row;
use dcq_storage::DeltaBatch;
use std::io;
use std::net::SocketAddr;
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

/// One sweep point of the harness.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Concurrent client connections.
    pub clients: usize,
    /// Pushes issued per client (each waits for its ack or retries on
    /// `overloaded`).
    pub requests_per_client: usize,
    /// Tuple operations per pushed batch.
    pub rows_per_batch: usize,
    /// Issue a `read` of `view` after every this-many pushes (0 = never).
    pub read_every: usize,
    /// Relation the pushes target.
    pub relation: String,
    /// View id (already registered) the reads target.
    pub view: u64,
    /// Thread stack size for client threads.
    pub stack_bytes: usize,
}

impl LoadSpec {
    /// A sweep point with `clients` connections and sensible defaults.
    pub fn clients(clients: usize) -> LoadSpec {
        LoadSpec {
            clients,
            requests_per_client: 20,
            rows_per_batch: 4,
            read_every: 2,
            relation: "Graph".to_string(),
            view: 1,
            stack_bytes: 192 * 1024,
        }
    }
}

/// What one [`run_load`] sweep measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Concurrent connections driven.
    pub clients: usize,
    /// Pushes acknowledged (client side).
    pub pushes_acked: u64,
    /// `overloaded` rejections observed before eventual ack (client side).
    pub push_rejections: u64,
    /// Reads answered.
    pub reads: u64,
    /// Wall time of the whole sweep, seconds.
    pub elapsed_s: f64,
    /// Acked pushes per second of wall time.
    pub push_throughput_per_s: f64,
    /// Client-observed push latency percentiles, microseconds.
    pub push_p50_us: u64,
    /// 99th percentile push latency, microseconds.
    pub push_p99_us: u64,
    /// Client-observed read latency percentiles, microseconds.
    pub read_p50_us: u64,
    /// 99th percentile read latency, microseconds.
    pub read_p99_us: u64,
    /// `dcq_server_push_total` after the sweep (server-side telemetry).
    pub server_push_total: u64,
    /// `dcq_server_overloaded_total` after the sweep (server-side telemetry).
    pub server_overloaded_total: u64,
    /// Admission rejection rate the *server* saw: overloaded / (accepted +
    /// overloaded) over the whole server lifetime up to this sweep.
    pub server_overload_rate: f64,
    /// Committed epoch after the sweep.
    pub final_epoch: u64,
}

impl LoadReport {
    /// Render as a JSON object (for `BENCH_service.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"clients\":{},\"pushes_acked\":{},\"push_rejections\":{},\"reads\":{},\
             \"elapsed_s\":{:.3},\"push_throughput_per_s\":{:.1},\
             \"push_p50_us\":{},\"push_p99_us\":{},\"read_p50_us\":{},\"read_p99_us\":{},\
             \"server_push_total\":{},\"server_overloaded_total\":{},\
             \"server_overload_rate\":{:.4},\"final_epoch\":{}}}",
            self.clients,
            self.pushes_acked,
            self.push_rejections,
            self.reads,
            self.elapsed_s,
            self.push_throughput_per_s,
            self.push_p50_us,
            self.push_p99_us,
            self.read_p50_us,
            self.read_p99_us,
            self.server_push_total,
            self.server_overloaded_total,
            self.server_overload_rate,
            self.final_epoch,
        )
    }
}

/// `p` in [0, 100] over an ascending-sorted sample set (nearest-rank).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Pull the value of a scalar metric line (`name value`) out of a Prometheus
/// text exposition.  Histogram series expose `name_sum` / `name_count`.
pub fn parse_metric(exposition: &str, name: &str) -> Option<u64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse::<u64>().ok()
    })
}

struct WorkerStats {
    acked: u64,
    rejections: u64,
    reads: u64,
    push_latencies_us: Vec<u64>,
    read_latencies_us: Vec<u64>,
}

/// Drive `spec.clients` concurrent connections against `addr` and gather a
/// [`LoadReport`].  The caller is responsible for having registered
/// `spec.view` beforehand.
pub fn run_load(addr: SocketAddr, spec: &LoadSpec) -> io::Result<LoadReport> {
    let started = Instant::now();
    let (stats_tx, stats_rx) = mpsc::channel::<io::Result<WorkerStats>>();
    let mut joins = Vec::with_capacity(spec.clients);
    for client_id in 0..spec.clients {
        let spec = spec.clone();
        let stats_tx = stats_tx.clone();
        let handle = thread::Builder::new()
            .name(format!("loadgen-{client_id}"))
            .stack_size(spec.stack_bytes)
            .spawn(move || {
                let _ = stats_tx.send(drive_client(addr, &spec, client_id));
            })?;
        joins.push(handle);
    }
    drop(stats_tx);

    let mut acked = 0u64;
    let mut rejections = 0u64;
    let mut reads = 0u64;
    let mut push_lat = Vec::new();
    let mut read_lat = Vec::new();
    let mut first_error: Option<io::Error> = None;
    for outcome in stats_rx {
        match outcome {
            Ok(stats) => {
                acked += stats.acked;
                rejections += stats.rejections;
                reads += stats.reads;
                push_lat.extend(stats.push_latencies_us);
                read_lat.extend(stats.read_latencies_us);
            }
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    for handle in joins {
        let _ = handle.join();
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    push_lat.sort_unstable();
    read_lat.sort_unstable();

    // Server-side truth for the saturation columns.
    let mut probe = DcqClient::connect_retry(addr, 8)?;
    let metrics = probe.metrics()?;
    let server_push_total = parse_metric(&metrics, "dcq_server_push_total").unwrap_or(0);
    let server_overloaded_total =
        parse_metric(&metrics, "dcq_server_overloaded_total").unwrap_or(0);
    let offered = server_push_total + server_overloaded_total;
    let final_epoch = parse_metric(&metrics, "dcq_engine_epoch").unwrap_or(0);

    Ok(LoadReport {
        clients: spec.clients,
        pushes_acked: acked,
        push_rejections: rejections,
        reads,
        elapsed_s,
        push_throughput_per_s: acked as f64 / elapsed_s.max(1e-9),
        push_p50_us: percentile(&push_lat, 50.0),
        push_p99_us: percentile(&push_lat, 99.0),
        read_p50_us: percentile(&read_lat, 50.0),
        read_p99_us: percentile(&read_lat, 99.0),
        server_push_total,
        server_overloaded_total,
        server_overload_rate: if offered == 0 {
            0.0
        } else {
            server_overloaded_total as f64 / offered as f64
        },
        final_epoch,
    })
}

fn drive_client(addr: SocketAddr, spec: &LoadSpec, client_id: usize) -> io::Result<WorkerStats> {
    let mut client = DcqClient::connect_retry(addr, 10)?;
    let mut stats = WorkerStats {
        acked: 0,
        rejections: 0,
        reads: 0,
        push_latencies_us: Vec::with_capacity(spec.requests_per_client),
        read_latencies_us: Vec::new(),
    };
    for seq in 0..spec.requests_per_client {
        let mut batch = DeltaBatch::new();
        for k in 0..spec.rows_per_batch {
            // Unique per (client, seq, k): load is all fresh insertions.
            let src = (client_id as i64) * 1_000_000 + (seq as i64) * 1_000 + k as i64;
            batch.insert(spec.relation.as_str(), int_row([src, src + 1]));
        }
        let t0 = Instant::now();
        // Honour admission control: back off by the server's hint (capped +
        // jittered) until acked, so "acked" latency includes the backoff the
        // server asked for and rejected clients do not retry in lock-step.
        loop {
            match client.push(&batch)? {
                PushOutcome::Acked(_) => break,
                PushOutcome::Overloaded { retry_after_ms } => {
                    stats.rejections += 1;
                    let salt = (client_id as u64) << 32 | (seq as u64) << 8 | stats.rejections;
                    let backoff = retry_backoff_ms(retry_after_ms, salt);
                    thread::sleep(std::time::Duration::from_millis(backoff));
                }
            }
        }
        stats.acked += 1;
        stats
            .push_latencies_us
            .push(t0.elapsed().as_micros() as u64);
        if spec.read_every > 0 && (seq + 1) % spec.read_every == 0 {
            let t0 = Instant::now();
            client.read(spec.view, None)?;
            stats.reads += 1;
            stats
                .read_latencies_us
                .push(t0.elapsed().as_micros() as u64);
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn parse_metric_scans_exposition_lines() {
        let text = "# HELP x y\n# TYPE x counter\ndcq_server_push_total 42\nother 7\n";
        assert_eq!(parse_metric(text, "dcq_server_push_total"), Some(42));
        assert_eq!(parse_metric(text, "other"), Some(7));
        assert_eq!(parse_metric(text, "missing"), None);
        // Prefix collisions must not match.
        assert_eq!(parse_metric(text, "dcq_server_push"), None);
    }
}
