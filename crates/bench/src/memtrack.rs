//! Peak-heap tracking for the Figure 9 memory experiment.
//!
//! A thin wrapper around the system allocator that counts live and peak allocated
//! bytes.  The `repro` binary installs it as the global allocator and resets the
//! peak counter around each plan execution, reproducing the paper's memory
//! comparison without external profilers.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counting allocator: forwards to the system allocator and tracks live/peak bytes.
pub struct CountingAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates all allocation to the system allocator; only bookkeeping added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

/// Currently live heap bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Reset the peak counter to the current live size.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Measure the peak heap growth (bytes above the starting live size) while running
/// the closure.
pub fn peak_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = live_bytes();
    reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_and_resettable() {
        // The test binary does not install the allocator, so the counters only move
        // if it is installed; still exercise the API surface.
        reset_peak();
        assert!(peak_bytes() >= live_bytes() || peak_bytes() == 0 || live_bytes() > 0);
        let (value, peak) = peak_during(|| vec![0u8; 1024].len());
        assert_eq!(value, 1024);
        // Peak growth is either 0 (allocator not installed) or at least 1 KiB.
        assert!(peak == 0 || peak >= 1024);
    }
}
