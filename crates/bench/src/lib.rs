//! # dcq-bench
//!
//! Benchmark and reproduction harness for **dcqx**.
//!
//! * The Criterion benches under `benches/` time the original-vs-optimized plan
//!   comparison of Figure 5 (graph and benchmark queries), the OUT₁/OUT₂/OUT sweeps
//!   of Figures 6–8, operator micro-benchmarks and an algorithm ablation.
//! * The `repro` binary regenerates every table and figure of the paper's evaluation
//!   section as text tables (`cargo run --release -p dcq-bench --bin repro -- all`).
//! * [`memtrack`] provides the counting global allocator used for the Figure 9
//!   memory-consumption experiment.

#![warn(missing_docs)]

pub mod memtrack;

use dcq_core::baseline::{baseline_dcq_with_stats, BaselineStats, CqStrategy};
use dcq_core::planner::DcqPlanner;
use dcq_core::Dcq;
use dcq_storage::Database;
use std::time::{Duration, Instant};

/// Wall-clock measurement of one original-vs-optimized comparison.
#[derive(Clone, Copy, Debug)]
pub struct Comparison {
    /// Time of the vanilla plan (materialize both sides + anti-join).
    pub original: Duration,
    /// Time of the plan chosen by the dichotomy/planner.
    pub optimized: Duration,
    /// Sizes observed by the baseline (OUT₁, OUT₂, OUT).
    pub stats: BaselineStats,
}

impl Comparison {
    /// `original / optimized` speedup factor.
    pub fn speedup(&self) -> f64 {
        if self.optimized.as_secs_f64() == 0.0 {
            f64::INFINITY
        } else {
            self.original.as_secs_f64() / self.optimized.as_secs_f64()
        }
    }
}

/// Time a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Run one DCQ with both the vanilla plan and the optimized plan, verifying that the
/// two agree, and report the timings.
pub fn compare_plans(dcq: &Dcq, db: &Database) -> Comparison {
    let planner = DcqPlanner::smart();
    let ((baseline, stats), original) =
        time(|| baseline_dcq_with_stats(dcq, db, CqStrategy::Vanilla).expect("baseline"));
    let (optimized_result, optimized) = time(|| planner.execute(dcq, db).expect("optimized"));
    assert_eq!(
        baseline.distinct_count(),
        optimized_result.distinct_count(),
        "plans disagree"
    );
    Comparison {
        original,
        optimized,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_datagen::{graph_query, GraphQueryId};

    #[test]
    fn compare_plans_reports_consistent_sizes() {
        let data = dcq_datagen::datasets::build_dataset(
            "tiny",
            dcq_datagen::Graph::uniform(60, 300, 3),
            0.5,
            dcq_datagen::TripleRuleMix::balanced(),
            4,
        );
        let cmp = compare_plans(&graph_query(GraphQueryId::QG3), &data.db);
        // OUT is a subset of OUT₁ and can shrink by at most |OUT₂| tuples.
        assert!(cmp.stats.out <= cmp.stats.out1);
        assert!(cmp.stats.out >= cmp.stats.out1.saturating_sub(cmp.stats.out2));
        assert!(cmp.speedup() > 0.0);
    }
}
