//! Micro-benchmarks of the execution-layer building blocks: natural join, semi-join,
//! anti-join, Reduce, Yannakakis and the generic worst-case-optimal join.

use criterion::{criterion_group, criterion_main, Criterion};
use dcq_datagen::{Graph, SplitMix64};
use dcq_exec::{
    acyclic_full_join, anti_join, free_connex_evaluate, generic_join, natural_join, reduce,
    semi_join,
};
use dcq_storage::{Relation, Schema};
use std::time::Duration;

fn edge_relation(name: &str, attrs: &[&str], m: usize, seed: u64) -> Relation {
    let graph = Graph::uniform(1_000, m, seed);
    let mut rel = Relation::from_int_rows(name, attrs, vec![]);
    for (u, v) in graph.edges {
        rel.push_unchecked(dcq_storage::row::int_row([u as i64, v as i64]));
    }
    rel.assume_distinct();
    rel
}

fn unary_relation(name: &str, attr: &str, n: usize, seed: u64) -> Relation {
    let mut rng = SplitMix64::new(seed);
    let mut rel = Relation::from_int_rows(name, &[attr], vec![]);
    for _ in 0..n {
        rel.push_unchecked(dcq_storage::row::int_row([rng.next_below(1_000) as i64]));
    }
    rel
}

fn bench_operators(c: &mut Criterion) {
    let r = edge_relation("R", &["a", "b"], 20_000, 1);
    let s = edge_relation("S", &["b", "c"], 20_000, 2);
    let t = edge_relation("T", &["c", "d"], 20_000, 3);
    let nodes = unary_relation("N", "b", 5_000, 4);

    let mut group = c.benchmark_group("micro/operators");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    group.bench_function("natural_join", |b| b.iter(|| natural_join(&r, &s).len()));
    group.bench_function("semi_join", |b| b.iter(|| semi_join(&r, &nodes).len()));
    group.bench_function("anti_join", |b| b.iter(|| anti_join(&r, &nodes).len()));

    let atoms = vec![r.clone(), s.clone(), t.clone()];
    let full_head = Schema::from_names(["a", "b", "c", "d"]);
    let projected_head = Schema::from_names(["a", "b"]);
    group.bench_function("reduce_path_query", |b| {
        b.iter(|| reduce(&projected_head, &atoms).unwrap().input_size())
    });
    group.bench_function("yannakakis_full_path", |b| {
        b.iter(|| acyclic_full_join(&atoms).unwrap().len())
    });
    group.bench_function("yannakakis_free_connex_projection", |b| {
        b.iter(|| free_connex_evaluate(&projected_head, &atoms).unwrap().len())
    });

    // Triangle query: generic join vs nothing to compare (the binary plan is what
    // the fig5 benches exercise); keep the graph small, triangles are expensive.
    let small = edge_relation("G", &["a", "b"], 6_000, 5);
    let tri_atoms = vec![
        small.with_schema(Schema::from_names(["a", "b"])).unwrap(),
        small.with_schema(Schema::from_names(["b", "c"])).unwrap(),
        small.with_schema(Schema::from_names(["c", "a"])).unwrap(),
    ];
    let tri_head = Schema::from_names(["a", "b", "c"]);
    group.bench_function("generic_join_triangle", |b| {
        b.iter(|| generic_join(&tri_head, &tri_atoms).unwrap().len())
    });
    let _ = full_head;
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
