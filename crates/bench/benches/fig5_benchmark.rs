//! Figure 5 (benchmark queries): TPC-H Q16-like and TPC-DS Q35/Q69-like workloads,
//! original (naive fold of differences) vs optimized (recursive DMCQ rewriting).

use criterion::{criterion_group, criterion_main, Criterion};
use dcq_core::baseline::CqStrategy;
use dcq_core::multi::{multi_dcq_naive, multi_dcq_recursive};
use dcq_datagen::{tpcds_q35_workload, tpcds_q69_workload, tpch_q16_workload, BenchmarkWorkload};
use std::time::Duration;

fn bench_workload(c: &mut Criterion, workload: &BenchmarkWorkload) {
    let mut group = c.benchmark_group(format!(
        "fig5/{}/sf{}",
        workload.name, workload.scale_factor
    ));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    group.bench_function("original", |b| {
        b.iter(|| {
            multi_dcq_naive(&workload.multi, &workload.db, CqStrategy::Vanilla)
                .unwrap()
                .len()
        })
    });
    group.bench_function("optimized", |b| {
        b.iter(|| {
            multi_dcq_recursive(&workload.multi, &workload.db)
                .unwrap()
                .len()
        })
    });
    group.finish();
}

fn bench_benchmark_queries(c: &mut Criterion) {
    for sf in [1usize, 2] {
        bench_workload(c, &tpch_q16_workload(sf));
        bench_workload(c, &tpcds_q35_workload(sf));
        bench_workload(c, &tpcds_q69_workload(sf));
    }
}

criterion_group!(benches, bench_benchmark_queries);
criterion_main!(benches);
