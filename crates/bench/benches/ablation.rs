//! Ablation: all DCQ strategies on the same query and data.
//!
//! The design choices DESIGN.md calls out — pushing the difference down (EasyDCQ) vs
//! probing per tuple (Corollary 2.5 / Theorem 4.8) vs evaluating the intersection
//! query (Theorem 4.10) vs the baseline — are compared head-to-head on an easy query
//! (Q_G3) and a hard query (Q_G5).

use criterion::{criterion_group, criterion_main, Criterion};
use dcq_core::planner::{DcqPlanner, Strategy};
use dcq_datagen::{dataset, graph_query, GraphQueryId};
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let data = dataset("bitcoin-sim");
    let planner = DcqPlanner::smart();

    for (id, strategies) in [
        (
            GraphQueryId::QG3,
            vec![
                Strategy::EasyLinear,
                Strategy::PerTupleProbe,
                Strategy::Intersection,
                Strategy::Baseline,
            ],
        ),
        (
            GraphQueryId::QG5,
            vec![
                Strategy::ProbeLinearReducible,
                Strategy::Intersection,
                Strategy::Baseline,
            ],
        ),
    ] {
        let dcq = graph_query(id);
        let mut group = c.benchmark_group(format!("ablation/{}", id.name()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(900));
        for strategy in strategies {
            group.bench_function(format!("{strategy:?}"), |b| {
                b.iter(|| {
                    planner
                        .execute_with(strategy, &dcq, &data.db)
                        .unwrap()
                        .len()
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
