//! Figure 5 (graph queries): original vs optimized plans for Q_G1…Q_G6.
//!
//! Each Criterion group is one query; within the group the `original/<dataset>` and
//! `optimized/<dataset>` benchmarks correspond to the paired bars of Figure 5.
//! Sample counts are kept small so the whole suite runs in minutes; the `repro`
//! binary prints the same comparison with single-shot timings for every dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use dcq_core::baseline::{baseline_dcq, CqStrategy};
use dcq_core::planner::DcqPlanner;
use dcq_datagen::{dataset, graph_queries, GraphQueryId};
use std::time::Duration;

fn bench_graph_queries(c: &mut Criterion) {
    // The two smallest datasets keep the vanilla plans affordable inside Criterion.
    let datasets: Vec<_> = ["bitcoin-sim", "dblp-sim"]
        .iter()
        .map(|name| (name.to_string(), dataset(name)))
        .collect();
    let planner = DcqPlanner::smart();

    for (id, dcq) in graph_queries() {
        let mut group = c.benchmark_group(format!("fig5/{}", id.name()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(900));
        for (name, data) in &datasets {
            // Q_G6's Cartesian product is only affordable on the smallest graph,
            // mirroring the paper's timeouts.
            if id == GraphQueryId::QG6 && name != "bitcoin-sim" {
                continue;
            }
            group.bench_function(format!("original/{name}"), |b| {
                b.iter(|| {
                    baseline_dcq(&dcq, &data.db, CqStrategy::Vanilla)
                        .unwrap()
                        .len()
                })
            });
            group.bench_function(format!("optimized/{name}"), |b| {
                b.iter(|| planner.execute(&dcq, &data.db).unwrap().len())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_graph_queries);
criterion_main!(benches);
