//! Incremental maintenance vs full recomputation across delta sizes.
//!
//! For an easy query (Q_G3, touched-side rerun) and a hard one (Q_G5, counting
//! maintenance), each group compares:
//!
//! * `maintain/delta_<fraction>` — applying one update batch of the given size (as
//!   a fraction of the database) to an engine hosting a single registered view,
//!   **followed by its inverse batch**.  The inverse restores the registration
//!   state exactly, so every iteration performs two full-sized, non-redundant
//!   batch applications no matter how often the harness re-runs it; halve the
//!   reported time for the per-batch cost.
//! * `recompute` — the planner's one-shot evaluation of the same DCQ, i.e. what a
//!   per-request service would pay without the incremental subsystem.
//!
//! On small-delta workloads (≤1% of tuples changed) maintenance should beat the
//! recomputation baseline even at the 2× apply-plus-revert handicap; as deltas grow
//! toward 10% the gap closes, which is the expected crossover.
//!
//! The maintained arm is a `DcqEngine` with one view — the post-shim shape of the
//! single-client deployment (the `MaintainedDcq` shim this bench used to exercise
//! has been removed); counting views probe the store's shared index registry.

use criterion::{criterion_group, criterion_main, Criterion};
use dcq_core::planner::DcqPlanner;
use dcq_datagen::datasets::build_dataset;
use dcq_datagen::{graph_query, update_workload, Graph, GraphQueryId, TripleRuleMix, UpdateSpec};
use dcq_engine::DcqEngine;
use dcq_storage::{DeltaBatch, UpdateLog};
use std::time::Duration;

/// The sign-flipped batch: applied after `batch`, it restores the previous state
/// (normalized inserts become deletes of now-present rows and vice versa).
fn inverse_of(batch: &DeltaBatch) -> DeltaBatch {
    let mut inverse = DeltaBatch::new();
    for (relation, ops) in batch.iter() {
        for (row, sign) in ops {
            inverse.push(relation, row.clone(), -sign);
        }
    }
    inverse
}

fn bench_incremental(c: &mut Criterion) {
    let data = build_dataset(
        "micro-incremental",
        Graph::uniform(2_000, 8_000, 11),
        0.5,
        TripleRuleMix::balanced(),
        4,
    );
    let db = &data.db;
    let total_tuples = db.input_size();
    let planner = DcqPlanner::smart();

    // Target exactly the relations each query references, so every operation in a
    // batch is visible to the maintained view.
    for (id, relations) in [
        (GraphQueryId::QG3, vec!["Graph", "Triple"]),
        (GraphQueryId::QG5, vec!["Graph"]),
    ] {
        let dcq = graph_query(id);
        let mut group = c.benchmark_group(format!("micro_incremental/{}", id.name()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(900));

        for fraction in [0.001f64, 0.01, 0.1] {
            let batch_tuples = ((total_tuples as f64 * fraction) as usize).max(1);
            // A single batch generated against the registration state: because each
            // iteration reverts it, it is fully effective every time it is applied.
            let spec = UpdateSpec::new(1, batch_tuples, &relations);
            let batch = update_workload(db, &spec, 7 + id as u64)
                .pop()
                .expect("workload generates one batch");
            let inverse = inverse_of(&batch);
            let mut engine = DcqEngine::with_database(db.clone());
            // The engine's update log is unbounded by default; the harness
            // re-applies large batches indefinitely, so bound retention.
            engine.set_log(UpdateLog::with_limit(16));
            let view = engine.register_dcq(graph_query(id)).expect("register");
            let baseline_len = engine.view(view).expect("live").len();
            group.bench_function(format!("maintain/delta_{fraction}"), |b| {
                b.iter(|| {
                    let report = engine.apply(&batch).expect("maintenance applies");
                    assert_eq!(
                        report.effect.total(),
                        batch.len(),
                        "batch must be fully effective"
                    );
                    engine.apply(&inverse).expect("inverse applies");
                    engine.view(view).expect("live").len()
                })
            });
            assert_eq!(
                engine.view(view).expect("live").len(),
                baseline_len,
                "inverse must restore the view"
            );
        }

        group.bench_function("recompute", |b| {
            b.iter(|| planner.execute(&dcq, db).expect("recompute").len())
        });
        group.finish();
    }
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
