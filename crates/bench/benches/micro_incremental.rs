//! Incremental maintenance arms vs full recomputation across delta sizes.
//!
//! For an easy query (Q_G3, structurally rerun-maintained) and a hard one
//! (Q_G5, structurally counting-maintained), the sweep drives delta sizes from
//! 0.1% to 30% of the database through three maintenance arms on a
//! single-view `DcqEngine`:
//!
//! * `rerun` — touched-side rerun forced (`register_with(EasyRerun)`);
//! * `counting` — counting maintenance forced (`register_with(Counting)`);
//! * `adaptive` — `register_adaptive` under a cost model **fitted from this
//!   run's own fixed-arm measurements** (`MaintenanceCostModel::
//!   from_crossover_samples` — the same calibrate-then-deploy loop
//!   `cargo run --release --example calibrate` automates), so the recorded
//!   series shows what the policy achieves with an honest host calibration;
//! * `recompute` — the planner's one-shot evaluation, what a per-request
//!   service would pay without the incremental subsystem.
//!
//! Every cell applies one update batch of the given size **followed by its
//! inverse batch**; the inverse restores the registration state exactly, so
//! every sample performs two full-sized, non-redundant batch applications —
//! the reported per-batch figure is half the pair.  The adaptive arm is warmed
//! up before measuring so the policy has settled on its engine kind.
//!
//! Timing comes from the engine's own telemetry, not a bespoke stopwatch: each
//! pair drains the per-batch [`BatchTrace`](dcq_telemetry::BatchTrace)s
//! `apply` recorded and sums their phase nanoseconds (commit + fan-out +
//! policy tail) — exactly the work the engine accounts to itself, excluding
//! harness overhead between calls.  The wall clock only enforces the sampling
//! budget (and serves as a fallback if telemetry is compiled out).
//!
//! Results are printed and written to `BENCH_micro_incremental.json` at the
//! workspace root, so the incremental perf trajectory accumulates across PRs
//! the way `BENCH_multi_view.json` does for fan-out: the headline property is
//! `adaptive ≈ min(rerun, counting)` at **every** delta size, where each fixed
//! arm loses badly on one side of the crossover.

use dcq_core::heuristics::{CrossoverSample, MaintenanceCostModel};
use dcq_core::planner::DcqPlanner;
use dcq_datagen::datasets::build_dataset;
use dcq_datagen::{graph_query, update_workload, Graph, GraphQueryId, TripleRuleMix, UpdateSpec};
use dcq_engine::DcqEngine;
use dcq_incremental::IncrementalStrategy;
use dcq_storage::{Database, DeltaBatch, UpdateLog};
use std::path::PathBuf;
use std::time::Instant;

/// Swept effective batch sizes as fractions of the database.
const FRACTIONS: [f64; 5] = [0.001, 0.01, 0.03, 0.1, 0.3];
/// Interleaved repetitions per cell, arm order rotated per repetition
/// (minimum kept — least interfered run).
const REPETITIONS: usize = 3;
/// Per-measurement sampling: at least [`MIN_PAIRS`] timed batch+inverse pairs,
/// continuing until [`SAMPLE_BUDGET_SECS`] or [`MAX_PAIRS`] — sub-millisecond
/// cells get dozens of samples (their minimum is stable), expensive cells stay
/// cheap.
const MIN_PAIRS: usize = 3;
const MAX_PAIRS: usize = 40;
const SAMPLE_BUDGET_SECS: f64 = 0.5;

/// One measured sweep cell: per-batch milliseconds of the three arms plus the
/// engine kind the adaptive arm settled on.
#[derive(Clone)]
struct Cell {
    fraction: f64,
    batch_tuples: usize,
    rerun_ms: f64,
    counting_ms: f64,
    adaptive_ms: f64,
    adaptive_active: IncrementalStrategy,
}

/// Minimum per-batch milliseconds over adaptively many batch+inverse pairs
/// after a short warm-up (which also lets the adaptive policy converge on its
/// engine kind), read from the engine's per-batch traces.
fn measure(engine: &mut DcqEngine, batch: &DeltaBatch, inverse: &DeltaBatch) -> f64 {
    measure_with(engine, batch, inverse, 3, SAMPLE_BUDGET_SECS)
}

/// Milliseconds one batch+inverse pair cost according to the engine's own
/// accounting: the phase sum of the pair's drained [`BatchTrace`]s.  Falls
/// back to the harness wall clock when telemetry is compiled out (no traces).
fn traced_pair_ms(engine: &DcqEngine, wall_ms: f64) -> f64 {
    let traced_ns: u64 = engine
        .drain_traces()
        .iter()
        .map(|t| t.commit_ns + t.fanout_ns + t.policy_ns)
        .sum();
    if traced_ns > 0 {
        traced_ns as f64 / 1e6
    } else {
        wall_ms
    }
}

fn measure_with(
    engine: &mut DcqEngine,
    batch: &DeltaBatch,
    inverse: &DeltaBatch,
    warmup_pairs: usize,
    budget_secs: f64,
) -> f64 {
    let registration_len = engine.views().next().expect("one registered view").1.len();
    for _ in 0..warmup_pairs {
        let report = engine.apply(batch).expect("warm-up applies");
        assert_eq!(
            report.effect.total(),
            batch.len(),
            "batch must be fully effective"
        );
        engine.apply(inverse).expect("warm-up inverse applies");
    }
    // Discard the warm-up's traces so the timed loop reads only its own pairs.
    engine.drain_traces();
    let mut best = f64::INFINITY;
    let mut pairs = 0usize;
    let budget = Instant::now();
    while pairs < MIN_PAIRS || (pairs < MAX_PAIRS && budget.elapsed().as_secs_f64() < budget_secs) {
        let started = Instant::now();
        engine.apply(batch).expect("batch applies");
        engine.apply(inverse).expect("inverse applies");
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        best = best.min(traced_pair_ms(engine, wall_ms) / 2.0);
        pairs += 1;
    }
    assert_eq!(
        engine.views().next().expect("one registered view").1.len(),
        registration_len,
        "inverse must restore the view"
    );
    // The minimum, as in `multi_view`: the workload is deterministic per pair,
    // so the fastest pair is the least-interfered measurement.
    best
}

/// A fresh single-view engine hosting `id` under the given registration.
fn engine_with(
    db: &Database,
    id: GraphQueryId,
    strategy: Option<IncrementalStrategy>,
    model: Option<MaintenanceCostModel>,
) -> DcqEngine {
    let mut engine = DcqEngine::with_database(db.clone());
    // The harness re-applies batches indefinitely; bound log retention.
    engine.set_log(UpdateLog::with_limit(8));
    if let Some(model) = model {
        engine.set_cost_model(model);
    }
    match strategy {
        Some(strategy) => engine
            .register_with(graph_query(id), strategy)
            .expect("register"),
        None => engine.register_adaptive(graph_query(id)).expect("register"),
    };
    engine
}

/// Counting-arm ms/batch recorded on the boxed-row layout (the pre-flat
/// `BENCH_micro_incremental.json`, same host, same dataset/fraction grid).
/// Kept as the fixed baseline of the `flat_vs_boxed_row` series.
const BOXED_ROW_COUNTING_MS: [(&str, [f64; 5]); 2] = [
    ("QG3", [0.3064, 0.9011, 1.6807, 4.9768, 14.3169]),
    ("QG5", [1.7956, 23.7757, 117.8842, 448.0796, 1245.7369]),
];

fn main() {
    let data = build_dataset(
        "micro-incremental",
        Graph::uniform(2_000, 8_000, 11),
        0.5,
        TripleRuleMix::balanced(),
        4,
    );
    let db = &data.db;
    let total_tuples = db.input_size();
    let planner = DcqPlanner::smart();
    println!(
        "micro_incremental: {total_tuples} tuples, sweep {FRACTIONS:?} × (rerun | counting | adaptive)",
    );

    let mut sections = Vec::new();
    let mut flat_counting: Vec<(&'static str, Vec<f64>)> = Vec::new();
    for (id, relations) in [
        (GraphQueryId::QG3, vec!["Graph", "Triple"]),
        (GraphQueryId::QG5, vec!["Graph"]),
    ] {
        // One batch per fraction, generated against the registration state and
        // fully effective every time thanks to the inverse.
        let cells_input: Vec<(f64, usize, DeltaBatch, DeltaBatch)> = FRACTIONS
            .iter()
            .map(|&fraction| {
                let batch_tuples = ((total_tuples as f64 * fraction) as usize).max(1);
                let spec = UpdateSpec::new(1, batch_tuples, &relations);
                let batch = update_workload(db, &spec, 7 + id as u64)
                    .pop()
                    .expect("workload generates one batch");
                let inverse = batch.inverse();
                (fraction, batch_tuples, batch, inverse)
            })
            .collect();

        // Calibration pass: one quick measurement of both fixed arms feeds the
        // crossover fit the adaptive arm will run under (the same
        // calibrate-then-deploy loop `examples/calibrate.rs` automates).
        let samples: Vec<CrossoverSample> = cells_input
            .iter()
            .map(|(fraction, _, batch, inverse)| {
                let mut engine = engine_with(db, id, Some(IncrementalStrategy::EasyRerun), None);
                let rerun_cost = measure_with(&mut engine, batch, inverse, 1, 0.05);
                let mut engine = engine_with(db, id, Some(IncrementalStrategy::Counting), None);
                let counting_cost = measure_with(&mut engine, batch, inverse, 1, 0.05);
                CrossoverSample {
                    delta_fraction: *fraction,
                    rerun_cost,
                    counting_cost,
                }
            })
            .collect();
        let fitted =
            MaintenanceCostModel::from_crossover_samples(&samples).expect("sweep yields a model");
        let model = MaintenanceCostModel {
            min_observations: 2,
            ..fitted
        };

        // Recorded pass: all three arms interleaved per repetition (so drift
        // hits them equally), minimum kept per arm per cell.
        let mut rerun_ms = vec![f64::INFINITY; cells_input.len()];
        let mut counting_ms = vec![f64::INFINITY; cells_input.len()];
        let mut adaptive_ms = vec![f64::INFINITY; cells_input.len()];
        let mut adaptive_active = vec![IncrementalStrategy::Adaptive; cells_input.len()];
        for rep in 0..REPETITIONS {
            for (slot, (_, _, batch, inverse)) in cells_input.iter().enumerate() {
                // Rotate the arm order per repetition so allocator/cache state
                // left behind by a heavy arm biases no single series.
                for arm in 0..3 {
                    match (arm + rep) % 3 {
                        0 => {
                            let mut engine =
                                engine_with(db, id, Some(IncrementalStrategy::EasyRerun), None);
                            rerun_ms[slot] =
                                rerun_ms[slot].min(measure(&mut engine, batch, inverse));
                        }
                        1 => {
                            let mut engine =
                                engine_with(db, id, Some(IncrementalStrategy::Counting), None);
                            counting_ms[slot] =
                                counting_ms[slot].min(measure(&mut engine, batch, inverse));
                        }
                        _ => {
                            let mut engine = engine_with(db, id, None, Some(model));
                            let ms = measure(&mut engine, batch, inverse);
                            if ms < adaptive_ms[slot] {
                                adaptive_ms[slot] = ms;
                                adaptive_active[slot] = engine
                                    .views()
                                    .next()
                                    .expect("one registered view")
                                    .1
                                    .active_strategy();
                            }
                        }
                    }
                }
            }
        }
        let cells: Vec<Cell> = cells_input
            .iter()
            .enumerate()
            .map(|(slot, (fraction, batch_tuples, _, _))| Cell {
                fraction: *fraction,
                batch_tuples: *batch_tuples,
                rerun_ms: rerun_ms[slot],
                counting_ms: counting_ms[slot],
                adaptive_ms: adaptive_ms[slot],
                adaptive_active: adaptive_active[slot],
            })
            .collect();

        let dcq = graph_query(id);
        let recompute_started = Instant::now();
        let mut recompute_runs = 0u32;
        while recompute_runs < 5 && recompute_started.elapsed().as_secs_f64() < 2.0 {
            planner.execute(&dcq, db).expect("recompute");
            recompute_runs += 1;
        }
        let recompute_ms = recompute_started.elapsed().as_secs_f64() * 1e3 / recompute_runs as f64;

        println!(
            "\n== {} ==  (recompute {recompute_ms:.3} ms, fitted crossover {:.4})\n\
             {:>9} {:>8} {:>12} {:>12} {:>12} {:>10} {:>9}",
            id.name(),
            fitted.crossover_fraction,
            "delta",
            "tuples",
            "rerun ms",
            "counting ms",
            "adaptive ms",
            "active",
            "vs best"
        );
        for cell in &cells {
            let best = cell.rerun_ms.min(cell.counting_ms);
            println!(
                "{:>9.3} {:>8} {:>12.3} {:>12.3} {:>12.3} {:>10} {:>8.2}×",
                cell.fraction,
                cell.batch_tuples,
                cell.rerun_ms,
                cell.counting_ms,
                cell.adaptive_ms,
                format!("{:?}", cell.adaptive_active),
                cell.adaptive_ms / best,
            );
        }

        let sweep_entries: Vec<String> = cells
            .iter()
            .map(|cell| {
                let best = cell.rerun_ms.min(cell.counting_ms);
                format!(
                    "      {{\"delta_fraction\": {}, \"batch_tuples\": {}, \
                     \"rerun_ms\": {:.4}, \"counting_ms\": {:.4}, \"adaptive_ms\": {:.4}, \
                     \"adaptive_active\": \"{:?}\", \"adaptive_vs_best\": {:.3}}}",
                    cell.fraction,
                    cell.batch_tuples,
                    cell.rerun_ms,
                    cell.counting_ms,
                    cell.adaptive_ms,
                    cell.adaptive_active,
                    cell.adaptive_ms / best
                )
            })
            .collect();
        sections.push(format!(
            "  \"{}\": {{\n    \"recompute_ms\": {:.4},\n    \
             \"fitted_crossover_fraction\": {:.5},\n    \"sweep\": [\n{}\n    ]\n  }}",
            id.name(),
            recompute_ms,
            fitted.crossover_fraction,
            sweep_entries.join(",\n")
        ));
        flat_counting.push((id.name(), cells.iter().map(|c| c.counting_ms).collect()));
    }

    // Before/after series for the flat interned storage change: this run's
    // counting arm (flat id buffers) against the same cells recorded on the
    // boxed-row layout.
    let mut flat_entries = Vec::new();
    println!("\n== flat vs boxed-row (counting arm, ms/batch) ==");
    for (name, flat) in &flat_counting {
        let (_, boxed) = BOXED_ROW_COUNTING_MS
            .iter()
            .find(|(n, _)| n == name)
            .expect("recorded baseline for every swept query");
        for ((fraction, flat_ms), boxed_ms) in FRACTIONS.iter().zip(flat).zip(boxed) {
            println!(
                "{name} @ {fraction:>5}: boxed {boxed_ms:>9.3} -> flat {flat_ms:>9.3}  ({:.2}x)",
                boxed_ms / flat_ms
            );
            flat_entries.push(format!(
                "      {{\"query\": \"{name}\", \"delta_fraction\": {fraction}, \
                 \"boxed_counting_ms\": {boxed_ms:.4}, \"flat_counting_ms\": {flat_ms:.4}, \
                 \"speedup\": {:.3}}}",
                boxed_ms / flat_ms
            ));
        }
    }
    sections.push(format!(
        "  \"flat_vs_boxed_row\": {{\n    \"note\": \"counting arm on the flat interned layout vs \
         the same cells recorded on the boxed-row layout (same host, dataset, fraction grid)\",\n    \
         \"cells\": [\n{}\n    ]\n  }}",
        flat_entries.join(",\n")
    ));

    let json = format!(
        "{{\n  \"bench\": \"micro_incremental\",\n  \
         \"generated_by\": \"cargo bench -p dcq-bench --bench micro_incremental\",\n  \
         \"database_tuples\": {total_tuples},\n  \"fractions\": {FRACTIONS:?},\n  \
         \"note\": \"per-batch ms = half of one batch+inverse pair, from engine BatchTrace phase sums (commit+fanout+policy); adaptive runs under a cost model fitted from this run's fixed arms\",\n{}\n}}\n",
        sections.join(",\n")
    );
    let path = output_path();
    std::fs::write(&path, json).expect("write BENCH_micro_incremental.json");
    println!("\nwrote {}", path.display());
}

/// `BENCH_micro_incremental.json` at the workspace root, next to
/// `BENCH_multi_view.json`.
fn output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_micro_incremental.json")
}
