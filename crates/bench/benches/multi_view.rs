//! Multi-view fan-out: one shared-index `DcqEngine` vs N independent engines.
//!
//! Two scenarios, both at a fixed delta size with view counts `n ∈ {1, 2, 4, 8}`:
//!
//! * **identical** — all `n` clients register the *same* hard query (`Q_G5`).
//!   The engine recognizes the shape and maintains **one** shared view for all
//!   handles, so per-batch work is flat in `n`; the independent shape pays the
//!   full counting maintenance once per client.  This is the many-clients /
//!   one-standing-query serving pattern.
//! * **distinct** — every client registers a *different* hard `Q_G5`-family
//!   variant.  Per-view delta-join work is irreducible here, but everything
//!   else is shared: one store, one batch normalization, one epoch counter —
//!   and, since index ownership moved into the storage layer, one **index
//!   registry**: the family's overlapping sides resolve (through α-canonical
//!   delta plans) to a handful of shared indexes maintained once per batch,
//!   where each independent engine builds and maintains its own copies.
//!
//! The independent arm runs one single-view `DcqEngine` per client — the
//! post-shim shape of "every client for itself" (the `MaintainedDcq` shim this
//! bench originally compared against has been removed).
//!
//! Batches model a production upsert-heavy stream: each carries
//! [`EFFECTIVE_TUPLES`] net operations plus [`REDUNDANCY`]× as many redundant
//! ones (re-inserts of present rows, deletes of absent rows — at-least-once
//! delivery, upserts).  Redundant operations normalize away, but *somebody* has
//! to normalize them: the engine once per batch, the independent engines once
//! per batch **per engine**.
//!
//! Per-batch times are read from each engine's own telemetry — the drained
//! [`BatchTrace`](dcq_telemetry::BatchTrace) phase sums (commit + fan-out +
//! policy tail) — rather than a harness stopwatch, so the recorded series
//! measures exactly the work the engines account to themselves.
//!
//! Results are printed and written to `BENCH_multi_view.json` at the workspace
//! root so the perf trajectory accumulates across PRs; the
//! `distinct_views_shared_indexes` section additionally pins the 8-distinct-view
//! case against the recorded PR 2 engine numbers (view-owned indexes), and the
//! `distinct_views_parallel` section sweeps the engine's fan-out width over the
//! same 8-distinct-view workload (speedup bounded by — and annotated with —
//! the host's available parallelism).

use dcq_core::parse::parse_dcq;
use dcq_core::Dcq;
use dcq_datagen::datasets::build_dataset;
use dcq_datagen::{graph_query, update_workload, Graph, GraphQueryId, TripleRuleMix, UpdateSpec};
use dcq_engine::DcqEngine;
use dcq_incremental::IncrementalStrategy;
use dcq_storage::row::int_row;
use dcq_storage::{Database, DeltaBatch};
use std::path::PathBuf;
use std::time::Instant;

const VIEW_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Fan-out widths of the `distinct_views_parallel` sweep.
const WORKER_WIDTHS: [usize; 4] = [1, 2, 4, 8];
/// Net (effective) operations per batch.
const EFFECTIVE_TUPLES: usize = 64;
/// Redundant operations per effective one (upsert-heavy stream).
const REDUNDANCY: usize = 3;
const N_BATCHES: usize = 32;
/// Interleaved repetitions per scenario (minimum kept).
const REPETITIONS: usize = 3;

/// PR 2's recorded 8-distinct-views engine figures (view-owned `BoundAtom` row
/// sets and private indexes; store bytes excluded index memory entirely).  Kept
/// as the fixed baseline of the `distinct_views_shared_indexes` series.
const PR2_ENGINE_8_DISTINCT_MS_PER_BATCH: f64 = 68.5554;
const PR2_ENGINE_8_DISTINCT_STORE_BYTES: usize = 2_058_848;
const PR2_INDEPENDENT_8_DISTINCT_MS_PER_BATCH: f64 = 66.9542;

/// The boxed-slice `Row` engine's recorded 8-distinct-views figures (last
/// measurement before the flat interned storage refactor: `Vec<Row>` index
/// buckets of `Box<[Value]>` rows, value-hashing count keys).  Fixed baseline
/// of the `flat_vs_boxed_row` series.
const BOXED_ROW_8_DISTINCT_MS_PER_BATCH: f64 = 81.8063;
const BOXED_ROW_8_DISTINCT_INDEX_BYTES: usize = 4_318_736;
const BOXED_ROW_8_DISTINCT_STORE_BYTES: usize = 6_377_584;
const BOXED_ROW_8_IDENTICAL_INDEX_BYTES: usize = 2_423_656;

#[derive(Clone)]
struct Measurement {
    views: usize,
    total_ms_per_batch: f64,
    per_view_ms_per_batch: f64,
    store_bytes: usize,
    index_bytes: usize,
    index_count: usize,
}

/// Keep the faster of the existing and the new measurement.
fn keep_min(slot: &mut Option<Measurement>, fresh: Measurement) {
    match slot {
        Some(best) if best.total_ms_per_batch <= fresh.total_ms_per_batch => {}
        _ => *slot = Some(fresh),
    }
}

/// The view list for one scenario at view count `n`: all-identical `Q_G5`, or
/// `n` distinct members of its family (different closing atoms on the negative
/// side, so every shape classifies separately and no view sharing applies).  All
/// are maintained by counting in both arms — some variants are
/// difference-linear, and a rerun-maintained view would swamp the comparison
/// with side re-evaluation cost that is identical in both designs anyway.
fn queries(scenario: &str, n: usize) -> Vec<Dcq> {
    const CLOSERS: [&str; 8] = [
        "Graph(n4, n1)",
        "Graph(n1, n4)",
        "Graph(n1, n3)",
        "Graph(n3, n1)",
        "Graph(n2, n1)",
        "Graph(n1, n2)",
        "Graph(n4, n1), Graph(n1, n3)",
        "Graph(n1, n4), Graph(n2, n1)",
    ];
    (0..n)
        .map(|i| match scenario {
            "identical" => graph_query(GraphQueryId::QG5),
            _ => parse_dcq(&format!(
                "V{i}(n1, n2, n3, n4) :- Graph(n1, n2), Graph(n2, n3), Graph(n3, n4) \
                 EXCEPT Graph(n2, n3), Graph(n3, n4), {}",
                CLOSERS[i % CLOSERS.len()]
            ))
            .expect("variant parses"),
        })
        .collect()
}

fn main() {
    let data = build_dataset(
        "multi-view",
        Graph::uniform(2_000, 8_000, 11),
        0.5,
        TripleRuleMix::balanced(),
        4,
    );
    let spec = UpdateSpec::new(N_BATCHES, EFFECTIVE_TUPLES, &["Graph"]);
    let batches = with_redundancy(update_workload(&data.db, &spec, 17), &data.db);
    println!(
        "multi_view: {} tuples, {} batches × {} effective tuples (+{}× redundant)",
        data.db.input_size(),
        N_BATCHES,
        EFFECTIVE_TUPLES,
        REDUNDANCY,
    );

    let mut sections = Vec::new();
    let mut distinct_engine_8: Option<Measurement> = None;
    let mut distinct_engine_1: Option<Measurement> = None;
    let mut distinct_independent_8: Option<Measurement> = None;
    let mut identical_engine_8: Option<Measurement> = None;
    for scenario in ["identical", "distinct"] {
        // Interleave repetitions and keep the fastest run per cell: the scenarios
        // are deterministic, so the minimum is the least-interfered measurement.
        let mut engine_runs: Vec<Option<Measurement>> = vec![None; VIEW_COUNTS.len()];
        let mut independent_runs: Vec<Option<Measurement>> = vec![None; VIEW_COUNTS.len()];
        for _rep in 0..REPETITIONS {
            for (slot, &n) in VIEW_COUNTS.iter().enumerate() {
                let views = queries(scenario, n);
                keep_min(
                    &mut engine_runs[slot],
                    run_engine(&data.db, &batches, &views, 1),
                );
                keep_min(
                    &mut independent_runs[slot],
                    run_independent(&data.db, &batches, &views),
                );
            }
        }
        let engine_runs: Vec<Measurement> = engine_runs.into_iter().flatten().collect();
        let independent_runs: Vec<Measurement> = independent_runs.into_iter().flatten().collect();

        println!(
            "\n== {scenario} views ==\n{:<12} {:>16} {:>16} {:>14} {:>12}",
            "scenario", "total ms/batch", "per-view ms", "store+ix MiB", "indexes"
        );
        for (e, i) in engine_runs.iter().zip(&independent_runs) {
            println!(
                "engine×{:<5} {:>16.3} {:>16.3} {:>14.2} {:>12}",
                e.views,
                e.total_ms_per_batch,
                e.per_view_ms_per_batch,
                e.store_bytes as f64 / (1024.0 * 1024.0),
                e.index_count
            );
            println!(
                "indep ×{:<5} {:>16.3} {:>16.3} {:>14.2} {:>12}",
                i.views,
                i.total_ms_per_batch,
                i.per_view_ms_per_batch,
                i.store_bytes as f64 / (1024.0 * 1024.0),
                i.index_count
            );
        }
        let e8 = engine_runs.last().expect("measured 8 views");
        let i8 = independent_runs.last().expect("measured 8 views");
        println!(
            "at 8 {scenario} views: engine {:.3} ms/batch vs independent {:.3} ms/batch \
             ({:.2}× faster), store+indexes {:.2} MiB vs {:.2} MiB ({:.1}× smaller)",
            e8.total_ms_per_batch,
            i8.total_ms_per_batch,
            i8.total_ms_per_batch / e8.total_ms_per_batch,
            e8.store_bytes as f64 / (1024.0 * 1024.0),
            i8.store_bytes as f64 / (1024.0 * 1024.0),
            i8.store_bytes as f64 / e8.store_bytes as f64
        );
        if scenario == "distinct" {
            distinct_engine_1 = engine_runs.first().cloned();
            distinct_engine_8 = Some(e8.clone());
            distinct_independent_8 = Some(i8.clone());
        } else {
            identical_engine_8 = Some(e8.clone());
        }
        sections.push(render_section(scenario, &engine_runs, &independent_runs));
    }

    // The tentpole cell: 8 *distinct* Q_G5-family views under the shared-index
    // engine, pinned against the recorded PR 2 engine (view-owned indexes, which
    // was break-even with independent views) and fresh independent engines.
    let e8 = distinct_engine_8.expect("distinct scenario measured");
    let e1 = distinct_engine_1.expect("distinct scenario measured");
    let i8 = distinct_independent_8.expect("distinct scenario measured");
    println!(
        "\n== distinct_views_shared_indexes (8 views) ==\n\
         shared-index engine : {:>8.3} ms/batch, store+indexes {:.2} MiB ({} shared indexes)\n\
         pr2 engine (recorded): {:>8.3} ms/batch, store {:.2} MiB (+ unaccounted per-view indexes)\n\
         independent engines : {:>8.3} ms/batch, store+indexes {:.2} MiB\n\
         speedup vs independent {:.2}×, vs pr2 engine {:.2}×; \
         memory at 8 views = {:.2}× the single-view figure",
        e8.total_ms_per_batch,
        e8.store_bytes as f64 / (1024.0 * 1024.0),
        e8.index_count,
        PR2_ENGINE_8_DISTINCT_MS_PER_BATCH,
        PR2_ENGINE_8_DISTINCT_STORE_BYTES as f64 / (1024.0 * 1024.0),
        i8.total_ms_per_batch,
        i8.store_bytes as f64 / (1024.0 * 1024.0),
        i8.total_ms_per_batch / e8.total_ms_per_batch,
        PR2_ENGINE_8_DISTINCT_MS_PER_BATCH / e8.total_ms_per_batch,
        e8.store_bytes as f64 / e1.store_bytes as f64
    );
    sections.push(format!(
        "  \"distinct_views_shared_indexes\": {{\n    \"shared_index_engine\": \
         {{\"views\": 8, \"total_ms_per_batch\": {:.4}, \"store_bytes\": {}, \
         \"index_bytes\": {}, \"index_count\": {}}},\n    \"pr2_engine_recorded\": \
         {{\"views\": 8, \"total_ms_per_batch\": {:.4}, \"store_bytes\": {}, \
         \"note\": \"view-owned indexes, index memory unaccounted\"}},\n    \
         \"independent\": {{\"views\": 8, \"total_ms_per_batch\": {:.4}, \
         \"store_bytes\": {}}},\n    \"pr2_independent_recorded_ms\": {:.4},\n    \
         \"speedup_vs_independent\": {:.3},\n    \"speedup_vs_pr2_engine\": {:.3},\n    \
         \"memory_vs_single_view\": {:.3}\n  }}",
        e8.total_ms_per_batch,
        e8.store_bytes,
        e8.index_bytes,
        e8.index_count,
        PR2_ENGINE_8_DISTINCT_MS_PER_BATCH,
        PR2_ENGINE_8_DISTINCT_STORE_BYTES,
        i8.total_ms_per_batch,
        i8.store_bytes,
        PR2_INDEPENDENT_8_DISTINCT_MS_PER_BATCH,
        i8.total_ms_per_batch / e8.total_ms_per_batch,
        PR2_ENGINE_8_DISTINCT_MS_PER_BATCH / e8.total_ms_per_batch,
        e8.store_bytes as f64 / e1.store_bytes as f64
    ));

    // Flat interned storage vs the boxed-slice Row engine it replaced: the
    // same 8-view series against the last boxed-layout measurement (recorded
    // constants above).  ms/batch comes from the engines' own batch traces in
    // both layouts, index bytes from the registry's accounting.
    let id8 = identical_engine_8.expect("identical scenario measured");
    println!(
        "\n== flat_vs_boxed_row (8 distinct views) ==\n\
         flat interned  : {:>8.3} ms/batch, index {:.2} MiB, store {:.2} MiB\n\
         boxed (recorded): {:>8.3} ms/batch, index {:.2} MiB, store {:.2} MiB\n\
         speedup {:.2}×, index bytes {:.2}× smaller, store bytes {:.2}× smaller \
         (identical-8 index {:.2}× smaller)",
        e8.total_ms_per_batch,
        e8.index_bytes as f64 / (1024.0 * 1024.0),
        e8.store_bytes as f64 / (1024.0 * 1024.0),
        BOXED_ROW_8_DISTINCT_MS_PER_BATCH,
        BOXED_ROW_8_DISTINCT_INDEX_BYTES as f64 / (1024.0 * 1024.0),
        BOXED_ROW_8_DISTINCT_STORE_BYTES as f64 / (1024.0 * 1024.0),
        BOXED_ROW_8_DISTINCT_MS_PER_BATCH / e8.total_ms_per_batch,
        BOXED_ROW_8_DISTINCT_INDEX_BYTES as f64 / e8.index_bytes as f64,
        BOXED_ROW_8_DISTINCT_STORE_BYTES as f64 / e8.store_bytes as f64,
        BOXED_ROW_8_IDENTICAL_INDEX_BYTES as f64 / id8.index_bytes as f64,
    );
    sections.push(format!(
        "  \"flat_vs_boxed_row\": {{\n    \"flat\": {{\"views\": 8, \
         \"total_ms_per_batch\": {:.4}, \"index_bytes\": {}, \"store_bytes\": {}}},\n    \
         \"boxed_row_recorded\": {{\"views\": 8, \"total_ms_per_batch\": {:.4}, \
         \"index_bytes\": {}, \"store_bytes\": {}}},\n    \
         \"speedup_ms_per_batch\": {:.3},\n    \"index_bytes_reduction\": {:.3},\n    \
         \"store_bytes_reduction\": {:.3},\n    \
         \"identical_8_index_bytes\": {{\"flat\": {}, \"boxed_row_recorded\": {}, \
         \"reduction\": {:.3}}}\n  }}",
        e8.total_ms_per_batch,
        e8.index_bytes,
        e8.store_bytes,
        BOXED_ROW_8_DISTINCT_MS_PER_BATCH,
        BOXED_ROW_8_DISTINCT_INDEX_BYTES,
        BOXED_ROW_8_DISTINCT_STORE_BYTES,
        BOXED_ROW_8_DISTINCT_MS_PER_BATCH / e8.total_ms_per_batch,
        BOXED_ROW_8_DISTINCT_INDEX_BYTES as f64 / e8.index_bytes as f64,
        BOXED_ROW_8_DISTINCT_STORE_BYTES as f64 / e8.store_bytes as f64,
        id8.index_bytes,
        BOXED_ROW_8_IDENTICAL_INDEX_BYTES,
        BOXED_ROW_8_IDENTICAL_INDEX_BYTES as f64 / id8.index_bytes as f64,
    ));

    // Parallel sweep: the 8-distinct-views scenario at worker widths 1/2/4/8.
    // Since the intra-batch parallelism work, worker width drives all three
    // parallel mechanisms at once — per-view fan-out, the sharded commit
    // (mirror + index shards), and the per-fold partition count (defaults to
    // the width) — so this one series sweeps the whole pipeline.  Achievable
    // speedup is bounded by the host's available parallelism (recorded in the
    // JSON so readers can tell a scaling result from a single-core overhead
    // check): with one hardware thread the series documents that the pools
    // are overhead-neutral (host-limited), not a speedup.
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let views8 = queries("distinct", 8);
    let mut parallel_runs: Vec<Option<Measurement>> = vec![None; WORKER_WIDTHS.len()];
    for _rep in 0..REPETITIONS {
        for (slot, &workers) in WORKER_WIDTHS.iter().enumerate() {
            keep_min(
                &mut parallel_runs[slot],
                run_engine(&data.db, &batches, &views8, workers),
            );
        }
    }
    let parallel_runs: Vec<Measurement> = parallel_runs.into_iter().flatten().collect();
    let base_ms = parallel_runs[0].total_ms_per_batch;
    println!(
        "\n== distinct_views_parallel (8 views, host parallelism {host_parallelism}) ==\n\
         {:<10} {:>16} {:>18}",
        "workers", "total ms/batch", "speedup vs 1 wkr"
    );
    for (workers, m) in WORKER_WIDTHS.iter().zip(&parallel_runs) {
        println!(
            "{workers:<10} {:>16.3} {:>18.2}",
            m.total_ms_per_batch,
            base_ms / m.total_ms_per_batch
        );
    }
    let parallel_entries: Vec<String> = WORKER_WIDTHS
        .iter()
        .zip(&parallel_runs)
        .map(|(workers, m)| {
            format!(
                "      {{\"workers\": {workers}, \"fold_partitions\": {workers}, \
                 \"commit_shards\": 4, \"total_ms_per_batch\": {:.4}, \
                 \"speedup_vs_1_worker\": {:.3}}}",
                m.total_ms_per_batch,
                base_ms / m.total_ms_per_batch
            )
        })
        .collect();
    sections.push(format!(
        "  \"distinct_views_parallel\": {{\n    \"host_available_parallelism\": {host_parallelism},\n    \
         \"note\": \"width drives view fan-out, sharded commit and fold partitions; speedup is \
         bounded by host parallelism — at 1 the sweep documents host-limited overhead-neutrality, \
         not scaling\",\n    \
         \"runs\": [\n{}\n    ]\n  }}",
        parallel_entries.join(",\n")
    ));

    let json = format!(
        "{{\n  \"bench\": \"multi_view\",\n  \"generated_by\": \"cargo bench -p dcq-bench --bench multi_view\",\n  \
         \"database_tuples\": {},\n  \"effective_tuples_per_batch\": {EFFECTIVE_TUPLES},\n  \
         \"redundancy\": {REDUNDANCY},\n  \"batches\": {N_BATCHES},\n  \"view_counts\": {VIEW_COUNTS:?},\n{}\n}}\n",
        data.db.input_size(),
        sections.join(",\n")
    );
    let path = output_path();
    std::fs::write(&path, json).expect("write BENCH_multi_view.json");
    println!("\nwrote {}", path.display());
}

/// Blow each batch up with the redundant traffic of an upsert-heavy stream:
/// re-inserts of rows already in the store and deletes of rows that never were.
/// Both normalize to no-ops, identically for every scenario.
fn with_redundancy(batches: Vec<DeltaBatch>, db: &Database) -> Vec<DeltaBatch> {
    let existing = db.get("Graph").expect("Graph exists").rows();
    batches
        .into_iter()
        .enumerate()
        .map(|(i, batch)| {
            let mut fat = batch.clone();
            for k in 0..EFFECTIVE_TUPLES * REDUNDANCY {
                if k % 2 == 0 {
                    // Upsert of a row that is (almost certainly) already present.
                    let row = existing[(i * 131 + k * 7) % existing.len()].clone();
                    fat.insert("Graph", row);
                } else {
                    // Delete of a row that was never inserted.
                    fat.delete(
                        "Graph",
                        int_row([10_000_000 + (i * 977 + k) as i64, k as i64]),
                    );
                }
            }
            fat
        })
        .collect()
}

/// Milliseconds the engine's own per-batch traces account for the run: the
/// phase sum (commit + fan-out + policy tail) of every drained [`BatchTrace`].
/// Falls back to the harness wall clock when telemetry is compiled out.
fn traced_total_ms(engine: &DcqEngine, wall_ms: f64) -> f64 {
    let traced_ns: u64 = engine
        .drain_traces()
        .iter()
        .map(|t| t.commit_ns + t.fanout_ns + t.policy_ns)
        .sum();
    if traced_ns > 0 {
        traced_ns as f64 / 1e6
    } else {
        wall_ms
    }
}

/// One engine, one handle per query, one `apply` per batch: shared store,
/// shared normalization, shared index registry.  `workers` is the per-view
/// fan-out width (`1` = the sequential path every earlier PR recorded).
/// Per-batch time comes from the engine's drained `BatchTrace` phase sums.
fn run_engine(db: &Database, batches: &[DeltaBatch], views: &[Dcq], workers: usize) -> Measurement {
    let mut engine = DcqEngine::with_database(db.clone());
    engine.set_workers(workers);
    for dcq in views {
        engine
            .register_with(dcq.clone(), IncrementalStrategy::Counting)
            .expect("register");
    }
    let start = Instant::now();
    for batch in batches {
        engine.apply(batch).expect("engine applies");
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let total_ms_per_batch = traced_total_ms(&engine, wall_ms) / batches.len() as f64;
    Measurement {
        views: views.len(),
        total_ms_per_batch,
        per_view_ms_per_batch: total_ms_per_batch / views.len() as f64,
        store_bytes: engine.store_bytes(),
        index_bytes: engine.index_bytes(),
        index_count: engine.index_count(),
    }
}

/// The every-client-for-itself shape: one single-view engine per query, each
/// owning a private copy of the relations its query references (matching the
/// per-view copies of the pre-engine design, so the recorded memory series
/// stays comparable across PRs), its own normalization pass and its own
/// indexes.
fn run_independent(db: &Database, batches: &[DeltaBatch], queries: &[Dcq]) -> Measurement {
    let mut engines: Vec<DcqEngine> = queries
        .iter()
        .map(|dcq| {
            let mut referenced: Vec<&str> = dcq
                .q1
                .atoms
                .iter()
                .chain(dcq.q2.atoms.iter())
                .map(|a| a.relation.as_str())
                .collect();
            referenced.sort_unstable();
            referenced.dedup();
            let mut private = Database::new();
            for name in referenced {
                private
                    .add(db.get(name).expect("referenced relation exists").clone())
                    .expect("fresh database");
            }
            let mut engine = DcqEngine::with_database(private);
            engine
                .register_with(dcq.clone(), IncrementalStrategy::Counting)
                .expect("register");
            engine
        })
        .collect();
    let start = Instant::now();
    for batch in batches {
        for engine in &mut engines {
            engine.apply(batch).expect("independent engine applies");
        }
    }
    // Every engine pays its own full per-batch cost here; the arm's figure is
    // the sum of what each engine's traces account for (wall split evenly as
    // the telemetry-off fallback).
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let total_ms: f64 = engines
        .iter()
        .map(|engine| traced_total_ms(engine, wall_ms / engines.len() as f64))
        .sum();
    let total_ms_per_batch = total_ms / batches.len() as f64;
    Measurement {
        views: queries.len(),
        total_ms_per_batch,
        per_view_ms_per_batch: total_ms_per_batch / queries.len() as f64,
        store_bytes: engines.iter().map(|e| e.store_bytes()).sum(),
        index_bytes: engines.iter().map(|e| e.index_bytes()).sum(),
        index_count: engines.iter().map(|e| e.index_count()).sum(),
    }
}

fn render_runs(runs: &[Measurement]) -> String {
    let entries: Vec<String> = runs
        .iter()
        .map(|m| {
            format!(
                "      {{\"views\": {}, \"total_ms_per_batch\": {:.4}, \
                 \"per_view_ms_per_batch\": {:.4}, \"store_bytes\": {}, \
                 \"index_bytes\": {}, \"index_count\": {}}}",
                m.views,
                m.total_ms_per_batch,
                m.per_view_ms_per_batch,
                m.store_bytes,
                m.index_bytes,
                m.index_count
            )
        })
        .collect();
    entries.join(",\n")
}

fn render_section(name: &str, engine: &[Measurement], independent: &[Measurement]) -> String {
    let e8 = engine.last().expect("8-view run");
    let i8 = independent.last().expect("8-view run");
    format!(
        "  \"{name}\": {{\n    \"engine\": [\n{}\n    ],\n    \"independent\": [\n{}\n    ],\n    \
         \"speedup_at_8_views\": {:.3},\n    \"memory_ratio_at_8_views\": {:.3}\n  }}",
        render_runs(engine),
        render_runs(independent),
        i8.total_ms_per_batch / e8.total_ms_per_batch,
        i8.store_bytes as f64 / e8.store_bytes as f64
    )
}

/// `BENCH_multi_view.json` at the workspace root, so successive PRs accumulate a
/// perf trajectory in one predictable place.
fn output_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_multi_view.json")
}
