//! Figures 6–8: the Q_G4 parameter sweeps.
//!
//! * Figure 6 — vary OUT₁ by scaling the Triple relation, Q₂ fixed;
//! * Figure 7 — vary OUT₂ by filtering the Graph relation used by Q₂;
//! * Figure 8 — vary OUT via the Triple generation rule mix, everything else fixed.
//!
//! The expected shape (verified by the `repro` binary output): the optimized plan
//! tracks OUT, the original plan tracks OUT₁ + OUT₂.

use criterion::{criterion_group, criterion_main, Criterion};
use dcq_core::baseline::{baseline_dcq, CqStrategy};
use dcq_core::planner::DcqPlanner;
use dcq_datagen::datasets::build_dataset;
use dcq_datagen::{graph_query, Graph, GraphQueryId, TripleRuleMix};
use dcq_storage::Value;
use std::time::Duration;

fn sweep_graph() -> Graph {
    Graph::preferential_attachment(3_000, 5, 77)
}

fn bench_fig6_out1(c: &mut Criterion) {
    let graph = sweep_graph();
    let dcq = graph_query(GraphQueryId::QG4);
    let planner = DcqPlanner::smart();
    let mut group = c.benchmark_group("fig6/out1_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for fraction in [0.1f64, 0.5, 1.0] {
        let data = build_dataset(
            "fig6",
            graph.clone(),
            0.5 * fraction,
            TripleRuleMix::balanced(),
            5,
        );
        group.bench_function(format!("original/triple_frac_{fraction}"), |b| {
            b.iter(|| {
                baseline_dcq(&dcq, &data.db, CqStrategy::Vanilla)
                    .unwrap()
                    .len()
            })
        });
        group.bench_function(format!("optimized/triple_frac_{fraction}"), |b| {
            b.iter(|| planner.execute(&dcq, &data.db).unwrap().len())
        });
    }
    group.finish();
}

fn bench_fig7_out2(c: &mut Criterion) {
    let graph = sweep_graph();
    let planner = DcqPlanner::smart();
    let base = build_dataset("fig7", graph.clone(), 0.5, TripleRuleMix::balanced(), 6);
    let dcq = dcq_core::parse::parse_dcq(
        "QG4(node1, node2, node3) :- Triple(node1, node2, node3)
         EXCEPT Graph2(node1, node2), Graph2(node2, node3), Graph2(node3, node4)",
    )
    .unwrap();
    let mut group = c.benchmark_group("fig7/out2_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for keep in [1.0f64, 0.5, 0.25] {
        let threshold = (graph.n_vertices as f64 * keep) as i64;
        let mut db = base.db.clone();
        let mut graph2 = db
            .get("Graph")
            .unwrap()
            .filter(|row| row.get(1) < &Value::Int(threshold));
        graph2.set_name("Graph2");
        db.add_or_replace(graph2);
        group.bench_function(format!("original/selectivity_{keep}"), |b| {
            b.iter(|| baseline_dcq(&dcq, &db, CqStrategy::Vanilla).unwrap().len())
        });
        group.bench_function(format!("optimized/selectivity_{keep}"), |b| {
            b.iter(|| planner.execute(&dcq, &db).unwrap().len())
        });
    }
    group.finish();
}

fn bench_fig8_out(c: &mut Criterion) {
    let graph = sweep_graph();
    let dcq = graph_query(GraphQueryId::QG4);
    let planner = DcqPlanner::smart();
    let mut group = c.benchmark_group("fig8/out_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for (label, mix) in [
        ("mostly_paths", TripleRuleMix::mostly_paths()),
        ("balanced", TripleRuleMix::balanced()),
        ("mostly_random", TripleRuleMix::mostly_random()),
    ] {
        let data = build_dataset("fig8", graph.clone(), 0.5, mix, 7);
        group.bench_function(format!("original/{label}"), |b| {
            b.iter(|| {
                baseline_dcq(&dcq, &data.db, CqStrategy::Vanilla)
                    .unwrap()
                    .len()
            })
        });
        group.bench_function(format!("optimized/{label}"), |b| {
            b.iter(|| planner.execute(&dcq, &data.db).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6_out1, bench_fig7_out2, bench_fig8_out);
criterion_main!(benches);
