//! `repro` — regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p dcq-bench --bin repro -- [experiment…]
//! ```
//!
//! Experiments (default: `all`):
//!
//! * `table2`          — graph dataset statistics and per-query output sizes,
//! * `fig5-graph`      — running time of Q_G1…Q_G6, original vs optimized,
//! * `fig5-benchmark`  — running time of the TPC-like queries at several scale factors,
//! * `fig6`            — Q_G4, varying OUT₁ (Triple size),
//! * `fig7`            — Q_G4, varying OUT₂ (selectivity of the predicate on Graph in Q₂),
//! * `fig8`            — Q_G4, varying OUT (Triple rule mix) with N, OUT₁, OUT₂ fixed,
//! * `fig9`            — peak memory of original vs optimized plans,
//! * `table1-scaling`  — measured scaling of each strategy on an easy and a hard DCQ.

use dcq_bench::memtrack::{live_bytes, peak_bytes, peak_during, CountingAllocator};
use dcq_bench::{compare_plans, time};
use dcq_core::baseline::{baseline_dcq_with_stats, CqStrategy};
use dcq_core::compose::push_selection;
use dcq_core::multi::{multi_dcq_naive, multi_dcq_recursive};
use dcq_core::planner::DcqPlanner;
use dcq_datagen::datasets::build_dataset;
use dcq_datagen::{
    dataset, dataset_names, graph_queries, graph_query, tpcds_q35_workload, tpcds_q69_workload,
    tpch_q16_workload, Graph, GraphQueryId, TripleRuleMix,
};
use dcq_storage::Value;
use dcq_telemetry::MetricsRegistry;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

fn header(title: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Table 2: dataset statistics and per-query output sizes.
fn table2() {
    header("Table 2 — graph datasets and their statistics (synthetic stand-ins)");
    println!(
        "{:<14} {:>8} {:>8} {:>10} {:>9} {:>8} | {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "dataset",
        "#edge",
        "#vertex",
        "#l2path",
        "#tri",
        "#Triple",
        "QG1",
        "QG2",
        "QG3",
        "QG4",
        "QG5",
        "QG6"
    );
    let planner = DcqPlanner::smart();
    for name in dataset_names() {
        let data = dataset(name);
        let mut outs = Vec::new();
        for (id, dcq) in graph_queries() {
            // Q_G5/Q_G6 blow up on the larger graphs exactly as in the paper ('-').
            let too_big = (id == GraphQueryId::QG6 && data.stats.edges > 2_500)
                || (id == GraphQueryId::QG5 && data.stats.edges > 60_000);
            if too_big {
                outs.push("-".to_string());
                continue;
            }
            let out = planner.execute(&dcq, &data.db).expect("query runs");
            outs.push(out.len().to_string());
        }
        println!(
            "{:<14} {:>8} {:>8} {:>10} {:>9} {:>8} | {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
            data.name,
            data.stats.edges,
            data.stats.vertices,
            data.stats.length2_paths,
            data.stats.triangles,
            data.triple_size,
            outs[0],
            outs[1],
            outs[2],
            outs[3],
            outs[4],
            outs[5],
        );
    }
}

/// Figure 5 (left): graph query running times.
fn fig5_graph() {
    header("Figure 5 (graph queries) — running time in seconds, original vs optimized");
    println!(
        "{:<14} {:<5} {:>10} {:>10} {:>10} {:>11} {:>11} {:>8}",
        "dataset", "query", "OUT1", "OUT2", "OUT", "original", "optimized", "speedup"
    );
    for name in dataset_names() {
        let data = dataset(name);
        for (id, dcq) in graph_queries() {
            let too_big = (id == GraphQueryId::QG6 && data.stats.edges > 2_500)
                || (id == GraphQueryId::QG5 && data.stats.edges > 60_000);
            if too_big {
                println!(
                    "{:<14} {:<5} (skipped: intermediate result too large)",
                    data.name,
                    id.name()
                );
                continue;
            }
            let cmp = compare_plans(&dcq, &data.db);
            println!(
                "{:<14} {:<5} {:>10} {:>10} {:>10} {:>11} {:>11} {:>7.1}x",
                data.name,
                id.name(),
                cmp.stats.out1,
                cmp.stats.out2,
                cmp.stats.out,
                secs(cmp.original),
                secs(cmp.optimized),
                cmp.speedup()
            );
        }
    }
}

/// Figure 5 (right): benchmark query running times.
fn fig5_benchmark() {
    header("Figure 5 (benchmark queries) — running time in seconds, original vs optimized");
    println!(
        "{:<11} {:>4} {:>10} {:>8} {:>11} {:>11} {:>8}",
        "workload", "sf", "N", "OUT", "original", "optimized", "speedup"
    );
    for sf in [1usize, 2, 4, 8] {
        for workload in [
            tpch_q16_workload(sf),
            tpcds_q35_workload(sf),
            tpcds_q69_workload(sf),
        ] {
            let (slow, t_slow) = time(|| {
                multi_dcq_naive(&workload.multi, &workload.db, CqStrategy::Vanilla).unwrap()
            });
            let (fast, t_fast) =
                time(|| multi_dcq_recursive(&workload.multi, &workload.db).unwrap());
            assert_eq!(slow.distinct_count(), fast.distinct_count());
            println!(
                "{:<11} {:>4} {:>10} {:>8} {:>11} {:>11} {:>7.1}x",
                workload.name,
                sf,
                workload.input_size(),
                fast.len(),
                secs(t_slow),
                secs(t_fast),
                t_slow.as_secs_f64() / t_fast.as_secs_f64().max(1e-9)
            );
        }
    }
}

/// Figures 6–8: the Q_G4 sweeps on the google-sim graph.
fn sweeps(which: &str) {
    let base = dataset("google-sim");
    let dcq = graph_query(GraphQueryId::QG4);

    if which == "fig6" {
        header("Figure 6 — Q_G4 on google-sim, varying OUT1 (Triple size), Q2 fixed");
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>11} {:>11}",
            "Triple frac", "OUT1", "OUT2", "OUT", "original", "optimized"
        );
        for fraction in [0.1f64, 0.25, 0.5, 0.75, 1.0] {
            let data = build_dataset(
                "google-sim-sweep",
                base.graph.clone(),
                0.5 * fraction,
                TripleRuleMix::balanced(),
                97,
            );
            let cmp = compare_plans(&dcq, &data.db);
            println!(
                "{:<12} {:>9} {:>9} {:>9} {:>11} {:>11}",
                format!("{:.2}", fraction),
                cmp.stats.out1,
                cmp.stats.out2,
                cmp.stats.out,
                secs(cmp.original),
                secs(cmp.optimized)
            );
        }
    }

    if which == "fig7" {
        header("Figure 7 — Q_G4 on google-sim, varying OUT2 via a predicate on Graph in Q2");
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>11} {:>11}",
            "selectivity", "OUT1", "OUT2", "OUT", "original", "optimized"
        );
        // Q2 references the same stored Graph relation as Q1, so to filter only Q2's
        // copy we register a filtered clone under a different name and rewrite Q2.
        for keep in [1.0f64, 0.75, 0.5, 0.25] {
            let mut db = base.db.clone();
            let threshold = (base.graph.n_vertices as f64 * keep) as i64;
            let filtered =
                push_selection(&base.db, "Graph", |row| row.get(1) < &Value::Int(threshold))
                    .unwrap();
            let mut graph2 = filtered.get("Graph").unwrap().clone();
            graph2.set_name("Graph2");
            db.add_or_replace(graph2);
            let dcq_filtered = dcq_core::parse::parse_dcq(
                "QG4(node1, node2, node3) :- Triple(node1, node2, node3)
                 EXCEPT Graph2(node1, node2), Graph2(node2, node3), Graph2(node3, node4)",
            )
            .unwrap();
            let cmp = compare_plans(&dcq_filtered, &db);
            println!(
                "{:<12} {:>9} {:>9} {:>9} {:>11} {:>11}",
                format!("{:.2}", keep),
                cmp.stats.out1,
                cmp.stats.out2,
                cmp.stats.out,
                secs(cmp.original),
                secs(cmp.optimized)
            );
        }
    }

    if which == "fig8" {
        header("Figure 8 — Q_G4 on google-sim, varying OUT via the Triple rule mix (N, OUT1, OUT2 fixed)");
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>11} {:>11}",
            "rule mix (r1/r2/r3)", "OUT1", "OUT2", "OUT", "original", "optimized"
        );
        for (label, mix) in [
            ("0.95/0.04/0.01", TripleRuleMix::mostly_paths()),
            ("0.50/0.30/0.20", TripleRuleMix::balanced()),
            ("0.05/0.75/0.20", TripleRuleMix::mostly_random()),
        ] {
            let data = build_dataset("google-sim-mix", base.graph.clone(), 0.5, mix, 131);
            let cmp = compare_plans(&dcq, &data.db);
            println!(
                "{:<22} {:>9} {:>9} {:>9} {:>11} {:>11}",
                label,
                cmp.stats.out1,
                cmp.stats.out2,
                cmp.stats.out,
                secs(cmp.original),
                secs(cmp.optimized)
            );
        }
    }
}

/// Figure 9: peak memory of original vs optimized plans on epinions-sim.
fn fig9() {
    header("Figure 9 — peak heap memory (MiB) on epinions-sim, original vs optimized");
    let data = dataset("epinions-sim");
    let planner = DcqPlanner::smart();
    println!("{:<6} {:>14} {:>14}", "query", "original", "optimized");
    for (id, dcq) in graph_queries() {
        if id == GraphQueryId::QG6 && data.stats.edges > 2_500 {
            println!("{:<6} (skipped: Cartesian product too large)", id.name());
            continue;
        }
        let (_, original_peak) =
            peak_during(|| baseline_dcq_with_stats(&dcq, &data.db, CqStrategy::Vanilla).unwrap());
        let (_, optimized_peak) = peak_during(|| planner.execute(&dcq, &data.db).unwrap());
        println!(
            "{:<6} {:>14.2} {:>14.2}",
            id.name(),
            original_peak as f64 / (1024.0 * 1024.0),
            optimized_peak as f64 / (1024.0 * 1024.0)
        );
    }
}

/// Table 1: measured scaling of the strategies on an easy and a hard DCQ.
fn table1_scaling() {
    header("Table 1 — measured scaling of baseline vs our approach (easy and hard DCQs)");
    println!(
        "{:<18} {:>9} {:>9} {:>11} {:>11} {:>8}",
        "instance", "N", "OUT", "baseline", "ours", "speedup"
    );
    for edges in [2_000usize, 8_000, 32_000] {
        let graph = Graph::preferential_attachment((edges / 4) as u64, 4, 7);
        let data = build_dataset("scaling", graph, 0.5, TripleRuleMix::balanced(), 5);
        // Easy DCQ: Q_G3 (difference-linear, Theorem 3.1).
        let cmp = compare_plans(&graph_query(GraphQueryId::QG3), &data.db);
        println!(
            "{:<18} {:>9} {:>9} {:>11} {:>11} {:>7.1}x",
            format!("easy/QG3 m≈{edges}"),
            data.db.input_size(),
            cmp.stats.out,
            secs(cmp.original),
            secs(cmp.optimized),
            cmp.speedup()
        );
        // Hard DCQ: Q_G5 (Corollary 2.5 heuristic).
        let cmp = compare_plans(&graph_query(GraphQueryId::QG5), &data.db);
        println!(
            "{:<18} {:>9} {:>9} {:>11} {:>11} {:>7.1}x",
            format!("hard/QG5 m≈{edges}"),
            data.db.input_size(),
            cmp.stats.out,
            secs(cmp.original),
            secs(cmp.optimized),
            cmp.speedup()
        );
    }
}

/// Export the run's heap footprint — [`CountingAllocator`]'s live and peak
/// byte counters — through the same `dcq-telemetry` registry/exposition
/// machinery the engine's `metrics()` uses, so a scraper reads the repro
/// binary and a serving engine in one format.
fn heap_exposition() {
    header("Heap telemetry — memtrack gauges, Prometheus exposition format");
    let registry = MetricsRegistry::new();
    registry
        .gauge(
            "dcq_repro_heap_live_bytes",
            "Live heap bytes at the end of the repro run (memtrack::CountingAllocator)",
        )
        .set(live_bytes() as u64);
    registry
        .gauge(
            "dcq_repro_heap_peak_bytes",
            "Peak heap bytes since the last reset (fig9 resets around each plan)",
        )
        .set(peak_bytes() as u64);
    print!("{}", registry.render_prometheus());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table2",
            "fig5-graph",
            "fig5-benchmark",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "table1-scaling",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for experiment in wanted {
        match experiment {
            "table2" => table2(),
            "fig5-graph" => fig5_graph(),
            "fig5-benchmark" => fig5_benchmark(),
            "fig6" | "fig7" | "fig8" => sweeps(experiment),
            "fig9" => fig9(),
            "table1-scaling" => table1_scaling(),
            other => eprintln!("unknown experiment `{other}` (see --help in the module docs)"),
        }
    }
    heap_exposition();
}
