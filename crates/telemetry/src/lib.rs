//! # dcq-telemetry — metrics and tracing substrate for the DCQ engine stack
//!
//! A zero-dependency (pure `std`) observability layer shared by every crate in
//! the workspace:
//!
//! * [`Counter`] / [`Gauge`] — single atomic cells. The lower layers
//!   (`dcq-storage`'s index registry, `dcq-incremental`'s counting engine)
//!   embed these directly so hot loops pay one relaxed atomic add per event
//!   and nothing else.
//! * [`Histogram`] — log₂-bucketed latency histogram (nanosecond samples),
//!   rendered in Prometheus cumulative-bucket form.
//! * [`MetricsRegistry`] — a named collection of the above with a
//!   Prometheus-style text exposition ([`MetricsRegistry::render_prometheus`]).
//! * [`BatchTrace`] / [`TraceSink`] / [`RingTraceSink`] — structured per-batch
//!   trace records (phase timings, per-view maintenance records) captured into
//!   a bounded ring whose writers never contend on a shared lock, and dumped
//!   as JSON lines ([`render_json_lines`]).
//!
//! The crate knows nothing about queries or databases: the engine describes
//! its batches with plain strings and numbers, which keeps this crate at the
//! bottom of the dependency graph so `dcq-storage` can use it without cycles.
//!
//! ## Determinism contract
//!
//! Counters fall in two classes, and the distinction is load-bearing for the
//! engine's parallel ≡ sequential guarantee (see `tests/parallel_determinism.rs`
//! in the workspace root):
//!
//! * **Schedule-independent** counts (index probes, folds, COW clones,
//!   migrations) depend only on the logical operation sequence, so two engines
//!   fed the same batches must report bit-identical values regardless of
//!   worker count.
//! * **Timing** samples (histograms, phase nanoseconds) are physical
//!   measurements and are never compared across runs.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
///
/// All mutation is `Relaxed`: counters are statistical, not synchronization
/// points; readers observe values at least as fresh as the last happens-before
/// edge they already have with the writer (the engine reads after joining its
/// worker pool).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

/// Cloning copies the current value into an independent cell, so `Clone`
/// containers embedding counters keep their observed history without sharing
/// future increments.
impl Clone for Counter {
    fn clone(&self) -> Self {
        let c = Counter::new();
        c.set_total(self.get());
        c
    }
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrite the cumulative value.
    ///
    /// Used by aggregating exporters that re-derive a total (retired base +
    /// live sum) before rendering; ordinary instrumentation sites should only
    /// ever [`add`](Self::add).
    #[inline]
    pub fn set_total(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }
}

/// A point-in-time value (lengths, live object counts, bytes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

/// Cloning copies the current value (see [`Counter`]'s `Clone`).
impl Clone for Gauge {
    fn clone(&self) -> Self {
        let g = Gauge::new();
        g.set(self.get());
        g
    }
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: u64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket `i` (for `i < BUCKETS - 1`) counts samples
/// with `value < 2^i`; the last bucket is `+Inf`. 40 buckets cover ~18 minutes
/// in nanoseconds, far beyond any per-batch phase.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log₂-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// `observe` is two relaxed atomic adds plus a `leading_zeros`; there is no
/// per-observation allocation or locking.
#[derive(Debug)]
pub struct Histogram {
    /// `buckets[i]` counts samples with `floor_log2(v) == i - 1` (bucket 0
    /// takes `v == 0`); rendered cumulatively.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket a sample lands in: 0 for 0, else
    /// `floor(log2(v)) + 1`, clamped to the last (+Inf) bucket.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, index as in [`Self::bucket_index`].
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Upper bound (exclusive, in sample units) of bucket `i`, `None` for the
    /// final +Inf bucket.
    pub fn bucket_upper_bound(i: usize) -> Option<u64> {
        (i + 1 < HISTOGRAM_BUCKETS).then(|| 1u64 << i)
    }
}

/// Metric kinds, used to emit `# TYPE` exposition lines.
enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Slot::Counter(c) => write!(f, "Counter({})", c.get()),
            Slot::Gauge(g) => write!(f, "Gauge({})", g.get()),
            Slot::Histogram(h) => write!(f, "Histogram(count={})", h.count()),
        }
    }
}

/// A named metric family: registration order is preserved in the exposition
/// so diffs between scrapes stay readable.
#[derive(Debug, Default)]
struct RegistryInner {
    metrics: Vec<(String, String, Slot)>,
}

/// A named collection of counters, gauges, and histograms with a
/// Prometheus-style text exposition.
///
/// Handles are `Arc`s: callers register once (typically at engine
/// construction), keep the `Arc` in a struct field, and mutate it from hot
/// paths without ever touching the registry lock again. Registration is
/// idempotent per name — re-registering returns the existing handle (kinds
/// must match; a kind clash panics, it is a programming error).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`. `help` is used on first registration.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        for (n, _, slot) in &inner.metrics {
            if n == name {
                match slot {
                    Slot::Counter(c) => return Arc::clone(c),
                    _ => panic!("metric {name:?} already registered with a different kind"),
                }
            }
        }
        let c = Arc::new(Counter::new());
        inner.metrics.push((
            name.to_string(),
            help.to_string(),
            Slot::Counter(Arc::clone(&c)),
        ));
        c
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        for (n, _, slot) in &inner.metrics {
            if n == name {
                match slot {
                    Slot::Gauge(g) => return Arc::clone(g),
                    _ => panic!("metric {name:?} already registered with a different kind"),
                }
            }
        }
        let g = Arc::new(Gauge::new());
        inner.metrics.push((
            name.to_string(),
            help.to_string(),
            Slot::Gauge(Arc::clone(&g)),
        ));
        g
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        for (n, _, slot) in &inner.metrics {
            if n == name {
                match slot {
                    Slot::Histogram(h) => return Arc::clone(h),
                    _ => panic!("metric {name:?} already registered with a different kind"),
                }
            }
        }
        let h = Arc::new(Histogram::new());
        inner.metrics.push((
            name.to_string(),
            help.to_string(),
            Slot::Histogram(Arc::clone(&h)),
        ));
        h
    }

    /// Current value of a counter or gauge by name (testing / EngineStats
    /// derivation); `None` if absent or a histogram.
    pub fn value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .metrics
            .iter()
            .find(|(n, _, _)| n == name)
            .and_then(|(_, _, slot)| match slot {
                Slot::Counter(c) => Some(c.get()),
                Slot::Gauge(g) => Some(g.get()),
                Slot::Histogram(_) => None,
            })
    }

    /// All scalar (counter/gauge) values, in registration order.
    ///
    /// Timing histograms are deliberately excluded: this is the
    /// schedule-independent face of the registry, the one determinism tests
    /// may compare bit-for-bit across worker counts.
    pub fn scalar_snapshot(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .metrics
            .iter()
            .filter_map(|(n, _, slot)| match slot {
                Slot::Counter(c) => Some((n.clone(), c.get())),
                Slot::Gauge(g) => Some((n.clone(), g.get())),
                Slot::Histogram(_) => None,
            })
            .collect()
    }

    /// Render the whole registry in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, cumulative `_bucket{le="..."}` series,
    /// `_sum` and `_count` for histograms).
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, help, slot) in &inner.metrics {
            match slot {
                Slot::Counter(c) => {
                    push_header(&mut out, name, help, "counter");
                    out.push_str(&format!("{name} {}\n", c.get()));
                }
                Slot::Gauge(g) => {
                    push_header(&mut out, name, help, "gauge");
                    out.push_str(&format!("{name} {}\n", g.get()));
                }
                Slot::Histogram(h) => {
                    push_header(&mut out, name, help, "histogram");
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, count) in counts.iter().enumerate() {
                        cumulative += count;
                        // Collapse empty leading/trailing buckets is tempting
                        // but scrapers expect stable bucket sets; emit only
                        // buckets up to the last non-empty one plus +Inf.
                        match Histogram::bucket_upper_bound(i) {
                            Some(le) if cumulative > 0 || *count > 0 => {
                                out.push_str(&format!(
                                    "{name}_bucket{{le=\"{le}\"}} {cumulative}\n"
                                ));
                            }
                            Some(_) => {}
                            None => {
                                out.push_str(&format!(
                                    "{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"
                                ));
                            }
                        }
                    }
                    out.push_str(&format!("{name}_sum {}\n", h.sum()));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                }
            }
        }
        out
    }
}

fn push_header(out: &mut String, name: &str, help: &str, kind: &str) {
    if !help.is_empty() {
        out.push_str(&format!("# HELP {name} {help}\n"));
    }
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

/// Per-view maintenance record inside a [`BatchTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct ViewTraceRecord {
    /// Engine slot of the view.
    pub slot: usize,
    /// Active maintenance strategy (`"Counting"` / `"EasyRerun"`).
    pub strategy: &'static str,
    /// Fraction of the database touched by this batch, as seen by the view.
    pub delta_fraction: f64,
    /// Maintenance cost sample in nanoseconds (clock per `clock`).
    pub cost_ns: u64,
    /// Clock source of `cost_ns` (`"thread_cpu"` / `"wall"`).
    pub clock: &'static str,
    /// Whether the batch was a no-op for this view.
    pub skipped: bool,
    /// Rows added to / removed from the materialized result.
    pub result_added: usize,
    pub result_removed: usize,
    /// Migration decided for this view in the policy tail, if any.
    pub migration: Option<&'static str>,
}

/// Structured record of one `DcqEngine::apply` call.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchTrace {
    /// Epoch the batch committed as.
    pub epoch: u64,
    /// Tuples in the submitted batch.
    pub batch_len: usize,
    /// Net inserted / deleted tuple count after normalization.
    pub inserted: u64,
    pub deleted: u64,
    /// Phase timings, nanoseconds (wall clock — phases span threads).
    pub commit_ns: u64,
    pub fanout_ns: u64,
    pub policy_ns: u64,
    /// Worker threads the fan-out phase ran on (1 = inline).
    pub workers: usize,
    /// Per-view maintenance records, slot order.
    pub views: Vec<ViewTraceRecord>,
}

impl BatchTrace {
    /// Render as one JSON object (no trailing newline). Pure `std`
    /// formatting; all fields are numbers, booleans, or `[A-Za-z_]` strings,
    /// so no escaping is required.
    pub fn to_json(&self) -> String {
        let mut views = String::new();
        for (i, v) in self.views.iter().enumerate() {
            if i > 0 {
                views.push(',');
            }
            views.push_str(&format!(
                "{{\"slot\":{},\"strategy\":\"{}\",\"delta_fraction\":{},\"cost_ns\":{},\
                 \"clock\":\"{}\",\"skipped\":{},\"result_added\":{},\"result_removed\":{},\
                 \"migration\":{}}}",
                v.slot,
                v.strategy,
                json_f64(v.delta_fraction),
                v.cost_ns,
                v.clock,
                v.skipped,
                v.result_added,
                v.result_removed,
                match v.migration {
                    Some(m) => format!("\"{m}\""),
                    None => "null".to_string(),
                },
            ));
        }
        format!(
            "{{\"epoch\":{},\"batch_len\":{},\"inserted\":{},\"deleted\":{},\
             \"commit_ns\":{},\"fanout_ns\":{},\"policy_ns\":{},\"workers\":{},\
             \"views\":[{views}]}}",
            self.epoch,
            self.batch_len,
            self.inserted,
            self.deleted,
            self.commit_ns,
            self.fanout_ns,
            self.policy_ns,
            self.workers,
        )
    }
}

/// Format an `f64` as a JSON number (JSON has no NaN/Inf; clamp to 0 — the
/// engine only traces finite fractions, this is belt and braces).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Render traces as JSON lines (one object per line, oldest first).
pub fn render_json_lines(traces: &[BatchTrace]) -> String {
    let mut out = String::new();
    for t in traces {
        out.push_str(&t.to_json());
        out.push('\n');
    }
    out
}

/// Consumer of per-batch traces.
///
/// The engine calls [`record`](Self::record) once per `apply`, after the
/// policy tail, from the applying thread.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    fn record(&self, trace: BatchTrace);
    /// Copy out the retained traces, oldest first, without consuming them.
    fn snapshot(&self) -> Vec<BatchTrace>;
    /// Remove and return the retained traces, oldest first.
    fn drain(&self) -> Vec<BatchTrace>;
}

/// Bounded ring of the most recent traces.
///
/// Writers claim a slot with one `fetch_add` on the cursor and then take that
/// slot's own mutex: distinct writers never share a lock, and a writer is only
/// ever delayed if the ring has fully wrapped back onto a slot another writer
/// still occupies (capacity-many concurrent writes in flight), so the sink
/// adds no shared contention point to the apply path.
#[derive(Debug)]
pub struct RingTraceSink {
    slots: Vec<Mutex<Option<(u64, BatchTrace)>>>,
    cursor: AtomicUsize,
    dropped: AtomicU64,
}

impl RingTraceSink {
    /// Default retention of [`RingTraceSink::new`] via `Default`.
    pub const DEFAULT_CAPACITY: usize = 256;

    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Traces evicted by ring wrap-around since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn collect(&self, take: bool) -> Vec<BatchTrace> {
        // Sequence numbers restore global order across slots.
        let mut entries: Vec<(u64, BatchTrace)> = Vec::new();
        for slot in &self.slots {
            let mut guard = slot.lock().expect("trace ring slot poisoned");
            if take {
                if let Some(entry) = guard.take() {
                    entries.push(entry);
                }
            } else if let Some(entry) = guard.as_ref() {
                entries.push(entry.clone());
            }
        }
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, t)| t).collect()
    }
}

impl Default for RingTraceSink {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl TraceSink for RingTraceSink {
    fn record(&self, trace: BatchTrace) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[seq % self.slots.len()];
        let mut guard = slot.lock().expect("trace ring slot poisoned");
        if guard.replace((seq as u64, trace)).is_some() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> Vec<BatchTrace> {
        self.collect(false)
    }

    fn drain(&self) -> Vec<BatchTrace> {
        self.collect(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.set_total(11);
        assert_eq!(c.get(), 11);

        let g = Gauge::new();
        g.set(7);
        g.add(3);
        g.sub(2);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn histogram_bucket_indexing() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Bucket i upper bound is 2^i: a sample of exactly 2^i lands above it.
        for i in 0..8 {
            let v = 1u64 << i;
            assert!(Histogram::bucket_upper_bound(Histogram::bucket_index(v) - 1).unwrap() <= v);
        }
    }

    #[test]
    fn histogram_observes_and_renders() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("dcq_test_ns", "test latencies");
        for v in [0, 1, 1, 3, 900] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 905);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE dcq_test_ns histogram"));
        assert!(text.contains("dcq_test_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("dcq_test_ns_sum 905"));
        assert!(text.contains("dcq_test_ns_count 5"));
        // Cumulative buckets: le=1 covers the single 0 sample, le=2 adds the
        // two 1-samples, le=4 adds the 3.
        assert!(text.contains("dcq_test_ns_bucket{le=\"1\"} 1"));
        assert!(text.contains("dcq_test_ns_bucket{le=\"2\"} 3"));
        assert!(text.contains("dcq_test_ns_bucket{le=\"4\"} 4"));
    }

    #[test]
    fn registry_is_idempotent_per_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("dcq_x_total", "x");
        let b = reg.counter("dcq_x_total", "ignored on re-registration");
        a.add(2);
        assert_eq!(b.get(), 2);
        assert_eq!(reg.value("dcq_x_total"), Some(2));
        assert_eq!(reg.scalar_snapshot(), vec![("dcq_x_total".to_string(), 2)]);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_clash() {
        let reg = MetricsRegistry::new();
        reg.counter("dcq_x", "");
        reg.gauge("dcq_x", "");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("dcq_batches_total", "batches applied").add(3);
        reg.gauge("dcq_views", "registered views").set(2);
        let text = reg.render_prometheus();
        let expected = "# HELP dcq_batches_total batches applied\n\
                        # TYPE dcq_batches_total counter\n\
                        dcq_batches_total 3\n\
                        # HELP dcq_views registered views\n\
                        # TYPE dcq_views gauge\n\
                        dcq_views 2\n";
        assert_eq!(text, expected);
    }

    fn sample_trace(epoch: u64) -> BatchTrace {
        BatchTrace {
            epoch,
            batch_len: 4,
            inserted: 3,
            deleted: 1,
            commit_ns: 1000,
            fanout_ns: 2000,
            policy_ns: 300,
            workers: 2,
            views: vec![ViewTraceRecord {
                slot: 0,
                strategy: "Counting",
                delta_fraction: 0.25,
                cost_ns: 1500,
                clock: "thread_cpu",
                skipped: false,
                result_added: 2,
                result_removed: 0,
                migration: None,
            }],
        }
    }

    #[test]
    fn trace_json_is_parseable_shape() {
        let json = sample_trace(7).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"epoch\":7"));
        assert!(json.contains("\"strategy\":\"Counting\""));
        assert!(json.contains("\"delta_fraction\":0.25"));
        assert!(json.contains("\"migration\":null"));
        // Balanced braces — cheap structural sanity without a JSON parser.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn ring_sink_retains_most_recent_in_order() {
        let sink = RingTraceSink::new(3);
        for epoch in 0..5 {
            sink.record(sample_trace(epoch));
        }
        let snap = sink.snapshot();
        assert_eq!(
            snap.iter().map(|t| t.epoch).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(sink.dropped(), 2);
        // Snapshot does not consume; drain does.
        assert_eq!(sink.snapshot().len(), 3);
        let drained = sink.drain();
        assert_eq!(drained.len(), 3);
        assert!(sink.snapshot().is_empty());
        let lines = render_json_lines(&drained);
        assert_eq!(lines.lines().count(), 3);
    }

    #[test]
    fn ring_sink_is_safe_under_concurrent_writers() {
        let sink = Arc::new(RingTraceSink::new(8));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for i in 0..100 {
                        sink.record(sample_trace(t * 1000 + i));
                    }
                });
            }
        });
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 8);
        assert_eq!(sink.dropped(), 4 * 100 - 8);
    }
}
