//! Execution-layer errors.

use dcq_storage::StorageError;
use std::fmt;

/// Errors raised while planning or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The query's hypergraph is cyclic but an acyclic-only algorithm was requested
    /// (e.g. Yannakakis on a triangle join).
    NotAcyclic {
        /// Human-readable description of the offending hypergraph.
        detail: String,
    },
    /// The query is not linear-reducible / free-connex but a linear-time algorithm
    /// was requested (Algorithm 1 / Algorithm 2 preconditions).
    NotLinearReducible {
        /// Human-readable description of the offending query.
        detail: String,
    },
    /// A query referenced no atoms at all.
    EmptyQuery,
    /// The head (output attributes) references an attribute that occurs in no atom.
    HeadNotCovered {
        /// The offending attribute name.
        attr: String,
    },
    /// An underlying storage error (arity/schema/name problems).
    Storage(StorageError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NotAcyclic { detail } => write!(f, "query is not α-acyclic: {detail}"),
            ExecError::NotLinearReducible { detail } => {
                write!(f, "query is not linear-reducible: {detail}")
            }
            ExecError::EmptyQuery => write!(f, "query has no atoms"),
            ExecError::HeadNotCovered { attr } => {
                write!(f, "output attribute `{attr}` occurs in no atom")
            }
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ExecError::NotAcyclic {
            detail: "triangle".into(),
        };
        assert!(e.to_string().contains("α-acyclic"));
        let e: ExecError = StorageError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains('R'));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ExecError::EmptyQuery.to_string().contains("no atoms"));
    }
}
