//! The `Reduce` procedure (Algorithm 1 of the paper).
//!
//! `Reduce` turns a *linear-reducible* CQ `(y, V, E)` together with its instance into
//! a **full** acyclic join query `(y, E′)` over a reduced instance, in `O(N)` time,
//! while preserving the query result: `Q(D) = Q′(D′)`.
//!
//! Implementation: build a join tree for the augmented hypergraph `E ∪ {y}` (the
//! head is a *virtual* node holding no relation), re-root it at the head, run one
//! bottom-up semi-join pass, and keep the root's children projected onto their
//! output attributes.  Two facts make this correct (see DESIGN.md §4):
//!
//! 1. any attribute shared by two different subtrees hanging off the head node must
//!    occur in the head itself (join-tree connectivity), so the subtrees only
//!    interact through output attributes;
//! 2. after the bottom-up semi-join pass the tuples of a subtree's top relation are
//!    exactly those that extend to a full match of that subtree, so projecting the
//!    top relation onto its output attributes yields `π_{e ∩ y}(⋈ subtree)`.

use crate::error::ExecError;
use crate::ops::semi_join;
use crate::Result;
use dcq_hypergraph::{AttrSet, JoinTree};
use dcq_storage::{Relation, Schema};

/// The output of [`reduce`]: a full acyclic join query equivalent to the input CQ.
#[derive(Clone, Debug)]
pub struct ReducedQuery {
    /// The output attributes `y` (same as the input CQ's head), as a schema in the
    /// caller-requested order.
    pub head: Schema,
    /// The reduced relations.  Every schema is a subset of `head`; together they
    /// cover `head`; their hypergraph is α-acyclic.
    pub relations: Vec<Relation>,
}

impl ReducedQuery {
    /// The hyperedges (attribute sets) of the reduced relations.
    pub fn edges(&self) -> Vec<AttrSet> {
        self.relations
            .iter()
            .map(|r| AttrSet::from_schema(r.schema()))
            .collect()
    }

    /// Total number of tuples across the reduced relations.
    pub fn input_size(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }
}

/// Run Algorithm 1 on the CQ whose atoms are `atoms` (each relation's schema holds
/// the query variables of that atom) and whose output attributes are `head`.
///
/// Returns [`ExecError::NotLinearReducible`] when `E ∪ {y}` is cyclic — exactly the
/// precondition of Definition 2.2 — and [`ExecError::HeadNotCovered`] when some
/// output attribute occurs in no atom.
pub fn reduce(head: &Schema, atoms: &[Relation]) -> Result<ReducedQuery> {
    if atoms.is_empty() {
        return Err(ExecError::EmptyQuery);
    }
    let head_set = AttrSet::from_schema(head);
    let edges: Vec<AttrSet> = atoms
        .iter()
        .map(|r| AttrSet::from_schema(r.schema()))
        .collect();

    // Every output attribute must be covered by some atom.
    for attr in head.iter() {
        if !edges.iter().any(|e| e.contains(attr)) {
            return Err(ExecError::HeadNotCovered {
                attr: attr.name().to_string(),
            });
        }
    }

    // Fast path: the query is already a full join over exactly the head attributes.
    // (Still requires acyclicity for the returned object to be a valid full acyclic
    // join, but the caller checks that when it matters; we only skip the semi-join
    // pass when every relation is already inside the head.)
    let all_inside_head = edges.iter().all(|e| e.is_subset(&head_set));
    if all_inside_head {
        return Ok(ReducedQuery {
            head: head.clone(),
            relations: atoms.to_vec(),
        });
    }

    // Build the augmented join tree rooted at the virtual head node.
    let Some((tree, head_idx)) = JoinTree::build_with_head(&edges, &head_set) else {
        return Err(ExecError::NotLinearReducible {
            detail: format!("E ∪ {{y}} is cyclic for y = {head_set} and E = {edges:?}"),
        });
    };

    // Working copies of the atom relations (index-aligned with `edges`).
    let mut rels: Vec<Relation> = atoms.to_vec();

    // One bottom-up semi-join pass (excluding the virtual root, which holds no
    // relation): each node filters its parent.
    for node in tree.bottom_up_order() {
        if node == head_idx {
            continue;
        }
        let parent = tree.parent(node).expect("non-root nodes have a parent");
        if parent == head_idx {
            continue;
        }
        let filtered = semi_join(&rels[parent], &rels[node]);
        rels[parent] = filtered;
    }

    // Keep the children of the head, projected onto their output attributes.
    let mut relations = Vec::new();
    for &child in tree.children(head_idx) {
        let out_attrs: Vec<_> = rels[child]
            .schema()
            .iter()
            .filter(|a| head_set.contains(a))
            .cloned()
            .collect();
        let projected = rels[child].project(&out_attrs)?;
        relations.push(projected);
    }

    debug_assert!(
        {
            let covered = relations.iter().fold(AttrSet::empty(), |acc, r| {
                acc.union(&AttrSet::from_schema(r.schema()))
            });
            head_set.is_subset(&covered)
        },
        "reduced relations must cover the head"
    );

    Ok(ReducedQuery {
        head: head.clone(),
        relations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::multiway_join;
    use dcq_storage::row::int_row;
    use dcq_storage::Attr;

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        Relation::from_int_rows(name, attrs, rows)
    }

    /// Reference evaluation: naive multiway join then projection onto the head.
    fn naive(head: &Schema, atoms: &[Relation]) -> Vec<dcq_storage::Row> {
        let joined = multiway_join(atoms).unwrap();
        joined.project(head.attrs()).unwrap().sorted_rows()
    }

    /// Evaluate a reduced query naively (it is a full join over the head).
    fn eval_reduced(rq: &ReducedQuery) -> Vec<dcq_storage::Row> {
        let joined = multiway_join(&rq.relations).unwrap();
        joined.project(rq.head.attrs()).unwrap().sorted_rows()
    }

    #[test]
    fn full_query_is_returned_unchanged() {
        let atoms = vec![
            rel("R1", &["x1", "x2"], vec![vec![1, 2], vec![2, 3]]),
            rel("R2", &["x2", "x3"], vec![vec![2, 5], vec![3, 6]]),
        ];
        let head = Schema::from_names(["x1", "x2", "x3"]);
        let rq = reduce(&head, &atoms).unwrap();
        assert_eq!(rq.relations.len(), 2);
        assert_eq!(rq.input_size(), 4);
        assert_eq!(eval_reduced(&rq), naive(&head, &atoms));
    }

    #[test]
    fn free_connex_projection_is_reduced_correctly() {
        // π_{x1,x2,x3}(R1(x1,x2) ⋈ R2(x2,x3,x4)): free-connex, x4 is projected away.
        let atoms = vec![
            rel(
                "R1",
                &["x1", "x2"],
                vec![vec![1, 100], vec![2, 200], vec![3, 300]],
            ),
            rel(
                "R2",
                &["x2", "x3", "x4"],
                vec![vec![100, 10, 11], vec![100, 12, 13], vec![999, 14, 15]],
            ),
        ];
        let head = Schema::from_names(["x1", "x2", "x3"]);
        let rq = reduce(&head, &atoms).unwrap();
        // Every reduced relation only mentions output attributes.
        for r in &rq.relations {
            for a in r.schema().iter() {
                assert!(head.contains(a), "{a} is not an output attribute");
            }
        }
        assert_eq!(eval_reduced(&rq), naive(&head, &atoms));
        // Only x2=100 joins: the dangling R1 tuples must not survive into the result.
        assert_eq!(
            eval_reduced(&rq),
            vec![int_row([1, 100, 10]), int_row([1, 100, 12])]
        );
    }

    #[test]
    fn figure2_reduction_matches_paper() {
        // Figure 2: full hypergraph, head {x1,x2,x3,x4}.  The paper's reduced query
        // keeps (a semi-joined copy of) R1(x1,x2,x3) and R2(x1,x4).
        let atoms = vec![
            rel(
                "R1",
                &["x1", "x2", "x3"],
                vec![vec![1, 2, 3], vec![4, 5, 6]],
            ),
            rel("R2", &["x1", "x4"], vec![vec![1, 7], vec![4, 8]]),
            rel(
                "R3",
                &["x2", "x3", "x5"],
                vec![vec![2, 3, 50], vec![9, 9, 51]],
            ),
            rel("R4", &["x5", "x6"], vec![vec![50, 60], vec![51, 61]]),
            rel("R5", &["x3", "x7"], vec![vec![3, 70], vec![6, 71]]),
            rel("R6", &["x5", "x8"], vec![vec![50, 80], vec![51, 81]]),
        ];
        let head = Schema::from_names(["x1", "x2", "x3", "x4"]);
        let rq = reduce(&head, &atoms).unwrap();
        assert_eq!(eval_reduced(&rq), naive(&head, &atoms));
        // R1's (4,5,6) tuple has no matching R3 tuple (no (5,6,*) in R3) so only the
        // (1,...) tuple survives.
        assert_eq!(eval_reduced(&rq), vec![int_row([1, 2, 3, 7])]);
    }

    #[test]
    fn linear_reducible_but_cyclic_query_reduces() {
        // §2.3's example: π_{x1,x2,x3}(R1(x1,x2) ⋈ R2(x2,x3) ⋈ R3(x1,x3) ⋈ R4(x3,x4)).
        let atoms = vec![
            rel(
                "R1",
                &["x1", "x2"],
                vec![vec![1, 2], vec![1, 3], vec![4, 5]],
            ),
            rel(
                "R2",
                &["x2", "x3"],
                vec![vec![2, 3], vec![3, 3], vec![5, 6]],
            ),
            rel("R3", &["x1", "x3"], vec![vec![1, 3], vec![4, 6]]),
            rel("R4", &["x3", "x4"], vec![vec![3, 9], vec![6, 10]]),
        ];
        let head = Schema::from_names(["x1", "x2", "x3"]);
        let rq = reduce(&head, &atoms).unwrap();
        assert_eq!(eval_reduced(&rq), naive(&head, &atoms));
    }

    #[test]
    fn non_linear_reducible_query_is_rejected() {
        // π_{x1,x3}(R1(x1,x2) ⋈ R2(x2,x3)): E ∪ {y} is the triangle — not reducible.
        let atoms = vec![
            rel("R1", &["x1", "x2"], vec![vec![1, 2]]),
            rel("R2", &["x2", "x3"], vec![vec![2, 3]]),
        ];
        let head = Schema::from_names(["x1", "x3"]);
        assert!(matches!(
            reduce(&head, &atoms),
            Err(ExecError::NotLinearReducible { .. })
        ));
    }

    #[test]
    fn uncovered_head_attribute_is_rejected() {
        let atoms = vec![rel("R1", &["x1", "x2"], vec![vec![1, 2]])];
        let head = Schema::from_names(["x1", "z"]);
        assert!(matches!(
            reduce(&head, &atoms),
            Err(ExecError::HeadNotCovered { .. })
        ));
    }

    #[test]
    fn empty_atom_list_is_rejected() {
        assert!(matches!(
            reduce(&Schema::from_names(["x"]), &[]),
            Err(ExecError::EmptyQuery)
        ));
    }

    #[test]
    fn disconnected_output_component_acts_as_existential_guard() {
        // Q = π_{x1}(R1(x1) ⋈ R2(x2)): R2 only matters through emptiness.
        let r1 = rel("R1", &["x1"], vec![vec![1], vec![2]]);
        let head = Schema::from_names(["x1"]);
        let nonempty = vec![r1.clone(), rel("R2", &["x2"], vec![vec![7]])];
        let empty = vec![r1, rel("R2", &["x2"], vec![])];
        let rq = reduce(&head, &nonempty).unwrap();
        assert_eq!(eval_reduced(&rq).len(), 2);
        let rq = reduce(&head, &empty).unwrap();
        assert_eq!(eval_reduced(&rq).len(), 0);
    }

    #[test]
    fn reduced_relation_sizes_are_bounded_by_input() {
        // Reduce never blows up: every reduced relation is a (semi-joined,
        // projected) copy of an input relation.
        let atoms = vec![
            rel(
                "R1",
                &["x1", "x4"],
                (0..50).map(|i| vec![i, i + 1000]).collect(),
            ),
            rel(
                "R2",
                &["x4", "x2"],
                (0..50).map(|i| vec![i + 1000, i]).collect(),
            ),
        ];
        let head = Schema::from_names(["x1", "x4"]);
        let rq = reduce(&head, &atoms).unwrap();
        for (r, orig) in rq.relations.iter().zip(atoms.iter()) {
            assert!(r.len() <= orig.len().max(50));
        }
        let _ = rq.edges();
        let _ = Attr::new("x1");
    }
}
