//! Hash-based relational operators.
//!
//! These are the `O(N)` / `O(N + OUT)` primitives every algorithm in the paper is
//! assembled from: natural join, semi-join (`⋉`), anti-join (`▷`, the physical
//! operator behind `NOT EXISTS`), and the Cartesian product.  All operators join on
//! the *shared attributes* of the two schemas, matching the conjunctive-query
//! convention that equal variable names mean equality predicates.

use dcq_storage::{Attr, HashIndex, Relation, Schema};

/// Attributes shared between two schemas, in the order they appear in `left`.
fn shared_attrs(left: &Schema, right: &Schema) -> Vec<Attr> {
    left.iter().filter(|a| right.contains(a)).cloned().collect()
}

/// Natural join `left ⋈ right` on all shared attributes.
///
/// The output schema is `left`'s attributes followed by `right`'s attributes that do
/// not already occur in `left`.  If the schemas share no attribute this degenerates
/// to the Cartesian product (as in Example 3.10).  Runs in `O(|left| + |right| +
/// |output|)` expected time.
pub fn natural_join(left: &Relation, right: &Relation) -> Relation {
    let join_attrs = shared_attrs(left.schema(), right.schema());
    let left_key_positions = left
        .schema()
        .positions_of(&join_attrs)
        .expect("shared attrs are in left schema");
    let index = HashIndex::build(right, &join_attrs).expect("shared attrs are in right schema");

    // Positions of the right-side attributes that extend the output.
    let extra_attrs: Vec<Attr> = right
        .schema()
        .iter()
        .filter(|a| !left.schema().contains(a))
        .cloned()
        .collect();
    let extra_positions = right
        .schema()
        .positions_of(&extra_attrs)
        .expect("extra attrs are in right schema");

    let out_schema = left.schema().union(right.schema());
    let mut out = Relation::new(format!("({} ⋈ {})", left.name(), right.name()), out_schema);
    for lrow in left.iter() {
        let key = lrow.project(&left_key_positions);
        for &ridx in index.get(&key) {
            let rrow = &right.rows()[ridx];
            out.push_unchecked(lrow.concat_projected(rrow, &extra_positions));
        }
    }
    if left.is_known_distinct() && right.is_known_distinct() {
        // A tuple over the union schema determines its projections onto both inputs,
        // so the join of distinct inputs is distinct.
        out.assume_distinct();
    }
    out
}

/// Cartesian product `left × right` — a natural join of schemas sharing no attribute.
///
/// # Panics
/// Panics if the schemas share an attribute (use [`natural_join`] instead).
pub fn cartesian_product(left: &Relation, right: &Relation) -> Relation {
    assert!(
        shared_attrs(left.schema(), right.schema()).is_empty(),
        "cartesian_product requires disjoint schemas"
    );
    natural_join(left, right)
}

/// Semi-join `left ⋉ right`: the rows of `left` that join with at least one row of
/// `right` on the shared attributes.  Runs in `O(|left| + |right|)` expected time.
pub fn semi_join(left: &Relation, right: &Relation) -> Relation {
    let join_attrs = shared_attrs(left.schema(), right.schema());
    let left_key_positions = left
        .schema()
        .positions_of(&join_attrs)
        .expect("shared attrs are in left schema");
    let keys: dcq_storage::FastHashSet<dcq_storage::Row> = {
        let right_positions = right
            .schema()
            .positions_of(&join_attrs)
            .expect("shared attrs are in right schema");
        let mut set = dcq_storage::hash::set_with_capacity(right.len());
        for r in right.iter() {
            set.insert(r.project(&right_positions));
        }
        set
    };
    let mut out = Relation::new(
        format!("({} ⋉ {})", left.name(), right.name()),
        left.schema().clone(),
    );
    for lrow in left.iter() {
        if keys.contains(&lrow.project(&left_key_positions)) {
            out.push_unchecked(lrow.clone());
        }
    }
    if left.is_known_distinct() {
        out.assume_distinct();
    }
    out
}

/// Anti-join `left ▷ right`: the rows of `left` that join with **no** row of `right`
/// on the shared attributes.  This is the physical operator behind `NOT EXISTS` /
/// `EXCEPT` in the vanilla plans of §6.  Runs in `O(|left| + |right|)` expected time.
pub fn anti_join(left: &Relation, right: &Relation) -> Relation {
    let join_attrs = shared_attrs(left.schema(), right.schema());
    let left_key_positions = left
        .schema()
        .positions_of(&join_attrs)
        .expect("shared attrs are in left schema");
    let right_positions = right
        .schema()
        .positions_of(&join_attrs)
        .expect("shared attrs are in right schema");
    let mut keys = dcq_storage::hash::set_with_capacity(right.len());
    for r in right.iter() {
        keys.insert(r.project(&right_positions));
    }
    let mut out = Relation::new(
        format!("({} ▷ {})", left.name(), right.name()),
        left.schema().clone(),
    );
    for lrow in left.iter() {
        if !keys.contains(&lrow.project(&left_key_positions)) {
            out.push_unchecked(lrow.clone());
        }
    }
    if left.is_known_distinct() {
        out.assume_distinct();
    }
    out
}

/// Natural join of many relations, left to right (no reordering).  Convenience for
/// tests and naive reference evaluation; planners should pick their own order.
pub fn multiway_join(relations: &[Relation]) -> Option<Relation> {
    let (first, rest) = relations.split_first()?;
    let mut acc = first.clone();
    for r in rest {
        acc = natural_join(&acc, r);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_storage::row::int_row;

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        Relation::from_int_rows(name, attrs, rows)
    }

    #[test]
    fn natural_join_on_shared_attr() {
        // Example 3.3 flavour: R1(x1,x2) ⋈ R2(x2,x3).
        let r1 = rel(
            "R1",
            &["x1", "x2"],
            vec![vec![1, 10], vec![2, 10], vec![3, 20]],
        );
        let r2 = rel(
            "R2",
            &["x2", "x3"],
            vec![vec![10, 100], vec![10, 200], vec![30, 300]],
        );
        let j = natural_join(&r1, &r2);
        assert_eq!(j.schema(), &Schema::from_names(["x1", "x2", "x3"]));
        assert_eq!(j.len(), 4);
        assert!(j.rows().contains(&int_row([1, 10, 100])));
        assert!(j.rows().contains(&int_row([2, 10, 200])));
        assert!(!j.rows().contains(&int_row([3, 20, 300])));
    }

    #[test]
    fn natural_join_multi_shared_attrs() {
        let r1 = rel("R1", &["a", "b", "c"], vec![vec![1, 2, 3], vec![1, 2, 4]]);
        let r2 = rel("R2", &["b", "a", "d"], vec![vec![2, 1, 9], vec![2, 5, 9]]);
        let j = natural_join(&r1, &r2);
        assert_eq!(j.schema(), &Schema::from_names(["a", "b", "c", "d"]));
        assert_eq!(
            j.sorted_rows(),
            vec![int_row([1, 2, 3, 9]), int_row([1, 2, 4, 9])]
        );
    }

    #[test]
    fn join_without_shared_attrs_is_cartesian() {
        let r1 = rel("R1", &["x1", "x2"], vec![vec![1, 2], vec![3, 4]]);
        let r2 = rel("R2", &["x3"], vec![vec![7], vec![8], vec![9]]);
        let j = natural_join(&r1, &r2);
        assert_eq!(j.len(), 6);
        let c = cartesian_product(&r1, &r2);
        assert_eq!(c.len(), 6);
    }

    #[test]
    #[should_panic(expected = "disjoint schemas")]
    fn cartesian_rejects_shared_attrs() {
        let r1 = rel("R1", &["x"], vec![vec![1]]);
        let r2 = rel("R2", &["x"], vec![vec![1]]);
        cartesian_product(&r1, &r2);
    }

    #[test]
    fn semi_and_anti_join_partition_left() {
        let g = rel(
            "G",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![3, 4]],
        );
        let nodes = rel("N", &["dst"], vec![vec![2], vec![4]]);
        let semi = semi_join(&g, &nodes);
        let anti = anti_join(&g, &nodes);
        assert_eq!(semi.sorted_rows(), vec![int_row([1, 2]), int_row([3, 4])]);
        assert_eq!(anti.sorted_rows(), vec![int_row([2, 3])]);
        assert_eq!(semi.len() + anti.len(), g.len());
        // Schemas are preserved.
        assert_eq!(semi.schema(), g.schema());
        assert_eq!(anti.schema(), g.schema());
    }

    #[test]
    fn semi_join_with_no_shared_attrs_checks_emptiness() {
        let g = rel("G", &["src", "dst"], vec![vec![1, 2]]);
        let nonempty = rel("X", &["z"], vec![vec![5]]);
        let empty = rel("Y", &["z"], vec![]);
        assert_eq!(semi_join(&g, &nonempty).len(), 1);
        assert_eq!(semi_join(&g, &empty).len(), 0);
        assert_eq!(anti_join(&g, &nonempty).len(), 0);
        assert_eq!(anti_join(&g, &empty).len(), 1);
    }

    #[test]
    fn join_output_is_distinct_when_inputs_are() {
        let r1 = rel("R1", &["x1", "x2"], vec![vec![1, 10], vec![2, 10]]).distinct();
        let r2 = rel("R2", &["x2", "x3"], vec![vec![10, 7]]).distinct();
        let j = natural_join(&r1, &r2);
        assert!(j.is_known_distinct());
        assert_eq!(j.distinct_count(), j.len());
    }

    #[test]
    fn multiway_join_three_relations() {
        // Length-3 path: Graph ⋈ Graph ⋈ Graph with renamed variables.
        let g1 = rel("G1", &["a", "b"], vec![vec![1, 2], vec![2, 3]]);
        let g2 = rel("G2", &["b", "c"], vec![vec![2, 3], vec![3, 4]]);
        let g3 = rel("G3", &["c", "d"], vec![vec![3, 4], vec![4, 5]]);
        let j = multiway_join(&[g1, g2, g3]).unwrap();
        assert_eq!(
            j.sorted_rows(),
            vec![int_row([1, 2, 3, 4]), int_row([2, 3, 4, 5])]
        );
        assert!(multiway_join(&[]).is_none());
    }

    #[test]
    fn nullary_relations_join_as_guards() {
        // A non-empty Boolean relation acts as "true", an empty one as "false".
        let g = rel("G", &["x"], vec![vec![1], vec![2]]);
        let mut yes = Relation::new("yes", Schema::from_names(Vec::<String>::new()));
        yes.insert(dcq_storage::Row::empty()).unwrap();
        let no = Relation::new("no", Schema::from_names(Vec::<String>::new()));
        assert_eq!(natural_join(&g, &yes).len(), 2);
        assert_eq!(natural_join(&g, &no).len(), 0);
    }
}
