//! Left-deep binary-join plans — the "vanilla SQL" baseline engine.
//!
//! Section 6 of the paper compares the rewritten (optimized) queries against the
//! plans produced by off-the-shelf engines (PostgreSQL, Spark SQL, DuckDB, SQLite,
//! MySQL).  Those engines evaluate each conjunctive query with a tree of *binary*
//! hash joins and materialize every intermediate result; the difference operator is
//! then a hash anti-join of the two materialized sides.  [`BinaryJoinPlan`]
//! reproduces that execution model so the repository's experiments compare the same
//! two logical strategies the paper does.
//!
//! The join order is chosen greedily: start from the largest relation is *not* what
//! engines do — they avoid Cartesian products and prefer small intermediate results.
//! We mimic that with a simple heuristic: repeatedly pick the atom that shares at
//! least one attribute with the current prefix (to avoid cross products) and has the
//! smallest cardinality; fall back to a cross product only when forced.

use crate::ops::natural_join;
use crate::Result;
use dcq_storage::{Relation, Schema};

/// One executed step of a [`BinaryJoinPlan`], recorded for EXPLAIN-style output
/// (the repository's stand-in for the PEV plans of Figure 1).
#[derive(Clone, Debug)]
pub struct PlanStep {
    /// Index (into the plan's atom list) of the atom joined at this step.
    pub atom_index: usize,
    /// Name of the atom's relation.
    pub atom_name: String,
    /// Whether this step degenerated to a Cartesian product.
    pub cartesian: bool,
    /// Number of tuples in the intermediate result *after* this step.
    pub intermediate_size: usize,
}

/// A left-deep binary join followed by a projection onto the output attributes.
#[derive(Clone, Debug)]
pub struct BinaryJoinPlan {
    head: Schema,
    atoms: Vec<Relation>,
}

impl BinaryJoinPlan {
    /// Create a plan for the CQ `(head, atoms)`.
    pub fn new(head: Schema, atoms: Vec<Relation>) -> Self {
        BinaryJoinPlan { head, atoms }
    }

    /// The output attributes.
    pub fn head(&self) -> &Schema {
        &self.head
    }

    /// The atoms, in the order supplied.
    pub fn atoms(&self) -> &[Relation] {
        &self.atoms
    }

    /// Pick the join order: greedy, connected-first, smallest-cardinality-first.
    fn join_order(&self) -> Vec<usize> {
        let n = self.atoms.len();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut order = Vec::with_capacity(n);
        if n == 0 {
            return order;
        }
        // Start from the smallest atom (engines start from the most selective scan).
        remaining.sort_by_key(|&i| self.atoms[i].len());
        let first = remaining.remove(0);
        order.push(first);
        let mut bound = self.atoms[first].schema().clone();
        while !remaining.is_empty() {
            // Prefer atoms connected to the bound attributes.
            let connected: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|&i| self.atoms[i].schema().iter().any(|a| bound.contains(a)))
                .collect();
            let pick = if connected.is_empty() {
                remaining[0]
            } else {
                *connected
                    .iter()
                    .min_by_key(|&&i| self.atoms[i].len())
                    .expect("non-empty")
            };
            remaining.retain(|&i| i != pick);
            bound = bound.union(self.atoms[pick].schema());
            order.push(pick);
        }
        order
    }

    /// Execute the plan, returning the (distinct) projection onto the head and the
    /// per-step trace.
    pub fn execute_with_trace(&self) -> Result<(Relation, Vec<PlanStep>)> {
        let order = self.join_order();
        let mut steps = Vec::with_capacity(order.len());
        if order.is_empty() {
            return Err(crate::ExecError::EmptyQuery);
        }
        let mut acc: Option<Relation> = None;
        for &idx in &order {
            let atom = &self.atoms[idx];
            let (next, cartesian) = match acc {
                None => (atom.clone(), false),
                Some(ref current) => {
                    let cartesian = !current.schema().iter().any(|a| atom.schema().contains(a));
                    (natural_join(current, atom), cartesian)
                }
            };
            steps.push(PlanStep {
                atom_index: idx,
                atom_name: atom.name().to_string(),
                cartesian,
                intermediate_size: next.len(),
            });
            acc = Some(next);
        }
        let joined = acc.expect("at least one atom");
        let mut out = joined.project(self.head.attrs())?;
        out.set_name("binary_plan");
        Ok((out, steps))
    }

    /// Execute the plan, returning only the result.
    pub fn execute(&self) -> Result<Relation> {
        Ok(self.execute_with_trace()?.0)
    }

    /// Total number of intermediate tuples materialized across all steps — the
    /// quantity the paper's Figure 1 discussion blames for the baseline's cost.
    pub fn materialized_tuples(&self) -> Result<usize> {
        let (_, steps) = self.execute_with_trace()?;
        Ok(steps.iter().map(|s| s.intermediate_size).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::multiway_join;
    use dcq_storage::row::int_row;

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        Relation::from_int_rows(name, attrs, rows)
    }

    fn naive(head: &Schema, atoms: &[Relation]) -> Vec<dcq_storage::Row> {
        multiway_join(atoms)
            .unwrap()
            .project(head.attrs())
            .unwrap()
            .sorted_rows()
    }

    #[test]
    fn matches_naive_on_path_query() {
        let atoms = vec![
            rel(
                "R1",
                &["x1", "x2"],
                vec![vec![1, 2], vec![2, 3], vec![4, 5]],
            ),
            rel("R2", &["x2", "x3"], vec![vec![2, 9], vec![3, 9]]),
            rel("R3", &["x3", "x4"], vec![vec![9, 1]]),
        ];
        let head = Schema::from_names(["x1", "x4"]);
        let plan = BinaryJoinPlan::new(head.clone(), atoms.clone());
        let out = plan.execute().unwrap();
        assert_eq!(out.schema(), &head);
        assert_eq!(out.sorted_rows(), naive(&head, &atoms));
    }

    #[test]
    fn handles_cyclic_queries_unlike_yannakakis() {
        // Triangle join: the binary plan happily evaluates it (that is exactly what
        // the vanilla engines do for Q2 of Example 1.1).
        let edges = vec![vec![1i64, 2], vec![2, 3], vec![3, 1], vec![2, 4]];
        let atoms = vec![
            rel("G1", &["a", "b"], edges.clone()),
            rel("G2", &["b", "c"], edges.clone()),
            rel("G3", &["c", "a"], edges.clone()),
        ];
        let head = Schema::from_names(["a", "b", "c"]);
        let plan = BinaryJoinPlan::new(head.clone(), atoms.clone());
        let out = plan.execute().unwrap();
        assert_eq!(out.sorted_rows(), naive(&head, &atoms));
        assert_eq!(out.len(), 3); // the triangle 1→2→3→1 in its three rotations
    }

    #[test]
    fn trace_reports_intermediate_sizes_and_cartesian_steps() {
        let atoms = vec![
            rel("A", &["x"], vec![vec![1], vec![2]]),
            rel("B", &["y"], vec![vec![10], vec![20], vec![30]]),
        ];
        let head = Schema::from_names(["x", "y"]);
        let plan = BinaryJoinPlan::new(head, atoms);
        let (out, steps) = plan.execute_with_trace().unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(steps.len(), 2);
        assert!(steps[1].cartesian);
        assert_eq!(steps[1].intermediate_size, 6);
        assert_eq!(plan.materialized_tuples().unwrap(), 2 + 6);
    }

    #[test]
    fn join_order_avoids_needless_cartesian_products() {
        // A path query given in a scrambled order: the greedy order must stay
        // connected, so no step is a Cartesian product.
        let atoms = vec![
            rel(
                "R3",
                &["x3", "x4"],
                (0..50).map(|i| vec![i, i + 1]).collect(),
            ),
            rel("R1", &["x1", "x2"], (0..50).map(|i| vec![i, i]).collect()),
            rel("R2", &["x2", "x3"], (0..50).map(|i| vec![i, i]).collect()),
        ];
        let head = Schema::from_names(["x1", "x4"]);
        let plan = BinaryJoinPlan::new(head, atoms);
        let (_, steps) = plan.execute_with_trace().unwrap();
        assert!(steps.iter().all(|s| !s.cartesian));
    }

    #[test]
    fn empty_plan_is_rejected() {
        let plan = BinaryJoinPlan::new(Schema::from_names(["x"]), vec![]);
        assert!(plan.execute().is_err());
    }

    #[test]
    fn single_atom_plan_projects() {
        let plan = BinaryJoinPlan::new(
            Schema::from_names(["x2"]),
            vec![rel("R", &["x1", "x2"], vec![vec![1, 5], vec![2, 5]])],
        );
        let out = plan.execute().unwrap();
        assert_eq!(out.sorted_rows(), vec![int_row([5])]);
    }
}
