//! The Yannakakis algorithm (Algorithm 3 of the paper).
//!
//! * [`acyclic_full_join`] — evaluate a full α-acyclic join in `O(N + OUT)`:
//!   bottom-up and top-down semi-join passes over a join tree (the full reducer),
//!   followed by bottom-up joins whose intermediate results are all bounded by the
//!   output size.
//! * [`free_connex_evaluate`] — evaluate a free-connex CQ `(y, V, E)` in
//!   `O(N + OUT)`: `Reduce` (Algorithm 1) followed by [`acyclic_full_join`] on the
//!   reduced full join and a final projection/reordering onto `y`.
//! * [`acyclic_boolean`] — decide emptiness of an acyclic join in `O(N)` (used by
//!   the heuristic of Theorem 4.8 and the SCQ decidability results of §7).

use crate::error::ExecError;
use crate::ops::{natural_join, semi_join};
use crate::reduce::reduce;
use crate::Result;
use dcq_hypergraph::{AttrSet, JoinTree};
use dcq_storage::{Relation, Schema};

/// Build the join tree for the atoms' hypergraph, or fail with [`ExecError::NotAcyclic`].
fn join_tree_of(atoms: &[Relation]) -> Result<JoinTree> {
    if atoms.is_empty() {
        return Err(ExecError::EmptyQuery);
    }
    let edges: Vec<AttrSet> = atoms
        .iter()
        .map(|r| AttrSet::from_schema(r.schema()))
        .collect();
    JoinTree::build(&edges).ok_or_else(|| ExecError::NotAcyclic {
        detail: format!("{edges:?}"),
    })
}

/// Evaluate a **full** α-acyclic join of the given atoms in `O(N + OUT)` time.
///
/// The output schema is the union of the atom schemas (in join-tree merge order);
/// callers that need a particular attribute order should project afterwards.
/// Duplicate input rows are eliminated first, so the output is distinct.
pub fn acyclic_full_join(atoms: &[Relation]) -> Result<Relation> {
    let tree = join_tree_of(atoms)?;
    let mut rels: Vec<Relation> = atoms.iter().map(|r| r.distinct()).collect();

    // Phase 1: bottom-up semi-joins (children filter parents).
    for node in tree.bottom_up_order() {
        if let Some(parent) = tree.parent(node) {
            rels[parent] = semi_join(&rels[parent], &rels[node]);
        }
    }
    // Phase 2: top-down semi-joins (parents filter children).  After both phases
    // every remaining tuple participates in at least one full join result, which is
    // what bounds the join phase by O(OUT).
    for node in tree.top_down_order() {
        for &child in tree.children(node) {
            rels[child] = semi_join(&rels[child], &rels[node]);
        }
    }
    // Phase 3: bottom-up joins. Children are merged into their parents; at the root
    // the full join result has been assembled.
    for node in tree.bottom_up_order() {
        if let Some(parent) = tree.parent(node) {
            rels[parent] = natural_join(&rels[parent], &rels[node]);
        }
    }
    let mut result = rels.swap_remove(tree.root());
    result.set_name("yannakakis");
    result.dedup();
    Ok(result)
}

/// Decide whether an α-acyclic join of the given atoms is non-empty, in `O(N)` time.
pub fn acyclic_boolean(atoms: &[Relation]) -> Result<bool> {
    let tree = join_tree_of(atoms)?;
    let mut rels: Vec<Relation> = atoms.to_vec();
    for node in tree.bottom_up_order() {
        if rels[node].is_empty() {
            return Ok(false);
        }
        if let Some(parent) = tree.parent(node) {
            rels[parent] = semi_join(&rels[parent], &rels[node]);
        }
    }
    Ok(!rels[tree.root()].is_empty())
}

/// Evaluate a free-connex CQ `(head, atoms)` in `O(N + OUT)` time.
///
/// This is the `Yannakakis(Q, D)` sub-routine invoked by `EasyDCQ` (Algorithm 2,
/// lines 5–6): `Reduce` first removes all non-output attributes, then the resulting
/// full acyclic join is evaluated and reordered to the requested head.
///
/// Errors with [`ExecError::NotLinearReducible`] when `E ∪ {y}` is cyclic and with
/// [`ExecError::NotAcyclic`] when the reduced full join is cyclic (i.e. the query is
/// linear-reducible but not free-connex and not full-acyclic-evaluable).
pub fn free_connex_evaluate(head: &Schema, atoms: &[Relation]) -> Result<Relation> {
    if head.is_empty() {
        // Boolean query: return a nullary relation that is non-empty iff the join is.
        let nonempty = acyclic_boolean(atoms)?;
        let mut rel = Relation::new("boolean", Schema::from_names(Vec::<String>::new()));
        if nonempty {
            rel.push_unchecked(dcq_storage::Row::empty());
        }
        rel.assume_distinct();
        return Ok(rel);
    }
    let reduced = reduce(head, atoms)?;
    let joined = acyclic_full_join(&reduced.relations)?;
    let mut out = joined.project(head.attrs())?;
    out.set_name("free_connex");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::multiway_join;
    use dcq_storage::row::int_row;
    use dcq_storage::Row;

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        Relation::from_int_rows(name, attrs, rows)
    }

    fn naive(head: &Schema, atoms: &[Relation]) -> Vec<Row> {
        multiway_join(atoms)
            .unwrap()
            .project(head.attrs())
            .unwrap()
            .sorted_rows()
    }

    #[test]
    fn full_path_join_matches_naive() {
        let atoms = vec![
            rel(
                "R1",
                &["x1", "x2"],
                vec![vec![1, 2], vec![2, 2], vec![3, 4]],
            ),
            rel(
                "R2",
                &["x2", "x3"],
                vec![vec![2, 5], vec![2, 6], vec![4, 7]],
            ),
            rel("R3", &["x3", "x4"], vec![vec![5, 8], vec![7, 9]]),
        ];
        let head = Schema::from_names(["x1", "x2", "x3", "x4"]);
        let j = acyclic_full_join(&atoms).unwrap();
        assert_eq!(
            j.project(head.attrs()).unwrap().sorted_rows(),
            naive(&head, &atoms)
        );
    }

    #[test]
    fn full_join_of_figure2_matches_naive() {
        let atoms = vec![
            rel(
                "R1",
                &["x1", "x2", "x3"],
                vec![vec![1, 2, 3], vec![4, 5, 6], vec![1, 9, 9]],
            ),
            rel("R2", &["x1", "x4"], vec![vec![1, 7], vec![4, 8]]),
            rel(
                "R3",
                &["x2", "x3", "x5"],
                vec![vec![2, 3, 50], vec![5, 6, 51]],
            ),
            rel("R4", &["x5", "x6"], vec![vec![50, 60], vec![51, 61]]),
            rel("R5", &["x3", "x7"], vec![vec![3, 70], vec![6, 71]]),
            rel("R6", &["x5", "x8"], vec![vec![50, 80]]),
        ];
        let head = Schema::from_names(["x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8"]);
        let j = acyclic_full_join(&atoms).unwrap();
        assert_eq!(
            j.project(head.attrs()).unwrap().sorted_rows(),
            naive(&head, &atoms)
        );
    }

    #[test]
    fn cyclic_join_is_rejected() {
        let atoms = vec![
            rel("R1", &["x1", "x2"], vec![vec![1, 2]]),
            rel("R2", &["x2", "x3"], vec![vec![2, 3]]),
            rel("R3", &["x1", "x3"], vec![vec![1, 3]]),
        ];
        assert!(matches!(
            acyclic_full_join(&atoms),
            Err(ExecError::NotAcyclic { .. })
        ));
    }

    #[test]
    fn boolean_evaluation() {
        let yes = vec![
            rel("R1", &["x1", "x2"], vec![vec![1, 2]]),
            rel("R2", &["x2", "x3"], vec![vec![2, 3]]),
        ];
        let no = vec![
            rel("R1", &["x1", "x2"], vec![vec![1, 2]]),
            rel("R2", &["x2", "x3"], vec![vec![9, 3]]),
        ];
        assert!(acyclic_boolean(&yes).unwrap());
        assert!(!acyclic_boolean(&no).unwrap());
    }

    #[test]
    fn free_connex_projection_matches_naive() {
        // π_{x1,x2,x3}(R1(x1,x2) ⋈ R2(x2,x3,x4)): free-connex, x4 projected away.
        let atoms = vec![
            rel(
                "R1",
                &["x1", "x2"],
                vec![vec![1, 100], vec![2, 100], vec![3, 300]],
            ),
            rel(
                "R2",
                &["x2", "x3", "x4"],
                vec![vec![100, 10, 11], vec![100, 12, 13], vec![400, 1, 1]],
            ),
        ];
        let head = Schema::from_names(["x1", "x2", "x3"]);
        let out = free_connex_evaluate(&head, &atoms).unwrap();
        assert_eq!(out.schema(), &head);
        assert_eq!(out.sorted_rows(), naive(&head, &atoms));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn free_connex_single_attribute_projection() {
        // EasyDCQ computes S_e = π_e Q1 for single edges e; check a unary projection.
        let atoms = vec![
            rel(
                "R1",
                &["x1", "x2"],
                vec![vec![1, 2], vec![3, 4], vec![5, 6]],
            ),
            rel("R2", &["x2", "x3"], vec![vec![2, 7], vec![4, 8]]),
        ];
        let head = Schema::from_names(["x2"]);
        let out = free_connex_evaluate(&head, &atoms).unwrap();
        assert_eq!(out.sorted_rows(), vec![int_row([2]), int_row([4])]);
    }

    #[test]
    fn free_connex_rejects_hard_projection() {
        // π_{x1,x3}(R1(x1,x2) ⋈ R2(x2,x3)) is not free-connex.
        let atoms = vec![
            rel("R1", &["x1", "x2"], vec![vec![1, 2]]),
            rel("R2", &["x2", "x3"], vec![vec![2, 3]]),
        ];
        let head = Schema::from_names(["x1", "x3"]);
        assert!(free_connex_evaluate(&head, &atoms).is_err());
    }

    #[test]
    fn boolean_head_handling() {
        let atoms = vec![
            rel("R1", &["x1", "x2"], vec![vec![1, 2]]),
            rel("R2", &["x2", "x3"], vec![vec![2, 3]]),
        ];
        let head = Schema::from_names(Vec::<String>::new());
        let out = free_connex_evaluate(&head, &atoms).unwrap();
        assert_eq!(out.len(), 1);
        let empty_atoms = vec![
            rel("R1", &["x1", "x2"], vec![]),
            rel("R2", &["x2", "x3"], vec![vec![2, 3]]),
        ];
        assert!(free_connex_evaluate(&head, &empty_atoms)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn duplicates_in_inputs_do_not_duplicate_outputs() {
        let atoms = vec![
            rel("R1", &["x1", "x2"], vec![vec![1, 2], vec![1, 2]]),
            rel("R2", &["x2", "x3"], vec![vec![2, 3], vec![2, 3]]),
        ];
        let j = acyclic_full_join(&atoms).unwrap();
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn intermediate_results_stay_output_bounded() {
        // A star query where the naive pairwise join of the two big satellites would
        // produce |R2|·|R3| tuples per hub value; Yannakakis' semi-join phases keep
        // everything proportional to N + OUT.  We can't observe intermediates here,
        // but we check the result on a size where the naive cross term would be 10^6.
        let hub: Vec<Vec<i64>> = (0..1000).map(|i| vec![i % 10, i]).collect();
        let atoms = vec![
            rel("R1", &["h", "a"], hub.clone()),
            rel("R2", &["h", "b"], hub.clone()),
            rel("R3", &["h", "c"], vec![vec![0, 1], vec![1, 2]]),
        ];
        let head = Schema::from_names(["h", "a", "b", "c"]);
        let out = free_connex_evaluate(&head, &atoms).unwrap();
        // h ∈ {0,1}: 100 a-values × 100 b-values × 1 c-value each.
        assert_eq!(out.len(), 2 * 100 * 100);
    }
}
