//! Generic worst-case-optimal join.
//!
//! The paper's heuristics (§4.2) "incorporate the state-of-the-art algorithms for CQ
//! evaluation" when the residual query is cyclic — e.g. the hidden triangle join of
//! Example 4.9 or the intersection query `Q₂⊕` of Theorem 4.10.  This module
//! provides an attribute-at-a-time *generic join* (Ngo–Porat–Ré–Rudra style): it
//! binds one variable at a time, intersecting for each candidate variable the value
//! sets offered by every atom whose already-bound attributes match, always iterating
//! the smallest candidate set.  For the triangle query this runs in `O(N^{3/2})`
//! instead of the `O(N²)` a binary plan can hit.

use crate::error::ExecError;
use crate::Result;
use dcq_storage::hash::map_with_capacity;
use dcq_storage::{Attr, FastHashMap, FastHashSet, Relation, Row, Schema, Value};

/// Per-atom, per-variable index: groups the values of the variable by the atom's
/// projection onto its previously-bound attributes.
struct LevelIndex {
    /// Positions (in the atom's schema) of the atom's attributes bound before this
    /// level, in global variable order.
    bound_positions: Vec<usize>,
    /// Which global levels those bound attributes correspond to.
    bound_levels: Vec<usize>,
    /// key (projection onto `bound_positions`) → distinct values of this variable.
    candidates: FastHashMap<Row, FastHashSet<Value>>,
}

/// Evaluate the CQ `(head, atoms)` with a generic worst-case-optimal join and
/// project the result onto `head` (deduplicated).
///
/// Works for *any* conjunctive query, cyclic or not; it is the fallback evaluator
/// whenever the linear-time algorithms don't apply.
pub fn generic_join(head: &Schema, atoms: &[Relation]) -> Result<Relation> {
    if atoms.is_empty() {
        return Err(ExecError::EmptyQuery);
    }
    // Global variable order: output variables first (so the final projection is a
    // prefix), then the rest; within each group order by how many atoms contain the
    // variable (most constrained first).
    let mut vars: Vec<Attr> = Vec::new();
    for atom in atoms {
        for a in atom.schema().iter() {
            if !vars.contains(a) {
                vars.push(a.clone());
            }
        }
    }
    for attr in head.iter() {
        if !vars.contains(attr) {
            return Err(ExecError::HeadNotCovered {
                attr: attr.name().to_string(),
            });
        }
    }
    let count_atoms = |a: &Attr| atoms.iter().filter(|r| r.schema().contains(a)).count();
    vars.sort_by_key(|a| {
        (
            !head.contains(a),
            std::cmp::Reverse(count_atoms(a)),
            a.clone(),
        )
    });

    // Any atom with an empty relation forces an empty result.
    if atoms.iter().any(|r| r.is_empty()) {
        let mut out = Relation::new("generic_join", head.clone());
        out.assume_distinct();
        return Ok(out);
    }

    // Build the per-(atom, level) indexes.
    let level_of: FastHashMap<Attr, usize> = {
        let mut m = map_with_capacity(vars.len());
        for (i, v) in vars.iter().enumerate() {
            m.insert(v.clone(), i);
        }
        m
    };
    // indexes[level] = list of LevelIndex for atoms containing vars[level].
    let mut indexes: Vec<Vec<LevelIndex>> = (0..vars.len()).map(|_| Vec::new()).collect();
    for atom in atoms {
        let schema = atom.schema();
        for (level, var) in vars.iter().enumerate() {
            let Some(var_pos) = schema.position(var) else {
                continue;
            };
            // Attributes of this atom bound strictly before `level`.
            let mut bound: Vec<(usize, usize)> = schema
                .iter()
                .enumerate()
                .filter(|(_, a)| *a != var)
                .filter_map(|(pos, a)| {
                    let l = level_of[a];
                    (l < level).then_some((l, pos))
                })
                .collect();
            bound.sort();
            let bound_levels: Vec<usize> = bound.iter().map(|(l, _)| *l).collect();
            let bound_positions: Vec<usize> = bound.iter().map(|(_, p)| *p).collect();
            let mut candidates: FastHashMap<Row, FastHashSet<Value>> =
                map_with_capacity(atom.len());
            for row in atom.iter() {
                let key = row.project(&bound_positions);
                candidates
                    .entry(key)
                    .or_default()
                    .insert(row.get(var_pos).clone());
            }
            indexes[level].push(LevelIndex {
                bound_positions,
                bound_levels,
                candidates,
            });
        }
    }

    // Recursive backtracking search over the variable order.
    let mut assignment: Vec<Value> = Vec::with_capacity(vars.len());
    let mut results: Vec<Row> = Vec::new();
    search(&vars, &indexes, &mut assignment, &mut results);

    // Project onto the head. Output variables form a prefix of `vars`, but possibly
    // in a different order than requested, so map positions explicitly.
    let positions: Vec<usize> = head
        .iter()
        .map(|a| vars.iter().position(|v| v == a).expect("head covered"))
        .collect();
    let mut out = Relation::new("generic_join", head.clone());
    let mut seen: FastHashSet<Row> = dcq_storage::hash::set_with_capacity(results.len());
    for full in results {
        let projected = full.project(&positions);
        if seen.insert(projected.clone()) {
            out.push_unchecked(projected);
        }
    }
    out.assume_distinct();
    Ok(out)
}

fn search(
    vars: &[Attr],
    indexes: &[Vec<LevelIndex>],
    assignment: &mut Vec<Value>,
    results: &mut Vec<Row>,
) {
    let level = assignment.len();
    if level == vars.len() {
        results.push(Row::new(assignment.clone()));
        return;
    }
    // Gather candidate sets from every atom containing this variable.
    let mut sets: Vec<&FastHashSet<Value>> = Vec::with_capacity(indexes[level].len());
    for idx in &indexes[level] {
        let key: Row = idx
            .bound_levels
            .iter()
            .map(|&l| assignment[l].clone())
            .collect();
        match idx.candidates.get(&key) {
            Some(set) => sets.push(set),
            None => return, // this atom cannot be satisfied under the current prefix
        }
        debug_assert_eq!(idx.bound_positions.len(), idx.bound_levels.len());
    }
    if sets.is_empty() {
        // No atom constrains this variable under the current prefix; this can only
        // happen if the variable occurs in no atom at all, which `generic_join`
        // rules out (every variable comes from some atom schema).
        unreachable!("every variable is constrained by at least one atom");
    }
    // Iterate the smallest candidate set, probing the others.
    let (smallest_pos, smallest) = sets
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.len())
        .expect("at least one candidate set");
    for value in smallest.iter() {
        if sets
            .iter()
            .enumerate()
            .all(|(i, s)| i == smallest_pos || s.contains(value))
        {
            assignment.push(value.clone());
            search(vars, indexes, assignment, results);
            assignment.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::multiway_join;
    use dcq_storage::row::int_row;

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<i64>>) -> Relation {
        Relation::from_int_rows(name, attrs, rows)
    }

    fn naive(head: &Schema, atoms: &[Relation]) -> Vec<Row> {
        multiway_join(atoms)
            .unwrap()
            .project(head.attrs())
            .unwrap()
            .sorted_rows()
    }

    #[test]
    fn triangle_query_matches_naive() {
        let edges: Vec<Vec<i64>> = vec![
            vec![1, 2],
            vec![2, 3],
            vec![3, 1],
            vec![2, 4],
            vec![4, 1],
            vec![1, 4],
            vec![4, 2],
        ];
        let atoms = vec![
            rel("G1", &["a", "b"], edges.clone()),
            rel("G2", &["b", "c"], edges.clone()),
            rel("G3", &["c", "a"], edges.clone()),
        ];
        let head = Schema::from_names(["a", "b", "c"]);
        let out = generic_join(&head, &atoms).unwrap();
        assert_eq!(out.sorted_rows(), naive(&head, &atoms));
    }

    #[test]
    fn acyclic_query_matches_naive() {
        let atoms = vec![
            rel(
                "R1",
                &["x1", "x2"],
                vec![vec![1, 2], vec![2, 3], vec![5, 6]],
            ),
            rel("R2", &["x2", "x3"], vec![vec![2, 7], vec![3, 8]]),
        ];
        let head = Schema::from_names(["x1", "x2", "x3"]);
        let out = generic_join(&head, &atoms).unwrap();
        assert_eq!(out.sorted_rows(), naive(&head, &atoms));
    }

    #[test]
    fn projection_dedups() {
        // π_{x1,x3} of a path query: several x2 witnesses collapse to one output row.
        let atoms = vec![
            rel("R1", &["x1", "x2"], vec![vec![1, 2], vec![1, 3]]),
            rel("R2", &["x2", "x3"], vec![vec![2, 9], vec![3, 9]]),
        ];
        let head = Schema::from_names(["x1", "x3"]);
        let out = generic_join(&head, &atoms).unwrap();
        assert_eq!(out.sorted_rows(), vec![int_row([1, 9])]);
    }

    #[test]
    fn four_cycle_query() {
        let edges: Vec<Vec<i64>> = vec![vec![1, 2], vec![2, 3], vec![3, 4], vec![4, 1], vec![2, 5]];
        let atoms = vec![
            rel("G1", &["a", "b"], edges.clone()),
            rel("G2", &["b", "c"], edges.clone()),
            rel("G3", &["c", "d"], edges.clone()),
            rel("G4", &["d", "a"], edges.clone()),
        ];
        let head = Schema::from_names(["a", "b", "c", "d"]);
        let out = generic_join(&head, &atoms).unwrap();
        assert_eq!(out.sorted_rows(), naive(&head, &atoms));
        assert!(out.rows().contains(&int_row([1, 2, 3, 4])));
    }

    #[test]
    fn empty_relation_short_circuits() {
        let atoms = vec![
            rel("R1", &["a", "b"], vec![vec![1, 2]]),
            rel("R2", &["b", "c"], vec![]),
        ];
        let head = Schema::from_names(["a", "b", "c"]);
        assert!(generic_join(&head, &atoms).unwrap().is_empty());
    }

    #[test]
    fn boolean_style_query_with_constants_via_unary_atoms() {
        // The per-tuple probes of Theorem 4.8 replace output attributes by constants,
        // which we model as unary single-tuple relations.
        let edges = vec![vec![1i64, 2], vec![2, 3], vec![3, 1]];
        let atoms = vec![
            rel("G1", &["a", "b"], edges.clone()),
            rel("G2", &["b", "c"], edges.clone()),
            rel("G3", &["c", "a"], edges.clone()),
            rel("ConstA", &["a"], vec![vec![1]]),
        ];
        let head = Schema::from_names(["a", "b", "c"]);
        let out = generic_join(&head, &atoms).unwrap();
        assert_eq!(out.sorted_rows(), vec![int_row([1, 2, 3])]);
    }

    #[test]
    fn head_not_covered_is_rejected() {
        let atoms = vec![rel("R1", &["a"], vec![vec![1]])];
        assert!(generic_join(&Schema::from_names(["z"]), &atoms).is_err());
        assert!(generic_join(&Schema::from_names(["a"]), &[]).is_err());
    }

    #[test]
    fn larger_random_triangle_instance_agrees_with_naive() {
        // Deterministic pseudo-random graph, dense enough to have triangles.
        let mut edges = Vec::new();
        let mut x: u64 = 12345;
        for _ in 0..300 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 33) % 30;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % 30;
            if u != v {
                edges.push(vec![u as i64, v as i64]);
            }
        }
        let atoms = vec![
            rel("G1", &["a", "b"], edges.clone()),
            rel("G2", &["b", "c"], edges.clone()),
            rel("G3", &["c", "a"], edges.clone()),
        ];
        let head = Schema::from_names(["a", "b", "c"]);
        let out = generic_join(&head, &atoms).unwrap();
        assert_eq!(out.sorted_rows(), naive(&head, &atoms));
    }
}
