//! Annotated (semiring) evaluation.
//!
//! Section 5.3 of the paper evaluates aggregations by annotating every tuple with an
//! element of a commutative ring `(S, ⊕, ⊗)`: the annotation of a join result is the
//! `⊗`-product of its constituent tuples' annotations, and the annotation of a
//! group (a projection result) is the `⊕`-sum over the group.  Bag semantics (§5.4)
//! is the special case of the counting semiring.
//!
//! * [`annotated_join`] — natural join with `⊗`-combined annotations,
//! * [`annotated_project`] — projection with `⊕`-combined annotations (GROUP BY),
//! * [`annotated_semi_join`] / [`annotated_anti_join`] — filtering without touching
//!   annotations,
//! * [`annotated_yannakakis`] — evaluate a free-connex aggregate query
//!   `π^⊕_y (⨝ atoms)` in `O(N + OUT)` by variable elimination along a join tree
//!   rooted at the head (the AJAR/FAQ-style algorithm the paper builds on).

use crate::error::ExecError;
use crate::Result;
use dcq_hypergraph::{AttrSet, JoinTree};
use dcq_storage::{AnnotatedRelation, Attr, HashIndex, Schema, Semiring};

/// Natural join of two annotated relations; annotations multiply (`⊗`).
pub fn annotated_join<A: Semiring>(
    left: &AnnotatedRelation<A>,
    right: &AnnotatedRelation<A>,
) -> AnnotatedRelation<A> {
    let shared: Vec<Attr> = left
        .schema()
        .iter()
        .filter(|a| right.schema().contains(a))
        .cloned()
        .collect();
    let left_positions = left
        .schema()
        .positions_of(&shared)
        .expect("shared attrs in left");
    // Index the right side by the shared attributes.
    let right_rel = right.to_relation();
    let index = HashIndex::build(&right_rel, &shared).expect("shared attrs in right");
    let right_rows = right_rel.rows();

    let extra_attrs: Vec<Attr> = right
        .schema()
        .iter()
        .filter(|a| !left.schema().contains(a))
        .cloned()
        .collect();
    let extra_positions = right
        .schema()
        .positions_of(&extra_attrs)
        .expect("extra attrs in right");

    let out_schema = left.schema().union(right.schema());
    let mut out =
        AnnotatedRelation::new(format!("({} ⋈ {})", left.name(), right.name()), out_schema);
    for (lrow, la) in left.iter() {
        let key = lrow.project(&left_positions);
        for &ridx in index.get(&key) {
            let rrow = &right_rows[ridx];
            let ra = right.annotation(rrow);
            out.combine(lrow.concat_projected(rrow, &extra_positions), la.times(&ra));
        }
    }
    out
}

/// Projection with `⊕`-aggregation of annotations (GROUP BY `attrs`).
pub fn annotated_project<A: Semiring>(
    rel: &AnnotatedRelation<A>,
    attrs: &[Attr],
) -> Result<AnnotatedRelation<A>> {
    Ok(rel.project(attrs)?)
}

/// Semi-join: keep the tuples of `left` (annotations untouched) that join with some
/// tuple of `right`.
pub fn annotated_semi_join<A: Semiring, B: Semiring>(
    left: &AnnotatedRelation<A>,
    right: &AnnotatedRelation<B>,
) -> AnnotatedRelation<A> {
    filter_by_membership(left, right, true)
}

/// Anti-join: keep the tuples of `left` (annotations untouched) that join with **no**
/// tuple of `right`.
pub fn annotated_anti_join<A: Semiring, B: Semiring>(
    left: &AnnotatedRelation<A>,
    right: &AnnotatedRelation<B>,
) -> AnnotatedRelation<A> {
    filter_by_membership(left, right, false)
}

fn filter_by_membership<A: Semiring, B: Semiring>(
    left: &AnnotatedRelation<A>,
    right: &AnnotatedRelation<B>,
    keep_matching: bool,
) -> AnnotatedRelation<A> {
    let shared: Vec<Attr> = left
        .schema()
        .iter()
        .filter(|a| right.schema().contains(a))
        .cloned()
        .collect();
    let left_positions = left
        .schema()
        .positions_of(&shared)
        .expect("shared attrs in left");
    let right_positions = right
        .schema()
        .positions_of(&shared)
        .expect("shared attrs in right");
    let mut keys = dcq_storage::hash::set_with_capacity(right.len());
    for (row, _) in right.iter() {
        keys.insert(row.project(&right_positions));
    }
    let mut out = AnnotatedRelation::new(left.name(), left.schema().clone());
    for (row, a) in left.iter() {
        let matches = keys.contains(&row.project(&left_positions));
        if matches == keep_matching {
            out.set(row.clone(), a.clone());
        }
    }
    out
}

/// Annotated analogue of the `Reduce` procedure (Algorithm 1): eliminate all
/// non-output attributes of the aggregate query `π^⊕_head (⨝ atoms)` in `O(N)` time,
/// returning relations over subsets of `head` whose (annotated) join equals the
/// aggregate query.  Requires the query to be free-connex w.r.t. `head`.
///
/// The elimination walks a join tree of `E ∪ {head}` rooted at the (virtual) head
/// node bottom-up: each node is joined with the accumulated results of its children
/// and then projected (with `⊕`) onto its intersection with its parent; the returned
/// relations are the accumulated results of the root's children.
pub fn annotated_reduce<A: Semiring>(
    head: &Schema,
    atoms: &[AnnotatedRelation<A>],
) -> Result<Vec<AnnotatedRelation<A>>> {
    if atoms.is_empty() {
        return Err(ExecError::EmptyQuery);
    }
    let head_set = AttrSet::from_schema(head);
    let edges: Vec<AttrSet> = atoms
        .iter()
        .map(|r| AttrSet::from_schema(r.schema()))
        .collect();
    for attr in head.iter() {
        if !edges.iter().any(|e| e.contains(attr)) {
            return Err(ExecError::HeadNotCovered {
                attr: attr.name().to_string(),
            });
        }
    }
    let Some((tree, head_idx)) = JoinTree::build_with_head(&edges, &head_set) else {
        return Err(ExecError::NotLinearReducible {
            detail: format!("E ∪ {{y}} is cyclic for y = {head_set}"),
        });
    };

    // acc[i] = the annotated relation accumulated at node i (starts as the atom).
    let mut acc: Vec<Option<AnnotatedRelation<A>>> =
        atoms.iter().map(|r| Some(r.clone())).collect();
    acc.push(None); // the virtual head node holds no relation

    // Eliminate bottom-up. For each non-root node: join the accumulated children
    // into it, project onto (its attrs ∩ parent attrs) ∪ (its attrs ∩ head) — by
    // join-tree connectivity the head part is already inside the parent unless the
    // parent *is* the head — and hand the result to the parent.
    let mut root_children_results: Vec<AnnotatedRelation<A>> = Vec::new();
    for node in tree.bottom_up_order() {
        if node == head_idx {
            continue;
        }
        let parent = tree.parent(node).expect("non-root node");
        let current = acc[node].take().expect("node visited once");
        let parent_edge = tree.edge(parent);
        let keep: Vec<Attr> = current
            .schema()
            .iter()
            .filter(|a| parent_edge.contains(a))
            .cloned()
            .collect();
        let projected = current.project(&keep)?;
        if parent == head_idx {
            root_children_results.push(projected);
        } else {
            let parent_rel = acc[parent].take().expect("parent not yet consumed");
            acc[parent] = Some(annotated_join(&parent_rel, &projected));
        }
    }
    Ok(root_children_results)
}

/// Evaluate the aggregate query `π^⊕_head (⨝ atoms)` over annotated relations in
/// `O(N + OUT)` time, provided the query is free-connex w.r.t. `head`.
///
/// [`annotated_reduce`] eliminates the non-output attributes; the root's children —
/// whose remaining attributes are all output attributes — are then joined together
/// and projected onto `head`.
pub fn annotated_yannakakis<A: Semiring>(
    head: &Schema,
    atoms: &[AnnotatedRelation<A>],
) -> Result<AnnotatedRelation<A>> {
    let reduced = annotated_reduce(head, atoms)?;
    // Join the root's children (they only share head attributes) and group by head.
    let mut iter = reduced.into_iter();
    let first = iter.next().ok_or(ExecError::EmptyQuery)?;
    let mut result = first;
    for next in iter {
        result = annotated_join(&result, &next);
    }
    let out = result.project(head.attrs())?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_storage::row::int_row;
    use dcq_storage::BagRelation;

    fn bag(name: &str, attrs: &[&str], rows: Vec<(Vec<i64>, u64)>) -> BagRelation {
        BagRelation::from_int_rows_with_counts(name, attrs, rows)
    }

    /// Naive reference: enumerate the full join by nested loops and aggregate.
    fn naive_aggregate<A: Semiring>(
        head: &Schema,
        atoms: &[AnnotatedRelation<A>],
    ) -> AnnotatedRelation<A> {
        let mut acc = atoms[0].clone();
        for r in &atoms[1..] {
            acc = annotated_join(&acc, r);
        }
        acc.project(head.attrs()).unwrap()
    }

    #[test]
    fn annotated_join_multiplies() {
        // Figure 3: R1(x1,x2) ⋈ R2(x2,x3) under bag semantics.
        let r1 = bag(
            "R1",
            &["x1", "x2"],
            vec![(vec![1, 10], 1), (vec![2, 10], 2), (vec![2, 20], 2)],
        );
        let r2 = bag(
            "R2",
            &["x2", "x3"],
            vec![(vec![10, 100], 2), (vec![20, 100], 1)],
        );
        let j = annotated_join(&r1, &r2);
        assert_eq!(j.annotation(&int_row([1, 10, 100])), 2);
        assert_eq!(j.annotation(&int_row([2, 10, 100])), 4);
        assert_eq!(j.annotation(&int_row([2, 20, 100])), 2);
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn annotated_project_sums() {
        let r = bag(
            "R",
            &["x1", "x2"],
            vec![(vec![1, 10], 1), (vec![2, 10], 2), (vec![3, 20], 4)],
        );
        let p = annotated_project(&r, &[Attr::new("x2")]).unwrap();
        assert_eq!(p.annotation(&int_row([10])), 3);
        assert_eq!(p.annotation(&int_row([20])), 4);
    }

    #[test]
    fn semi_and_anti_join_partition() {
        let r = bag("R", &["x", "y"], vec![(vec![1, 2], 3), (vec![4, 5], 1)]);
        let s = bag("S", &["y"], vec![(vec![2], 7)]);
        let semi = annotated_semi_join(&r, &s);
        let anti = annotated_anti_join(&r, &s);
        assert_eq!(semi.annotation(&int_row([1, 2])), 3);
        assert!(!semi.contains(&int_row([4, 5])));
        assert_eq!(anti.annotation(&int_row([4, 5])), 1);
        assert!(!anti.contains(&int_row([1, 2])));
    }

    #[test]
    fn yannakakis_full_head_matches_naive() {
        let r1 = bag(
            "R1",
            &["x1", "x2"],
            vec![(vec![1, 10], 1), (vec![2, 10], 2), (vec![3, 30], 5)],
        );
        let r2 = bag(
            "R2",
            &["x2", "x3"],
            vec![(vec![10, 100], 2), (vec![10, 200], 1), (vec![30, 300], 3)],
        );
        let head = Schema::from_names(["x1", "x2", "x3"]);
        let fast = annotated_yannakakis(&head, &[r1.clone(), r2.clone()]).unwrap();
        let slow = naive_aggregate(&head, &[r1, r2]);
        assert_eq!(fast.sorted_entries(), slow.sorted_entries());
    }

    #[test]
    fn yannakakis_group_by_matches_naive() {
        // Example 5.3 shape: π_{x1}(R1(x1,x2) ⋈ R2(x2,x3)) with SUM annotations.
        let r1: AnnotatedRelation<i64> = {
            let mut r = AnnotatedRelation::new("R1", Schema::from_names(["x1", "x2"]));
            for (row, a) in [([1, 10], 1i64), ([1, 20], 2), ([2, 10], 2), ([3, 30], 1)] {
                r.combine(int_row(row), a);
            }
            r
        };
        let r2: AnnotatedRelation<i64> = {
            let mut r = AnnotatedRelation::new("R2", Schema::from_names(["x2", "x3"]));
            for (row, a) in [([10, 5], 1i64), ([10, 6], 2), ([20, 5], 2)] {
                r.combine(int_row(row), a);
            }
            r
        };
        let head = Schema::from_names(["x1"]);
        let fast = annotated_yannakakis(&head, &[r1.clone(), r2.clone()]).unwrap();
        let slow = naive_aggregate(&head, &[r1, r2]);
        assert_eq!(fast.sorted_entries(), slow.sorted_entries());
        // x1=1: (1,10)·[(10,5)+(10,6)] + (1,20)·(20,5) = 1·3 + 2·2 = 7.
        assert_eq!(fast.annotation(&int_row([1])), 7);
        // x1=3 joins nothing.
        assert!(!fast.contains(&int_row([3])));
    }

    #[test]
    fn yannakakis_three_atom_star_matches_naive() {
        let mk = |name: &str, b: &str, rows: Vec<(Vec<i64>, u64)>| bag(name, &["h", b], rows);
        let r1 = mk(
            "R1",
            "a",
            vec![(vec![1, 10], 1), (vec![1, 11], 2), (vec![2, 12], 1)],
        );
        let r2 = mk("R2", "b", vec![(vec![1, 20], 3), (vec![2, 21], 1)]);
        let r3 = mk("R3", "c", vec![(vec![1, 30], 1), (vec![1, 31], 1)]);
        let head = Schema::from_names(["h"]);
        let fast = annotated_yannakakis(&head, &[r1.clone(), r2.clone(), r3.clone()]).unwrap();
        let slow = naive_aggregate(&head, &[r1, r2, r3]);
        assert_eq!(fast.sorted_entries(), slow.sorted_entries());
        // h=1: (1+2) * 3 * (1+1) = 18.
        assert_eq!(fast.annotation(&int_row([1])), 18);
    }

    #[test]
    fn yannakakis_rejects_non_free_connex_heads() {
        let r1 = bag("R1", &["x1", "x2"], vec![(vec![1, 2], 1)]);
        let r2 = bag("R2", &["x2", "x3"], vec![(vec![2, 3], 1)]);
        let head = Schema::from_names(["x1", "x3"]);
        assert!(annotated_yannakakis(&head, &[r1, r2]).is_err());
    }

    #[test]
    fn ring_annotations_support_negative_weights() {
        // Numerical difference (§5.3) needs ring annotations; check i64 works end to end.
        let mut r1: AnnotatedRelation<i64> =
            AnnotatedRelation::new("R1", Schema::from_names(["x1", "x2"]));
        r1.combine(int_row([1, 10]), 2);
        r1.combine(int_row([2, 10]), -1);
        let mut r2: AnnotatedRelation<i64> =
            AnnotatedRelation::new("R2", Schema::from_names(["x2"]));
        r2.combine(int_row([10]), 3);
        let head = Schema::from_names(["x2"]);
        let out = annotated_yannakakis(&head, &[r1, r2]).unwrap();
        assert_eq!(out.annotation(&int_row([10])), 3); // (2 + -1) * 3
    }
}
