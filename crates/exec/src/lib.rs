//! # dcq-exec
//!
//! The relational execution engine of **dcqx**, the Rust reproduction of *Computing
//! the Difference of Conjunctive Queries Efficiently* (Hu & Wang, SIGMOD 2023).
//!
//! Relations manipulated here carry *query-variable* schemas: an atom `Graph(node1,
//! node2)` is represented as the stored `Graph` relation re-labelled with the schema
//! `(node1, node2)`, so natural joins automatically join on shared variables.
//!
//! Provided building blocks:
//!
//! * [`ops`] — hash-based natural join, semi-join, anti-join, Cartesian product,
//!   selection and set operations (the `O(N)` primitives of §3),
//! * [`mod@reduce`] — the `Reduce` procedure of Algorithm 1 (linear-reducible CQ → full
//!   acyclic join, preserving results),
//! * [`yannakakis`] — Algorithm 3: full acyclic joins and free-connex CQs in
//!   `O(N + OUT)`, plus Boolean (emptiness) evaluation,
//! * [`binary_plan`] — the "vanilla SQL" left-deep binary-join plan used as the
//!   baseline engine in §6,
//! * [`mod@generic_join`] — a worst-case-optimal attribute-at-a-time join for cyclic
//!   queries (the "state-of-the-art CQ evaluation" plugged into the heuristics of
//!   §4.2),
//! * [`annotated`] — semiring-annotated join/projection and the annotated
//!   Yannakakis used by the aggregation extension (§5.3) and bag semantics (§5.4).

#![warn(missing_docs)]

pub mod annotated;
pub mod binary_plan;
pub mod error;
pub mod generic_join;
pub mod ops;
pub mod reduce;
pub mod yannakakis;

pub use annotated::{annotated_join, annotated_project, annotated_reduce, annotated_yannakakis};
pub use binary_plan::{BinaryJoinPlan, PlanStep};
pub use error::ExecError;
pub use generic_join::generic_join;
pub use ops::{anti_join, cartesian_product, natural_join, semi_join};
pub use reduce::{reduce, ReducedQuery};
pub use yannakakis::{acyclic_boolean, acyclic_full_join, free_connex_evaluate};

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, ExecError>;
