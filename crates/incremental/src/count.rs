//! Counting-based maintenance of a single conjunctive query.
//!
//! [`CountingCq`] maintains, for one CQ and an evolving database, the **support
//! count** of every output tuple: the number of valuations of the body variables
//! that produce it.  Under set semantics a tuple belongs to `Q(D)` iff its support
//! count is positive, so a DCQ result can be derived from two counting engines
//! (`cnt₁(t) > 0 ∧ cnt₂(t) = 0`); this is the classic counting approach to
//! incremental view maintenance, and the fallback strategy for DCQs the dichotomy
//! (Theorem 2.4) declares hard.
//!
//! Updates arrive as **normalized signed deltas** per stored relation (see
//! [`dcq_storage::delta`]).  The count map is maintained with ℤ-annotated *delta
//! joins*: when relation `R` changes by `ΔR`, the change of the query's valuation
//! count is the sum over the atom occurrences of `R` of
//!
//! ```text
//!   ⨝ (atoms before the occurrence, already updated)
//!     × ΔR bound at the occurrence
//!     × (atoms after the occurrence, not yet updated)
//! ```
//!
//! which the engine evaluates occurrence-by-occurrence, applying `ΔR` to each
//! occurrence's state immediately after computing its term (the standard telescoping
//! delta rule, correct in the presence of self-joins).  Every non-delta atom is
//! probed through a hash index on exactly the join key the precomputed delta plan
//! needs, so the per-batch cost scales with the delta size and join fan-out rather
//! than with the database size.

use crate::{IncrementalError, Result};
use dcq_core::query::{Atom, ConjunctiveQuery};
use dcq_storage::hash::{map_with_capacity, set_with_capacity, FastHashMap, FastHashSet};
use dcq_storage::{AnnotatedRelation, Attr, Database, Relation, Row, Schema, SharedDatabase};

/// One atom's bound state: the stored relation's rows re-labelled with the atom's
/// (distinct) variables, kept current under deltas, plus the hash indexes the delta
/// plans probe.
struct BoundAtom {
    /// Name of the stored relation this atom scans.
    relation: String,
    /// The atom's distinct variables, in first-occurrence order.
    schema: Schema,
    /// Stored-row positions of each distinct variable's first occurrence.
    keep_positions: Vec<usize>,
    /// `(earlier, later)` stored positions that must be equal (repeated variables).
    equalities: Vec<(usize, usize)>,
    /// Current bound rows.
    rows: FastHashSet<Row>,
    /// Hash indexes, one per distinct join key used by some delta plan.
    indexes: Vec<AtomIndex>,
}

impl BoundAtom {
    fn new(atom: &Atom) -> Self {
        let mut distinct_vars: Vec<Attr> = Vec::new();
        let mut keep_positions: Vec<usize> = Vec::new();
        let mut equalities: Vec<(usize, usize)> = Vec::new();
        for (pos, var) in atom.vars.iter().enumerate() {
            match atom.vars[..pos].iter().position(|v| v == var) {
                Some(first) => equalities.push((first, pos)),
                None => {
                    distinct_vars.push(var.clone());
                    keep_positions.push(pos);
                }
            }
        }
        BoundAtom {
            relation: atom.relation.clone(),
            schema: Schema::new(distinct_vars),
            keep_positions,
            equalities,
            rows: set_with_capacity(0),
            indexes: Vec::new(),
        }
    }

    /// Translate a stored-relation delta into this atom's bound schema, applying the
    /// repeated-variable equality filters.  The translation is injective on rows
    /// passing the filter, so signs remain consistent with the bound row set.
    fn bind_delta(&self, delta: &[(Row, i64)]) -> Vec<(Row, i64)> {
        let mut out = Vec::with_capacity(delta.len());
        for (row, sign) in delta {
            if self
                .equalities
                .iter()
                .all(|&(a, b)| row.get(a) == row.get(b))
            {
                out.push((row.project(&self.keep_positions), *sign));
            }
        }
        out
    }

    /// Apply a bound delta to the row set and every index.
    fn apply_bound_delta(&mut self, bound: &[(Row, i64)]) {
        for (row, sign) in bound {
            if *sign > 0 {
                let fresh = self.rows.insert(row.clone());
                debug_assert!(fresh, "insert of already-present bound row");
                for index in &mut self.indexes {
                    index.insert(row);
                }
            } else {
                let existed = self.rows.remove(row);
                debug_assert!(existed, "delete of absent bound row");
                for index in &mut self.indexes {
                    index.remove(row);
                }
            }
        }
    }

    /// Slot of the index on `key_attrs`, creating it if missing.
    fn ensure_index(&mut self, key_attrs: &[Attr]) -> usize {
        if let Some(i) = self.indexes.iter().position(|ix| ix.key_attrs == key_attrs) {
            return i;
        }
        let key_positions = self
            .schema
            .positions_of(key_attrs)
            .expect("index key attrs come from this atom's schema");
        self.indexes.push(AtomIndex {
            key_attrs: key_attrs.to_vec(),
            key_positions,
            buckets: map_with_capacity(0),
        });
        self.indexes.len() - 1
    }
}

/// Hash index of an atom's bound rows on a fixed list of key attributes.
struct AtomIndex {
    key_attrs: Vec<Attr>,
    key_positions: Vec<usize>,
    buckets: FastHashMap<Row, Vec<Row>>,
}

impl AtomIndex {
    fn insert(&mut self, row: &Row) {
        self.buckets
            .entry(row.project(&self.key_positions))
            .or_default()
            .push(row.clone());
    }

    fn remove(&mut self, row: &Row) {
        let key = row.project(&self.key_positions);
        if let Some(bucket) = self.buckets.get_mut(&key) {
            if let Some(pos) = bucket.iter().position(|r| r == row) {
                bucket.swap_remove(pos);
            }
            if bucket.is_empty() {
                self.buckets.remove(&key);
            }
        }
    }

    fn probe(&self, key: &Row) -> &[Row] {
        self.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// One probe step of a delta plan: join the accumulated rows with an atom through a
/// precomputed index.
struct DeltaStep {
    /// Index of the probed atom.
    atom: usize,
    /// Index slot within that atom's [`BoundAtom::indexes`].
    index: usize,
    /// Positions of the join key inside the accumulated row.
    acc_key_positions: Vec<usize>,
    /// Positions of the probed atom's row appended to the accumulated row.
    append_positions: Vec<usize>,
}

/// Precomputed join pipeline for a delta arriving at one atom occurrence.
struct DeltaPlan {
    steps: Vec<DeltaStep>,
    /// Positions of the output attributes in the final accumulated schema.
    head_positions: Vec<usize>,
}

/// Incremental support counts for one conjunctive query.
pub struct CountingCq {
    cq: ConjunctiveQuery,
    output: Schema,
    atoms: Vec<BoundAtom>,
    /// Relation name → atom occurrences (ascending), covering self-joins.
    occurrences: FastHashMap<String, Vec<usize>>,
    plans: Vec<DeltaPlan>,
    counts: AnnotatedRelation<i64>,
}

impl CountingCq {
    /// Build the (empty) counting state for `cq`, producing output tuples in the
    /// attribute order of `output` (which must contain exactly the head variables).
    ///
    /// The database is used for validation only: the engine starts from empty
    /// relations, and callers feed the initial contents through
    /// [`CountingCq::apply_relation_delta`] like any other update.
    pub fn new(cq: ConjunctiveQuery, output: Schema, db: &Database) -> Result<Self> {
        cq.validate(db).map_err(IncrementalError::Core)?;
        debug_assert!(
            cq.head_schema().same_attr_set(&output),
            "output schema must be a permutation of the head"
        );
        let mut atoms: Vec<BoundAtom> = cq.atoms.iter().map(BoundAtom::new).collect();
        let mut occurrences: FastHashMap<String, Vec<usize>> = map_with_capacity(atoms.len());
        for (i, atom) in atoms.iter().enumerate() {
            occurrences
                .entry(atom.relation.clone())
                .or_default()
                .push(i);
        }

        let mut plans = Vec::with_capacity(atoms.len());
        for d in 0..atoms.len() {
            plans.push(Self::build_plan(&mut atoms, d, &output));
        }

        let counts = AnnotatedRelation::new(format!("count({})", cq.name), output.clone());
        Ok(CountingCq {
            cq,
            output,
            atoms,
            occurrences,
            plans,
            counts,
        })
    }

    /// Build the counting state for `cq` and seed it from a shared store's current
    /// contents.
    ///
    /// This is the registration path of the engine's counting views: the store's
    /// relations are read **through** [`SharedDatabase`] handles (distinct by the
    /// store's set-semantics invariant) and fed in as the first delta — the view
    /// never takes a private snapshot of the base data.
    pub fn from_store(
        cq: ConjunctiveQuery,
        output: Schema,
        store: &SharedDatabase,
    ) -> Result<Self> {
        let mut engine = CountingCq::new(cq, output, store.database())?;
        let referenced: Vec<String> = engine.occurrences.keys().cloned().collect();
        for name in referenced {
            let handle = store.relation(&name).map_err(IncrementalError::Storage)?;
            let initial: Vec<(Row, i64)> = handle.rows().iter().map(|r| (r.clone(), 1)).collect();
            engine.apply_relation_delta(&name, &initial);
        }
        Ok(engine)
    }

    /// Greedy connected join order for a delta arriving at atom `d`: repeatedly probe
    /// the remaining atom sharing the most variables with the accumulated schema.
    fn build_plan(atoms: &mut [BoundAtom], d: usize, output: &Schema) -> DeltaPlan {
        let mut acc_schema = atoms[d].schema.clone();
        let mut remaining: Vec<usize> = (0..atoms.len()).filter(|&i| i != d).collect();
        let mut steps = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let (pick, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(slot, &i)| {
                    let shared = acc_schema.intersect(&atoms[i].schema).arity();
                    // Prefer more shared variables; break ties toward earlier atoms
                    // (stable, deterministic plans).
                    (shared, usize::MAX - *slot)
                })
                .expect("remaining is non-empty");
            let atom = remaining.remove(pick);
            let key_schema = atoms[atom].schema.intersect(&acc_schema);
            let key_attrs: Vec<Attr> = key_schema.attrs().to_vec();
            let index = atoms[atom].ensure_index(&key_attrs);
            let acc_key_positions = acc_schema
                .positions_of(&key_attrs)
                .expect("key attrs are in the accumulated schema");
            let append_schema = atoms[atom].schema.minus(&acc_schema);
            let append_positions = atoms[atom]
                .schema
                .positions_of(append_schema.attrs())
                .expect("append attrs are in the atom schema");
            acc_schema = acc_schema.union(&atoms[atom].schema);
            steps.push(DeltaStep {
                atom,
                index,
                acc_key_positions,
                append_positions,
            });
        }
        let head_positions = acc_schema
            .positions_of(output.attrs())
            .expect("every head variable occurs in some atom");
        DeltaPlan {
            steps,
            head_positions,
        }
    }

    /// The maintained query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.cq
    }

    /// `true` iff the query reads `relation`.
    pub fn touches(&self, relation: &str) -> bool {
        self.occurrences.contains_key(relation)
    }

    /// Support count of one output tuple (`0` when absent).
    pub fn count(&self, row: &Row) -> i64 {
        self.counts.annotation(row)
    }

    /// The full support-count map.
    pub fn counts(&self) -> &AnnotatedRelation<i64> {
        &self.counts
    }

    /// The current set-semantics output `Q(D)` (tuples with positive support).
    pub fn to_relation(&self) -> Relation {
        self.counts.to_relation()
    }

    /// Apply a **normalized** signed delta of one stored relation and return the
    /// induced change of the support-count map (already folded into
    /// [`CountingCq::counts`]).
    ///
    /// The delta must be the net set-semantics effect against the relation state the
    /// engine currently reflects — [`dcq_storage::normalize_delta`] output, applied
    /// in the same order to every consumer.
    pub fn apply_relation_delta(
        &mut self,
        relation: &str,
        delta: &[(Row, i64)],
    ) -> AnnotatedRelation<i64> {
        let mut head_delta = AnnotatedRelation::new("Δcount", self.output.clone());
        let occ = match self.occurrences.get(relation) {
            Some(occ) => occ.clone(),
            None => return head_delta,
        };
        for d in occ {
            let bound = self.atoms[d].bind_delta(delta);
            if !bound.is_empty() {
                let plan = &self.plans[d];
                let mut acc = bound.clone();
                for step in &plan.steps {
                    let index = &self.atoms[step.atom].indexes[step.index];
                    let mut next = Vec::with_capacity(acc.len());
                    for (row, mult) in &acc {
                        let key = row.project(&step.acc_key_positions);
                        for other in index.probe(&key) {
                            next.push((row.concat_projected(other, &step.append_positions), *mult));
                        }
                    }
                    acc = next;
                    if acc.is_empty() {
                        break;
                    }
                }
                for (row, mult) in acc {
                    head_delta.combine(row.project(&plan.head_positions), mult);
                }
                self.atoms[d].apply_bound_delta(&bound);
            }
        }
        for (row, mult) in head_delta.iter() {
            self.counts.combine(row.clone(), *mult);
            debug_assert!(
                self.counts.annotation(row) >= 0,
                "support count went negative for {row}"
            );
        }
        head_delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_core::baseline::{evaluate_cq, CqStrategy};
    use dcq_core::parse::parse_cq;
    use dcq_storage::row::int_row;
    use dcq_storage::{normalize_delta, DeltaBatch};

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![3, 1], vec![2, 4], vec![4, 1]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Edge",
            &["src", "dst"],
            vec![vec![1, 3], vec![2, 4]],
        ))
        .unwrap();
        db
    }

    /// Feed the full current contents of every referenced relation.
    fn fill(engine: &mut CountingCq, db: &Database) {
        for name in db.relation_names() {
            if engine.touches(&name) {
                let rows: Vec<(Row, i64)> = db
                    .get(&name)
                    .unwrap()
                    .distinct()
                    .rows()
                    .iter()
                    .map(|r| (r.clone(), 1))
                    .collect();
                engine.apply_relation_delta(&name, &rows);
            }
        }
    }

    #[test]
    fn initial_fill_matches_direct_evaluation() {
        let db = db();
        for src in [
            "P(x, y, z) :- Graph(x, y), Graph(y, z)",
            "P(x, y, z) :- Graph(x, y), Graph(y, z), Graph(z, x)",
            "P(x, z) :- Graph(x, y), Graph(y, z)",
            "P(x) :- Graph(x, x)",
            "P(x, y, w) :- Graph(x, y), Edge(w, x)",
        ] {
            let cq = parse_cq(src).unwrap();
            let mut engine = CountingCq::new(cq.clone(), cq.head_schema(), &db).unwrap();
            fill(&mut engine, &db);
            let expected = evaluate_cq(&cq, &db, CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.to_relation().sorted_rows(),
                expected.sorted_rows(),
                "counting fill differs on {src}"
            );
        }
    }

    #[test]
    fn counts_are_valuation_counts() {
        let db = db();
        // π_x of Graph(x, y): x=2 has two out-edges.
        let cq = parse_cq("P(x) :- Graph(x, y)").unwrap();
        let mut engine = CountingCq::new(cq.clone(), cq.head_schema(), &db).unwrap();
        fill(&mut engine, &db);
        assert_eq!(engine.count(&int_row([2])), 2);
        assert_eq!(engine.count(&int_row([1])), 1);
        assert_eq!(engine.count(&int_row([9])), 0);
    }

    #[test]
    fn deltas_track_inserts_and_deletes_with_self_joins() {
        let mut db = db();
        // Triangles through a triple self-join.
        let cq = parse_cq("P(x, y, z) :- Graph(x, y), Graph(y, z), Graph(z, x)").unwrap();
        let mut engine = CountingCq::new(cq.clone(), cq.head_schema(), &db).unwrap();
        fill(&mut engine, &db);

        let mut live = db.get("Graph").unwrap().to_row_set();
        let steps: Vec<(Row, i64)> = vec![
            (int_row([4, 2]), 1),
            (int_row([1, 4]), 1),
            (int_row([2, 3]), -1), // breaks the 1→2→3→1 triangle
            (int_row([3, 3]), 1),  // self-loop ⇒ degenerate triangle (3,3,3)
        ];
        for op in steps {
            let delta = normalize_delta(&live, std::slice::from_ref(&op));
            engine.apply_relation_delta("Graph", &delta);
            for (row, sign) in &delta {
                if *sign > 0 {
                    live.insert(row.clone());
                } else {
                    live.remove(row);
                }
            }
            let mut batch = DeltaBatch::new();
            for (row, sign) in &delta {
                batch.push("Graph", row.clone(), *sign);
            }
            db.apply_batch(&batch).unwrap();
            let expected = evaluate_cq(&cq, &db, CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.to_relation().sorted_rows(),
                expected.sorted_rows(),
                "counting state diverged after {op:?}"
            );
        }
        assert!(engine.count(&int_row([3, 3, 3])) > 0);
    }

    #[test]
    fn from_store_seeds_to_direct_evaluation() {
        let store = dcq_storage::SharedDatabase::new(db());
        let cq = parse_cq("P(x, z) :- Graph(x, y), Graph(y, z)").unwrap();
        let engine = CountingCq::from_store(cq.clone(), cq.head_schema(), &store).unwrap();
        let expected = evaluate_cq(&cq, store.database(), CqStrategy::Vanilla).unwrap();
        assert_eq!(
            engine.to_relation().sorted_rows(),
            expected.sorted_rows(),
            "store-seeded counting state differs from direct evaluation"
        );
    }

    #[test]
    fn untouched_relation_delta_is_a_noop() {
        let db = db();
        let cq = parse_cq("P(x, y) :- Graph(x, y)").unwrap();
        let mut engine = CountingCq::new(cq.clone(), cq.head_schema(), &db).unwrap();
        fill(&mut engine, &db);
        let before = engine.to_relation().sorted_rows();
        let change = engine.apply_relation_delta("Edge", &[(int_row([7, 7]), 1)]);
        assert!(change.is_empty());
        assert_eq!(engine.to_relation().sorted_rows(), before);
        assert!(!engine.touches("Edge"));
        assert!(engine.touches("Graph"));
        assert_eq!(engine.query().name, "P");
    }
}
