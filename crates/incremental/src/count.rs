//! Counting-based maintenance of a single conjunctive query.
//!
//! [`CountingCq`] maintains, for one CQ over a shared store, the **support
//! count** of every output tuple: the number of valuations of the body variables
//! that produce it.  Under set semantics a tuple belongs to `Q(D)` iff its support
//! count is positive, so a DCQ result can be derived from two counting engines
//! (`cnt₁(t) > 0 ∧ cnt₂(t) = 0`); this is the classic counting approach to
//! incremental view maintenance, and the fallback strategy for DCQs the dichotomy
//! (Theorem 2.4) declares hard.
//!
//! Updates arrive as **normalized signed deltas** per stored relation (an
//! [`AppliedBatch`]).  The count map is maintained with ℤ-annotated *delta joins*:
//! when relation `R` changes by `ΔR`, the change of the query's valuation count is
//! the sum over the atom occurrences of `R` of
//!
//! ```text
//!   ⨝ (atoms before the occurrence, already updated)
//!     × ΔR bound at the occurrence
//!     × (atoms after the occurrence, not yet updated)
//! ```
//!
//! — the standard telescoping delta rule, correct in the presence of self-joins.
//!
//! ## Shared indexes, compensated probes
//!
//! Unlike the first generation of this engine, the view owns **no rows and no
//! indexes**: every non-delta atom is probed through the store's refcounted
//! [`index registry`](dcq_storage::registry) on exactly the join key the
//! precomputed delta plan needs ([`CqDeltaPlans`], α-canonical and shared across
//! views of the same shape).  The registry always reflects the **new** state —
//! the store applies a batch (and maintains every index once) before any view
//! sees it — while the telescoping rule needs some atoms in their **old** state.
//! Those probes are *compensated* from the batch delta itself: a row deleted by
//! the batch is added back, and a row inserted by the batch is either skipped
//! (membership mask — used when the pending insert set is huge, i.e. the seed
//! fold) or cancelled by an equal-and-opposite **negative twin** (used for real
//! batch traffic, keeping the per-matched-block hot loop free of any hashing;
//! exact because the telescoped fold is multilinear in its ℤ multiplicities).
//! Since deltas are normalized, the compensation is exact, and its cost scales
//! with the delta size, never with the database.  Per-view state shrinks to the
//! count map.
//!
//! ## Id space end to end
//!
//! The whole fold runs in **dictionary-id space**: the store interns each
//! normalized delta once ([`AppliedBatch::interned`]), indexes bucket contiguous
//! `u32` blocks, the accumulator is one flat `Vec<u32>` at an evolving stride,
//! and support counts are keyed by packed [`IdKey`]s.  Probing, masking,
//! restoring and head projection never hash a [`Value`](dcq_storage::Value) and
//! never allocate a [`Row`] — even the head delta a fold hands back is a signed
//! list of [`IdKey`]s ([`HeadDelta`], shared by `Arc` so pooled sides serve
//! every reader the same allocation).  Rows materialize only when a caller
//! resolves a result through the dictionary, proportional to what it actually
//! reads, not the probe volume.

use crate::tele;
use crate::{IncrementalError, Result};
use dcq_core::delta_plan::{build_delta_plans, AtomBinding, CqDeltaPlans};
use dcq_core::query::ConjunctiveQuery;
use dcq_storage::hash::{shard_of_ids, FastHashMap, FastHashSet};
use dcq_storage::{
    AppliedBatch, Epoch, IdDelta, IdKey, IndexId, Relation, Row, Schema, SharedDatabase, WorkerPool,
};
use std::sync::Arc;

/// The change a fold induced on a side's support counts: packed head ids with
/// the signed count change, one entry per changed head tuple.  Stays in id
/// space — callers resolve rows through the store's dictionary only for the
/// tuples they actually materialize.
pub type HeadDelta = Vec<(IdKey, i64)>;

/// The batch delta of one stored relation whose telescoped application is still
/// pending: probes against it must see the **old** state, so rows the batch
/// inserted are masked and rows it deleted are restored.  Everything borrows
/// straight out of the batch's interned [`IdDelta`] — no ids are copied.
#[derive(Default)]
struct PendingDelta<'a> {
    /// Stored row blocks the batch inserted (present in the index, absent in
    /// the old state).
    plus: Vec<&'a [u32]>,
    /// Stored row blocks the batch deleted (gone from the index, present in
    /// the old state).
    minus: Vec<&'a [u32]>,
}

impl<'a> PendingDelta<'a> {
    fn of(delta: &'a IdDelta) -> Self {
        let mut pending = PendingDelta::default();
        for (ids, sign) in delta.iter() {
            if sign > 0 {
                pending.plus.push(ids);
            } else {
                pending.minus.push(ids);
            }
        }
        pending
    }
}

/// Above this many pending inserts, old-state probes filter through a
/// membership set instead of emitting negative twins (see the fold): masking
/// costs one hash per matched block but collapses seed-sized "deltas" (the
/// whole relation) instantly, negation is free per block but doubles the
/// accumulated rows that touch the delta.  Real batch traffic sits far below
/// the limit, seed folds far above.
const NEGATION_LIMIT: usize = 512;

/// Group compensation rows by their probe-key projection under `spec_key`
/// (rows failing the atom's equality filter are dropped): one `O(|Δ|)` pass
/// that makes per-probe compensation `O(matches)`.
fn key_grouped<'a>(
    rows: &[&'a [u32]],
    probed: &AtomBinding,
    spec_key: &[usize],
) -> FastHashMap<IdKey, Vec<&'a [u32]>> {
    let mut by_key: FastHashMap<IdKey, Vec<&'a [u32]>> = FastHashMap::default();
    let mut key_buf: Vec<u32> = Vec::new();
    for &stored in rows {
        if admits_ids(probed, stored) {
            key_buf.clear();
            key_buf.extend(spec_key.iter().map(|&p| stored[p]));
            by_key
                .entry(IdKey::from_slice(&key_buf))
                .or_default()
                .push(stored);
        }
    }
    by_key
}

/// Incremental support counts for one conjunctive query over a shared store.
pub struct CountingCq {
    cq: ConjunctiveQuery,
    output: Schema,
    /// The (possibly cache-shared) delta plans of this CQ's shape.
    plans: Arc<CqDeltaPlans>,
    /// Acquired registry entries, parallel to `plans.index_specs`.  Released
    /// through [`CountingCq::release_indexes`] when the view is torn down.
    index_ids: Vec<IndexId>,
    /// Support counts keyed by the packed head ids (resolved to rows only at
    /// the output boundary).
    counts: FastHashMap<IdKey, i64>,
    /// The store epoch the counts reflect.  Batch application is idempotent per
    /// epoch, which is what lets several views share one counting side: the
    /// first view folds the batch, the rest get the memoized head delta.
    epoch: Epoch,
    /// The head delta produced at `epoch` (served to sharing views; `Arc` so
    /// every sharing reader gets the same allocation, not a copy).
    last_delta: Arc<HeadDelta>,
    /// Per-step deletion-key indexes built across the engine's lifetime.  These
    /// are the compensated-probe setup cost of a batch: they must be **zero**
    /// for insert-only traffic (the index is built only when the step's
    /// compensation restores deleted rows — the compensation pre-pass skips
    /// relations the batch deleted nothing from).
    deletion_index_builds: u64,
    /// Number of hash-disjoint partitions the telescoped fold splits each
    /// delta into (`1` = strictly sequential).  A pure scheduling knob: counts,
    /// head deltas and every telemetry counter are bit-identical at any value.
    fold_partitions: usize,
    /// Wall-clock nanoseconds each partition of the most recent owned fold
    /// spent, indexed by partition (skew diagnostic; empty before any fold).
    last_partition_ns: Vec<u64>,
    /// Cumulative work counters (no-ops without the `telemetry` feature); see
    /// [`CountingTelemetry`] for the semantics of each.
    index_probes: tele::Counter,
    compensated_masks: tele::Counter,
    compensated_restores: tele::Counter,
    folds_owned: tele::Counter,
    fold_hits_shared: tele::Counter,
}

/// Cumulative telemetry counters of one [`CountingCq`], read through
/// [`CountingCq::telemetry`].
///
/// Every field is **schedule-independent**: it depends only on the sequence of
/// batches folded, never on which sharing view's worker performed the fold, so
/// two engines fed the same batches report bit-identical values at any worker
/// count.  All values except `deletion_index_builds` are zero when the crate
/// is built without the `telemetry` feature.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountingTelemetry {
    /// Shared-index probes issued by telescoped fold steps (one per
    /// accumulated row per step).
    pub index_probes: u64,
    /// Probed rows masked out because the pending batch inserted them (they
    /// are absent in the old state the step must observe).
    pub compensated_masks: u64,
    /// Rows restored into a probe result because the pending batch deleted
    /// them (present in the old state, already gone from the shared index).
    pub compensated_restores: u64,
    /// Per-step deletion-key indexes built (the compensated-probe setup cost;
    /// zero for insert-only traffic).
    pub deletion_index_builds: u64,
    /// Telescoped folds this engine performed itself (including the seed
    /// fold at construction).
    pub folds_owned: u64,
    /// Batch applications served from the per-epoch memo because a sharing
    /// view already folded the batch into this side.
    pub fold_hits_shared: u64,
}

impl CountingTelemetry {
    /// Field-wise sum (for aggregating across an engine's live sides).
    pub fn merge(&mut self, other: &CountingTelemetry) {
        self.index_probes += other.index_probes;
        self.compensated_masks += other.compensated_masks;
        self.compensated_restores += other.compensated_restores;
        self.deletion_index_builds += other.deletion_index_builds;
        self.folds_owned += other.folds_owned;
        self.fold_hits_shared += other.fold_hits_shared;
    }
}

impl CountingCq {
    /// Build the counting state for `cq` over the store's current contents,
    /// producing output tuples in the attribute order of `output` (which must be
    /// a permutation of the head variables).
    ///
    /// Delta plans are built fresh; engines that serve many views should prefer
    /// [`CountingCq::from_store_with_plans`] with plans resolved through a
    /// [`PlanCache`](dcq_core::cache::PlanCache), so α-equivalent sides share one
    /// plan object (and therefore the same registry entries).
    pub fn from_store(
        cq: ConjunctiveQuery,
        output: Schema,
        store: &mut SharedDatabase,
    ) -> Result<Self> {
        let plans = Arc::new(build_delta_plans(&cq, &output));
        CountingCq::from_store_with_plans(cq, output, store, plans)
    }

    /// Build the counting state with precomputed (typically cache-shared) delta
    /// plans, acquiring every shared index the plans probe and seeding the counts
    /// from the store's current contents.
    ///
    /// The seed reads each referenced relation's **flat id mirror** as one
    /// insert-only [`IdDelta`] and folds it in as the first telescoped batch —
    /// the view never takes a private copy of the base data and never clones a
    /// [`Row`] while seeding.
    pub fn from_store_with_plans(
        cq: ConjunctiveQuery,
        output: Schema,
        store: &mut SharedDatabase,
        plans: Arc<CqDeltaPlans>,
    ) -> Result<Self> {
        cq.validate(store.database())
            .map_err(IncrementalError::Core)?;
        debug_assert!(
            cq.head_schema().same_attr_set(&output),
            "output schema must be a permutation of the head"
        );
        debug_assert_eq!(
            *plans,
            build_delta_plans(&cq, &output),
            "plans must match this query's shape"
        );
        let index_ids = plans
            .index_specs
            .iter()
            .map(|spec| store.acquire_index(spec.to_index_key()))
            .collect::<std::result::Result<Vec<_>, _>>()
            .map_err(IncrementalError::Storage)?;
        let mut engine = CountingCq {
            cq,
            output,
            plans,
            index_ids,
            counts: FastHashMap::default(),
            epoch: store.epoch(),
            last_delta: Arc::new(HeadDelta::new()),
            deletion_index_builds: 0,
            fold_partitions: 1,
            last_partition_ns: Vec::new(),
            index_probes: tele::Counter::default(),
            compensated_masks: tele::Counter::default(),
            compensated_restores: tele::Counter::default(),
            folds_owned: tele::Counter::default(),
            fold_hits_shared: tele::Counter::default(),
        };

        // Seed: fold the full current contents as one batch of inserts.  The
        // same compensation machinery makes not-yet-folded relations read as
        // empty (their "delta" is their entire contents), so the telescoping is
        // exact from an empty registration state.
        let seed: Vec<(String, IdDelta)> = engine
            .plans
            .occurrences
            .iter()
            .map(|(name, _)| {
                let flat = store.flat(name).expect("validated above");
                (name.clone(), flat.to_insert_delta())
            })
            .collect();
        let borrowed: Vec<(&str, &IdDelta)> = seed
            .iter()
            .map(|(name, delta)| (name.as_str(), delta))
            .collect();
        engine.fold(&borrowed, store);
        Ok(engine)
    }

    /// Release every acquired registry entry (the view is being torn down).
    ///
    /// Must be called with the same store the engine was built over; afterwards
    /// the engine must not be offered further batches.
    pub fn release_indexes(&mut self, store: &mut SharedDatabase) {
        for id in self.index_ids.drain(..) {
            store.release_index(id);
        }
    }

    /// The maintained query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.cq
    }

    /// The delta plans driving this engine (cache-shared across α-equivalent
    /// views).
    pub fn plans(&self) -> &Arc<CqDeltaPlans> {
        &self.plans
    }

    /// `true` iff the query reads `relation`.
    pub fn touches(&self, relation: &str) -> bool {
        self.plans.references(relation)
    }

    /// Support count of one output tuple (`0` when absent).
    ///
    /// The row is translated through `store`'s dictionary; a row containing a
    /// never-interned value cannot be an output and counts `0`.
    pub fn count(&self, row: &Row, store: &SharedDatabase) -> i64 {
        let mut ids = Vec::with_capacity(row.arity());
        if !store.lookup_ids(row, &mut ids) {
            return 0;
        }
        self.count_ids(&ids)
    }

    /// Support count of one output tuple given as dictionary ids (`0` when
    /// absent) — the allocation-free form [`CountingCq::count`] wraps.
    pub fn count_ids(&self, ids: &[u32]) -> i64 {
        self.counts.get(ids).copied().unwrap_or(0)
    }

    /// The full support-count map in id space (packed head ids → count; every
    /// count is positive).
    pub fn counts_ids(&self) -> &FastHashMap<IdKey, i64> {
        &self.counts
    }

    /// The current set-semantics output `Q(D)` (tuples with positive support),
    /// resolved to row space through `store`'s dictionary.
    pub fn to_relation(&self, store: &SharedDatabase) -> Relation {
        let mut rel = Relation::new(format!("count({})", self.cq.name), self.output.clone());
        rel.reserve(self.counts.len());
        for key in self.counts.keys() {
            rel.push_unchecked(store.resolve_row(key.as_slice()));
        }
        rel.assume_distinct();
        rel
    }

    /// The store epoch the counts reflect.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Per-step deletion-key indexes built since this engine was seeded — the
    /// compensated-probe setup work.  Stays at `0` across insert-only batches
    /// (including the seed fold): the index is only built when a step's probed
    /// relation actually had rows deleted in the pending batch.
    pub fn deletion_index_builds(&self) -> u64 {
        self.deletion_index_builds
    }

    /// Set how many hash-disjoint partitions future folds split each delta
    /// into (clamped to at least 1).  Purely a scheduling knob — see
    /// [`CountingCq::fold_partitions`].
    pub fn set_fold_partitions(&mut self, partitions: usize) {
        self.fold_partitions = partitions.max(1);
    }

    /// The configured fold partition count.  Results, counts and telemetry
    /// counters are bit-identical at any value; only the wall-clock schedule
    /// changes.
    pub fn fold_partitions(&self) -> usize {
        self.fold_partitions
    }

    /// Wall-clock nanoseconds each partition of the most recent owned fold
    /// spent (empty before the first fold).  A skew diagnostic, **not** part
    /// of the deterministic surface.
    pub fn last_partition_ns(&self) -> &[u64] {
        &self.last_partition_ns
    }

    /// Cumulative work counters of this engine (all zero except
    /// `deletion_index_builds` without the `telemetry` feature).
    pub fn telemetry(&self) -> CountingTelemetry {
        CountingTelemetry {
            index_probes: self.index_probes.get(),
            compensated_masks: self.compensated_masks.get(),
            compensated_restores: self.compensated_restores.get(),
            deletion_index_builds: self.deletion_index_builds,
            folds_owned: self.folds_owned.get(),
            fold_hits_shared: self.fold_hits_shared.get(),
        }
    }

    /// Fold one applied batch into the support counts and return the induced
    /// change of the count map (already folded into the counts) as a shared,
    /// id-space [`HeadDelta`].
    ///
    /// `applied` must be the store's own application record — the store (and
    /// with it every shared index) already reflects the batch — offered in epoch
    /// order; `store` must be the store the engine was built over.  The fold
    /// consumes the batch's **interned** deltas; relations the query does not
    /// read are ignored.
    ///
    /// Application is **idempotent per epoch**: a batch the engine already
    /// reflects (because another view sharing this counting side folded it
    /// first) returns the memoized head delta without touching the counts —
    /// and since the delta is behind an `Arc`, serving it to any number of
    /// sharing views copies nothing.
    pub fn apply_batch(
        &mut self,
        applied: &AppliedBatch,
        store: &SharedDatabase,
    ) -> Arc<HeadDelta> {
        if applied.epoch == self.epoch {
            // A sharing view's worker already folded this batch; the memoized
            // head delta is served without re-touching the counts.
            self.fold_hits_shared.inc();
            return Arc::clone(&self.last_delta);
        }
        debug_assert!(
            applied.epoch > self.epoch,
            "batches must be offered in epoch order"
        );
        self.epoch = applied.epoch;
        let relevant: Vec<(&str, &IdDelta)> = applied
            .interned
            .iter()
            .filter(|(name, delta)| !delta.is_empty() && self.plans.references(name))
            .map(|(name, delta)| (name.as_str(), delta))
            .collect();
        self.last_delta = Arc::new(if relevant.is_empty() {
            HeadDelta::new()
        } else {
            self.fold(&relevant, store)
        });
        Arc::clone(&self.last_delta)
    }

    /// The telescoped delta fold: process the touched relations in the given
    /// order, each occurrence joining its bound delta against the shared indexes
    /// — already-folded atoms in the new state (direct probes), not-yet-folded
    /// ones in the old state (compensated probes).
    ///
    /// Runs entirely in id space: the accumulator is one flat `Vec<u32>` at an
    /// evolving stride with a parallel multiplicity column, probe keys live in a
    /// reused buffer, and matches extend the flat buffer in place.  Nothing in
    /// the fold hashes a value or allocates a row — the head delta it returns
    /// is itself packed ids.
    ///
    /// ## Partitioned execution
    ///
    /// The fold is **multilinear in the delta rows**: every accumulated row
    /// traces back to exactly one seed row of exactly one occurrence, and the
    /// per-row step work only reads shared state (indexes, compensation
    /// caches).  So the delta rows are split into [`fold_partitions`]
    /// hash-disjoint partitions ([`shard_of_ids`] over the full row — the same
    /// routing the sharded commit uses) and each partition telescopes its rows
    /// independently on a worker, into a partition-local head map.  The
    /// compensation caches are built in a sequential pre-pass (they depend
    /// only on the batch, not on the partitioning), the partition head maps
    /// merge by ℤ-addition (commutative), and the merged head delta is sorted
    /// by packed key before it touches the count map — so counts, head deltas
    /// and every telemetry counter are **bit-identical at any partition
    /// count**, K is purely a wall-clock knob.
    ///
    /// [`fold_partitions`]: CountingCq::fold_partitions
    fn fold(&mut self, deltas: &[(&str, &IdDelta)], store: &SharedDatabase) -> HeadDelta {
        self.folds_owned.inc();
        let nparts = self.fold_partitions.max(1);
        let plans = Arc::clone(&self.plans);
        let pending: FastHashMap<&str, PendingDelta<'_>> = deltas
            .iter()
            .map(|(name, delta)| (*name, PendingDelta::of(delta)))
            .collect();
        // Fold position of each touched relation: relation `j` is probed in
        // its **old** state exactly while a relation at a position `> j` is
        // being telescoped (plus the same-relation `step.atom > d` case).
        let order: FastHashMap<&str, usize> = deltas
            .iter()
            .enumerate()
            .map(|(j, (name, _))| (*name, j))
            .collect();
        // Compensation structures, memoized per index spec (or relation): they
        // depend only on the probed relation's (fold-constant) pending delta
        // and the spec's key columns, so one build serves every step and
        // occurrence probing through that spec.  Built eagerly in one
        // sequential pre-pass over the (relation, occurrence, step) space —
        // `O(plan size + |Δ|)`, no probes — so the parallel section below
        // reads them immutably and `deletion_index_builds` never depends on
        // the partition schedule.
        let mut mask_cache: FastHashMap<&str, FastHashSet<&[u32]>> = FastHashMap::default();
        let mut plus_cache: FastHashMap<usize, FastHashMap<IdKey, Vec<&[u32]>>> =
            FastHashMap::default();
        let mut minus_cache: FastHashMap<usize, FastHashMap<IdKey, Vec<&[u32]>>> =
            FastHashMap::default();
        for (j, (name, _)) in deltas.iter().enumerate() {
            for &d in plans.occurrences_of(name) {
                for step in &plans.occurrence_plans[d].steps {
                    let probed = &plans.atoms[step.atom];
                    let spec = &plans.index_specs[step.index];
                    let Some(c) = pending_comp(&pending, &order, j, name, d, step.atom, probed)
                    else {
                        continue;
                    };
                    // The probed rows the batch inserted are absent in the old
                    // state the step must observe.  Two exact ways to subtract
                    // them, picked by pending-insert volume:
                    //
                    // * **negation** (small Δ+, i.e. real batch traffic): scan
                    //   the new state unfiltered and emit a *negative twin* for
                    //   every pending insert matching the probe key.  The fold
                    //   is multilinear in its ℤ multiplicities, so the twins
                    //   cancel the inserted rows' contributions exactly — and
                    //   the per-matched-block set lookup disappears from the
                    //   hot loop, which is where a high-fan-out delta join
                    //   spends its time.
                    // * **masking** (huge Δ+, i.e. the seed fold, where a
                    //   not-yet-folded relation's "delta" is its entire
                    //   contents): filter matched blocks through a membership
                    //   set.  One hash per block, but the accumulator collapses
                    //   to the (empty) old state immediately instead of
                    //   carrying twice the full join forward.
                    if c.plus.len() > NEGATION_LIMIT {
                        mask_cache
                            .entry(probed.relation.as_str())
                            .or_insert_with(|| c.plus.iter().copied().collect());
                    } else if !c.plus.is_empty() {
                        plus_cache
                            .entry(step.index)
                            .or_insert_with(|| key_grouped(&c.plus, probed, &spec.key_positions));
                    }
                    // Pre-index the compensation's deleted rows by this step's
                    // probe key (one `O(|Δ−|)` pass), so restoring them costs
                    // `O(matches)` per accumulated row instead of `O(|Δ−|)` —
                    // without this, large deltas degrade quadratically.  A
                    // batch that deletes nothing from the probed relation pays
                    // no setup at all, so insert-only traffic (the common
                    // upsert stream) skips this allocation entirely.
                    if !c.minus.is_empty() {
                        minus_cache.entry(step.index).or_insert_with(|| {
                            self.deletion_index_builds += 1;
                            key_grouped(&c.minus, probed, &spec.key_positions)
                        });
                    }
                }
            }
        }

        // Parallel section: each partition telescopes the delta rows that hash
        // to it, reading the shared store and caches immutably and writing a
        // partition-local head map plus local work counters.
        let index_ids: &[IndexId] = &self.index_ids;
        let run_partition = |part: usize| -> PartitionFold {
            let started = std::time::Instant::now();
            let mut out = PartitionFold::default();
            let mut key_buf: Vec<u32> = Vec::new();
            let mut acc_ids: Vec<u32> = Vec::new();
            let mut acc_mults: Vec<i64> = Vec::new();
            let mut next_ids: Vec<u32> = Vec::new();
            let mut next_mults: Vec<i64> = Vec::new();
            for (j, (name, delta)) in deltas.iter().enumerate() {
                for &d in plans.occurrences_of(name) {
                    let binding = &plans.atoms[d];
                    // Seed the accumulator with this partition's share of the
                    // delta bound at occurrence `d` (equality filter +
                    // projection; injective, so signs carry over).
                    let mut acc_stride = binding.keep_positions.len();
                    acc_ids.clear();
                    acc_mults.clear();
                    for (ids, sign) in delta.iter() {
                        if admits_ids(binding, ids) && shard_of_ids(ids, nparts) == part {
                            acc_ids.extend(binding.keep_positions.iter().map(|&p| ids[p]));
                            acc_mults.push(sign);
                        }
                    }
                    let plan = &plans.occurrence_plans[d];
                    for step in &plan.steps {
                        if acc_mults.is_empty() {
                            break;
                        }
                        let probed = &plans.atoms[step.atom];
                        let index = index_ids[step.index];
                        // Blocks come back at the index's stride (nullary rows
                        // are sentinel-padded); a dead index probes empty,
                        // stride moot.  The entry is resolved once per step so
                        // the probe loop skips the registry's slot/generation
                        // indirection.
                        let entry = store.index(index);
                        let (probed_arity, stride) = match entry {
                            Some(entry) => (entry.arity(), entry.stride()),
                            None => (0, 1),
                        };
                        // Which state must this atom be probed in?  Resolved
                        // from fold positions alone (see `pending_comp`), so
                        // every partition answers identically.
                        let comp = pending_comp(&pending, &order, j, name, d, step.atom, probed);
                        let large_plus = comp.is_some_and(|c| c.plus.len() > NEGATION_LIMIT);
                        let mask: Option<&FastHashSet<&[u32]>> = if large_plus {
                            mask_cache.get(probed.relation.as_str())
                        } else {
                            None
                        };
                        let plus_by_key: Option<&FastHashMap<IdKey, Vec<&[u32]>>> =
                            if comp.is_some() && !large_plus {
                                plus_cache.get(&step.index)
                            } else {
                                None
                            };
                        let minus_by_key: Option<&FastHashMap<IdKey, Vec<&[u32]>>> =
                            if comp.is_some() {
                                minus_cache.get(&step.index)
                            } else {
                                None
                            };
                        next_ids.clear();
                        next_mults.clear();
                        for i in 0..acc_mults.len() {
                            let row = &acc_ids[i * acc_stride..(i + 1) * acc_stride];
                            let mult = acc_mults[i];
                            key_buf.clear();
                            key_buf.extend(step.acc_key_positions.iter().map(|&p| row[p]));
                            out.index_probes += 1;
                            let blocks = entry.map_or(&[][..], |e| e.probe_ids(&key_buf));
                            if let Some(plus) = mask {
                                for block in blocks.chunks_exact(stride) {
                                    let stored = &block[..probed_arity];
                                    if plus.contains(stored) {
                                        // inserted this batch → absent in the old state
                                        out.compensated_masks += 1;
                                        continue;
                                    }
                                    next_ids.extend_from_slice(row);
                                    next_ids
                                        .extend(step.append_positions.iter().map(|&p| stored[p]));
                                    next_mults.push(mult);
                                }
                            } else {
                                for block in blocks.chunks_exact(stride) {
                                    let stored = &block[..probed_arity];
                                    next_ids.extend_from_slice(row);
                                    next_ids
                                        .extend(step.append_positions.iter().map(|&p| stored[p]));
                                    next_mults.push(mult);
                                }
                            }
                            if let Some(by_key) = &plus_by_key {
                                // Inserted this batch → absent in the old state
                                // but scanned unfiltered above; the negative
                                // twin cancels the contribution exactly.
                                for &stored in by_key
                                    .get(key_buf.as_slice())
                                    .map(Vec::as_slice)
                                    .unwrap_or(&[])
                                {
                                    out.compensated_masks += 1;
                                    next_ids.extend_from_slice(row);
                                    next_ids
                                        .extend(step.append_positions.iter().map(|&p| stored[p]));
                                    next_mults.push(-mult);
                                }
                            }
                            if let Some(by_key) = &minus_by_key {
                                // Deleted this batch → present in the old state
                                // but already gone from the shared index;
                                // restore them.
                                for &stored in by_key
                                    .get(key_buf.as_slice())
                                    .map(Vec::as_slice)
                                    .unwrap_or(&[])
                                {
                                    out.compensated_restores += 1;
                                    next_ids.extend_from_slice(row);
                                    next_ids
                                        .extend(step.append_positions.iter().map(|&p| stored[p]));
                                    next_mults.push(mult);
                                }
                            }
                        }
                        std::mem::swap(&mut acc_ids, &mut next_ids);
                        std::mem::swap(&mut acc_mults, &mut next_mults);
                        acc_stride += step.append_positions.len();
                    }
                    for i in 0..acc_mults.len() {
                        let row = &acc_ids[i * acc_stride..(i + 1) * acc_stride];
                        key_buf.clear();
                        key_buf.extend(plan.head_positions.iter().map(|&p| row[p]));
                        *out.head.entry(IdKey::from_slice(&key_buf)).or_insert(0) += acc_mults[i];
                    }
                }
                // `name` is now fully telescoped; later relations in the fold
                // keep seeing it in the new state.
            }
            out.elapsed_ns = started.elapsed().as_nanos() as u64;
            out
        };
        let outcomes =
            WorkerPool::new(nparts).run((0..nparts).collect(), |_, part| run_partition(part));

        // Merge in partition order: head multiplicities add (ℤ, commutative),
        // counters add, timings record by partition slot.
        self.last_partition_ns = outcomes.iter().map(|o| o.elapsed_ns).collect();
        let mut head_ids: FastHashMap<IdKey, i64> = FastHashMap::default();
        for outcome in outcomes {
            self.index_probes.add(outcome.index_probes);
            self.compensated_masks.add(outcome.compensated_masks);
            self.compensated_restores.add(outcome.compensated_restores);
            for (key, mult) in outcome.head {
                *head_ids.entry(key).or_insert(0) += mult;
            }
        }
        // Canonicalize: net-zero heads drop, the rest sort by packed key, and
        // the count map is updated in that sorted order — so the head delta
        // *and* the count map's insertion history are independent of both the
        // partition count and the per-partition hash-map iteration order.
        let mut head_delta: HeadDelta = head_ids
            .into_iter()
            .filter(|&(_, mult)| mult != 0)
            .collect();
        head_delta.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (key, mult) in &head_delta {
            let updated = {
                let count = self.counts.entry(key.clone()).or_insert(0);
                *count += *mult;
                *count
            };
            debug_assert!(
                updated >= 0,
                "support count went negative for {:?}",
                key.as_slice()
            );
            if updated == 0 {
                self.counts.remove(key.as_slice());
            }
        }
        head_delta
    }
}

/// One partition's share of a telescoped fold: its local head-multiplicity
/// map, its work counters (merged additively — partition sums equal the
/// sequential totals exactly), and its wall-clock cost.
#[derive(Default)]
struct PartitionFold {
    head: FastHashMap<IdKey, i64>,
    index_probes: u64,
    compensated_masks: u64,
    compensated_restores: u64,
    elapsed_ns: u64,
}

/// The pending (old-state) delta the step probing `probed` must compensate
/// with, if any — `None` means the shared index already shows the state the
/// telescoping rule needs.  Same relation as the one being telescoped at
/// occurrence `d`: occurrences before `d` are already folded (new state),
/// after `d` not yet (old).  Other relations: old exactly while their own
/// delta sits **later** in the fold order.  Resolved purely from positions,
/// so the answer never depends on which partition asks.
fn pending_comp<'p, 'a>(
    pending: &'p FastHashMap<&str, PendingDelta<'a>>,
    order: &FastHashMap<&str, usize>,
    j: usize,
    name: &str,
    d: usize,
    atom: usize,
    probed: &AtomBinding,
) -> Option<&'p PendingDelta<'a>> {
    if probed.relation == name {
        if atom > d {
            pending.get(name)
        } else {
            None
        }
    } else {
        match order.get(probed.relation.as_str()) {
            Some(&pos) if pos > j => pending.get(probed.relation.as_str()),
            _ => None,
        }
    }
}

/// `true` iff the id block satisfies the atom's repeated-variable equality
/// filter (interning is injective, so id equality is value equality).
fn admits_ids(binding: &AtomBinding, ids: &[u32]) -> bool {
    binding.equalities.iter().all(|&(a, b)| ids[a] == ids[b])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_core::baseline::{evaluate_cq, CqStrategy};
    use dcq_core::parse::parse_cq;
    use dcq_storage::row::int_row;
    use dcq_storage::{Database, DeltaBatch};

    fn store() -> SharedDatabase {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![3, 1], vec![2, 4], vec![4, 1]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Edge",
            &["src", "dst"],
            vec![vec![1, 3], vec![2, 4]],
        ))
        .unwrap();
        SharedDatabase::new(db)
    }

    #[test]
    fn store_seeding_matches_direct_evaluation() {
        for src in [
            "P(x, y, z) :- Graph(x, y), Graph(y, z)",
            "P(x, y, z) :- Graph(x, y), Graph(y, z), Graph(z, x)",
            "P(x, z) :- Graph(x, y), Graph(y, z)",
            "P(x) :- Graph(x, x)",
            "P(x, y, w) :- Graph(x, y), Edge(w, x)",
        ] {
            let mut store = store();
            let cq = parse_cq(src).unwrap();
            let engine = CountingCq::from_store(cq.clone(), cq.head_schema(), &mut store).unwrap();
            let expected = evaluate_cq(&cq, store.database(), CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.to_relation(&store).sorted_rows(),
                expected.sorted_rows(),
                "counting seed differs on {src}"
            );
        }
    }

    #[test]
    fn counts_are_valuation_counts_and_state_is_rowless() {
        let mut store = store();
        // π_x of Graph(x, y): x=2 has two out-edges.
        let cq = parse_cq("P(x) :- Graph(x, y)").unwrap();
        let engine = CountingCq::from_store(cq.clone(), cq.head_schema(), &mut store).unwrap();
        assert_eq!(engine.count(&int_row([2]), &store), 2);
        assert_eq!(engine.count(&int_row([1]), &store), 1);
        assert_eq!(engine.count(&int_row([9]), &store), 0, "never interned");
        // The id-space form agrees with the row-space shim.
        let mut ids = Vec::new();
        assert!(store.lookup_ids(&int_row([2]), &mut ids));
        assert_eq!(engine.count_ids(&ids), 2);
        assert_eq!(engine.counts_ids().len(), 4);
        // Single-atom plans probe nothing, so no registry entry exists: the
        // per-view state is the count map and nothing else.
        assert_eq!(store.index_count(), 0);
    }

    #[test]
    fn batches_track_inserts_and_deletes_with_self_joins() {
        let mut store = store();
        // Triangles through a triple self-join.
        let cq = parse_cq("P(x, y, z) :- Graph(x, y), Graph(y, z), Graph(z, x)").unwrap();
        let mut engine = CountingCq::from_store(cq.clone(), cq.head_schema(), &mut store).unwrap();
        assert!(
            store.index_count() > 0,
            "delta plans acquired shared indexes"
        );

        let steps: Vec<(Row, i64)> = vec![
            (int_row([4, 2]), 1),
            (int_row([1, 4]), 1),
            (int_row([2, 3]), -1), // breaks the 1→2→3→1 triangle
            (int_row([3, 3]), 1),  // self-loop ⇒ degenerate triangle (3,3,3)
        ];
        for (row, sign) in steps {
            let mut batch = DeltaBatch::new();
            batch.push("Graph", row.clone(), sign);
            let applied = store.apply_batch(&batch).unwrap();
            engine.apply_batch(&applied, &store);
            let expected = evaluate_cq(&cq, store.database(), CqStrategy::Vanilla).unwrap();
            assert_eq!(
                engine.to_relation(&store).sorted_rows(),
                expected.sorted_rows(),
                "counting state diverged after ({row}, {sign})"
            );
        }
        assert!(engine.count(&int_row([3, 3, 3]), &store) > 0);
    }

    #[test]
    fn multi_relation_batches_compensate_pending_probes() {
        let mut store = store();
        let cq = parse_cq("P(x, y, w) :- Graph(x, y), Edge(w, x)").unwrap();
        let mut engine = CountingCq::from_store(cq.clone(), cq.head_schema(), &mut store).unwrap();
        // One batch touching both relations: whichever is folded first must see
        // the other in its old state even though the store is already new.
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([3, 2]));
        batch.delete("Graph", int_row([1, 2]));
        batch.insert("Edge", int_row([9, 3]));
        batch.delete("Edge", int_row([1, 3]));
        let applied = store.apply_batch(&batch).unwrap();
        engine.apply_batch(&applied, &store);
        let expected = evaluate_cq(&cq, store.database(), CqStrategy::Vanilla).unwrap();
        assert_eq!(
            engine.to_relation(&store).sorted_rows(),
            expected.sorted_rows()
        );
    }

    #[test]
    fn untouched_relation_delta_is_a_noop() {
        let mut store = store();
        let cq = parse_cq("P(x, y) :- Graph(x, y)").unwrap();
        let mut engine = CountingCq::from_store(cq.clone(), cq.head_schema(), &mut store).unwrap();
        let before = engine.to_relation(&store).sorted_rows();
        let mut batch = DeltaBatch::new();
        batch.insert("Edge", int_row([7, 7]));
        let applied = store.apply_batch(&batch).unwrap();
        let change = engine.apply_batch(&applied, &store);
        assert!(change.is_empty());
        assert_eq!(engine.to_relation(&store).sorted_rows(), before);
        assert!(!engine.touches("Edge"));
        assert!(engine.touches("Graph"));
        assert_eq!(engine.query().name, "P");
    }

    #[test]
    fn insert_only_batches_build_no_deletion_indexes() {
        let mut store = store();
        // Self-join: every fold step probes a relation the batch touches, the
        // worst case for eager compensation setup.
        let cq = parse_cq("P(x, z) :- Graph(x, y), Graph(y, z)").unwrap();
        let mut engine = CountingCq::from_store(cq.clone(), cq.head_schema(), &mut store).unwrap();
        assert_eq!(
            engine.deletion_index_builds(),
            0,
            "the seed fold is insert-only and must build no deletion index"
        );

        let mut inserts = DeltaBatch::new();
        inserts.insert("Graph", int_row([5, 1]));
        inserts.insert("Graph", int_row([1, 5]));
        let applied = store.apply_batch(&inserts).unwrap();
        engine.apply_batch(&applied, &store);
        assert_eq!(
            engine.deletion_index_builds(),
            0,
            "insert-only batches must pay zero compensated-probe setup"
        );

        let mut deletes = DeltaBatch::new();
        deletes.delete("Graph", int_row([1, 2]));
        let applied = store.apply_batch(&deletes).unwrap();
        engine.apply_batch(&applied, &store);
        assert!(
            engine.deletion_index_builds() > 0,
            "deleting batches build the per-step deletion index lazily"
        );
        let expected = evaluate_cq(&cq, store.database(), CqStrategy::Vanilla).unwrap();
        assert_eq!(
            engine.to_relation(&store).sorted_rows(),
            expected.sorted_rows()
        );
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_counts_probes_masks_restores_and_folds() {
        let mut store = store();
        let cq = parse_cq("P(x, z) :- Graph(x, y), Graph(y, z)").unwrap();
        let mut engine = CountingCq::from_store(cq.clone(), cq.head_schema(), &mut store).unwrap();
        let seeded = engine.telemetry();
        assert_eq!(seeded.folds_owned, 1, "the seed is one owned fold");
        assert!(seeded.index_probes > 0, "the seed fold probes indexes");
        assert_eq!(seeded.fold_hits_shared, 0);
        assert_eq!(seeded.compensated_restores, 0, "seed fold is insert-only");

        // A mixed batch over a self-join exercises both compensation paths:
        // the inserted row must be masked out of probes of the not-yet-folded
        // occurrence, the deleted row must be restored into them.
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([3, 2]));
        batch.delete("Graph", int_row([2, 3]));
        let applied = store.apply_batch(&batch).unwrap();
        engine.apply_batch(&applied, &store);
        let t = engine.telemetry();
        assert_eq!(t.folds_owned, 2);
        assert!(t.index_probes > seeded.index_probes);
        assert!(t.compensated_masks > 0, "insert must be masked somewhere");
        assert!(t.compensated_restores > 0, "delete must be restored");
        assert_eq!(t.deletion_index_builds, engine.deletion_index_builds());

        // Re-offering the same epoch is a shared-side hit, not a fold.
        engine.apply_batch(&applied, &store);
        let t2 = engine.telemetry();
        assert_eq!(t2.fold_hits_shared, 1);
        assert_eq!(t2.folds_owned, 2);
        assert_eq!(t2.index_probes, t.index_probes);

        let mut merged = CountingTelemetry::default();
        merged.merge(&t2);
        merged.merge(&t2);
        assert_eq!(merged.index_probes, 2 * t2.index_probes);
        engine.release_indexes(&mut store);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn probe_path_allocates_no_rows() {
        use dcq_storage::row_allocations;
        let mut store = store();
        let cq = parse_cq("P(x, z) :- Graph(x, y), Graph(y, z)").unwrap();
        // Seeding folds the whole store through the probe path; the only rows
        // it may allocate are the head tuples of the (delta-sized) result.
        let before = row_allocations();
        let mut engine = CountingCq::from_store(cq.clone(), cq.head_schema(), &mut store).unwrap();
        let seeded = row_allocations() - before;
        let heads = engine.counts_ids().len() as u64;
        assert!(
            seeded <= heads,
            "seed fold allocated {seeded} rows for {heads} head tuples — \
             the probe path must allocate zero rows per probe"
        );
        assert!(engine.telemetry().index_probes > 0, "probes did happen");

        // A batch fold likewise allocates only delta-resolution rows (plus the
        // batch's own normalized row-space deltas built by the store), never
        // per probe: with 2 touched tuples the bound is a small constant.
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([2, 5]));
        batch.delete("Graph", int_row([4, 1]));
        let probes_before = engine.telemetry().index_probes;
        let before = row_allocations();
        let applied = store.apply_batch(&batch).unwrap();
        let delta = engine.apply_batch(&applied, &store);
        let allocated = row_allocations() - before;
        assert!(engine.telemetry().index_probes > probes_before);
        // Batch rows + normalized copies + head-delta resolutions + the
        // memoized clone: all delta-proportional.  8 tuples of traffic must
        // stay far below the dozens a per-probe materialization would cost.
        let bound = 4 * (batch.len() as u64 + delta.len() as u64) + 8;
        assert!(
            allocated <= bound,
            "fold allocated {allocated} rows (bound {bound}) — probe path is not row-free"
        );
        engine.release_indexes(&mut store);
    }

    #[test]
    fn partitioned_folds_are_bit_identical_to_sequential() {
        // Run the same batch script at every partition count and demand the
        // full deterministic surface match: counts, head deltas (order
        // included), epochs, and telemetry counters.
        let run = |partitions: usize| {
            let mut store = store();
            let cq = parse_cq("P(x, y, z) :- Graph(x, y), Graph(y, z), Graph(z, x)").unwrap();
            let mut engine =
                CountingCq::from_store(cq.clone(), cq.head_schema(), &mut store).unwrap();
            engine.set_fold_partitions(partitions);
            assert_eq!(engine.fold_partitions(), partitions.max(1));
            let mut deltas: Vec<HeadDelta> = Vec::new();
            let steps: Vec<(Row, i64)> = vec![
                (int_row([4, 2]), 1),
                (int_row([1, 4]), 1),
                (int_row([2, 3]), -1),
                (int_row([3, 3]), 1),
                (int_row([5, 5]), 1),
                (int_row([3, 3]), -1),
            ];
            for (row, sign) in steps {
                let mut batch = DeltaBatch::new();
                batch.push("Graph", row, sign);
                let applied = store.apply_batch(&batch).unwrap();
                deltas.push((*engine.apply_batch(&applied, &store)).clone());
            }
            let mut counts: Vec<(IdKey, i64)> = engine
                .counts_ids()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            counts.sort_unstable();
            if partitions > 1 {
                assert_eq!(engine.last_partition_ns().len(), partitions);
            }
            (deltas, counts, engine.epoch(), engine.telemetry())
        };
        let sequential = run(1);
        for partitions in [2, 3, 8] {
            assert_eq!(run(partitions), sequential, "diverged at K={partitions}");
        }
    }

    #[test]
    fn release_returns_registry_entries() {
        let mut store = store();
        let cq = parse_cq("P(x, z) :- Graph(x, y), Graph(y, z)").unwrap();
        let mut a = CountingCq::from_store(cq.clone(), cq.head_schema(), &mut store).unwrap();
        let plans = Arc::clone(a.plans());
        let mut b =
            CountingCq::from_store_with_plans(cq.clone(), cq.head_schema(), &mut store, plans)
                .unwrap();
        // Both engines share the same two physical indexes.
        assert_eq!(store.index_count(), 2);
        assert_eq!(store.index_stats().total_refs, 4);
        a.release_indexes(&mut store);
        assert_eq!(store.index_count(), 2);
        b.release_indexes(&mut store);
        assert_eq!(store.index_count(), 0, "last release frees the structures");
    }
}
