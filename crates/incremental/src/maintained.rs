//! The maintained-view handle: a registered DCQ kept current under delta batches.
//!
//! [`MaintainedDcq`] owns everything needed to keep `Q₁(D) − Q₂(D)` up to date while
//! the caller streams [`DeltaBatch`]es at it:
//!
//! * the **maintenance engine** chosen by [`DcqPlanner::plan_incremental`] —
//!   touched-side rerun for difference-linear DCQs, counting maintenance otherwise
//!   (the strategy can be forced with [`MaintainedDcq::register_with`]);
//! * the **live membership sets** of every referenced relation, so incoming raw
//!   deltas are normalized to their net set-semantics effect in `O(|batch|)`;
//! * the current **result set**, updated in place;
//! * an [`UpdateLog`] of the batches that actually touched the view, plus
//!   [`MaintenanceStats`] counters.
//!
//! The handle deliberately tracks **only the relations the DCQ references**: batches
//! touching other relations are skipped without work, and the caller remains the
//! owner of the full database.

use crate::count::CountingCq;
use crate::{IncrementalError, Result};
use dcq_core::baseline::{evaluate_cq, CqStrategy};
use dcq_core::planner::{DcqPlanner, IncrementalPlan, IncrementalStrategy};
use dcq_core::Dcq;
use dcq_storage::hash::{map_with_capacity, FastHashMap, FastHashSet};
use dcq_storage::{
    normalize_delta, Database, DeltaBatch, DeltaEffect, Relation, Row, Schema, StorageError,
    UpdateLog,
};
use std::fmt;

/// Running counters describing the work a maintained view has done.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Batches that touched at least one referenced relation.
    pub batches_applied: usize,
    /// Batches skipped because they touched no referenced relation.
    pub batches_skipped: usize,
    /// Net base tuples inserted across applied batches.
    pub tuples_inserted: usize,
    /// Net base tuples deleted across applied batches.
    pub tuples_deleted: usize,
    /// Result tuples that entered the view.
    pub result_added: usize,
    /// Result tuples that left the view.
    pub result_removed: usize,
    /// Side re-evaluations performed (touched-side rerun strategy only).
    pub side_recomputes: usize,
}

/// Outcome of applying one batch to a maintained view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// `true` iff the batch touched no referenced relation (nothing was done).
    pub skipped: bool,
    /// Net effect on the referenced base relations.
    pub effect: DeltaEffect,
    /// Result tuples that entered the view.
    pub result_added: usize,
    /// Result tuples that left the view.
    pub result_removed: usize,
}

/// The per-strategy maintenance machinery.
enum Engine {
    /// Support counts on both sides; result membership is `cnt₁ > 0 ∧ cnt₂ = 0`.
    Counting {
        q1: Box<CountingCq>,
        q2: Box<CountingCq>,
    },
    /// Materialized sides over a private snapshot of the referenced relations;
    /// a batch re-runs only the sides whose relations it touched.
    EasyRerun(Box<EasyRerunState>),
}

/// State of the touched-side rerun engine.
struct EasyRerunState {
    db: Database,
    q1_out: Relation,
    q2_out: Relation,
    q1_relations: FastHashSet<String>,
    q2_relations: FastHashSet<String>,
    cq_strategy: CqStrategy,
}

/// Batches a view's update log retains by default: enough to audit/debug recent
/// history without growing without bound on long-lived views (counters keep
/// accumulating past the limit; `replay` refuses once truncated).
pub const DEFAULT_LOG_LIMIT: usize = 1024;

/// A registered DCQ maintained incrementally under batched updates.
pub struct MaintainedDcq {
    dcq: Dcq,
    output: Schema,
    plan: IncrementalPlan,
    engine: Engine,
    /// Current membership of every referenced relation (normalization input).
    live: FastHashMap<String, FastHashSet<Row>>,
    /// Arity of every referenced relation (update validation).
    arity: FastHashMap<String, usize>,
    result: FastHashSet<Row>,
    log: UpdateLog,
    stats: MaintenanceStats,
}

impl MaintainedDcq {
    /// Register a DCQ over the current database state, letting the planner pick the
    /// maintenance strategy from the dichotomy.
    pub fn register(dcq: Dcq, db: &Database) -> Result<Self> {
        let strategy = DcqPlanner::smart().plan_incremental(&dcq).strategy;
        Self::register_with(dcq, db, strategy)
    }

    /// Register a DCQ with an explicit maintenance strategy.
    ///
    /// The view snapshots the referenced relations (deduplicated — maintenance is
    /// defined under set semantics); the caller keeps ownership of the database and
    /// must route subsequent updates through [`MaintainedDcq::apply`].
    pub fn register_with(dcq: Dcq, db: &Database, strategy: IncrementalStrategy) -> Result<Self> {
        dcq.validate(db).map_err(IncrementalError::Core)?;
        let output = dcq.head_schema();
        let mut plan = DcqPlanner::smart().plan_incremental(&dcq);
        plan.strategy = strategy;

        let mut referenced: Vec<String> = dcq
            .q1
            .atoms
            .iter()
            .chain(dcq.q2.atoms.iter())
            .map(|a| a.relation.clone())
            .collect();
        referenced.sort();
        referenced.dedup();

        let mut live: FastHashMap<String, FastHashSet<Row>> = map_with_capacity(referenced.len());
        let mut arity: FastHashMap<String, usize> = map_with_capacity(referenced.len());
        for name in &referenced {
            let rel = db.get(name).map_err(IncrementalError::Storage)?;
            live.insert(name.clone(), rel.to_row_set());
            arity.insert(name.clone(), rel.schema().arity());
        }

        let engine = match strategy {
            IncrementalStrategy::Counting => {
                let mut q1 = CountingCq::new(dcq.q1.clone(), output.clone(), db)?;
                let mut q2 = CountingCq::new(dcq.q2.clone(), output.clone(), db)?;
                // Initial fill: the starting contents are just the first delta.
                for name in &referenced {
                    let initial: Vec<(Row, i64)> =
                        live[name].iter().map(|r| (r.clone(), 1)).collect();
                    q1.apply_relation_delta(name, &initial);
                    q2.apply_relation_delta(name, &initial);
                }
                Engine::Counting {
                    q1: Box::new(q1),
                    q2: Box::new(q2),
                }
            }
            IncrementalStrategy::EasyRerun => {
                let mut snapshot = Database::new();
                for name in &referenced {
                    snapshot.add_or_replace(
                        db.get(name).map_err(IncrementalError::Storage)?.distinct(),
                    );
                }
                let cq_strategy = CqStrategy::Smart;
                let q1_out =
                    evaluate_cq(&dcq.q1, &snapshot, cq_strategy).map_err(IncrementalError::Core)?;
                let q2_out =
                    evaluate_cq(&dcq.q2, &snapshot, cq_strategy).map_err(IncrementalError::Core)?;
                Engine::EasyRerun(Box::new(EasyRerunState {
                    db: snapshot,
                    q1_out,
                    q2_out,
                    q1_relations: dcq.q1.atoms.iter().map(|a| a.relation.clone()).collect(),
                    q2_relations: dcq.q2.atoms.iter().map(|a| a.relation.clone()).collect(),
                    cq_strategy,
                }))
            }
        };

        let mut view = MaintainedDcq {
            dcq,
            output,
            plan,
            engine,
            live,
            arity,
            result: FastHashSet::default(),
            log: UpdateLog::with_limit(DEFAULT_LOG_LIMIT),
            stats: MaintenanceStats::default(),
        };
        view.result = view.compute_result_set()?;
        Ok(view)
    }

    /// Derive the full result set from the engine state (registration and
    /// full-rerun paths).
    fn compute_result_set(&mut self) -> Result<FastHashSet<Row>> {
        match &mut self.engine {
            Engine::Counting { q1, q2 } => Ok(q1
                .counts()
                .iter()
                .filter(|(row, _)| q2.count(row) == 0)
                .map(|(row, _)| row.clone())
                .collect()),
            Engine::EasyRerun(state) => {
                let diff = state
                    .q1_out
                    .minus(&state.q2_out)
                    .map_err(IncrementalError::Storage)?;
                Ok(diff.to_row_set())
            }
        }
    }

    /// Apply one delta batch, keeping the result current.
    ///
    /// Operations against relations the DCQ does not reference are ignored; a batch
    /// touching none of them is a fast no-op.  Within the batch, relations are
    /// processed in name order and each relation's operations are first normalized
    /// to their net set-semantics effect.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<BatchOutcome> {
        let relevant: Vec<String> = batch
            .relations()
            .filter(|r| self.live.contains_key(*r))
            .map(str::to_string)
            .collect();
        if relevant.is_empty() {
            self.stats.batches_skipped += 1;
            return Ok(BatchOutcome {
                skipped: true,
                ..BatchOutcome::default()
            });
        }

        // Validate the whole batch before mutating anything: a partial application
        // would silently desynchronize the view from the caller's database.
        for name in &relevant {
            let expected_arity = self.arity[name];
            for (row, _) in batch.ops(name) {
                if row.arity() != expected_arity {
                    return Err(IncrementalError::Storage(StorageError::ArityMismatch {
                        relation: name.clone(),
                        expected: expected_arity,
                        actual: row.arity(),
                    }));
                }
            }
        }

        let mut outcome = BatchOutcome::default();
        let mut changed_heads: FastHashSet<Row> = FastHashSet::default();
        // Relations whose *normalized* delta was non-empty (redundant operations
        // normalize away and must not trigger side recomputation).
        let mut effective: FastHashSet<&String> = FastHashSet::default();
        for name in &relevant {
            let normalized = normalize_delta(&self.live[name], batch.ops(name));
            if normalized.is_empty() {
                continue;
            }
            effective.insert(name);

            match &mut self.engine {
                Engine::Counting { q1, q2 } => {
                    let d1 = q1.apply_relation_delta(name, &normalized);
                    let d2 = q2.apply_relation_delta(name, &normalized);
                    changed_heads.extend(d1.iter().map(|(row, _)| row.clone()));
                    changed_heads.extend(d2.iter().map(|(row, _)| row.clone()));
                }
                Engine::EasyRerun(state) => {
                    state
                        .db
                        .get_mut(name)
                        .map_err(IncrementalError::Storage)?
                        .apply_normalized_delta(&normalized);
                }
            }

            let live = self.live.get_mut(name).expect("relevant relation is live");
            for (row, sign) in &normalized {
                if *sign > 0 {
                    live.insert(row.clone());
                    outcome.effect.inserted += 1;
                } else {
                    live.remove(row);
                    outcome.effect.deleted += 1;
                }
            }
        }

        match &mut self.engine {
            Engine::Counting { q1, q2 } => {
                for row in changed_heads {
                    let belongs = q1.count(&row) > 0 && q2.count(&row) == 0;
                    if belongs {
                        if self.result.insert(row) {
                            outcome.result_added += 1;
                        }
                    } else if self.result.remove(&row) {
                        outcome.result_removed += 1;
                    }
                }
            }
            Engine::EasyRerun(state) => {
                if outcome.effect.total() > 0 {
                    let q1_touched = effective.iter().any(|r| state.q1_relations.contains(*r));
                    let q2_touched = effective.iter().any(|r| state.q2_relations.contains(*r));
                    if q1_touched {
                        state.q1_out = evaluate_cq(&self.dcq.q1, &state.db, state.cq_strategy)
                            .map_err(IncrementalError::Core)?;
                        self.stats.side_recomputes += 1;
                    }
                    if q2_touched {
                        state.q2_out = evaluate_cq(&self.dcq.q2, &state.db, state.cq_strategy)
                            .map_err(IncrementalError::Core)?;
                        self.stats.side_recomputes += 1;
                    }
                    if q1_touched || q2_touched {
                        let fresh = state
                            .q1_out
                            .minus(&state.q2_out)
                            .map_err(IncrementalError::Storage)?
                            .to_row_set();
                        outcome.result_added +=
                            fresh.iter().filter(|r| !self.result.contains(*r)).count();
                        outcome.result_removed +=
                            self.result.iter().filter(|r| !fresh.contains(*r)).count();
                        self.result = fresh;
                    }
                }
            }
        }

        self.stats.batches_applied += 1;
        self.stats.tuples_inserted += outcome.effect.inserted;
        self.stats.tuples_deleted += outcome.effect.deleted;
        self.stats.result_added += outcome.result_added;
        self.stats.result_removed += outcome.result_removed;
        self.log.record(batch.clone(), outcome.effect);
        Ok(outcome)
    }

    /// The maintained DCQ.
    pub fn dcq(&self) -> &Dcq {
        &self.dcq
    }

    /// The maintenance plan (strategy + dichotomy classification).
    pub fn plan(&self) -> &IncrementalPlan {
        &self.plan
    }

    /// The active maintenance strategy.
    pub fn strategy(&self) -> IncrementalStrategy {
        self.plan.strategy
    }

    /// Human-readable explanation of the maintenance choice.
    pub fn explain(&self) -> String {
        self.plan.explain()
    }

    /// Number of tuples currently in the result.
    pub fn len(&self) -> usize {
        self.result.len()
    }

    /// `true` iff the result is currently empty.
    pub fn is_empty(&self) -> bool {
        self.result.is_empty()
    }

    /// `true` iff `row` is currently in the result.
    pub fn contains(&self, row: &Row) -> bool {
        self.result.contains(row)
    }

    /// Materialize the current result as a relation (distinct by construction).
    pub fn result(&self) -> Relation {
        let mut rel = Relation::new(
            format!("{}−{}", self.dcq.q1.name, self.dcq.q2.name),
            self.output.clone(),
        );
        rel.reserve(self.result.len());
        for row in &self.result {
            rel.push_unchecked(row.clone());
        }
        rel.assume_distinct();
        rel
    }

    /// The log of batches that touched this view (bounded to
    /// [`DEFAULT_LOG_LIMIT`] retained batches unless reconfigured).
    pub fn log(&self) -> &UpdateLog {
        &self.log
    }

    /// Replace the update log, e.g. with `UpdateLog::new()` for unbounded
    /// retention or a tighter `UpdateLog::with_limit(..)`.  Clears history.
    pub fn set_log(&mut self, log: UpdateLog) {
        self.log = log;
    }

    /// Work counters.
    pub fn stats(&self) -> MaintenanceStats {
        self.stats
    }
}

impl fmt::Debug for MaintainedDcq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MaintainedDcq[{} | {} | {} tuples | {} batches]",
            self.dcq,
            self.plan.strategy,
            self.result.len(),
            self.log.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_core::baseline::baseline_dcq;
    use dcq_core::parse::parse_dcq;
    use dcq_storage::row::int_row;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![
                vec![1, 2],
                vec![2, 3],
                vec![3, 1],
                vec![2, 4],
                vec![4, 1],
                vec![4, 5],
            ],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Triple",
            &["a", "b", "c"],
            vec![vec![1, 2, 3], vec![2, 3, 1], vec![2, 4, 1], vec![7, 8, 9]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Edge",
            &["src", "dst"],
            vec![vec![1, 3], vec![2, 4]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows("Other", &["k"], vec![vec![1]]))
            .unwrap();
        db
    }

    const EASY: &str = "Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)";
    const HARD: &str = "Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)";

    fn check_against_baseline(view: &MaintainedDcq, db: &Database, context: &str) {
        let expected = baseline_dcq(view.dcq(), db, CqStrategy::Vanilla).unwrap();
        assert_eq!(
            view.result().sorted_rows(),
            expected.sorted_rows(),
            "maintained view diverged from recomputation ({context})"
        );
    }

    #[test]
    fn planner_assigns_strategies_by_dichotomy() {
        let db = db();
        let easy = MaintainedDcq::register(parse_dcq(EASY).unwrap(), &db).unwrap();
        assert_eq!(easy.strategy(), IncrementalStrategy::EasyRerun);
        assert!(easy.explain().contains("touched-side rerun"));
        let hard = MaintainedDcq::register(parse_dcq(HARD).unwrap(), &db).unwrap();
        assert_eq!(hard.strategy(), IncrementalStrategy::Counting);
    }

    #[test]
    fn registration_matches_baseline_for_both_strategies() {
        let db = db();
        for (src, strategy) in [
            (EASY, IncrementalStrategy::EasyRerun),
            (EASY, IncrementalStrategy::Counting),
            (HARD, IncrementalStrategy::Counting),
            (HARD, IncrementalStrategy::EasyRerun),
        ] {
            let view =
                MaintainedDcq::register_with(parse_dcq(src).unwrap(), &db, strategy).unwrap();
            check_against_baseline(&view, &db, &format!("registration {src} {strategy:?}"));
        }
    }

    #[test]
    fn updates_keep_both_strategies_in_lockstep_with_recomputation() {
        for strategy in [
            IncrementalStrategy::EasyRerun,
            IncrementalStrategy::Counting,
        ] {
            let mut db = db();
            let mut view =
                MaintainedDcq::register_with(parse_dcq(EASY).unwrap(), &db, strategy).unwrap();
            let batches = vec![
                {
                    // New triple that is not a triangle → enters the result.
                    let mut b = DeltaBatch::new();
                    b.insert("Triple", int_row([5, 6, 7]));
                    b
                },
                {
                    // Close the triangle 7→8→9→7 → (7,8,9) leaves the result.
                    let mut b = DeltaBatch::new();
                    b.insert("Graph", int_row([7, 8]));
                    b.insert("Graph", int_row([8, 9]));
                    b.insert("Graph", int_row([9, 7]));
                    b
                },
                {
                    // Break the 1→2→3→1 triangle → (1,2,3) enters; drop the Triple
                    // (7,8,9) so it leaves through Q₁ as well.
                    let mut b = DeltaBatch::new();
                    b.delete("Graph", int_row([2, 3]));
                    b.delete("Triple", int_row([7, 8, 9]));
                    b
                },
            ];
            for batch in batches {
                let outcome = view.apply(&batch).unwrap();
                assert!(!outcome.skipped);
                db.apply_batch(&batch).unwrap();
                check_against_baseline(&view, &db, &format!("{strategy:?} after {batch}"));
            }
            assert_eq!(view.stats().batches_applied, 3);
            assert!(view.log().len() == 3);
        }
    }

    #[test]
    fn irrelevant_batches_are_skipped_without_work() {
        let db = db();
        let mut view = MaintainedDcq::register(parse_dcq(EASY).unwrap(), &db).unwrap();
        let before = view.result().sorted_rows();
        let mut batch = DeltaBatch::new();
        batch.insert("Other", int_row([42]));
        let outcome = view.apply(&batch).unwrap();
        assert!(outcome.skipped);
        assert_eq!(outcome.effect.total(), 0);
        assert_eq!(view.result().sorted_rows(), before);
        assert_eq!(view.stats().batches_skipped, 1);
        assert_eq!(view.log().len(), 0);
        assert_eq!(view.stats().side_recomputes, 0);
    }

    #[test]
    fn redundant_operations_normalize_to_noops() {
        let mut db = db();
        for strategy in [
            IncrementalStrategy::EasyRerun,
            IncrementalStrategy::Counting,
        ] {
            let mut view =
                MaintainedDcq::register_with(parse_dcq(EASY).unwrap(), &db, strategy).unwrap();
            let mut batch = DeltaBatch::new();
            batch.insert("Graph", int_row([1, 2])); // already present
            batch.delete("Graph", int_row([9, 9])); // absent
            batch.insert("Graph", int_row([5, 5])); // net zero: inserted then deleted
            batch.delete("Graph", int_row([5, 5]));
            let outcome = view.apply(&batch).unwrap();
            assert!(!outcome.skipped);
            assert_eq!(outcome.effect.total(), 0);
            assert_eq!(outcome.result_added + outcome.result_removed, 0);
            db.apply_batch(&batch).unwrap();
            check_against_baseline(&view, &db, &format!("{strategy:?} redundant batch"));
        }
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let db = db();
        let mut view = MaintainedDcq::register(parse_dcq(EASY).unwrap(), &db).unwrap();
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([1, 2, 3]));
        assert!(view.apply(&batch).is_err());
    }

    #[test]
    fn result_accessors_and_debug() {
        let db = db();
        let view = MaintainedDcq::register(parse_dcq(EASY).unwrap(), &db).unwrap();
        assert_eq!(view.len(), view.result().len());
        assert!(!view.is_empty());
        assert!(view.contains(&int_row([7, 8, 9])));
        assert!(!view.contains(&int_row([1, 2, 3])));
        let text = format!("{view:?}");
        assert!(text.contains("MaintainedDcq"));
        assert_eq!(view.plan().strategy, view.strategy());
    }
}
