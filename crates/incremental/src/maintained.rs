//! Single-view compatibility shim over the shared-store maintenance core.
//!
//! [`MaintainedDcq`] was the original public entry point of this crate: one
//! registered DCQ owning a private snapshot of every relation it references.
//! The engine redesign (`dcq-engine`'s `DcqEngine`) replaced that shape with one
//! shared, epoch-versioned store fanning each batch out to many views, and this
//! type is now a thin shim kept for one release: it owns a private
//! [`SharedDatabase`] holding **only the referenced relations** plus a single
//! [`DcqView`], and forwards everything to the shared-store machinery.
//!
//! New code should register views on a `dcq_engine::DcqEngine` instead — one
//! store, one normalization pass and one epoch counter shared by all views.

use crate::view::DcqView;
use crate::{IncrementalError, Result};
use dcq_core::planner::{DcqPlanner, IncrementalPlan, IncrementalStrategy};
use dcq_core::Dcq;
use dcq_storage::{
    AppliedBatch, Database, DeltaBatch, Epoch, Relation, Row, SharedDatabase, UpdateLog,
};
use std::fmt;

// Keep the old import paths (`maintained::{BatchOutcome, MaintenanceStats}`)
// alive for one release; the definitions moved to [`crate::view`].
pub use crate::view::{BatchOutcome, MaintenanceStats};

/// Batches a view's update log retains by default: enough to audit/debug recent
/// history without growing without bound on long-lived views (counters keep
/// accumulating past the limit; `replay` refuses once truncated).
pub const DEFAULT_LOG_LIMIT: usize = 1024;

/// A registered DCQ maintained incrementally under batched updates.
///
/// **Deprecated shape**: each `MaintainedDcq` still owns a private copy of the
/// relations it references, so `N` views over the same database pay `N`
/// normalization passes and hold `N` partial copies.  Prefer registering views on
/// a shared `dcq_engine::DcqEngine`.
pub struct MaintainedDcq {
    store: SharedDatabase,
    view: DcqView,
    log: UpdateLog,
}

impl MaintainedDcq {
    /// Register a DCQ over the current database state, letting the planner pick the
    /// maintenance strategy from the dichotomy.
    #[deprecated(
        since = "0.1.0",
        note = "use dcq_engine::DcqEngine: prepare() + register() views on one shared store"
    )]
    pub fn register(dcq: Dcq, db: &Database) -> Result<Self> {
        let strategy = DcqPlanner::smart().plan_incremental(&dcq).strategy;
        #[allow(deprecated)]
        Self::register_with(dcq, db, strategy)
    }

    /// Register a DCQ with an explicit maintenance strategy.
    ///
    /// The view copies the referenced relations into a private shared store
    /// (deduplicated — maintenance is defined under set semantics); the caller
    /// keeps ownership of the database and must route subsequent updates through
    /// [`MaintainedDcq::apply`].
    #[deprecated(
        since = "0.1.0",
        note = "use dcq_engine::DcqEngine: prepare() + register_with() views on one shared store"
    )]
    pub fn register_with(dcq: Dcq, db: &Database, strategy: IncrementalStrategy) -> Result<Self> {
        dcq.validate(db).map_err(IncrementalError::Core)?;
        let mut plan = DcqPlanner::smart().plan_incremental(&dcq);
        plan.strategy = strategy;

        let mut referenced: Vec<String> = dcq
            .q1
            .atoms
            .iter()
            .chain(dcq.q2.atoms.iter())
            .map(|a| a.relation.clone())
            .collect();
        referenced.sort();
        referenced.dedup();
        let mut store = SharedDatabase::empty();
        for name in &referenced {
            store
                .add_relation(db.get(name).map_err(IncrementalError::Storage)?.clone())
                .map_err(IncrementalError::Storage)?;
        }

        let view = DcqView::build(dcq, plan, &store)?;
        Ok(MaintainedDcq {
            store,
            view,
            log: UpdateLog::with_limit(DEFAULT_LOG_LIMIT),
        })
    }

    /// Apply one delta batch, keeping the result current.
    ///
    /// Operations against relations the DCQ does not reference are ignored; a batch
    /// touching none of them advances the epoch without any maintenance work.
    /// Within the batch, relations are processed in name order and each relation's
    /// operations are first normalized to their net set-semantics effect.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<BatchOutcome> {
        // Restrict the batch to the referenced relations: the private store holds
        // nothing else, and unreferenced operations must stay invisible.
        let mut filtered = DeltaBatch::new();
        for (name, ops) in batch.iter() {
            if self.view.references(name) {
                for (row, sign) in ops {
                    filtered.push(name, row.clone(), *sign);
                }
            }
        }
        let applied: AppliedBatch = if filtered.is_empty() {
            AppliedBatch::noop(self.store.tick())
        } else {
            self.store.apply_batch(&filtered)?
        };
        let outcome = self.view.apply(&applied, &self.store)?;
        if !outcome.skipped {
            self.log.record(batch.clone(), outcome.effect);
        }
        Ok(outcome)
    }

    /// The maintained DCQ.
    pub fn dcq(&self) -> &Dcq {
        self.view.dcq()
    }

    /// The maintenance plan (strategy + dichotomy classification).
    pub fn plan(&self) -> &IncrementalPlan {
        self.view.plan()
    }

    /// The active maintenance strategy.
    pub fn strategy(&self) -> IncrementalStrategy {
        self.view.strategy()
    }

    /// Human-readable explanation of the maintenance choice.
    pub fn explain(&self) -> String {
        self.view.explain()
    }

    /// The private store's epoch: the number of batches offered so far (skipped
    /// batches advance it too, so the view's position in the update stream is
    /// always exact).
    pub fn epoch(&self) -> Epoch {
        self.store.epoch()
    }

    /// Number of tuples currently in the result.
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// `true` iff the result is currently empty.
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// `true` iff `row` is currently in the result.
    pub fn contains(&self, row: &Row) -> bool {
        self.view.contains(row)
    }

    /// Materialize the current result as a relation (distinct by construction).
    pub fn result(&self) -> Relation {
        self.view.result()
    }

    /// The log of batches that touched this view (bounded to
    /// [`DEFAULT_LOG_LIMIT`] retained batches unless reconfigured).
    pub fn log(&self) -> &UpdateLog {
        &self.log
    }

    /// Replace the update log, e.g. with `UpdateLog::new()` for unbounded
    /// retention or a tighter `UpdateLog::with_limit(..)`.  Clears history.
    pub fn set_log(&mut self, log: UpdateLog) {
        self.log = log;
    }

    /// Work counters.
    pub fn stats(&self) -> MaintenanceStats {
        self.view.stats()
    }

    /// Estimated heap footprint of the private store in bytes — what this shim
    /// still copies per view and a shared engine holds exactly once.
    pub fn store_bytes(&self) -> usize {
        self.store.approx_bytes()
    }
}

impl fmt::Debug for MaintainedDcq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MaintainedDcq[{} | {} | {} tuples | {} batches]",
            self.view.dcq(),
            self.view.strategy(),
            self.view.len(),
            self.log.len()
        )
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use dcq_core::baseline::{baseline_dcq, CqStrategy};
    use dcq_core::parse::parse_dcq;
    use dcq_storage::row::int_row;

    fn db() -> Database {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![
                vec![1, 2],
                vec![2, 3],
                vec![3, 1],
                vec![2, 4],
                vec![4, 1],
                vec![4, 5],
            ],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Triple",
            &["a", "b", "c"],
            vec![vec![1, 2, 3], vec![2, 3, 1], vec![2, 4, 1], vec![7, 8, 9]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Edge",
            &["src", "dst"],
            vec![vec![1, 3], vec![2, 4]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows("Other", &["k"], vec![vec![1]]))
            .unwrap();
        db
    }

    const EASY: &str = "Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)";
    const HARD: &str = "Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)";

    fn check_against_baseline(view: &MaintainedDcq, db: &Database, context: &str) {
        let expected = baseline_dcq(view.dcq(), db, CqStrategy::Vanilla).unwrap();
        assert_eq!(
            view.result().sorted_rows(),
            expected.sorted_rows(),
            "maintained view diverged from recomputation ({context})"
        );
    }

    #[test]
    fn planner_assigns_strategies_by_dichotomy() {
        let db = db();
        let easy = MaintainedDcq::register(parse_dcq(EASY).unwrap(), &db).unwrap();
        assert_eq!(easy.strategy(), IncrementalStrategy::EasyRerun);
        assert!(easy.explain().contains("touched-side rerun"));
        let hard = MaintainedDcq::register(parse_dcq(HARD).unwrap(), &db).unwrap();
        assert_eq!(hard.strategy(), IncrementalStrategy::Counting);
    }

    #[test]
    fn registration_matches_baseline_for_both_strategies() {
        let db = db();
        for (src, strategy) in [
            (EASY, IncrementalStrategy::EasyRerun),
            (EASY, IncrementalStrategy::Counting),
            (HARD, IncrementalStrategy::Counting),
            (HARD, IncrementalStrategy::EasyRerun),
        ] {
            let view =
                MaintainedDcq::register_with(parse_dcq(src).unwrap(), &db, strategy).unwrap();
            check_against_baseline(&view, &db, &format!("registration {src} {strategy:?}"));
        }
    }

    #[test]
    fn updates_keep_both_strategies_in_lockstep_with_recomputation() {
        for strategy in [
            IncrementalStrategy::EasyRerun,
            IncrementalStrategy::Counting,
        ] {
            let mut db = db();
            let mut view =
                MaintainedDcq::register_with(parse_dcq(EASY).unwrap(), &db, strategy).unwrap();
            let batches = vec![
                {
                    // New triple that is not a triangle → enters the result.
                    let mut b = DeltaBatch::new();
                    b.insert("Triple", int_row([5, 6, 7]));
                    b
                },
                {
                    // Close the triangle 7→8→9→7 → (7,8,9) leaves the result.
                    let mut b = DeltaBatch::new();
                    b.insert("Graph", int_row([7, 8]));
                    b.insert("Graph", int_row([8, 9]));
                    b.insert("Graph", int_row([9, 7]));
                    b
                },
                {
                    // Break the 1→2→3→1 triangle → (1,2,3) enters; drop the Triple
                    // (7,8,9) so it leaves through Q₁ as well.
                    let mut b = DeltaBatch::new();
                    b.delete("Graph", int_row([2, 3]));
                    b.delete("Triple", int_row([7, 8, 9]));
                    b
                },
            ];
            for batch in batches {
                let outcome = view.apply(&batch).unwrap();
                assert!(!outcome.skipped);
                db.apply_batch(&batch).unwrap();
                check_against_baseline(&view, &db, &format!("{strategy:?} after {batch}"));
            }
            assert_eq!(view.stats().batches_applied, 3);
            assert!(view.log().len() == 3);
            assert_eq!(view.epoch(), 3);
        }
    }

    #[test]
    fn irrelevant_batches_are_skipped_but_advance_the_epoch() {
        let db = db();
        let mut view = MaintainedDcq::register(parse_dcq(EASY).unwrap(), &db).unwrap();
        let before = view.result().sorted_rows();
        let mut batch = DeltaBatch::new();
        batch.insert("Other", int_row([42]));
        let outcome = view.apply(&batch).unwrap();
        assert!(outcome.skipped);
        assert_eq!(outcome.effect.total(), 0);
        // The skipped batch still advances the view's position in the stream.
        assert_eq!(outcome.epoch, 1);
        assert_eq!(view.epoch(), 1);
        assert_eq!(view.result().sorted_rows(), before);
        assert_eq!(view.stats().batches_skipped, 1);
        assert_eq!(view.log().len(), 0);
        assert_eq!(view.stats().side_recomputes, 0);
    }

    #[test]
    fn skipped_batch_followed_by_relevant_one_replays_correctly() {
        // Regression: a batch touching only unreferenced relations must still move
        // the epoch/log position so a later relevant batch lands at the right spot.
        let mut db = db();
        let mut view = MaintainedDcq::register(parse_dcq(EASY).unwrap(), &db).unwrap();
        let snapshot = db.clone();

        let mut skipped = DeltaBatch::new();
        skipped.insert("Other", int_row([77]));
        assert!(view.apply(&skipped).unwrap().skipped);
        db.apply_batch(&skipped).unwrap();

        let mut relevant = DeltaBatch::new();
        relevant.delete("Graph", int_row([2, 3]));
        relevant.insert("Triple", int_row([6, 6, 6]));
        let outcome = view.apply(&relevant).unwrap();
        assert!(!outcome.skipped);
        assert_eq!(outcome.epoch, 2);
        assert_eq!(view.epoch(), 2);
        db.apply_batch(&relevant).unwrap();
        check_against_baseline(&view, &db, "after skip + relevant");

        // Replaying the view's log over the original snapshot reproduces the state
        // the view reflects (the skipped batch contributed nothing to it).
        let mut replayed = snapshot;
        view.log().replay(&mut replayed).unwrap();
        check_against_baseline(&view, &replayed, "replayed log");
    }

    #[test]
    fn redundant_operations_normalize_to_noops() {
        let mut db = db();
        for strategy in [
            IncrementalStrategy::EasyRerun,
            IncrementalStrategy::Counting,
        ] {
            let mut view =
                MaintainedDcq::register_with(parse_dcq(EASY).unwrap(), &db, strategy).unwrap();
            let mut batch = DeltaBatch::new();
            batch.insert("Graph", int_row([1, 2])); // already present
            batch.delete("Graph", int_row([9, 9])); // absent
            batch.insert("Graph", int_row([5, 5])); // net zero: inserted then deleted
            batch.delete("Graph", int_row([5, 5]));
            let outcome = view.apply(&batch).unwrap();
            assert!(!outcome.skipped);
            assert_eq!(outcome.effect.total(), 0);
            assert_eq!(outcome.result_added + outcome.result_removed, 0);
            db.apply_batch(&batch).unwrap();
            check_against_baseline(&view, &db, &format!("{strategy:?} redundant batch"));
        }
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let db = db();
        let mut view = MaintainedDcq::register(parse_dcq(EASY).unwrap(), &db).unwrap();
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([1, 2, 3]));
        assert!(view.apply(&batch).is_err());
        // A rejected batch leaves the epoch untouched.
        assert_eq!(view.epoch(), 0);
    }

    #[test]
    fn result_accessors_and_debug() {
        let db = db();
        let view = MaintainedDcq::register(parse_dcq(EASY).unwrap(), &db).unwrap();
        assert_eq!(view.len(), view.result().len());
        assert!(!view.is_empty());
        assert!(view.contains(&int_row([7, 8, 9])));
        assert!(!view.contains(&int_row([1, 2, 3])));
        let text = format!("{view:?}");
        assert!(text.contains("MaintainedDcq"));
        assert_eq!(view.plan().strategy, view.strategy());
        assert!(view.store_bytes() > 0);
    }

    #[test]
    fn set_log_replaces_history() {
        let mut db = db();
        let mut view = MaintainedDcq::register(parse_dcq(EASY).unwrap(), &db).unwrap();
        let mut batch = DeltaBatch::new();
        batch.insert("Triple", int_row([5, 6, 7]));
        view.apply(&batch).unwrap();
        db.apply_batch(&batch).unwrap();
        assert_eq!(view.log().len(), 1);
        view.set_log(UpdateLog::new());
        assert_eq!(view.log().len(), 0);
    }
}
