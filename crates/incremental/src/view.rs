//! The maintenance core of one registered DCQ, reading through a shared store.
//!
//! [`DcqView`] is the per-view state an engine keeps for every registered
//! difference query.  A view owns **no copy of the database and no private
//! indexes**: the engine owns one [`SharedDatabase`] of record, applies each
//! [`dcq_storage::DeltaBatch`] to it exactly once (maintaining the store's
//! shared index registry in the same pass), and hands the resulting
//! [`AppliedBatch`] — epoch plus *normalized* per-relation deltas — to every
//! view in turn:
//!
//! * **counting views** fold the normalized deltas into their per-side support
//!   counts ([`CountingCq`]), probing the store's shared indexes —
//!   `O(|Δ| · fan-out)` per view, independent of `N`, with per-view state
//!   reduced to the two count maps;
//! * **rerun views** (difference-linear DCQs) re-evaluate only the sides whose
//!   relations the batch effectively changed, directly against the shared store.
//!
//! Either way the view records the store epoch of every offered batch — including
//! batches it skipped — so its position in the update stream is always exact.
//! Counting views hold refcounted references on registry indexes; the owning
//! engine calls [`DcqView::teardown`] on deregistration to release them.
//!
//! ## Threading model
//!
//! A `DcqView` is `Send`: the owning engine fans [`DcqView::apply`] out across
//! worker threads, each worker driving a disjoint set of views against the
//! shared store (borrowed `&`, so nothing in the store can move underneath
//! them).  Pooled counting sides are behind `Arc<RwLock<…>>`; on the
//! concurrent apply path, application locks **strictly one side at a time**
//! (write to fold, read to evaluate membership — never two guards held
//! together), so views sharing sides in any overlap pattern cannot deadlock
//! however the scheduler interleaves them.  Structural mutation —
//! [`DcqView::migrate`], [`DcqView::teardown`], pool and registry bookkeeping,
//! full result-set rebuilds — stays in the engine's sequential phases, under
//! `&mut` everything, where holding both sides' read guards is safe.

use crate::count::{CountingCq, CountingTelemetry};
use crate::pool::{CountingPool, SharedCountingCq};
use crate::{IncrementalError, Result};
use dcq_core::baseline::{evaluate_cq, CqStrategy};
use dcq_core::cache::PlanCache;
use dcq_core::planner::{DcqPlanner, IncrementalPlan, IncrementalStrategy};
use dcq_core::Dcq;
use dcq_storage::hash::{set_with_capacity, FastHashSet};
use dcq_storage::{AppliedBatch, DeltaEffect, Epoch, IdKey, Relation, Row, Schema, SharedDatabase};
use std::fmt;
use std::sync::{Arc, RwLock};

/// Running counters describing the work a maintained view has done.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Batches that touched at least one referenced relation.
    pub batches_applied: usize,
    /// Batches skipped because they touched no referenced relation.
    pub batches_skipped: usize,
    /// Net base tuples inserted across applied batches.
    pub tuples_inserted: usize,
    /// Net base tuples deleted across applied batches.
    pub tuples_deleted: usize,
    /// Result tuples that entered the view.
    pub result_added: usize,
    /// Result tuples that left the view.
    pub result_removed: usize,
    /// Side re-evaluations performed (touched-side rerun strategy only).
    pub side_recomputes: usize,
    /// Live strategy migrations performed ([`DcqView::migrate`]).
    pub migrations: usize,
}

/// Outcome of offering one batch to a maintained view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// `true` iff the batch touched no referenced relation (nothing was done).
    pub skipped: bool,
    /// The store epoch the view reflects after this batch (recorded even for
    /// skipped batches).
    pub epoch: Epoch,
    /// Net effect on the referenced base relations.
    pub effect: DeltaEffect,
    /// Result tuples that entered the view.
    pub result_added: usize,
    /// Result tuples that left the view.
    pub result_removed: usize,
}

/// The per-strategy maintenance machinery.
enum ViewState {
    /// Support counts on both sides; result membership is `cnt₁ > 0 ∧ cnt₂ = 0`.
    /// The sides are pool-shared: other views with an α-equivalent side hold
    /// the same engine, and batch application is idempotent per epoch.
    Counting {
        q1: SharedCountingCq,
        q2: SharedCountingCq,
    },
    /// Materialized side outputs; a batch re-runs only the sides whose relations
    /// it effectively changed, evaluating against the shared store.
    EasyRerun(Box<EasyRerunState>),
}

/// State of the touched-side rerun engine.
struct EasyRerunState {
    q1_out: Relation,
    q2_out: Relation,
    q1_relations: FastHashSet<String>,
    q2_relations: FastHashSet<String>,
    cq_strategy: CqStrategy,
}

/// The maintenance state of one registered DCQ over a shared store.
///
/// Built by [`DcqView::build`] against the store's current contents, then kept
/// current by feeding every [`AppliedBatch`] the store produces to
/// [`DcqView::apply`] **in order**.  The view never copies base relations; it
/// reads the store at build/rerun time and otherwise works off the normalized
/// deltas.
pub struct DcqView {
    dcq: Dcq,
    output: Schema,
    plan: IncrementalPlan,
    state: ViewState,
    /// The engine kind currently running (always `EasyRerun` or `Counting`):
    /// equal to `plan.strategy` for concrete plans; for
    /// [`IncrementalStrategy::Adaptive`] plans initially the caller's prior
    /// kind (falling back to the dichotomy's structural choice), then whatever
    /// [`DcqView::migrate`] last switched to.
    active: IncrementalStrategy,
    /// Referenced stored relations, sorted and deduplicated.
    referenced: Vec<String>,
    /// Result membership in **id space** (packed head ids, resolved through
    /// the store's dictionary only when a caller materializes rows): the
    /// per-batch combine never hashes a [`Value`](dcq_storage::Value) and
    /// never clones a [`Row`].
    result: FastHashSet<IdKey>,
    stats: MaintenanceStats,
    /// Telemetry folded in from counting sides this view released as their
    /// **last** holder (strategy migrations away from counting).  Keeps the
    /// view's cumulative work counters monotone across migrations: totals are
    /// `retired + live sides` (the engine applies the same scheme one level up
    /// for deregistered views).
    retired: CountingTelemetry,
    /// Fold partition count pushed onto this view's counting sides (and
    /// re-pushed onto any side a migration builds or acquires).  A pure
    /// scheduling knob — see [`CountingCq::fold_partitions`].
    fold_partitions: usize,
    epoch: Epoch,
}

impl DcqView {
    /// Build the view state for `dcq` from the store's current contents, using the
    /// given maintenance plan.
    ///
    /// Counting views acquire shared indexes from the store's registry (hence
    /// `&mut`) and build their delta plans fresh; an engine serving many views
    /// should use [`DcqView::build_shared`] so α-equivalent sides share plans,
    /// indexes *and* maintenance work.
    pub fn build(dcq: Dcq, plan: IncrementalPlan, store: &mut SharedDatabase) -> Result<Self> {
        DcqView::build_inner(dcq, plan, store, None, None)
    }

    /// [`DcqView::build`] with counting sides resolved through the engine's
    /// sharing layers: delta plans through a [`PlanCache`] sub-plan memo, and
    /// whole counting sides through a [`CountingPool`] — distinct DCQs whose
    /// sides share an α-canonical shape (e.g. the `Q_G5` family's common
    /// positive side) reuse one maintained [`CountingCq`], folded once per
    /// batch no matter how many views read it.
    pub fn build_shared(
        dcq: Dcq,
        plan: IncrementalPlan,
        store: &mut SharedDatabase,
        cache: &mut PlanCache,
        pool: &mut CountingPool,
    ) -> Result<Self> {
        DcqView::build_inner(dcq, plan, store, Some((cache, pool)), None)
    }

    /// [`DcqView::build_shared`] with an explicit initial engine kind for
    /// [`IncrementalStrategy::Adaptive`] plans (the engine passes its cost
    /// model's workload-prior choice); ignored for concrete plans.  Building
    /// directly on the right kind beats starting structurally and migrating a
    /// few batches in — long-lived maintenance state built mid-stream probes
    /// measurably slower than state built in one piece at registration.
    pub fn build_shared_with_initial(
        dcq: Dcq,
        plan: IncrementalPlan,
        store: &mut SharedDatabase,
        cache: &mut PlanCache,
        pool: &mut CountingPool,
        initial: IncrementalStrategy,
    ) -> Result<Self> {
        DcqView::build_inner(dcq, plan, store, Some((cache, pool)), Some(initial))
    }

    fn build_inner(
        dcq: Dcq,
        plan: IncrementalPlan,
        store: &mut SharedDatabase,
        shared: Option<(&mut PlanCache, &mut CountingPool)>,
        initial: Option<IncrementalStrategy>,
    ) -> Result<Self> {
        dcq.validate(store.database())
            .map_err(IncrementalError::Core)?;
        let output = dcq.head_schema();

        let mut referenced: Vec<String> = dcq
            .q1
            .atoms
            .iter()
            .chain(dcq.q2.atoms.iter())
            .map(|a| a.relation.clone())
            .collect();
        referenced.sort();
        referenced.dedup();

        // An adaptive plan starts on the caller's initial kind (the engine's
        // cost-model prior) or, absent one, the dichotomy's structural choice;
        // the engine's policy loop migrates the view as batch statistics
        // accrue.
        let active = match plan.strategy {
            IncrementalStrategy::Adaptive => match initial {
                Some(IncrementalStrategy::Adaptive) | None => {
                    DcqPlanner::incremental_strategy_for(&plan.classification)
                }
                Some(concrete) => concrete,
            },
            concrete => concrete,
        };
        let state = DcqView::build_state(&dcq, &output, active, store, shared)?;

        let mut view = DcqView {
            dcq,
            output,
            plan,
            state,
            active,
            referenced,
            result: FastHashSet::default(),
            stats: MaintenanceStats::default(),
            retired: CountingTelemetry::default(),
            fold_partitions: 1,
            epoch: store.epoch(),
        };
        view.result = view.compute_result_set(store)?;
        Ok(view)
    }

    /// Build the maintenance machinery of one concrete engine kind from the
    /// store's current contents (registration and migration both land here).
    fn build_state(
        dcq: &Dcq,
        output: &Schema,
        active: IncrementalStrategy,
        store: &mut SharedDatabase,
        shared: Option<(&mut PlanCache, &mut CountingPool)>,
    ) -> Result<ViewState> {
        match active {
            IncrementalStrategy::Counting => {
                let (q1, q2) = match shared {
                    Some((cache, pool)) => {
                        let q1 = pool.acquire(dcq.q1.clone(), output.clone(), store, cache)?;
                        let q2 = match pool.acquire(dcq.q2.clone(), output.clone(), store, cache) {
                            Ok(q2) => q2,
                            Err(e) => {
                                // Don't leak q1's registry references on a
                                // failed build (only if nobody shares it).
                                if Arc::strong_count(&q1) == 1 {
                                    q1.write().expect("side lock").release_indexes(store);
                                }
                                return Err(e);
                            }
                        };
                        (q1, q2)
                    }
                    None => {
                        let mut q1 = CountingCq::from_store(dcq.q1.clone(), output.clone(), store)?;
                        let q2 = match CountingCq::from_store(dcq.q2.clone(), output.clone(), store)
                        {
                            Ok(q2) => q2,
                            Err(e) => {
                                q1.release_indexes(store);
                                return Err(e);
                            }
                        };
                        (Arc::new(RwLock::new(q1)), Arc::new(RwLock::new(q2)))
                    }
                };
                Ok(ViewState::Counting { q1, q2 })
            }
            IncrementalStrategy::EasyRerun => {
                let cq_strategy = CqStrategy::Smart;
                let q1_out = evaluate_cq(&dcq.q1, store.database(), cq_strategy)
                    .map_err(IncrementalError::Core)?;
                let q2_out = evaluate_cq(&dcq.q2, store.database(), cq_strategy)
                    .map_err(IncrementalError::Core)?;
                Ok(ViewState::EasyRerun(Box::new(EasyRerunState {
                    q1_out,
                    q2_out,
                    q1_relations: dcq.q1.atoms.iter().map(|a| a.relation.clone()).collect(),
                    q2_relations: dcq.q2.atoms.iter().map(|a| a.relation.clone()).collect(),
                    cq_strategy,
                })))
            }
            IncrementalStrategy::Adaptive => {
                unreachable!("callers resolve Adaptive to a concrete kind first")
            }
        }
    }

    /// Derive the full result set from the engine state (registration path).
    fn compute_result_set(&mut self, store: &SharedDatabase) -> Result<FastHashSet<IdKey>> {
        match &mut self.state {
            ViewState::Counting { q1, q2 } => {
                // Degenerate `Q − Q`: both sides are the same pooled engine, so
                // every candidate has cnt₂ = cnt₁ > 0 and the result is empty —
                // short-circuiting also avoids read-locking one RwLock twice.
                if Arc::ptr_eq(q1, q2) {
                    return Ok(FastHashSet::default());
                }
                // Distinct sides: one filtered pass in id space under both read
                // guards.  Holding two guards is safe here — this runs
                // exclusively in the engine's sequential phases
                // (registration/migration, `&mut` engine), where no writer can
                // queue between the two acquisitions; the apply hot path keeps
                // the strict one-lock-at-a-time discipline.
                let q1 = q1.read().expect("counting side lock poisoned");
                let q2 = q2.read().expect("counting side lock poisoned");
                Ok(q1
                    .counts_ids()
                    .keys()
                    .filter(|key| q2.count_ids(key.as_slice()) == 0)
                    .cloned()
                    .collect())
            }
            ViewState::EasyRerun(state) => {
                let diff = state
                    .q1_out
                    .minus(&state.q2_out)
                    .map_err(IncrementalError::Storage)?;
                Ok(rows_to_id_set(diff.rows().iter(), diff.len(), store))
            }
        }
    }

    /// Fold one applied batch into the view.
    ///
    /// `applied` must be the store's own application record, offered in epoch
    /// order; the shared store it came from is passed as `store` so rerun views
    /// can re-evaluate touched sides.  Batches touching no referenced relation
    /// only advance the view's epoch.
    pub fn apply(
        &mut self,
        applied: &AppliedBatch,
        store: &SharedDatabase,
    ) -> Result<BatchOutcome> {
        self.epoch = applied.epoch;
        let mut outcome = BatchOutcome {
            epoch: applied.epoch,
            ..BatchOutcome::default()
        };

        let relevant: Vec<&(String, Vec<(Row, i64)>)> = applied
            .normalized
            .iter()
            .filter(|(name, _)| self.references(name))
            .collect();
        if relevant.is_empty() {
            self.stats.batches_skipped += 1;
            outcome.skipped = true;
            return Ok(outcome);
        }

        // Relations whose *normalized* delta was non-empty (redundant operations
        // normalize away and must not trigger side recomputation).
        let mut effective: FastHashSet<&String> = FastHashSet::default();
        for (name, delta) in &relevant {
            if delta.is_empty() {
                continue;
            }
            effective.insert(name);
            for (_, sign) in delta {
                if *sign > 0 {
                    outcome.effect.inserted += 1;
                } else {
                    outcome.effect.deleted += 1;
                }
            }
        }

        match &mut self.state {
            ViewState::Counting { q1, q2 } => {
                // One telescoped fold per side over the whole batch: the engines
                // probe the store's shared indexes (already reflecting the new
                // state) and compensate not-yet-folded relations from the delta.
                // Pool-shared sides fold once per epoch — whichever sharing
                // view's worker takes the write lock first folds the batch, the
                // rest get the memoized delta.  Locks are taken strictly one at
                // a time (never nested), so views sharing sides in any overlap
                // pattern cannot deadlock across fan-out workers.
                let d1 = q1
                    .write()
                    .expect("counting side lock poisoned")
                    .apply_batch(applied, store);
                let d2 = q2
                    .write()
                    .expect("counting side lock poisoned")
                    .apply_batch(applied, store);
                // Re-check membership of every changed head, entirely in id
                // space: the deltas are packed-id lists (shared `Arc`s, so a
                // pooled side's fold is never copied per reading view), the
                // dedup set borrows them, and the count lookups probe with the
                // borrowed slices — no `Row` is cloned, hashed or resolved.
                let mut changed: FastHashSet<&IdKey> = set_with_capacity(d1.len() + d2.len());
                changed.extend(d1.iter().map(|(key, _)| key));
                changed.extend(d2.iter().map(|(key, _)| key));
                let positive: Vec<(&IdKey, bool)> = {
                    let q1 = q1.read().expect("counting side lock poisoned");
                    changed
                        .into_iter()
                        .map(|key| (key, q1.count_ids(key.as_slice()) > 0))
                        .collect()
                };
                let q2 = q2.read().expect("counting side lock poisoned");
                for (key, positive) in positive {
                    let belongs = positive && q2.count_ids(key.as_slice()) == 0;
                    if belongs {
                        if self.result.insert(key.clone()) {
                            outcome.result_added += 1;
                        }
                    } else if self.result.remove(key) {
                        outcome.result_removed += 1;
                    }
                }
            }
            ViewState::EasyRerun(state) => {
                if outcome.effect.total() > 0 {
                    let q1_touched = effective.iter().any(|r| state.q1_relations.contains(*r));
                    let q2_touched = effective.iter().any(|r| state.q2_relations.contains(*r));
                    if q1_touched {
                        state.q1_out =
                            evaluate_cq(&self.dcq.q1, store.database(), state.cq_strategy)
                                .map_err(IncrementalError::Core)?;
                        self.stats.side_recomputes += 1;
                    }
                    if q2_touched {
                        state.q2_out =
                            evaluate_cq(&self.dcq.q2, store.database(), state.cq_strategy)
                                .map_err(IncrementalError::Core)?;
                        self.stats.side_recomputes += 1;
                    }
                    if q1_touched || q2_touched {
                        let diff = state
                            .q1_out
                            .minus(&state.q2_out)
                            .map_err(IncrementalError::Storage)?;
                        let fresh = rows_to_id_set(diff.rows().iter(), diff.len(), store);
                        outcome.result_added +=
                            fresh.iter().filter(|k| !self.result.contains(*k)).count();
                        outcome.result_removed +=
                            self.result.iter().filter(|k| !fresh.contains(*k)).count();
                        self.result = fresh;
                    }
                }
            }
        }

        self.stats.batches_applied += 1;
        self.stats.tuples_inserted += outcome.effect.inserted;
        self.stats.tuples_deleted += outcome.effect.deleted;
        self.stats.result_added += outcome.result_added;
        self.stats.result_removed += outcome.result_removed;
        Ok(outcome)
    }

    /// Release every shared-store resource the view holds (counting views hold
    /// pool-shared sides, which hold registry index references); the view must
    /// not be offered further batches.
    ///
    /// Called by the owning engine on deregistration.  A pooled side's indexes
    /// are released only when this view is its **last** holder — both the side
    /// and the registry entries survive as long as any view still reads them.
    pub fn teardown(&mut self, store: &mut SharedDatabase) {
        let dying = DcqView::release_state(&mut self.state, store);
        self.retired.merge(&dying);
    }

    /// Release the shared-store resources one [`ViewState`] holds (teardown and
    /// migration both land here).  Rerun state owns nothing shared.  Returns
    /// the merged [`CountingTelemetry`] of every side released as its last
    /// holder, so the caller can fold the dying sides' work counters into its
    /// `retired` base — sides that survive (still shared) keep reporting
    /// through their remaining holders and contribute nothing here.
    fn release_state(state: &mut ViewState, store: &mut SharedDatabase) -> CountingTelemetry {
        let mut dying = CountingTelemetry::default();
        if let ViewState::Counting { q1, q2 } = state {
            let same = Arc::ptr_eq(q1, q2);
            // A degenerate `Q − Q` view holds its side twice; either way,
            // `release_indexes` drains, so it must run exactly once per side
            // and only when no other view shares it.  The strong counts are
            // reliable here: teardown and migration only run in the engine's
            // sequential phases, where no worker concurrently clones or drops
            // side handles.
            let q1_holders = if same { 2 } else { 1 };
            if Arc::strong_count(q1) == q1_holders {
                let mut side = q1.write().expect("counting side lock poisoned");
                dying.merge(&side.telemetry());
                side.release_indexes(store);
            }
            if !same && Arc::strong_count(q2) == 1 {
                let mut side = q2.write().expect("counting side lock poisoned");
                dying.merge(&side.telemetry());
                side.release_indexes(store);
            }
        }
        dying
    }

    /// Switch the view's live maintenance machinery to `target` at the current
    /// store epoch: build the target engine's state from the shared store
    /// (counting sides resolved through the pool, so an α-equivalent side
    /// already maintained by another view is *shared*, not rebuilt), atomically
    /// swap it in, and release the old engine's pooled sides and registry index
    /// references (each freed only when this view was its last holder).
    ///
    /// Returns `false` when `target` is already active (no work done).
    /// `IncrementalStrategy::Adaptive` as a target means "the dichotomy's
    /// structural choice".  Migration never changes the result: the rebuilt
    /// state derives the identical membership set from the same store epoch
    /// (asserted in debug builds, and what `tests/adaptive_migration.rs` pins
    /// down release-mode too).
    pub fn migrate(
        &mut self,
        target: IncrementalStrategy,
        store: &mut SharedDatabase,
        cache: &mut PlanCache,
        pool: &mut CountingPool,
    ) -> Result<bool> {
        let target = match target {
            IncrementalStrategy::Adaptive => {
                DcqPlanner::incremental_strategy_for(&self.plan.classification)
            }
            concrete => concrete,
        };
        if target == self.active {
            return Ok(false);
        }
        // Build first, release after: a failed build leaves the view untouched.
        let fresh =
            DcqView::build_state(&self.dcq, &self.output, target, store, Some((cache, pool)))?;
        let mut old = std::mem::replace(&mut self.state, fresh);
        let dying = DcqView::release_state(&mut old, store);
        self.retired.merge(&dying);
        drop(old);
        self.active = target;
        // Freshly built (or pool-acquired) counting sides inherit the view's
        // partitioning, so a mid-stream migration keeps the configured fold
        // schedule without the engine having to re-push it.
        DcqView::push_fold_partitions(&self.state, self.fold_partitions);
        self.stats.migrations += 1;
        let rebuilt = self.compute_result_set(store)?;
        debug_assert_eq!(
            rebuilt, self.result,
            "migration must preserve the result set exactly"
        );
        self.result = rebuilt;
        Ok(true)
    }

    /// The maintained DCQ.
    pub fn dcq(&self) -> &Dcq {
        &self.dcq
    }

    /// The maintenance plan (strategy + dichotomy classification).
    pub fn plan(&self) -> &IncrementalPlan {
        &self.plan
    }

    /// The *declared* maintenance strategy of the plan this view was registered
    /// with (`Adaptive` for policy-managed views); see
    /// [`DcqView::active_strategy`] for the engine kind actually running.
    pub fn strategy(&self) -> IncrementalStrategy {
        self.plan.strategy
    }

    /// The concrete engine kind currently maintaining the view — always
    /// [`IncrementalStrategy::EasyRerun`] or [`IncrementalStrategy::Counting`],
    /// equal to [`DcqView::strategy`] for non-adaptive views.
    pub fn active_strategy(&self) -> IncrementalStrategy {
        self.active
    }

    /// Human-readable explanation of the maintenance choice.
    pub fn explain(&self) -> String {
        self.plan.explain()
    }

    /// The stored relations this view references, sorted.
    pub fn referenced(&self) -> &[String] {
        &self.referenced
    }

    /// `true` iff the view references the stored relation `name`.
    pub fn references(&self, name: &str) -> bool {
        self.referenced
            .binary_search_by(|r| r.as_str().cmp(name))
            .is_ok()
    }

    /// The store epoch the view currently reflects.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Number of tuples currently in the result.
    pub fn len(&self) -> usize {
        self.result.len()
    }

    /// `true` iff the result is currently empty.
    pub fn is_empty(&self) -> bool {
        self.result.is_empty()
    }

    /// `true` iff `row` is currently in the result.
    ///
    /// The row is translated through `store`'s dictionary; a row containing a
    /// never-interned value cannot be a result tuple.
    pub fn contains(&self, row: &Row, store: &SharedDatabase) -> bool {
        let mut ids = Vec::with_capacity(row.arity());
        store.lookup_ids(row, &mut ids) && self.result.contains(&ids[..])
    }

    /// The current result membership set, as packed head ids (resolve through
    /// the store's dictionary to materialize rows).
    pub fn result_ids(&self) -> &FastHashSet<IdKey> {
        &self.result
    }

    /// Materialize the current result as a relation (distinct by construction),
    /// resolving the id-space membership set through `store`'s dictionary.
    pub fn result(&self, store: &SharedDatabase) -> Relation {
        let mut rel = Relation::new(
            format!("{}−{}", self.dcq.q1.name, self.dcq.q2.name),
            self.output.clone(),
        );
        rel.reserve(self.result.len());
        for key in &self.result {
            rel.push_unchecked(store.resolve_row(key.as_slice()));
        }
        rel.assume_distinct();
        rel
    }

    /// Work counters.
    pub fn stats(&self) -> MaintenanceStats {
        self.stats
    }

    /// Telemetry folded in from counting sides this view released as their
    /// last holder (migrations away from counting, and teardown).  Add this to
    /// the live [`DcqView::counting_telemetry`] sides for the view's full
    /// cumulative work; sides still shared with other views at release time are
    /// **not** folded here — they keep reporting through their survivors.
    pub fn retired_counting_telemetry(&self) -> CountingTelemetry {
        self.retired
    }

    /// Split each counting side's telescoped folds into `partitions`
    /// hash-disjoint partitions (clamped to at least 1).  Purely a scheduling
    /// knob — results, stats and telemetry counters are bit-identical at any
    /// value — so pushing it onto a pool-shared side is safe even while other
    /// views read that side.  Rerun views ignore it (but remember it, in case
    /// a migration later builds counting sides).
    pub fn set_fold_partitions(&mut self, partitions: usize) {
        self.fold_partitions = partitions.max(1);
        DcqView::push_fold_partitions(&self.state, self.fold_partitions);
    }

    /// The configured fold partition count.
    pub fn fold_partitions(&self) -> usize {
        self.fold_partitions
    }

    /// Apply a partition count to whatever counting sides `state` holds,
    /// locking strictly one side at a time (same discipline as the apply path).
    fn push_fold_partitions(state: &ViewState, partitions: usize) {
        if let ViewState::Counting { q1, q2 } = state {
            q1.write()
                .expect("counting side lock poisoned")
                .set_fold_partitions(partitions);
            if !Arc::ptr_eq(q1, q2) {
                q2.write()
                    .expect("counting side lock poisoned")
                    .set_fold_partitions(partitions);
            }
        }
    }

    /// Wall-clock nanoseconds each fold partition of this view's counting
    /// sides spent in their most recent owned fold, keyed by side identity
    /// (the shared `Arc`'s address) for cross-view deduplication, like
    /// [`DcqView::counting_telemetry`].  A skew diagnostic — **not** part of
    /// the deterministic surface.  Empty for rerun views.
    pub fn fold_partition_ns(&self) -> Vec<(usize, Vec<u64>)> {
        match &self.state {
            ViewState::Counting { q1, q2 } => {
                let mut sides = vec![(
                    Arc::as_ptr(q1) as usize,
                    q1.read()
                        .expect("counting side lock poisoned")
                        .last_partition_ns()
                        .to_vec(),
                )];
                if !Arc::ptr_eq(q1, q2) {
                    sides.push((
                        Arc::as_ptr(q2) as usize,
                        q2.read()
                            .expect("counting side lock poisoned")
                            .last_partition_ns()
                            .to_vec(),
                    ));
                }
                sides
            }
            ViewState::EasyRerun(_) => Vec::new(),
        }
    }

    /// Telemetry of the counting sides this view holds, keyed by side identity
    /// (the shared `Arc`'s address) so a caller aggregating across many views
    /// can deduplicate pool-shared sides instead of double-counting them.
    /// Empty for rerun views; a degenerate `Q − Q` view reports its single
    /// side once.
    pub fn counting_telemetry(&self) -> Vec<(usize, CountingTelemetry)> {
        match &self.state {
            ViewState::Counting { q1, q2 } => {
                let mut sides = vec![(
                    Arc::as_ptr(q1) as usize,
                    q1.read().expect("counting side lock poisoned").telemetry(),
                )];
                if !Arc::ptr_eq(q1, q2) {
                    sides.push((
                        Arc::as_ptr(q2) as usize,
                        q2.read().expect("counting side lock poisoned").telemetry(),
                    ));
                }
                sides
            }
            ViewState::EasyRerun(_) => Vec::new(),
        }
    }
}

/// Translate row-space result tuples into an id-space membership set.
///
/// Every value in a query output is a projection of stored rows, and the
/// store's dictionary is append-only, so the lookup cannot fail for rows a
/// rerun actually produced (asserted in debug builds; a row that genuinely
/// contains a never-interned value cannot be a result and is dropped).
fn rows_to_id_set<'a>(
    rows: impl Iterator<Item = &'a Row>,
    hint: usize,
    store: &SharedDatabase,
) -> FastHashSet<IdKey> {
    let mut out = set_with_capacity(hint);
    let mut ids = Vec::new();
    for row in rows {
        let interned = store.lookup_ids(row, &mut ids);
        debug_assert!(interned, "result row {row} holds a never-interned value");
        if interned {
            out.insert(IdKey::from_slice(&ids));
        }
    }
    out
}

impl fmt::Debug for DcqView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DcqView[{} | {} | {} tuples | epoch {}]",
            self.dcq,
            self.active,
            self.result.len(),
            self.epoch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_core::baseline::{baseline_dcq, CqStrategy};
    use dcq_core::parse::parse_dcq;
    use dcq_core::planner::DcqPlanner;
    use dcq_storage::row::int_row;
    use dcq_storage::{Database, DeltaBatch, Relation};

    fn store() -> SharedDatabase {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![
                vec![1, 2],
                vec![2, 3],
                vec![3, 1],
                vec![2, 4],
                vec![4, 1],
                vec![4, 5],
            ],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Triple",
            &["a", "b", "c"],
            vec![vec![1, 2, 3], vec![2, 3, 1], vec![2, 4, 1], vec![7, 8, 9]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows(
            "Edge",
            &["src", "dst"],
            vec![vec![1, 3], vec![2, 4]],
        ))
        .unwrap();
        db.add(Relation::from_int_rows("Other", &["k"], vec![vec![1]]))
            .unwrap();
        SharedDatabase::new(db)
    }

    const EASY: &str = "Q(a, b, c) :- Triple(a, b, c) EXCEPT Graph(a, b), Graph(b, c), Graph(c, a)";
    const HARD: &str = "Q(a, c) :- Edge(a, c) EXCEPT Graph(a, b), Graph(b, c)";

    fn build(src: &str, store: &mut SharedDatabase) -> DcqView {
        let dcq = parse_dcq(src).unwrap();
        let plan = DcqPlanner::smart().plan_incremental(&dcq);
        DcqView::build(dcq, plan, store).unwrap()
    }

    #[test]
    fn views_follow_the_store_and_match_recomputation() {
        let mut store = store();
        let mut easy = build(EASY, &mut store);
        let mut hard = build(HARD, &mut store);
        assert_eq!(easy.strategy(), IncrementalStrategy::EasyRerun);
        assert_eq!(hard.strategy(), IncrementalStrategy::Counting);
        assert!(easy.references("Graph") && !easy.references("Other"));
        assert_eq!(
            easy.referenced(),
            &["Graph".to_string(), "Triple".to_string()]
        );

        let batches = vec![
            {
                let mut b = DeltaBatch::new();
                b.insert("Triple", int_row([5, 6, 7]));
                b
            },
            {
                let mut b = DeltaBatch::new();
                b.insert("Graph", int_row([7, 8]));
                b.insert("Graph", int_row([8, 9]));
                b.insert("Graph", int_row([9, 7]));
                b.delete("Triple", int_row([2, 4, 1]));
                b
            },
            {
                let mut b = DeltaBatch::new();
                b.delete("Graph", int_row([2, 3]));
                b.insert("Other", int_row([5]));
                b
            },
        ];
        for batch in &batches {
            let applied = store.apply_batch(batch).unwrap();
            for view in [&mut easy, &mut hard] {
                let outcome = view.apply(&applied, &store).unwrap();
                assert_eq!(outcome.epoch, store.epoch());
                assert_eq!(view.epoch(), store.epoch());
                let expected =
                    baseline_dcq(view.dcq(), store.database(), CqStrategy::Vanilla).unwrap();
                assert_eq!(
                    view.result(&store).sorted_rows(),
                    expected.sorted_rows(),
                    "view diverged after {batch}"
                );
            }
        }
        assert_eq!(easy.stats().batches_applied, 3);
        assert!(easy.stats().side_recomputes > 0);
        // The first batch only touched Triple, which the hard view does not read.
        assert_eq!(hard.stats().batches_skipped, 1);
        assert_eq!(hard.stats().batches_applied, 2);
        assert_eq!(hard.epoch(), 3);
    }

    #[test]
    fn irrelevant_batches_advance_the_epoch_only() {
        let mut store = store();
        let mut view = build(EASY, &mut store);
        let before = view.result(&store).sorted_rows();
        let mut batch = DeltaBatch::new();
        batch.insert("Other", int_row([42]));
        let applied = store.apply_batch(&batch).unwrap();
        let outcome = view.apply(&applied, &store).unwrap();
        assert!(outcome.skipped);
        assert_eq!(outcome.epoch, 1);
        assert_eq!(view.epoch(), 1);
        assert_eq!(view.result(&store).sorted_rows(), before);
        assert_eq!(view.stats().batches_skipped, 1);
        assert_eq!(view.stats().batches_applied, 0);
    }

    #[test]
    fn counting_views_share_and_release_registry_indexes() {
        let mut store = store();
        let mut a = build(HARD, &mut store);
        assert_eq!(a.strategy(), IncrementalStrategy::Counting);
        let shared_indexes = store.index_count();
        assert!(shared_indexes > 0, "counting views acquire shared indexes");
        // A second view of the same shape reuses the same physical indexes.
        let mut b = build(HARD, &mut store);
        assert_eq!(store.index_count(), shared_indexes);
        b.teardown(&mut store);
        assert_eq!(store.index_count(), shared_indexes);
        a.teardown(&mut store);
        assert_eq!(store.index_count(), 0, "last teardown frees the registry");
        // Tearing down a rerun view is a no-op.
        let mut easy = build(EASY, &mut store);
        easy.teardown(&mut store);
        assert_eq!(store.index_count(), 0);
    }

    #[test]
    fn migration_preserves_results_and_frees_shared_state() {
        let mut store = store();
        let mut cache = PlanCache::new();
        let mut pool = CountingPool::new();
        let dcq = parse_dcq(HARD).unwrap();
        let plan = DcqPlanner::smart().plan_incremental(&dcq);
        let mut view = DcqView::build_shared(dcq, plan, &mut store, &mut cache, &mut pool).unwrap();
        assert_eq!(view.active_strategy(), IncrementalStrategy::Counting);
        assert!(store.index_count() > 0);
        let before = view.result(&store).sorted_rows();

        // Counting → rerun: the sole holder's registry entries drain, the
        // result is byte-identical.
        assert!(view
            .migrate(
                IncrementalStrategy::EasyRerun,
                &mut store,
                &mut cache,
                &mut pool
            )
            .unwrap());
        pool.prune();
        assert_eq!(view.active_strategy(), IncrementalStrategy::EasyRerun);
        assert_eq!(
            view.strategy(),
            IncrementalStrategy::Counting,
            "the declared strategy is unchanged by migration"
        );
        assert_eq!(store.index_count(), 0, "old counting state fully released");
        assert_eq!(view.result(&store).sorted_rows(), before);
        // Migrating to the active kind is a no-op.
        assert!(!view
            .migrate(
                IncrementalStrategy::EasyRerun,
                &mut store,
                &mut cache,
                &mut pool
            )
            .unwrap());

        // Maintain under rerun, then migrate back mid-stream and keep going:
        // both transitions must stay exact against recomputation.
        let mut batch = DeltaBatch::new();
        batch.insert("Graph", int_row([5, 2]));
        batch.delete("Edge", int_row([1, 3]));
        let applied = store.apply_batch(&batch).unwrap();
        view.apply(&applied, &store).unwrap();
        assert!(view
            .migrate(
                IncrementalStrategy::Counting,
                &mut store,
                &mut cache,
                &mut pool
            )
            .unwrap());
        assert!(
            store.index_count() > 0,
            "counting state re-acquired indexes"
        );
        let mut batch = DeltaBatch::new();
        batch.insert("Edge", int_row([9, 9]));
        batch.delete("Graph", int_row([2, 3]));
        let applied = store.apply_batch(&batch).unwrap();
        view.apply(&applied, &store).unwrap();
        let expected = baseline_dcq(view.dcq(), store.database(), CqStrategy::Vanilla).unwrap();
        assert_eq!(view.result(&store).sorted_rows(), expected.sorted_rows());
        assert_eq!(view.stats().migrations, 2);
        assert_eq!(view.epoch(), 2);

        view.teardown(&mut store);
        pool.prune();
        assert_eq!(store.index_count(), 0);
    }

    #[test]
    fn adaptive_plans_start_on_the_structural_choice() {
        let mut store = store();
        let mut cache = PlanCache::new();
        let mut pool = CountingPool::new();
        for (src, structural) in [
            (EASY, IncrementalStrategy::EasyRerun),
            (HARD, IncrementalStrategy::Counting),
        ] {
            let dcq = parse_dcq(src).unwrap();
            let plan = DcqPlanner::smart().plan_adaptive(&dcq);
            let mut view =
                DcqView::build_shared(dcq, plan, &mut store, &mut cache, &mut pool).unwrap();
            assert_eq!(view.strategy(), IncrementalStrategy::Adaptive);
            assert_eq!(view.active_strategy(), structural);
            // Migrating "to Adaptive" re-targets the structural choice: a no-op
            // here since nothing has migrated away yet.
            assert!(!view
                .migrate(
                    IncrementalStrategy::Adaptive,
                    &mut store,
                    &mut cache,
                    &mut pool
                )
                .unwrap());
            view.teardown(&mut store);
            pool.prune();
        }
        assert_eq!(store.index_count(), 0);
    }

    #[test]
    fn views_are_send_for_fan_out_workers() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<DcqView>();
        assert_sync::<DcqView>();
        assert_sync::<SharedDatabase>();
        assert_sync::<AppliedBatch>();
    }

    #[test]
    fn result_accessors_and_debug() {
        let mut store = store();
        let view = build(EASY, &mut store);
        assert_eq!(view.len(), view.result(&store).len());
        assert!(!view.is_empty());
        assert!(view.contains(&int_row([7, 8, 9]), &store));
        assert_eq!(view.result_ids().len(), view.len());
        assert!(!view.contains(&int_row([1, 2, 3]), &store));
        // A row holding a value the dictionary has never seen cannot belong.
        assert!(!view.contains(&int_row([999_999, 0, 0]), &store));
        assert!(format!("{view:?}").contains("DcqView"));
        assert!(view.explain().contains("touched-side rerun"));
        assert_eq!(view.plan().strategy, view.strategy());
        assert_eq!(view.epoch(), 0);
    }
}
