//! Feature-gated telemetry primitives.
//!
//! With the `telemetry` feature on, this is `dcq-telemetry`'s atomic counter;
//! with it off it is a zero-sized stub whose methods compile to nothing, so
//! instrumentation call sites stay unconditional and cost-free in the
//! telemetry-off build.

#[cfg(feature = "telemetry")]
pub(crate) use dcq_telemetry::Counter;

/// No-op stand-in for [`dcq_telemetry::Counter`].
#[cfg(not(feature = "telemetry"))]
#[derive(Debug, Default, Clone)]
pub(crate) struct Counter;

#[cfg(not(feature = "telemetry"))]
#[allow(dead_code)]
impl Counter {
    #[inline(always)]
    pub fn inc(&self) {}
    #[inline(always)]
    pub fn add(&self, _n: u64) {}
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}
