//! # dcq-incremental
//!
//! Incremental maintenance of DCQ results under batched updates — the serving-side
//! companion to the one-shot evaluation algorithms of `dcq-core`.
//!
//! A production deployment asks the *same* difference query `Q₁(D) − Q₂(D)` again
//! and again while the database changes underneath it.  Rather than re-running the
//! planner's one-shot pipeline per request, this crate registers the DCQ once as a
//! [`DcqView`] and keeps its result current as signed tuple deltas
//! ([`dcq_storage::DeltaBatch`]) stream in, in the spirit of Berkholz, Keppeler &
//! Schweikardt, *Answering Conjunctive Queries under Updates* (PODS 2017), combined
//! with the difference-linear dichotomy (Theorem 2.4):
//!
//! * **difference-linear DCQs** ([`IncrementalStrategy::EasyRerun`]): a full rerun is
//!   already linear `O(N + OUT)`, so maintenance materializes both sides and re-runs
//!   only the sides (partitions of the atom set) whose relations a batch touched;
//!   batches touching nothing relevant are `O(1)` no-ops;
//! * **hard DCQs** ([`IncrementalStrategy::Counting`]): a rerun pays a super-linear
//!   cost per batch, so maintenance falls back to classic counting IVM — per-tuple
//!   support counts on both sides, updated by ℤ-annotated, index-backed delta joins
//!   ([`CountingCq`]) whose cost scales with the delta size.  A tuple enters the
//!   result exactly when its `Q₁` count rises above zero while its `Q₂` count is
//!   zero, and leaves when either condition flips.
//!
//! The strategy is chosen by [`dcq_core::planner::DcqPlanner::plan_incremental`] and
//! can be forced per registration; both engines are update-equivalent to full
//! recomputation (the property tests in `tests/incremental_maintenance.rs` assert
//! byte-identical results over randomized insert/delete sequences).
//!
//! ## Shared-store views, shared indexes
//!
//! The maintenance core is [`DcqView`]: per-view state that owns **no database
//! copy and no private index structures**.  It consumes the normalized
//! [`dcq_storage::AppliedBatch`] records a shared, epoch-versioned
//! [`dcq_storage::SharedDatabase`] produces — one store, one normalization pass
//! and one epoch counter fanned out to every registered view — and its counting
//! engines probe the store's refcounted **index registry**
//! ([`dcq_storage::registry`]): every delta-join index is owned by the storage
//! layer, maintained exactly once per batch, and shared by every view whose
//! (α-canonical) delta plans probe the same `(relation, equality signature,
//! key columns)` structure.  Per-view state is the support-count maps plus the
//! result membership set, so memory scales as `O(data + counts)` instead of
//! `O(views × data)`.
//!
//! (The first-generation single-view `MaintainedDcq` shim was deprecated in the
//! engine redesign and has since been removed; register views on a
//! `dcq_engine::DcqEngine` instead.)

#![warn(missing_docs)]

pub mod count;
pub mod pool;
pub(crate) mod tele;
pub mod view;

pub use count::{CountingCq, CountingTelemetry, HeadDelta};
pub use dcq_core::planner::{IncrementalPlan, IncrementalStrategy};
pub use pool::{CountingPool, CountingPoolStats, SharedCountingCq};
pub use view::{BatchOutcome, DcqView, MaintenanceStats};

use std::fmt;

/// Errors surfaced by incremental maintenance.
#[derive(Debug)]
pub enum IncrementalError {
    /// An error from query validation or evaluation.
    Core(dcq_core::DcqError),
    /// An error from the storage layer.
    Storage(dcq_storage::StorageError),
}

impl fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncrementalError::Core(e) => write!(f, "core: {e}"),
            IncrementalError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for IncrementalError {}

impl From<dcq_core::DcqError> for IncrementalError {
    fn from(e: dcq_core::DcqError) -> Self {
        IncrementalError::Core(e)
    }
}

impl From<dcq_storage::StorageError> for IncrementalError {
    fn from(e: dcq_storage::StorageError) -> Self {
        IncrementalError::Storage(e)
    }
}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, IncrementalError>;
