//! Cross-view sharing of whole counting sides.
//!
//! Plan-level sharing (one [`CqDeltaPlans`](dcq_core::delta_plan::CqDeltaPlans)
//! per α-canonical CQ shape) and index-level sharing (the store's registry)
//! remove redundant *structures*; this module removes redundant *work*.  Two
//! counting views whose sides have the same [`CqShapeKey`] — same relations,
//! same variable wiring, same output order, any variable spellings — maintain
//! byte-identical support-count maps forever: the counts start equal (seeded
//! from the same store) and every batch folds the same deltas through the same
//! plans.  So the engine keeps **one** [`CountingCq`] per live side shape, and
//! `N` views share it:
//!
//! * [`CountingPool::acquire`] hands out an `Arc<RwLock<CountingCq>>`, building
//!   the side only when no live view holds that shape (the pool itself keeps
//!   only weak references, so an unused side is dropped, not cached forever);
//! * batch application is **idempotent per epoch** (see
//!   [`CountingCq::apply_batch`]): under parallel fan-out, whichever sharing
//!   view's worker takes the side's write lock first folds the batch; every
//!   later sharer finds the epoch already advanced and gets the memoized head
//!   delta.  The fold is a pure function of `(state, batch)`, so the winner's
//!   identity never shows in the counts — parallel and sequential fan-out
//!   produce bit-identical state;
//! * the last view to drop a side releases its registry indexes.
//!
//! This is what makes the 8-*distinct*-views workload of the `multi_view`
//! bench cheap: the `Q_G5` family's variants differ only in their negative
//! closers, so all eight positive sides collapse into one pooled engine —
//! maintained once per batch instead of eight times.

use crate::count::CountingCq;
use crate::Result;
use dcq_core::cache::{CqShapeKey, PlanCache};
use dcq_core::query::ConjunctiveQuery;
use dcq_storage::hash::FastHashMap;
use dcq_storage::{Schema, SharedDatabase};
use std::sync::{Arc, RwLock, Weak};

/// A counting side shared by every view whose CQ has the same α-canonical shape.
///
/// `Send + Sync`: views on different fan-out workers lock the side transiently
/// during batch application and result reads.  The locking discipline is
/// strictly one side at a time (see [`DcqView::apply`](crate::DcqView::apply)),
/// so shared sides cannot deadlock however views overlap.
pub type SharedCountingCq = Arc<RwLock<CountingCq>>;

/// Hit/miss counters of a [`CountingPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountingPoolStats {
    /// Acquisitions served by a live shared side (no seeding work performed).
    pub hits: u64,
    /// Acquisitions that had to build and seed a fresh side.
    pub misses: u64,
    /// Side shapes currently live (held by at least one view).
    pub live: usize,
    /// Live side shapes currently held by **more than one** view handle, i.e.
    /// sides whose per-batch fold is amortized across sharers.  A degenerate
    /// `Q − Q` view counts here too: it holds its single side twice.
    pub shared: usize,
}

/// The pool of live counting sides, keyed by α-canonical CQ shape.
///
/// Entries are weak: the pool never keeps a side alive on its own, it only
/// lets concurrent views find each other.  Dead entries are pruned lazily.
/// The pool itself is only touched from the engine's sequential phases
/// (registration, migration, deregistration) — the parallel fan-out sees
/// pooled sides exclusively through the `Arc`s the views already hold.
#[derive(Default)]
pub struct CountingPool {
    entries: FastHashMap<CqShapeKey, Weak<RwLock<CountingCq>>>,
    hits: u64,
    misses: u64,
}

impl CountingPool {
    /// An empty pool.
    pub fn new() -> Self {
        CountingPool::default()
    }

    /// The shared counting side for `(cq, output)`'s shape: a live one if any
    /// view still holds it, otherwise built from the store's current contents
    /// (plans resolved through `cache`, indexes acquired from the store's
    /// registry) and registered for later sharers.
    pub fn acquire(
        &mut self,
        cq: ConjunctiveQuery,
        output: Schema,
        store: &mut SharedDatabase,
        cache: &mut PlanCache,
    ) -> Result<SharedCountingCq> {
        let key = CqShapeKey::of(&cq, &output);
        if let Some(weak) = self.entries.get(&key) {
            if let Some(live) = weak.upgrade() {
                self.hits += 1;
                return Ok(live);
            }
        }
        self.misses += 1;
        let (plans, _) = cache.delta_plans(&cq, &output);
        let side = CountingCq::from_store_with_plans(cq, output, store, plans)?;
        let shared = Arc::new(RwLock::new(side));
        self.entries.insert(key, Arc::downgrade(&shared));
        Ok(shared)
    }

    /// Hit/miss counters and the number of currently live side shapes.
    pub fn stats(&self) -> CountingPoolStats {
        let mut live = 0;
        let mut shared = 0;
        for weak in self.entries.values() {
            match weak.strong_count() {
                0 => {}
                1 => live += 1,
                _ => {
                    live += 1;
                    shared += 1;
                }
            }
        }
        CountingPoolStats {
            hits: self.hits,
            misses: self.misses,
            live,
            shared,
        }
    }

    /// Drop entries whose side no longer has any holder.
    pub fn prune(&mut self) {
        self.entries.retain(|_, w| w.strong_count() > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcq_core::parse::parse_cq;
    use dcq_storage::{Database, Relation};

    fn store() -> SharedDatabase {
        let mut db = Database::new();
        db.add(Relation::from_int_rows(
            "Graph",
            &["src", "dst"],
            vec![vec![1, 2], vec![2, 3], vec![3, 1]],
        ))
        .unwrap();
        SharedDatabase::new(db)
    }

    #[test]
    fn alpha_equivalent_sides_share_one_engine() {
        let mut store = store();
        let mut pool = CountingPool::new();
        let mut cache = PlanCache::new();
        let a = parse_cq("P(x, z) :- Graph(x, y), Graph(y, z)").unwrap();
        let b = parse_cq("Q(u, w) :- Graph(u, v), Graph(v, w)").unwrap();
        let sa = pool
            .acquire(a.clone(), a.head_schema(), &mut store, &mut cache)
            .unwrap();
        let sb = pool
            .acquire(b.clone(), b.head_schema(), &mut store, &mut cache)
            .unwrap();
        assert!(Arc::ptr_eq(&sa, &sb), "α-equivalent sides share one engine");
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().live, 1);
        assert_eq!(pool.stats().shared, 1, "two handles on one shape");
        // One engine → its indexes are acquired exactly once.
        assert_eq!(store.index_stats().total_refs, store.index_count());

        // Dropping every holder releases the shape; the next acquire rebuilds.
        drop(sa);
        assert_eq!(Arc::strong_count(&sb), 1, "pool holds only weak refs");
        sb.write().unwrap().release_indexes(&mut store);
        drop(sb);
        assert_eq!(store.index_count(), 0);
        assert_eq!(pool.stats().live, 0);
        pool.prune();
        let sc = pool
            .acquire(a.clone(), a.head_schema(), &mut store, &mut cache)
            .unwrap();
        assert_eq!(pool.stats().misses, 2);
        sc.write().unwrap().release_indexes(&mut store);
    }

    #[test]
    fn different_shapes_do_not_share() {
        let mut store = store();
        let mut pool = CountingPool::new();
        let mut cache = PlanCache::new();
        let a = parse_cq("P(x, z) :- Graph(x, y), Graph(y, z)").unwrap();
        let b = parse_cq("P(x, z) :- Graph(x, y), Graph(z, y)").unwrap();
        let sa = pool
            .acquire(a.clone(), a.head_schema(), &mut store, &mut cache)
            .unwrap();
        let sb = pool
            .acquire(b.clone(), b.head_schema(), &mut store, &mut cache)
            .unwrap();
        assert!(!Arc::ptr_eq(&sa, &sb));
        assert_eq!(pool.stats().live, 2);
        assert_eq!(pool.stats().shared, 0, "single-holder sides are not shared");
        sa.write().unwrap().release_indexes(&mut store);
        sb.write().unwrap().release_indexes(&mut store);
    }

    #[test]
    fn pool_and_shared_sides_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CountingPool>();
        assert_send_sync::<SharedCountingCq>();
        assert_send_sync::<CountingCq>();
    }
}
