//! Attribute sets (hyperedges).

use dcq_storage::{Attr, Schema};
use std::collections::BTreeSet;
use std::fmt;

/// A set of attributes — one hyperedge of a query hypergraph.
///
/// Backed by a `BTreeSet` so iteration order (and therefore every derived artifact:
/// join trees, reduced queries, plans) is deterministic.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AttrSet {
    attrs: BTreeSet<Attr>,
}

impl AttrSet {
    /// The empty attribute set.
    pub fn empty() -> Self {
        AttrSet::default()
    }

    /// Build from any iterator of attributes.
    pub fn new(attrs: impl IntoIterator<Item = Attr>) -> Self {
        AttrSet {
            attrs: attrs.into_iter().collect(),
        }
    }

    /// Build from attribute names.
    pub fn from_names<S: AsRef<str>>(names: impl IntoIterator<Item = S>) -> Self {
        AttrSet::new(names.into_iter().map(|n| Attr::new(n.as_ref())))
    }

    /// Build from a [`Schema`] (ordering is dropped).
    pub fn from_schema(schema: &Schema) -> Self {
        AttrSet::new(schema.iter().cloned())
    }

    /// Convert to a [`Schema`] with attributes in sorted order.
    pub fn to_schema(&self) -> Schema {
        Schema::new(self.attrs.iter().cloned().collect())
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// `true` iff `attr` is a member.
    pub fn contains(&self, attr: &Attr) -> bool {
        self.attrs.contains(attr)
    }

    /// Iterate over members in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Attr> {
        self.attrs.iter()
    }

    /// Insert an attribute.
    pub fn insert(&mut self, attr: Attr) {
        self.attrs.insert(attr);
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        self.attrs.is_subset(&other.attrs)
    }

    /// `self ⊇ other`.
    pub fn is_superset(&self, other: &AttrSet) -> bool {
        self.attrs.is_superset(&other.attrs)
    }

    /// `self ∩ other ≠ ∅`.
    pub fn intersects(&self, other: &AttrSet) -> bool {
        self.attrs.intersection(&other.attrs).next().is_some()
    }

    /// `self ∩ other`.
    pub fn intersect(&self, other: &AttrSet) -> AttrSet {
        AttrSet {
            attrs: self.attrs.intersection(&other.attrs).cloned().collect(),
        }
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        AttrSet {
            attrs: self.attrs.union(&other.attrs).cloned().collect(),
        }
    }

    /// `self − other`.
    pub fn minus(&self, other: &AttrSet) -> AttrSet {
        AttrSet {
            attrs: self.attrs.difference(&other.attrs).cloned().collect(),
        }
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Attr> for AttrSet {
    fn from_iter<T: IntoIterator<Item = Attr>>(iter: T) -> Self {
        AttrSet::new(iter)
    }
}

impl<'a> IntoIterator for &'a AttrSet {
    type Item = &'a Attr;
    type IntoIter = std::collections::btree_set::Iter<'a, Attr>;
    fn into_iter(self) -> Self::IntoIter {
        self.attrs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(names: &[&str]) -> AttrSet {
        AttrSet::from_names(names.iter().copied())
    }

    #[test]
    fn construction_and_membership() {
        let a = s(&["x1", "x2", "x3"]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(&Attr::new("x2")));
        assert!(!a.contains(&Attr::new("x9")));
        assert!(!a.is_empty());
        assert!(AttrSet::empty().is_empty());
    }

    #[test]
    fn duplicates_collapse() {
        let a = AttrSet::from_names(["x", "x", "y"]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn subset_superset_intersects() {
        let a = s(&["x1", "x2"]);
        let b = s(&["x1", "x2", "x3"]);
        let c = s(&["x4"]);
        assert!(a.is_subset(&b));
        assert!(b.is_superset(&a));
        assert!(!b.is_subset(&a));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(AttrSet::empty().is_subset(&a));
    }

    #[test]
    fn set_algebra() {
        let a = s(&["x1", "x2", "x3"]);
        let b = s(&["x2", "x3", "x4"]);
        assert_eq!(a.intersect(&b), s(&["x2", "x3"]));
        assert_eq!(a.union(&b), s(&["x1", "x2", "x3", "x4"]));
        assert_eq!(a.minus(&b), s(&["x1"]));
    }

    #[test]
    fn schema_roundtrip() {
        let schema = Schema::from_names(["b", "a", "c"]);
        let set = AttrSet::from_schema(&schema);
        assert_eq!(set.len(), 3);
        // to_schema sorts attributes.
        assert_eq!(set.to_schema(), Schema::from_names(["a", "b", "c"]));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", s(&["x2", "x1"])), "{x1, x2}");
        assert_eq!(format!("{}", AttrSet::empty()), "{}");
    }

    #[test]
    fn ordering_is_deterministic() {
        let mut edges = vec![s(&["x2"]), s(&["x1", "x3"]), s(&["x1", "x2"])];
        edges.sort();
        assert_eq!(edges, vec![s(&["x1", "x2"]), s(&["x1", "x3"]), s(&["x2"])]);
    }
}
