//! GYO (Graham–Yu–Özsoyoğlu) reduction.
//!
//! Definition B.1 of the paper: repeatedly (1) delete a vertex that occurs in only
//! one edge, and (2) delete an edge contained in another edge.  The hypergraph is
//! α-acyclic iff the reduction terminates with the empty hypergraph (Lemma B.2).
//!
//! The reduction is used as an *independent* acyclicity oracle cross-checked against
//! the ear-decomposition join-tree construction in [`crate::join_tree`]; the DCQ
//! algorithms use the join tree, the tests use both.

use crate::attrset::AttrSet;
use crate::hypergraph::Hypergraph;
use dcq_storage::Attr;

/// One step of the GYO reduction, recorded for explanation / debugging.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GyoStep {
    /// A vertex occurring in a single edge was removed from that edge.
    RemoveIsolatedVertex {
        /// The removed attribute.
        attr: Attr,
        /// Index (in the original edge list) of the edge it was removed from.
        edge: usize,
    },
    /// An edge contained in another edge was removed.
    RemoveContainedEdge {
        /// Index of the removed edge.
        removed: usize,
        /// Index of the containing (witness) edge.
        witness: usize,
    },
}

/// The outcome of running the GYO reduction to fixpoint.
#[derive(Clone, Debug)]
pub struct GyoOutcome {
    /// `true` iff the reduction emptied the hypergraph — i.e. it is α-acyclic.
    pub acyclic: bool,
    /// The reduction steps, in order.
    pub steps: Vec<GyoStep>,
    /// Indices of edges that survived (empty iff `acyclic`, except that a fully
    /// reduced hypergraph keeps one final empty edge which is reported here as
    /// having been eliminated too).
    pub residual_edges: Vec<usize>,
}

/// Run the GYO reduction on a hypergraph.
pub fn gyo_reduction(h: &Hypergraph) -> GyoOutcome {
    // Work on mutable copies; `alive[i]` tracks whether original edge i survives.
    let n = h.len();
    let mut edges: Vec<AttrSet> = h.edges().to_vec();
    let mut alive: Vec<bool> = vec![true; n];
    let mut steps = Vec::new();

    if n == 0 {
        return GyoOutcome {
            acyclic: true,
            steps,
            residual_edges: vec![],
        };
    }

    loop {
        let mut changed = false;

        // Rule (1): remove vertices occurring in exactly one live edge.
        let mut vertex_home: std::collections::BTreeMap<Attr, (usize, usize)> =
            std::collections::BTreeMap::new();
        for (i, e) in edges.iter().enumerate().filter(|(i, _)| alive[*i]) {
            for a in e.iter() {
                vertex_home
                    .entry(a.clone())
                    .and_modify(|(_, cnt)| *cnt += 1)
                    .or_insert((i, 1));
            }
        }
        for (attr, (home, count)) in &vertex_home {
            if *count == 1 {
                let e = &mut edges[*home];
                if e.contains(attr) {
                    *e = e.minus(&AttrSet::new([attr.clone()]));
                    steps.push(GyoStep::RemoveIsolatedVertex {
                        attr: attr.clone(),
                        edge: *home,
                    });
                    changed = true;
                }
            }
        }

        // Rule (2): remove edges contained in another live edge (including empty
        // edges and duplicate edges — one of the duplicates survives).
        'outer: for i in 0..n {
            if !alive[i] {
                continue;
            }
            for j in 0..n {
                if i == j || !alive[j] {
                    continue;
                }
                let contained = edges[i].is_subset(&edges[j]);
                // For identical edges only remove the higher index so exactly one
                // copy survives and the loop terminates.
                let tie_break = edges[i] != edges[j] || i > j;
                if contained && tie_break {
                    alive[i] = false;
                    steps.push(GyoStep::RemoveContainedEdge {
                        removed: i,
                        witness: j,
                    });
                    changed = true;
                    continue 'outer;
                }
            }
        }

        if !changed {
            break;
        }
    }

    let residual: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
    // Fully reduced: either nothing survives, or a single edge survives and that
    // edge has been emptied of all its vertices (a single-edge hypergraph is
    // trivially acyclic).
    let acyclic = match residual.as_slice() {
        [] => true,
        [only] => edges[*only].is_empty() || h.len() == 1 || all_attrs_private(h, *only, &alive),
        _ => false,
    };
    GyoOutcome {
        acyclic,
        steps,
        residual_edges: if acyclic { vec![] } else { residual },
    }
}

/// After reduction a single surviving edge is acyclic iff every remaining attribute
/// occurs only in it (rule (1) would have removed them — this covers the fixpoint
/// where rule (1) already ran in a previous iteration ordering).
fn all_attrs_private(h: &Hypergraph, survivor: usize, alive: &[bool]) -> bool {
    let e = &h.edges()[survivor];
    e.iter().all(|a| {
        h.edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| alive[*i] && *i != survivor)
            .all(|(_, other)| !other.contains(a))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(names: &[&str]) -> AttrSet {
        AttrSet::from_names(names.iter().copied())
    }

    fn hg(edges: &[&[&str]]) -> Hypergraph {
        Hypergraph::new(edges.iter().map(|e| s(e)).collect())
    }

    #[test]
    fn empty_and_single_edge_are_acyclic() {
        assert!(gyo_reduction(&Hypergraph::empty()).acyclic);
        assert!(gyo_reduction(&hg(&[&["x1", "x2"]])).acyclic);
    }

    #[test]
    fn path_join_is_acyclic() {
        // R1(x1,x2) ⋈ R2(x2,x3) ⋈ R3(x3,x4)
        let h = hg(&[&["x1", "x2"], &["x2", "x3"], &["x3", "x4"]]);
        let out = gyo_reduction(&h);
        assert!(out.acyclic);
        assert!(!out.steps.is_empty());
    }

    #[test]
    fn triangle_is_cyclic() {
        // The triangle query of Example 3.9 / the hardness constructions.
        let h = hg(&[&["x1", "x2"], &["x2", "x3"], &["x1", "x3"]]);
        let out = gyo_reduction(&h);
        assert!(!out.acyclic);
        assert_eq!(out.residual_edges.len(), 3);
    }

    #[test]
    fn figure2_query_is_acyclic() {
        let h = hg(&[
            &["x1", "x2", "x3"],
            &["x1", "x4"],
            &["x2", "x3", "x5"],
            &["x5", "x6"],
            &["x3", "x7"],
            &["x5", "x8"],
        ]);
        assert!(gyo_reduction(&h).acyclic);
    }

    #[test]
    fn triangle_plus_covering_edge_is_acyclic() {
        // Adding R5(x1,x2,x3) to the triangle makes it conformal and acyclic —
        // this is exactly the linear-reducible example after Definition 2.2.
        let h = hg(&[
            &["x1", "x2"],
            &["x2", "x3"],
            &["x1", "x3"],
            &["x1", "x2", "x3"],
        ]);
        assert!(gyo_reduction(&h).acyclic);
    }

    #[test]
    fn duplicate_edges_are_handled() {
        let h = hg(&[&["x1", "x2"], &["x1", "x2"], &["x2", "x3"]]);
        assert!(gyo_reduction(&h).acyclic);
    }

    #[test]
    fn four_cycle_is_cyclic() {
        let h = hg(&[&["x1", "x2"], &["x2", "x3"], &["x3", "x4"], &["x4", "x1"]]);
        assert!(!gyo_reduction(&h).acyclic);
    }

    #[test]
    fn four_cycle_with_chord_edge_still_cyclic() {
        // A 4-cycle plus one diagonal is two triangles sharing an edge: still cyclic.
        let h = hg(&[
            &["x1", "x2"],
            &["x2", "x3"],
            &["x3", "x4"],
            &["x4", "x1"],
            &["x1", "x3"],
        ]);
        assert!(!gyo_reduction(&h).acyclic);
    }

    #[test]
    fn star_query_is_acyclic() {
        // Example 3.11 (k=4): unary-extended star around x1.
        let h = hg(&[&["x1", "x2"], &["x1", "x3"], &["x1", "x4"], &["x1", "x5"]]);
        assert!(gyo_reduction(&h).acyclic);
    }

    #[test]
    fn disconnected_hypergraph_is_acyclic() {
        // Example 3.10's Q1: R1(x1,x2) × R2(x3,x4) — a Cartesian product is acyclic.
        let h = hg(&[&["x1", "x2"], &["x3", "x4"]]);
        assert!(gyo_reduction(&h).acyclic);
    }
}
