//! # dcq-hypergraph
//!
//! Hypergraph structure toolkit for **dcqx**, the Rust reproduction of *Computing
//! the Difference of Conjunctive Queries Efficiently* (Hu & Wang, SIGMOD 2023).
//!
//! Every structural notion the paper's dichotomy (Theorem 2.4) relies on lives here:
//!
//! * [`AttrSet`] — a hyperedge: the set of attributes one relation is defined on,
//! * [`Hypergraph`] — the hypergraph `(V, E)` of a conjunctive query,
//! * [`JoinTree`] — join trees produced by GYO ear decomposition, re-rootable,
//! * [`gyo`] — the GYO reduction and α-acyclicity test (Definition B.1 / Lemma B.2),
//! * [`classify`] — α-acyclic / free-connex / linear-reducible classification
//!   (§2.2, Definition 2.2) and the per-edge augmented-acyclicity checks used by the
//!   difference-linear condition (Definition 2.3).
//!
//! The crate operates purely on attribute sets; relations, tuples and operators live
//! in `dcq-storage` and `dcq-exec`.

#![warn(missing_docs)]

pub mod attrset;
pub mod classify;
pub mod gyo;
pub mod hypergraph;
pub mod join_tree;

pub use attrset::AttrSet;
pub use classify::{is_alpha_acyclic, is_free_connex, is_linear_reducible, CqShape};
pub use gyo::{gyo_reduction, GyoOutcome};
pub use hypergraph::Hypergraph;
pub use join_tree::{JoinTree, JoinTreeNode};
