//! Join trees via ear decomposition.
//!
//! A join tree (§2.2) of a hypergraph is a tree whose nodes are the hyperedges such
//! that for every attribute the set of nodes containing it is connected.  A
//! hypergraph has a join tree iff it is α-acyclic; the construction below is the
//! classic ear decomposition (repeatedly peel an edge whose shared attributes are
//! covered by a single witness edge, attaching it below the witness).
//!
//! Join trees drive every linear-time component of the paper: the `Reduce` procedure
//! (Algorithm 1), the Yannakakis algorithm (Algorithm 3), EasyDCQ (Algorithm 2) and
//! the bag-semantics algorithm (Algorithm 5).  Trees can be *re-rooted* at any node
//! — re-rooting preserves the join-tree property since it only concerns the
//! underlying undirected tree.

use crate::attrset::AttrSet;
use std::fmt;

/// A node of a [`JoinTree`].
#[derive(Clone, Debug)]
pub struct JoinTreeNode {
    /// The hyperedge (attribute set) of this node.
    pub edge: AttrSet,
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Child node indices.
    pub children: Vec<usize>,
}

/// A rooted join tree over a list of hyperedges.
///
/// Node `i` corresponds to edge `i` of the hypergraph the tree was built from, so
/// callers can map nodes back to query atoms by index.
#[derive(Clone)]
pub struct JoinTree {
    nodes: Vec<JoinTreeNode>,
    root: usize,
}

impl JoinTree {
    /// Build a join tree by ear decomposition.  Returns `None` iff the hypergraph is
    /// cyclic (no join tree exists).  The root is whichever edge survives last.
    pub fn build(edges: &[AttrSet]) -> Option<JoinTree> {
        let n = edges.len();
        if n == 0 {
            return None;
        }
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut alive: Vec<bool> = vec![true; n];
        let mut alive_count = n;

        while alive_count > 1 {
            let mut found = None;
            'search: for i in 0..n {
                if !alive[i] {
                    continue;
                }
                // Attributes of e_i that also occur in some other live edge.
                let mut shared = AttrSet::empty();
                for j in 0..n {
                    if j != i && alive[j] {
                        shared = shared.union(&edges[i].intersect(&edges[j]));
                    }
                }
                // e_i is an ear if a single live witness covers all its shared attrs.
                for j in 0..n {
                    if j != i && alive[j] && shared.is_subset(&edges[j]) {
                        found = Some((i, j));
                        break 'search;
                    }
                }
            }
            match found {
                Some((ear, witness)) => {
                    parent[ear] = Some(witness);
                    alive[ear] = false;
                    alive_count -= 1;
                }
                None => return None, // cyclic
            }
        }

        let root = (0..n).find(|&i| alive[i]).expect("one live edge remains");
        let mut nodes: Vec<JoinTreeNode> = edges
            .iter()
            .enumerate()
            .map(|(i, e)| JoinTreeNode {
                edge: e.clone(),
                parent: parent[i],
                children: Vec::new(),
            })
            .collect();
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                nodes[*p].children.push(i);
            }
        }
        let tree = JoinTree { nodes, root };
        debug_assert!(
            tree.verify(),
            "ear decomposition produced an invalid join tree"
        );
        Some(tree)
    }

    /// Build a join tree for `edges ∪ {head}` and root it at the head node.
    ///
    /// The head node's index is `edges.len()`; this is the "virtual relation over the
    /// output attributes y" used by `Reduce` (Algorithm 1) and the free-connex
    /// Yannakakis evaluation.  Returns `None` iff the augmented hypergraph is cyclic
    /// (i.e. the query is not linear-reducible).
    pub fn build_with_head(edges: &[AttrSet], head: &AttrSet) -> Option<(JoinTree, usize)> {
        let mut augmented = edges.to_vec();
        augmented.push(head.clone());
        let head_index = edges.len();
        let mut tree = JoinTree::build(&augmented)?;
        tree.reroot(head_index);
        Some((tree, head_index))
    }

    /// The nodes of the tree (indexed as the edges passed to [`JoinTree::build`]).
    pub fn nodes(&self) -> &[JoinTreeNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the tree has no nodes (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The hyperedge of node `i`.
    pub fn edge(&self, i: usize) -> &AttrSet {
        &self.nodes[i].edge
    }

    /// The parent of node `i`, if any.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.nodes[i].parent
    }

    /// The children of node `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.nodes[i].children
    }

    /// Re-root the tree at `new_root`, preserving the undirected structure.
    pub fn reroot(&mut self, new_root: usize) {
        assert!(new_root < self.nodes.len(), "re-root target out of bounds");
        if new_root == self.root {
            return;
        }
        // Build undirected adjacency.
        let n = self.nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            if let Some(p) = self.nodes[i].parent {
                adj[i].push(p);
                adj[p].push(i);
            }
        }
        // BFS from the new root.
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[new_root] = true;
        queue.push_back(new_root);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        debug_assert!(visited.iter().all(|&v| v), "join tree must be connected");
        for (i, p) in parent.iter().enumerate() {
            self.nodes[i].parent = *p;
            self.nodes[i].children.clear();
        }
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                self.nodes[*p].children.push(i);
            }
        }
        self.root = new_root;
    }

    /// Node indices in bottom-up order (every node appears after all its children);
    /// the root is last.
    pub fn bottom_up_order(&self) -> Vec<usize> {
        let mut order = self.top_down_order();
        order.reverse();
        order
    }

    /// Node indices in top-down order (every node appears before its children);
    /// the root is first.
    pub fn top_down_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(u) = stack.pop() {
            order.push(u);
            for &c in &self.nodes[u].children {
                stack.push(c);
            }
        }
        debug_assert_eq!(order.len(), self.nodes.len());
        order
    }

    /// All node indices in the subtree rooted at `i` (including `i`).
    pub fn subtree(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![i];
        while let Some(u) = stack.pop() {
            out.push(u);
            for &c in &self.nodes[u].children {
                stack.push(c);
            }
        }
        out
    }

    /// Verify the join-tree property: for every attribute, the nodes containing it
    /// form a connected subtree.  Used by `debug_assert!` and tests.
    pub fn verify(&self) -> bool {
        // Collect all attributes.
        let mut all = AttrSet::empty();
        for node in &self.nodes {
            all = all.union(&node.edge);
        }
        for attr in all.iter() {
            let holders: Vec<usize> = (0..self.nodes.len())
                .filter(|&i| self.nodes[i].edge.contains(attr))
                .collect();
            if holders.len() <= 1 {
                continue;
            }
            // Connectivity: starting from holders[0], walking only through holder
            // nodes must reach every holder.  Build adjacency restricted to holders.
            let holder_set: std::collections::BTreeSet<usize> = holders.iter().copied().collect();
            let mut visited = std::collections::BTreeSet::new();
            let mut stack = vec![holders[0]];
            visited.insert(holders[0]);
            while let Some(u) = stack.pop() {
                let mut neighbors = self.nodes[u].children.clone();
                if let Some(p) = self.nodes[u].parent {
                    neighbors.push(p);
                }
                for v in neighbors {
                    if holder_set.contains(&v) && visited.insert(v) {
                        stack.push(v);
                    }
                }
            }
            if visited.len() != holders.len() {
                return false;
            }
        }
        true
    }
}

impl fmt::Debug for JoinTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(
            tree: &JoinTree,
            node: usize,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            writeln!(
                f,
                "{}[{}] {}",
                "  ".repeat(depth),
                node,
                tree.nodes[node].edge
            )?;
            for &c in &tree.nodes[node].children {
                rec(tree, c, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, self.root, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(names: &[&str]) -> AttrSet {
        AttrSet::from_names(names.iter().copied())
    }

    fn figure2_edges() -> Vec<AttrSet> {
        vec![
            s(&["x1", "x2", "x3"]),
            s(&["x1", "x4"]),
            s(&["x2", "x3", "x5"]),
            s(&["x5", "x6"]),
            s(&["x3", "x7"]),
            s(&["x5", "x8"]),
        ]
    }

    #[test]
    fn acyclic_hypergraphs_yield_verified_trees() {
        let tree = JoinTree::build(&figure2_edges()).expect("figure 2 query is acyclic");
        assert_eq!(tree.len(), 6);
        assert!(tree.verify());
        // Every non-root node has a parent; the root has none.
        for i in 0..tree.len() {
            if i == tree.root() {
                assert!(tree.parent(i).is_none());
            } else {
                assert!(tree.parent(i).is_some());
            }
        }
    }

    #[test]
    fn cyclic_hypergraphs_yield_none() {
        let triangle = vec![s(&["x1", "x2"]), s(&["x2", "x3"]), s(&["x1", "x3"])];
        assert!(JoinTree::build(&triangle).is_none());
        let square = vec![
            s(&["x1", "x2"]),
            s(&["x2", "x3"]),
            s(&["x3", "x4"]),
            s(&["x4", "x1"]),
        ];
        assert!(JoinTree::build(&square).is_none());
    }

    #[test]
    fn single_edge_and_disconnected() {
        let t = JoinTree::build(&[s(&["a", "b"])]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.root(), 0);

        // Cartesian product (Example 3.10's Q1) is acyclic.
        let t = JoinTree::build(&[s(&["x1", "x2"]), s(&["x3", "x4"])]).unwrap();
        assert!(t.verify());
    }

    #[test]
    fn orders_respect_tree_structure() {
        let tree = JoinTree::build(&figure2_edges()).unwrap();
        let bu = tree.bottom_up_order();
        let td = tree.top_down_order();
        assert_eq!(bu.len(), 6);
        assert_eq!(td.len(), 6);
        assert_eq!(*bu.last().unwrap(), tree.root());
        assert_eq!(td[0], tree.root());
        // In bottom-up order every child appears before its parent.
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (idx, &node) in bu.iter().enumerate() {
                p[node] = idx;
            }
            p
        };
        for i in 0..6 {
            if let Some(par) = tree.parent(i) {
                assert!(pos[i] < pos[par], "child {i} must precede parent {par}");
            }
        }
    }

    #[test]
    fn reroot_preserves_join_tree_property() {
        let mut tree = JoinTree::build(&figure2_edges()).unwrap();
        for new_root in 0..tree.len() {
            tree.reroot(new_root);
            assert_eq!(tree.root(), new_root);
            assert!(tree.verify(), "re-rooting at {new_root} broke the tree");
            assert!(tree.parent(new_root).is_none());
            // Parent/child lists stay consistent.
            for i in 0..tree.len() {
                for &c in tree.children(i) {
                    assert_eq!(tree.parent(c), Some(i));
                }
            }
        }
    }

    #[test]
    fn build_with_head_roots_at_virtual_node() {
        // Figure 2 as a non-full query with y = {x1,x2,x3,x4} (free-connex per paper).
        let head = s(&["x1", "x2", "x3", "x4"]);
        let (tree, head_idx) = JoinTree::build_with_head(&figure2_edges(), &head).unwrap();
        assert_eq!(head_idx, 6);
        assert_eq!(tree.root(), head_idx);
        assert_eq!(tree.edge(head_idx), &head);
        assert!(tree.verify());
    }

    #[test]
    fn build_with_head_detects_non_linear_reducible() {
        // y = {x1, x2, x5} on the Figure 2 hypergraph is NOT free-connex (the paper
        // notes top(x3) is an ancestor of top(x5)); the augmented hypergraph is
        // cyclic, so no head-rooted tree exists.
        let head = s(&["x1", "x2", "x5"]);
        assert!(JoinTree::build_with_head(&figure2_edges(), &head).is_none());
    }

    #[test]
    fn build_with_head_on_cyclic_but_linear_reducible_query() {
        // Q = π_{x1,x2,x3}(R1(x1,x2) ⋈ R2(x2,x3) ⋈ R3(x1,x3) ⋈ R4(x3,x4)) from §2.3:
        // cyclic, but adding the head {x1,x2,x3} gives an acyclic hypergraph.
        let edges = vec![
            s(&["x1", "x2"]),
            s(&["x2", "x3"]),
            s(&["x1", "x3"]),
            s(&["x3", "x4"]),
        ];
        assert!(JoinTree::build(&edges).is_none());
        let head = s(&["x1", "x2", "x3"]);
        let (tree, head_idx) = JoinTree::build_with_head(&edges, &head).unwrap();
        assert_eq!(tree.root(), head_idx);
        assert!(tree.verify());
    }

    #[test]
    fn subtree_enumeration() {
        let tree = JoinTree::build(&figure2_edges()).unwrap();
        let whole = tree.subtree(tree.root());
        assert_eq!(whole.len(), tree.len());
        for &c in tree.children(tree.root()) {
            let sub = tree.subtree(c);
            assert!(sub.contains(&c));
            assert!(!sub.contains(&tree.root()));
        }
    }
}
