//! Query hypergraphs.

use crate::attrset::AttrSet;
use dcq_storage::Attr;
use std::fmt;

/// The hypergraph `(V, E)` of a conjunctive query: one hyperedge per atom.
///
/// Edges are stored in atom order; `V` is derived as the union of all edges.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Hypergraph {
    edges: Vec<AttrSet>,
}

impl Hypergraph {
    /// Create a hypergraph from its edges.
    pub fn new(edges: Vec<AttrSet>) -> Self {
        Hypergraph { edges }
    }

    /// An empty hypergraph (no edges, no vertices).
    pub fn empty() -> Self {
        Hypergraph::default()
    }

    /// The edges in atom order.
    pub fn edges(&self) -> &[AttrSet] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` iff the hypergraph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Append an edge, returning its index.
    pub fn add_edge(&mut self, edge: AttrSet) -> usize {
        self.edges.push(edge);
        self.edges.len() - 1
    }

    /// The vertex set `V` — union of all edges.
    pub fn vertices(&self) -> AttrSet {
        let mut v = AttrSet::empty();
        for e in &self.edges {
            v = v.union(e);
        }
        v
    }

    /// `true` iff `attr` appears in some edge.
    pub fn contains_vertex(&self, attr: &Attr) -> bool {
        self.edges.iter().any(|e| e.contains(attr))
    }

    /// Number of edges containing `attr`.
    pub fn degree(&self, attr: &Attr) -> usize {
        self.edges.iter().filter(|e| e.contains(attr)).count()
    }

    /// Edges (indices) containing `attr`.
    pub fn edges_containing(&self, attr: &Attr) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.contains(attr))
            .map(|(i, _)| i)
            .collect()
    }

    /// A new hypergraph with `extra` appended (the `E ∪ {e}` / `E ∪ {y}`
    /// constructions used throughout §2.3 and §3).
    pub fn with_extra_edge(&self, extra: &AttrSet) -> Hypergraph {
        let mut edges = self.edges.clone();
        edges.push(extra.clone());
        Hypergraph::new(edges)
    }

    /// Restrict every edge to the attributes in `keep`, dropping edges that become
    /// empty.  This is the *sub-query induced by a set of attributes* (Definition
    /// B.13) at the hypergraph level.
    pub fn induced(&self, keep: &AttrSet) -> Hypergraph {
        Hypergraph::new(
            self.edges
                .iter()
                .map(|e| e.intersect(keep))
                .filter(|e| !e.is_empty())
                .collect(),
        )
    }
}

impl fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E = [")?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(names: &[&str]) -> AttrSet {
        AttrSet::from_names(names.iter().copied())
    }

    /// The α-acyclic full CQ of Figure 2 in the paper.
    fn figure2() -> Hypergraph {
        Hypergraph::new(vec![
            s(&["x1", "x2", "x3"]),
            s(&["x1", "x4"]),
            s(&["x2", "x3", "x5"]),
            s(&["x5", "x6"]),
            s(&["x3", "x7"]),
            s(&["x5", "x8"]),
        ])
    }

    #[test]
    fn vertices_and_degree() {
        let h = figure2();
        assert_eq!(h.len(), 6);
        assert_eq!(h.vertices().len(), 8);
        assert_eq!(h.degree(&Attr::new("x3")), 3);
        assert_eq!(h.degree(&Attr::new("x6")), 1);
        assert_eq!(h.degree(&Attr::new("nope")), 0);
        assert!(h.contains_vertex(&Attr::new("x8")));
        assert_eq!(h.edges_containing(&Attr::new("x5")), vec![2, 3, 5]);
    }

    #[test]
    fn with_extra_edge_appends() {
        let h = figure2();
        let aug = h.with_extra_edge(&s(&["x1", "x2", "x3", "x4"]));
        assert_eq!(aug.len(), 7);
        assert_eq!(aug.edges()[6], s(&["x1", "x2", "x3", "x4"]));
        // original untouched
        assert_eq!(h.len(), 6);
    }

    #[test]
    fn induced_subquery_drops_empty_edges() {
        let h = figure2();
        let sub = h.induced(&s(&["x1", "x2", "x3", "x4"]));
        // Edges {x5,x6}, {x5,x8} vanish; {x2,x3,x5} shrinks to {x2,x3}; {x3,x7} to {x3}.
        assert_eq!(sub.len(), 4);
        assert!(sub.edges().contains(&s(&["x2", "x3"])));
        assert!(sub.edges().contains(&s(&["x3"])));
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::empty();
        assert!(h.is_empty());
        assert!(h.vertices().is_empty());
    }
}
