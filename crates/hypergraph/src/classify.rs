//! Structural classification of conjunctive queries.
//!
//! This module implements the query classes of §2.2 / §2.3 of the paper:
//!
//! * **α-acyclic** — the hypergraph `E` has a join tree,
//! * **free-connex** — `E` is acyclic *and* `E ∪ {y}` is acyclic,
//! * **linear-reducible** (Definition 2.2) — `(y, V, E ∪ {y})` is free-connex,
//!   which (because the augmented hypergraph already contains the head edge)
//!   simplifies to: `E ∪ {y}` is acyclic,
//! * **full** — `y = V`.
//!
//! These predicates feed the difference-linear dichotomy (Definition 2.3 /
//! Theorem 2.4) implemented in `dcq-core::classify`.

use crate::attrset::AttrSet;
use crate::gyo::gyo_reduction;
use crate::hypergraph::Hypergraph;
use crate::join_tree::JoinTree;

/// Test α-acyclicity of a hypergraph (set of edges).
///
/// Uses the ear-decomposition join-tree construction; [`gyo_reduction`] provides an
/// independent oracle that the test-suite cross-checks against.
pub fn is_alpha_acyclic(edges: &[AttrSet]) -> bool {
    if edges.is_empty() {
        return true;
    }
    JoinTree::build(edges).is_some()
}

/// Test α-acyclicity of the hypergraph augmented with one extra edge: `E ∪ {extra}`.
///
/// This is the per-edge condition of the difference-linear definition
/// (`(y, E₁′ ∪ {e})` α-acyclic for every `e ∈ E₂′`).
pub fn is_alpha_acyclic_with(edges: &[AttrSet], extra: &AttrSet) -> bool {
    let mut augmented = edges.to_vec();
    augmented.push(extra.clone());
    is_alpha_acyclic(&augmented)
}

/// Test whether the CQ `(y, V, E)` is free-connex: `E` acyclic and `E ∪ {y}` acyclic.
///
/// For a Boolean query (`y = ∅`) and for a full query (`y = V`) this degenerates to
/// plain α-acyclicity, matching Figure 2 of the paper (an acyclic full join is
/// free-connex).
pub fn is_free_connex(head: &AttrSet, edges: &[AttrSet]) -> bool {
    if !is_alpha_acyclic(edges) {
        return false;
    }
    if head.is_empty() {
        return true;
    }
    is_alpha_acyclic_with(edges, head)
}

/// Test whether the CQ `(y, V, E)` is linear-reducible (Definition 2.2):
/// `(y, V, E ∪ {y})` free-connex, i.e. `E ∪ {y}` α-acyclic.
pub fn is_linear_reducible(head: &AttrSet, edges: &[AttrSet]) -> bool {
    if head.is_empty() {
        // A Boolean query is linear-reducible iff it is acyclic: the augmented
        // hypergraph only gains an empty edge.
        return is_alpha_acyclic(edges);
    }
    is_alpha_acyclic_with(edges, head)
}

/// The structural shape of a CQ, bundling all the classification flags the paper's
/// Table 1 / Figure 2 distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CqShape {
    /// `E` is α-acyclic.
    pub alpha_acyclic: bool,
    /// The query is free-connex.
    pub free_connex: bool,
    /// The query is linear-reducible (Definition 2.2).
    pub linear_reducible: bool,
    /// The query is full (`y = V`).
    pub full: bool,
}

impl CqShape {
    /// Classify the CQ `(y, V, E)`.
    pub fn of(head: &AttrSet, edges: &[AttrSet]) -> CqShape {
        let hypergraph = Hypergraph::new(edges.to_vec());
        let vertices = hypergraph.vertices();
        let alpha_acyclic = is_alpha_acyclic(edges);
        let linear_reducible = is_linear_reducible(head, edges);
        let free_connex = alpha_acyclic && linear_reducible;
        let full = head == &vertices;
        CqShape {
            alpha_acyclic,
            free_connex,
            linear_reducible,
            full,
        }
    }

    /// Sanity relationships between the classes (Figure 2): free-connex ⇒ acyclic,
    /// free-connex ⇒ linear-reducible, acyclic ∧ full ⇒ free-connex.
    pub fn invariants_hold(&self) -> bool {
        (!self.free_connex || (self.alpha_acyclic && self.linear_reducible))
            && (!(self.alpha_acyclic && self.full) || self.free_connex)
    }
}

/// Cross-check the ear-decomposition acyclicity test against the GYO reduction.
/// Exposed for the property tests; always agrees.
pub fn acyclicity_oracles_agree(edges: &[AttrSet]) -> bool {
    let by_tree = is_alpha_acyclic(edges);
    let by_gyo = gyo_reduction(&Hypergraph::new(edges.to_vec())).acyclic;
    by_tree == by_gyo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(names: &[&str]) -> AttrSet {
        AttrSet::from_names(names.iter().copied())
    }

    fn edges(list: &[&[&str]]) -> Vec<AttrSet> {
        list.iter().map(|e| s(e)).collect()
    }

    #[test]
    fn path_join_full_is_free_connex() {
        // Example 3.3: Q = R1(x1,x2) ⋈ R2(x2,x3), full output.
        let e = edges(&[&["x1", "x2"], &["x2", "x3"]]);
        let y = s(&["x1", "x2", "x3"]);
        let shape = CqShape::of(&y, &e);
        assert!(shape.alpha_acyclic && shape.free_connex && shape.linear_reducible && shape.full);
        assert!(shape.invariants_hold());
    }

    #[test]
    fn path_join_with_endpoint_projection_is_not_free_connex() {
        // Example 4.12: π_{x1,x3} R1(x1,x2) ⋈ R2(x2,x3) — acyclic, not free-connex,
        // hence not linear-reducible either (acyclic non-free-connex ⇒ non-LR, §2.3).
        let e = edges(&[&["x1", "x2"], &["x2", "x3"]]);
        let y = s(&["x1", "x3"]);
        let shape = CqShape::of(&y, &e);
        assert!(shape.alpha_acyclic);
        assert!(!shape.free_connex);
        assert!(!shape.linear_reducible);
        assert!(!shape.full);
        assert!(shape.invariants_hold());
    }

    #[test]
    fn triangle_is_cyclic_but_full_triangle_not_linear_reducible() {
        // The triangle join (Example 3.9's Q2) with full output: cyclic, and adding
        // y = V = {x1,x2,x3} makes it acyclic, so it IS linear-reducible (a full
        // cyclic query is linear-reducible: E ∪ {V} is conformal+acyclic? No —
        // adding the covering edge {x1,x2,x3} to the triangle gives an acyclic
        // hypergraph, exactly the example below Definition 2.2).
        let e = edges(&[&["x1", "x2"], &["x2", "x3"], &["x1", "x3"]]);
        let y = s(&["x1", "x2", "x3"]);
        let shape = CqShape::of(&y, &e);
        assert!(!shape.alpha_acyclic);
        assert!(!shape.free_connex);
        assert!(shape.linear_reducible);
        assert!(shape.full);
        assert!(shape.invariants_hold());
    }

    #[test]
    fn paper_linear_reducible_example() {
        // Q = π_{x1,x2,x3}(R1(x1,x2) ⋈ R2(x2,x3) ⋈ R3(x1,x3) ⋈ R4(x3,x4)):
        // cyclic and non-full but linear-reducible (§2.3).
        let e = edges(&[&["x1", "x2"], &["x2", "x3"], &["x1", "x3"], &["x3", "x4"]]);
        let y = s(&["x1", "x2", "x3"]);
        let shape = CqShape::of(&y, &e);
        assert!(!shape.alpha_acyclic);
        assert!(!shape.free_connex);
        assert!(shape.linear_reducible);
        assert!(!shape.full);
    }

    #[test]
    fn figure2_nonfull_heads() {
        let e = edges(&[
            &["x1", "x2", "x3"],
            &["x1", "x4"],
            &["x2", "x3", "x5"],
            &["x5", "x6"],
            &["x3", "x7"],
            &["x5", "x8"],
        ]);
        // y = {x1,x2,x3,x4}: free-connex (paper, Figure 2 caption).
        assert!(is_free_connex(&s(&["x1", "x2", "x3", "x4"]), &e));
        // y = {x1,x2,x5}: not free-connex (paper, Figure 2 caption).
        assert!(!is_free_connex(&s(&["x1", "x2", "x5"]), &e));
    }

    #[test]
    fn boolean_queries() {
        let acyclic = edges(&[&["x1", "x2"], &["x2", "x3"]]);
        let cyclic = edges(&[&["x1", "x2"], &["x2", "x3"], &["x1", "x3"]]);
        let empty_head = AttrSet::empty();
        assert!(is_free_connex(&empty_head, &acyclic));
        assert!(is_linear_reducible(&empty_head, &acyclic));
        assert!(!is_free_connex(&empty_head, &cyclic));
        assert!(!is_linear_reducible(&empty_head, &cyclic));
    }

    #[test]
    fn star_queries_of_example_3_11() {
        // Q1 = ⋈_{|e|=1} R_e({x1} ∪ e): star of binary relations around x1 — acyclic full.
        let q1 = edges(&[&["x1", "x2"], &["x1", "x3"], &["x1", "x4"]]);
        let y = s(&["x1", "x2", "x3", "x4"]);
        assert!(CqShape::of(&y, &q1).free_connex);
        // Q2 = ⋈_{|e'|=2} R_{e'}({x1} ∪ e'): all triples containing x1 — cyclic for k≥3
        // but linear-reducible once the full head is added.
        let q2 = edges(&[
            &["x1", "x2", "x3"],
            &["x1", "x2", "x4"],
            &["x1", "x3", "x4"],
        ]);
        let shape = CqShape::of(&y, &q2);
        assert!(!shape.alpha_acyclic);
        assert!(shape.linear_reducible);
    }

    #[test]
    fn oracles_agree_on_known_cases() {
        let cases: Vec<Vec<AttrSet>> = vec![
            edges(&[&["a", "b"], &["b", "c"], &["c", "d"]]),
            edges(&[&["a", "b"], &["b", "c"], &["a", "c"]]),
            edges(&[&["a", "b"], &["c", "d"]]),
            edges(&[&["a", "b", "c"], &["b", "c", "d"], &["c", "d", "e"]]),
            edges(&[&["x1", "x2"], &["x2", "x3"], &["x3", "x4"], &["x4", "x1"]]),
            vec![],
            edges(&[&["a"]]),
        ];
        for c in &cases {
            assert!(acyclicity_oracles_agree(c), "oracles disagree on {c:?}");
        }
    }
}
